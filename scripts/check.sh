#!/usr/bin/env bash
# Full verify ladder for elitenet, in increasing strictness:
#
#   1. tier-1: Release-ish build + the whole ctest suite (the CI gate);
#   2. tsan:   ThreadSanitizer build, "tsan"-labelled tests (parallel
#              scheduler, traversal kernels, serving cache + executor,
#              live delta-overlay reader/writer/compactor hammer);
#   3. perf:   the "perf"-labelled ctest smoke benches (graph kernels,
#              serving load, cold start, distance oracle, telemetry
#              overhead, out-of-core scale, live mutations) — each is a
#              hard-asserting harness that fails on response divergence,
#              cache/oracle/telemetry slowdowns, degraded queries, or a
#              busted streamed-vs-in-memory / compaction-vs-cold-rebuild
#              byte identity / RSS ceiling.
#
# Usage: scripts/check.sh [--skip-tsan]
# Runs from any cwd; builds live in build/ and build-tsan/.

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$SKIP_TSAN" -eq 0 ]]; then
  echo "== tsan: thread-focused tests under ThreadSanitizer =="
  cmake -B build-tsan -S . -DELITENET_ENABLE_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS"
  (cd build-tsan && ctest -L tsan --output-on-failure -j "$JOBS")
else
  echo "== tsan: skipped (--skip-tsan) =="
fi

echo "== perf: smoke benches (kernels, serving, cold start, oracle, telemetry, mutations) =="
(cd build && ctest -L perf --output-on-failure -j "$JOBS")

echo "== all checks passed =="

#include "analysis/components.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(WeakComponentsTest, DisjointPieces) {
  // {0,1}, {2,3,4}, {5}
  const DiGraph g = Build(6, {{0, 1}, {2, 3}, {4, 3}});
  const ComponentLabeling c = WeaklyConnectedComponents(g);
  EXPECT_EQ(c.num_components, 3u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[5], c.label[0]);
  EXPECT_EQ(c.GiantSize(), 3u);
  EXPECT_NEAR(c.GiantFraction(), 0.5, 1e-12);
}

TEST(WeakComponentsTest, DirectionIgnored) {
  const DiGraph g = Build(3, {{1, 0}, {1, 2}});
  EXPECT_EQ(WeaklyConnectedComponents(g).num_components, 1u);
}

TEST(WeakComponentsTest, EmptyGraph) {
  const ComponentLabeling c = WeaklyConnectedComponents(DiGraph());
  EXPECT_EQ(c.num_components, 0u);
  EXPECT_EQ(c.GiantFraction(), 0.0);
}

TEST(SccTest, CycleIsOneComponent) {
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const ComponentLabeling c = StronglyConnectedComponents(g);
  EXPECT_EQ(c.num_components, 1u);
  EXPECT_EQ(c.GiantSize(), 4u);
}

TEST(SccTest, PathIsAllSingletons) {
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}});
  const ComponentLabeling c = StronglyConnectedComponents(g);
  EXPECT_EQ(c.num_components, 4u);
}

TEST(SccTest, TwoCyclesBridged) {
  // cycle {0,1,2} -> bridge -> cycle {3,4}.
  const DiGraph g =
      Build(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}});
  const ComponentLabeling c = StronglyConnectedComponents(g);
  EXPECT_EQ(c.num_components, 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  // Tarjan numbers components in reverse topological order: the sink
  // cycle {3,4} is emitted first.
  EXPECT_LT(c.label[3], c.label[0]);
}

TEST(SccTest, MembersListsNodes) {
  const DiGraph g = Build(4, {{0, 1}, {1, 0}, {2, 3}});
  const ComponentLabeling c = StronglyConnectedComponents(g);
  const auto members = c.Members(c.label[0]);
  EXPECT_EQ(members, (std::vector<NodeId>{0, 1}));
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  // 200k-node path: a recursive Tarjan would blow the stack.
  const NodeId n = 200000;
  GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    ASSERT_TRUE(b.AddEdge(u, u + 1).ok());
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const ComponentLabeling c = StronglyConnectedComponents(*g);
  EXPECT_EQ(c.num_components, n);
}

TEST(CondensationTest, CollapsesCyclesToDag) {
  const DiGraph g =
      Build(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}});
  const ComponentLabeling scc = StronglyConnectedComponents(g);
  const DiGraph dag = Condensation(g, scc);
  EXPECT_EQ(dag.num_nodes(), 2u);
  EXPECT_EQ(dag.num_edges(), 1u);
  // The DAG edge points from the {0,1,2} component to the {3,4} one.
  EXPECT_TRUE(dag.HasEdge(scc.label[0], scc.label[3]));
}

TEST(CondensationTest, ParallelCrossEdgesCoalesce) {
  const DiGraph g = Build(4, {{0, 1}, {1, 0}, {0, 2}, {1, 3}, {2, 3},
                              {3, 2}});
  const ComponentLabeling scc = StronglyConnectedComponents(g);
  const DiGraph dag = Condensation(g, scc);
  EXPECT_EQ(dag.num_nodes(), 2u);
  EXPECT_EQ(dag.num_edges(), 1u);  // two cross edges merge
}

TEST(AttractingTest, SinkCycleIsAttracting) {
  const DiGraph g =
      Build(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}});
  const ComponentLabeling scc = StronglyConnectedComponents(g);
  const AttractingComponents att = FindAttractingComponents(g, scc);
  EXPECT_EQ(att.count, 1u);
  EXPECT_EQ(att.ids[0], scc.label[3]);
  EXPECT_EQ(att.singletons, 0u);
}

TEST(AttractingTest, IsolatedNodesAreAttractingSingletons) {
  const DiGraph g = Build(4, {{0, 1}});
  const ComponentLabeling scc = StronglyConnectedComponents(g);
  const AttractingComponents att = FindAttractingComponents(g, scc);
  // Attracting: {1} (followed sink), {2}, {3} (isolated). Not {0}.
  EXPECT_EQ(att.count, 3u);
  EXPECT_EQ(att.singletons, 3u);
}

TEST(AttractingTest, StronglyConnectedGraphIsOneAttractor) {
  const DiGraph g = Build(3, {{0, 1}, {1, 2}, {2, 0}});
  const ComponentLabeling scc = StronglyConnectedComponents(g);
  const AttractingComponents att = FindAttractingComponents(g, scc);
  EXPECT_EQ(att.count, 1u);
}

TEST(ComponentsCrossCheckTest, SccRefinesWeakOnRandomGraphs) {
  util::Rng rng(5);
  auto g = gen::ErdosRenyi(300, 900, &rng);
  ASSERT_TRUE(g.ok());
  const ComponentLabeling weak = WeaklyConnectedComponents(*g);
  const ComponentLabeling strong = StronglyConnectedComponents(*g);
  EXPECT_GE(strong.num_components, weak.num_components);
  // Nodes in the same SCC must share a weak component.
  for (NodeId u = 0; u < g->num_nodes(); ++u) {
    for (NodeId v : g->OutNeighbors(u)) {
      if (strong.label[u] == strong.label[v]) {
        EXPECT_EQ(weak.label[u], weak.label[v]);
      }
    }
  }
  // Component sizes sum to n in both labelings.
  uint64_t weak_sum = 0, strong_sum = 0;
  for (uint64_t s : weak.sizes) weak_sum += s;
  for (uint64_t s : strong.sizes) strong_sum += s;
  EXPECT_EQ(weak_sum, g->num_nodes());
  EXPECT_EQ(strong_sum, g->num_nodes());
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

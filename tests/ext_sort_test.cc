// External-sorter tests: the sorted stream must equal std::sort of the
// same records, byte-for-byte, at every memory budget (no spill, many
// tiny spills, one big run) and under concurrent producers — the
// determinism contract the out-of-core snapshot writer builds on. Plus
// the edge and failure paths: empty input, exact-capacity runs, use
// before Finish, Add after Finish, and a spill file truncated between
// Finish and the merge (must surface as Corruption, not wrong output).

#include "util/ext_sort.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/rng.h"

namespace elitenet {
namespace util {
namespace {

ExtSortOptions TestOptions(const char* prefix, uint64_t budget) {
  ExtSortOptions o;
  o.budget_bytes = budget;
  o.temp_dir = testing::TempDir();
  o.temp_prefix = prefix;
  return o;
}

std::vector<uint64_t> RandomRecords(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> records(count);
  // Narrow key space so duplicate records occur — the merge must keep
  // every copy (multiset, not set semantics).
  for (uint64_t& r : records) r = rng.UniformU64(count / 2 + 1);
  return records;
}

std::vector<uint64_t> Drain(ExtSorter::Stream* stream) {
  std::vector<uint64_t> out;
  uint64_t record = 0;
  while (stream->Next(&record)) out.push_back(record);
  EXPECT_TRUE(stream->status().ok()) << stream->status().ToString();
  return out;
}

TEST(ExtSortTest, MatchesStdSortUnbounded) {
  auto records = RandomRecords(10000, 1);
  ExtSorter sorter(TestOptions("unbounded", 0));
  ASSERT_TRUE(sorter.AddBatch(records).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_EQ(sorter.spill_run_count(), 0u);
  EXPECT_EQ(sorter.total_records(), records.size());

  std::sort(records.begin(), records.end());
  auto stream = sorter.Scan();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(&*stream), records);
}

TEST(ExtSortTest, ByteIdenticalAcrossBudgets) {
  const auto records = RandomRecords(50000, 2);
  std::vector<uint64_t> expected = records;
  std::sort(expected.begin(), expected.end());

  // Tiny (8k-record floor -> many runs), medium (a few runs), unbounded.
  const uint64_t budgets[] = {1, 100 << 10, 0};
  for (const uint64_t budget : budgets) {
    ExtSorter sorter(TestOptions("budget", budget));
    for (size_t i = 0; i < records.size();) {
      const size_t chunk = std::min<size_t>(records.size() - i, 1000);
      ASSERT_TRUE(
          sorter.AddBatch(std::span(records.data() + i, chunk)).ok());
      i += chunk;
    }
    ASSERT_TRUE(sorter.Finish().ok());
    if (budget == 1) EXPECT_GT(sorter.spill_run_count(), 3u);
    if (budget == 0) EXPECT_EQ(sorter.spill_run_count(), 0u);
    auto stream = sorter.Scan();
    ASSERT_TRUE(stream.ok());
    EXPECT_EQ(Drain(&*stream), expected) << "budget=" << budget;
  }
}

TEST(ExtSortTest, ByteIdenticalAcrossThreadCounts) {
  const auto records = RandomRecords(60000, 3);
  std::vector<uint64_t> expected = records;
  std::sort(expected.begin(), expected.end());

  for (const int threads : {1, 2, 4, 8}) {
    SetThreadCount(threads);
    ExtSorter sorter(TestOptions("threads", 64 << 10));
    // Concurrent producers, arbitrary interleaving: ParallelFor chunks
    // feed AddBatch from worker threads.
    ParallelFor(0, records.size(), 1024, [&](size_t lo, size_t hi) {
      ASSERT_TRUE(
          sorter.AddBatch(std::span(records.data() + lo, hi - lo)).ok());
    });
    ASSERT_TRUE(sorter.Finish().ok());
    auto stream = sorter.Scan();
    ASSERT_TRUE(stream.ok());
    EXPECT_EQ(Drain(&*stream), expected) << "threads=" << threads;
  }
  SetThreadCount(0);
}

TEST(ExtSortTest, EmptyInput) {
  ExtSorter sorter(TestOptions("empty", 1 << 20));
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_EQ(sorter.total_records(), 0u);
  auto stream = sorter.Scan();
  ASSERT_TRUE(stream.ok());
  uint64_t record = 0;
  EXPECT_FALSE(stream->Next(&record));
  EXPECT_TRUE(stream->status().ok());
}

TEST(ExtSortTest, SingleSpilledRunPlusEmptyTail) {
  // Exactly one full run: the buffer spills at capacity and Finish()
  // finds an empty tail. The floor is 8k records (64 KiB budget).
  const size_t run_records = 8 * 1024;
  std::vector<uint64_t> records(run_records);
  for (size_t i = 0; i < run_records; ++i) records[i] = run_records - i;
  ExtSorter sorter(TestOptions("onerun", 64 << 10));
  ASSERT_TRUE(sorter.AddBatch(records).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_EQ(sorter.spill_run_count(), 1u);
  std::sort(records.begin(), records.end());
  auto stream = sorter.Scan();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(&*stream), records);
}

TEST(ExtSortTest, RepeatedScansYieldSameStream) {
  const auto records = RandomRecords(30000, 4);
  ExtSorter sorter(TestOptions("rescan", 64 << 10));
  ASSERT_TRUE(sorter.AddBatch(records).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  auto first = sorter.Scan();
  ASSERT_TRUE(first.ok());
  const auto pass1 = Drain(&*first);
  auto second = sorter.Scan();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Drain(&*second), pass1);
}

TEST(ExtSortTest, ScanBeforeFinishFails) {
  ExtSorter sorter(TestOptions("nofinish", 1 << 20));
  ASSERT_TRUE(sorter.Add(7).ok());
  auto stream = sorter.Scan();
  EXPECT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExtSortTest, AddAfterFinishFails) {
  ExtSorter sorter(TestOptions("sealed", 1 << 20));
  ASSERT_TRUE(sorter.Finish().ok());
  const Status s = sorter.Add(1);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(sorter.Finish().ok());  // idempotent
}

TEST(ExtSortTest, TruncatedSpillFileSurfacesCorruption) {
  // Runs must span several merge read blocks (128k records each) so the
  // truncation is hit *mid-merge* — after the stream has already yielded
  // records — not at Scan() open. 4 MiB budget = 512k-record runs.
  const auto records = RandomRecords(1200 * 1024, 5);
  ExtSorter sorter(TestOptions("trunc", 4 << 20));
  ASSERT_TRUE(sorter.AddBatch(records).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  ASSERT_GT(sorter.spill_run_count(), 1u);

  // Chop the second spill run in half between Finish and the merge —
  // mid-merge the reader hits EOF where records should be.
  const std::string& victim = sorter.spill_paths()[1];
  {
    std::FILE* f = std::fopen(victim.c_str(), "r+");
    ASSERT_NE(f, nullptr);
#if defined(_WIN32)
    GTEST_SKIP() << "no ftruncate";
#else
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_EQ(::ftruncate(fileno(f), size / 2), 0);
#endif
    std::fclose(f);
  }

  auto stream = sorter.Scan();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  uint64_t record = 0;
  uint64_t yielded = 0;
  while (stream->Next(&record)) ++yielded;
  EXPECT_GT(yielded, 0u);  // the merge was underway when the hole hit
  EXPECT_EQ(stream->status().code(), StatusCode::kCorruption);
  EXPECT_NE(stream->status().ToString().find("truncated"),
            std::string::npos);
}

TEST(ExtSortTest, PackEdgeOrdersBySrcThenDst) {
  EXPECT_LT(PackEdge(1, 9), PackEdge(2, 0));
  EXPECT_LT(PackEdge(3, 4), PackEdge(3, 5));
  EXPECT_EQ(PackedSrc(PackEdge(123, 456)), 123u);
  EXPECT_EQ(PackedDst(PackEdge(123, 456)), 456u);
  EXPECT_EQ(PackEdgeReversed(7, 9), PackEdge(9, 7));
}

}  // namespace
}  // namespace util
}  // namespace elitenet

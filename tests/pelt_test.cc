#include "timeseries/pelt.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elitenet {
namespace timeseries {
namespace {

std::vector<double> Segments(const std::vector<std::pair<int, double>>& spec,
                             double sigma, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out;
  for (const auto& [len, mean] : spec) {
    for (int i = 0; i < len; ++i) out.push_back(mean + sigma * rng.Normal());
  }
  return out;
}

TEST(PeltTest, NoChangePointInHomogeneousSeries) {
  const auto s = Segments({{200, 5.0}}, 1.0, 3);
  auto r = Pelt(s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->change_points.empty());
}

TEST(PeltTest, SingleMeanShiftFound) {
  const auto s = Segments({{100, 0.0}, {100, 3.0}}, 1.0, 5);
  auto r = Pelt(s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->change_points.size(), 1u);
  EXPECT_NEAR(static_cast<double>(r->change_points[0]), 100.0, 3.0);
}

TEST(PeltTest, MultipleShiftsFound) {
  const auto s =
      Segments({{80, 0.0}, {80, 4.0}, {80, -2.0}, {80, 1.0}}, 1.0, 7);
  PeltOptions opts;
  opts.penalty = 40.0;  // firmly above the noise floor for n = 320
  auto r = Pelt(s, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->change_points.size(), 3u);
  EXPECT_NEAR(static_cast<double>(r->change_points[0]), 80.0, 3.0);
  EXPECT_NEAR(static_cast<double>(r->change_points[1]), 160.0, 3.0);
  EXPECT_NEAR(static_cast<double>(r->change_points[2]), 240.0, 3.0);
}

TEST(PeltTest, VarianceChangeDetected) {
  // Same mean, variance jumps 1 -> 25.
  const auto a = Segments({{150, 0.0}}, 1.0, 11);
  const auto b = Segments({{150, 0.0}}, 5.0, 13);
  std::vector<double> s(a);
  s.insert(s.end(), b.begin(), b.end());
  auto r = Pelt(s);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->change_points.size(), 1u);
  EXPECT_NEAR(static_cast<double>(r->change_points[0]), 150.0, 8.0);
}

TEST(PeltTest, HighPenaltySuppressesSmallShifts) {
  const auto s = Segments({{100, 0.0}, {100, 0.5}}, 1.0, 17);
  PeltOptions opts;
  opts.penalty = 1000.0;
  auto r = Pelt(s, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->change_points.empty());
}

TEST(PeltTest, LowPenaltyFindsMore) {
  const auto s = Segments({{100, 0.0}, {100, 1.0}}, 1.0, 19);
  PeltOptions high, low;
  high.penalty = 200.0;
  low.penalty = 5.0;
  auto rh = Pelt(s, high);
  auto rl = Pelt(s, low);
  ASSERT_TRUE(rh.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_GE(rl->change_points.size(), rh->change_points.size());
}

TEST(PeltTest, MinSegmentLengthRespected) {
  const auto s = Segments({{50, 0.0}, {50, 5.0}}, 0.5, 23);
  PeltOptions opts;
  opts.min_segment_length = 10;
  opts.penalty = 1.0;  // aggressive
  auto r = Pelt(s, opts);
  ASSERT_TRUE(r.ok());
  size_t prev = 0;
  for (size_t cp : r->change_points) {
    EXPECT_GE(cp - prev, 10u);
    prev = cp;
  }
  EXPECT_GE(s.size() - prev, 10u);
}

TEST(PeltTest, RejectsTooShortSeries) {
  EXPECT_FALSE(Pelt(std::vector<double>{1.0, 2.0, 3.0}).ok());
}

TEST(PeltTest, PruningActuallyPrunes) {
  const auto s = Segments({{300, 0.0}, {300, 6.0}}, 1.0, 29);
  auto r = Pelt(s);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->pruned, 100u);
}

TEST(PeltTest, OptimalCostIsNotWorseThanNoSegmentation) {
  const auto s = Segments({{100, 0.0}, {100, 8.0}}, 1.0, 31);
  auto r = Pelt(s);
  ASSERT_TRUE(r.ok());
  // Cost of no segmentation: whole-series Normal cost (penalty cancels
  // against F(0) = -beta ... + beta for one segment).
  double mean = 0.0;
  for (double x : s) mean += x;
  mean /= static_cast<double>(s.size());
  double var = 0.0;
  for (double x : s) var += (x - mean) * (x - mean);
  var /= static_cast<double>(s.size());
  const double whole =
      static_cast<double>(s.size()) *
      (std::log(2.0 * M_PI) + std::log(var) + 1.0);
  EXPECT_LE(r->total_cost, whole + 1e-9);
}

TEST(PeltSweepTest, StableChangePointsForStrongShifts) {
  const auto s = Segments({{120, 0.0}, {120, 5.0}, {120, 0.0}}, 1.0, 37);
  auto r = PeltPenaltySweep(s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->stable.size(), 2u);
  EXPECT_NEAR(static_cast<double>(r->stable[0].index), 120.0, 4.0);
  EXPECT_NEAR(static_cast<double>(r->stable[1].index), 240.0, 4.0);
  for (const auto& cp : r->stable) {
    EXPECT_GE(cp.support, 0.5);
    EXPECT_LE(cp.support, 1.0);  // per-run dedup keeps support a fraction
  }
}

TEST(PeltSweepTest, HomogeneousSeriesHasNoStablePoints) {
  const auto s = Segments({{300, 2.0}}, 1.0, 41);
  auto r = PeltPenaltySweep(s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stable.empty());
}

TEST(PeltSweepTest, RejectsBadBounds) {
  const auto s = Segments({{100, 0.0}}, 1.0, 43);
  PenaltySweepOptions opts;
  opts.cool = 1.5;  // must be in (0, 1)
  EXPECT_FALSE(PeltPenaltySweep(s, opts).ok());
}

}  // namespace
}  // namespace timeseries
}  // namespace elitenet

// Property-based sweeps over graph families and sizes: structural
// invariants that must hold for every graph the generators can produce.

#include <cstdint>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/centrality.h"
#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/distance.h"
#include "analysis/reciprocity.h"
#include "gen/generators.h"
#include "graph/io.h"
#include "graph/subgraph.h"
#include "util/rng.h"

namespace elitenet {
namespace {

using graph::DiGraph;
using graph::NodeId;

enum class Family { kErdosRenyi, kPreferential, kWattsStrogatz };

std::string FamilyName(Family f) {
  switch (f) {
    case Family::kErdosRenyi: return "ErdosRenyi";
    case Family::kPreferential: return "Preferential";
    case Family::kWattsStrogatz: return "WattsStrogatz";
  }
  return "?";
}

DiGraph MakeGraph(Family family, NodeId n, uint64_t seed) {
  util::Rng rng(seed);
  Result<DiGraph> g = Status::Internal("unset");
  switch (family) {
    case Family::kErdosRenyi:
      g = gen::ErdosRenyi(n, static_cast<uint64_t>(n) * 6, &rng);
      break;
    case Family::kPreferential:
      g = gen::PreferentialAttachment(n, 5, &rng);
      break;
    case Family::kWattsStrogatz:
      g = gen::WattsStrogatz(n, 5, 0.2, &rng);
      break;
  }
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

class GraphPropertyTest
    : public testing::TestWithParam<std::tuple<Family, NodeId, uint64_t>> {
 protected:
  DiGraph MakeParamGraph() {
    const auto& [family, n, seed] = GetParam();
    return MakeGraph(family, n, seed);
  }
};

TEST_P(GraphPropertyTest, DegreeSumsEqualEdgeCount) {
  const DiGraph g = MakeParamGraph();
  uint64_t out_sum = 0, in_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_sum += g.OutDegree(u);
    in_sum += g.InDegree(u);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

TEST_P(GraphPropertyTest, TransposeInvariants) {
  const DiGraph g = MakeParamGraph();
  const DiGraph t = g.Transpose();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  // Reciprocity is transpose-invariant.
  EXPECT_DOUBLE_EQ(analysis::ComputeReciprocity(g).rate,
                   analysis::ComputeReciprocity(t).rate);
  // SCC structure is transpose-invariant (same component count).
  EXPECT_EQ(analysis::StronglyConnectedComponents(g).num_components,
            analysis::StronglyConnectedComponents(t).num_components);
  // Weak components identical labels up to renaming: same sizes multiset.
  auto ws = analysis::WeaklyConnectedComponents(g).sizes;
  auto wt = analysis::WeaklyConnectedComponents(t).sizes;
  std::sort(ws.begin(), ws.end());
  std::sort(wt.begin(), wt.end());
  EXPECT_EQ(ws, wt);
}

TEST_P(GraphPropertyTest, BinarySnapshotRoundTrips) {
  const DiGraph g = MakeParamGraph();
  const std::string path = testing::TempDir() + "/prop_snapshot.eng";
  ASSERT_TRUE(graph::SaveBinary(g, path).ok());
  auto loaded = graph::LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, g);
}

TEST_P(GraphPropertyTest, SccIsFinerThanWeak) {
  const DiGraph g = MakeParamGraph();
  const auto weak = analysis::WeaklyConnectedComponents(g);
  const auto strong = analysis::StronglyConnectedComponents(g);
  EXPECT_GE(strong.num_components, weak.num_components);
  // Every SCC lies inside one weak component.
  std::vector<uint32_t> scc_to_weak(strong.num_components, UINT32_MAX);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    uint32_t& w = scc_to_weak[strong.label[u]];
    if (w == UINT32_MAX) {
      w = weak.label[u];
    } else {
      EXPECT_EQ(w, weak.label[u]);
    }
  }
}

TEST_P(GraphPropertyTest, CondensationIsAcyclic) {
  const DiGraph g = MakeParamGraph();
  const auto scc = analysis::StronglyConnectedComponents(g);
  const DiGraph dag = analysis::Condensation(g, scc);
  // A DAG's SCCs are all singletons.
  const auto dag_scc = analysis::StronglyConnectedComponents(dag);
  EXPECT_EQ(dag_scc.num_components, dag.num_nodes());
}

TEST_P(GraphPropertyTest, AttractingComponentsExistAndAreTerminal) {
  const DiGraph g = MakeParamGraph();
  const auto scc = analysis::StronglyConnectedComponents(g);
  const auto att = analysis::FindAttractingComponents(g, scc);
  EXPECT_GE(att.count, 1u);  // every finite digraph has a terminal SCC
  // Verify terminality directly for each reported component.
  std::vector<bool> is_attracting(scc.num_components, false);
  for (uint32_t id : att.ids) is_attracting[id] = true;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!is_attracting[scc.label[u]]) continue;
    for (NodeId v : g.OutNeighbors(u)) {
      EXPECT_EQ(scc.label[v], scc.label[u]);
    }
  }
}

TEST_P(GraphPropertyTest, BfsTriangleInequalityFromSource) {
  const DiGraph g = MakeParamGraph();
  const auto dist = analysis::Bfs(g, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dist[u] == analysis::kUnreachable) continue;
    for (NodeId v : g.OutNeighbors(u)) {
      ASSERT_NE(dist[v], analysis::kUnreachable);
      EXPECT_LE(dist[v], dist[u] + 1);
    }
  }
}

TEST_P(GraphPropertyTest, PageRankIsProperDistribution) {
  const DiGraph g = MakeParamGraph();
  auto pr = analysis::PageRank(g);
  ASSERT_TRUE(pr.ok());
  const double sum =
      std::accumulate(pr->scores.begin(), pr->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-8);
  const double floor =
      0.15 / static_cast<double>(g.num_nodes()) - 1e-12;
  for (double s : pr->scores) EXPECT_GE(s, floor);
}

TEST_P(GraphPropertyTest, BetweennessNonNegativeAndBounded) {
  const DiGraph g = MakeParamGraph();
  analysis::BetweennessOptions opts;
  opts.pivots = std::min<uint32_t>(g.num_nodes(), 64);
  auto bc = analysis::Betweenness(g, opts);
  ASSERT_TRUE(bc.ok());
  const double n = g.num_nodes();
  for (double b : *bc) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, n * n);  // loose upper bound on pair dependencies
  }
}

TEST_P(GraphPropertyTest, LocalClusteringInUnitInterval) {
  const DiGraph g = MakeParamGraph();
  util::Rng rng(99);
  const auto s = analysis::ComputeClusteringSampled(g, 200, &rng);
  EXPECT_GE(s.average_local, 0.0);
  EXPECT_LE(s.average_local, 1.0);
  EXPECT_GE(s.transitivity, 0.0);
  EXPECT_LE(s.transitivity, 1.0);
}

TEST_P(GraphPropertyTest, InducedFullSubgraphIsIdentity) {
  const DiGraph g = MakeParamGraph();
  auto sub = graph::InduceByMask(
      g, std::vector<bool>(g.num_nodes(), true));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph, g);
}

INSTANTIATE_TEST_SUITE_P(
    Families, GraphPropertyTest,
    testing::Combine(testing::Values(Family::kErdosRenyi,
                                     Family::kPreferential,
                                     Family::kWattsStrogatz),
                     testing::Values<NodeId>(50, 400),
                     testing::Values<uint64_t>(1, 2)),
    [](const testing::TestParamInfo<GraphPropertyTest::ParamType>& info) {
      return FamilyName(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace elitenet

#include "analysis/reciprocity.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(ReciprocityTest, EmptyGraphIsZero) {
  const ReciprocityStats s = ComputeReciprocity(DiGraph());
  EXPECT_EQ(s.rate, 0.0);
  EXPECT_EQ(s.total_edges, 0u);
}

TEST(ReciprocityTest, NoMutualEdges) {
  const ReciprocityStats s =
      ComputeReciprocity(Build(3, {{0, 1}, {1, 2}, {2, 0}}));
  EXPECT_EQ(s.reciprocated_edges, 0u);
  EXPECT_EQ(s.mutual_pairs, 0u);
  EXPECT_DOUBLE_EQ(s.rate, 0.0);
}

TEST(ReciprocityTest, FullyMutual) {
  const ReciprocityStats s =
      ComputeReciprocity(Build(2, {{0, 1}, {1, 0}}));
  EXPECT_EQ(s.reciprocated_edges, 2u);
  EXPECT_EQ(s.mutual_pairs, 1u);
  EXPECT_DOUBLE_EQ(s.rate, 1.0);
}

TEST(ReciprocityTest, MixedGraph) {
  // 4 edges: one mutual pair (0<->1) and two one-way.
  const ReciprocityStats s =
      ComputeReciprocity(Build(4, {{0, 1}, {1, 0}, {2, 3}, {3, 1}}));
  EXPECT_EQ(s.total_edges, 4u);
  EXPECT_EQ(s.reciprocated_edges, 2u);
  EXPECT_DOUBLE_EQ(s.rate, 0.5);
}

TEST(ReciprocityTest, PlantedRateRecovered) {
  // Build a graph where each of 500 pairs is mutual with known fraction.
  util::Rng rng(7);
  GraphBuilder b(2000);
  uint64_t mutual = 0, total = 0;
  for (int i = 0; i < 1000; ++i) {
    const NodeId u = static_cast<NodeId>(2 * i % 2000);
    const NodeId v = static_cast<NodeId>((2 * i + 1) % 2000);
    ASSERT_TRUE(b.AddEdge(u, v).ok());
    ++total;
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(b.AddEdge(v, u).ok());
      mutual += 2;
      ++total;
    }
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const ReciprocityStats s = ComputeReciprocity(*g);
  EXPECT_EQ(s.total_edges, total);
  EXPECT_EQ(s.reciprocated_edges, mutual);
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

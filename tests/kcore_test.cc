#include "analysis/kcore.h"

#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(KCoreTest, EmptyGraph) {
  const KCoreResult r = KCoreDecomposition(DiGraph());
  EXPECT_TRUE(r.coreness.empty());
  EXPECT_EQ(r.max_core, 0u);
}

TEST(KCoreTest, IsolatedNodesAreZeroCore) {
  GraphBuilder b(4);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const KCoreResult r = KCoreDecomposition(*g);
  for (uint32_t c : r.coreness) EXPECT_EQ(c, 0u);
  EXPECT_EQ(r.innermost_size, 4u);
}

TEST(KCoreTest, PathIsOneCore) {
  const DiGraph g = Build(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const KCoreResult r = KCoreDecomposition(g);
  for (uint32_t c : r.coreness) EXPECT_EQ(c, 1u);
  EXPECT_EQ(r.max_core, 1u);
}

TEST(KCoreTest, TriangleIsTwoCore) {
  const DiGraph g = Build(3, {{0, 1}, {1, 2}, {2, 0}});
  const KCoreResult r = KCoreDecomposition(g);
  for (uint32_t c : r.coreness) EXPECT_EQ(c, 2u);
}

TEST(KCoreTest, TriangleWithPendant) {
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  const KCoreResult r = KCoreDecomposition(g);
  EXPECT_EQ(r.coreness[0], 2u);
  EXPECT_EQ(r.coreness[1], 2u);
  EXPECT_EQ(r.coreness[2], 2u);
  EXPECT_EQ(r.coreness[3], 1u);
  EXPECT_EQ(r.max_core, 2u);
  EXPECT_EQ(r.innermost_size, 3u);
}

TEST(KCoreTest, CliqueCoreNumber) {
  // Directed K5 (all ordered pairs): undirected K5, coreness 4.
  GraphBuilder b(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      if (u != v) {
        ASSERT_TRUE(b.AddEdge(u, v).ok());
      }
    }
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const KCoreResult r = KCoreDecomposition(*g);
  for (uint32_t c : r.coreness) EXPECT_EQ(c, 4u);
}

TEST(KCoreTest, MutualEdgesCountOnce) {
  // Mutual pair: undirected degree 1 each, coreness 1.
  const DiGraph g = Build(2, {{0, 1}, {1, 0}});
  const KCoreResult r = KCoreDecomposition(g);
  EXPECT_EQ(r.coreness[0], 1u);
  EXPECT_EQ(r.coreness[1], 1u);
}

TEST(KCoreTest, CliquePlusChainPeelsCorrectly) {
  // K4 on {0..3} plus chain 3-4-5.
  GraphBuilder b(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) {
      ASSERT_TRUE(b.AddEdge(u, v).ok());
    }
  }
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  ASSERT_TRUE(b.AddEdge(4, 5).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const KCoreResult r = KCoreDecomposition(*g);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(r.coreness[u], 3u);
  EXPECT_EQ(r.coreness[4], 1u);
  EXPECT_EQ(r.coreness[5], 1u);
}

TEST(KCoreTest, CorenessBoundedByDegree) {
  util::Rng rng(7);
  auto g = gen::PreferentialAttachment(2000, 4, &rng);
  ASSERT_TRUE(g.ok());
  const KCoreResult r = KCoreDecomposition(*g);
  for (NodeId u = 0; u < g->num_nodes(); ++u) {
    const uint32_t undirected_max = g->OutDegree(u) + g->InDegree(u);
    EXPECT_LE(r.coreness[u], undirected_max);
  }
}

TEST(KCoreTest, InnermostCoreIsSelfConsistent) {
  // Every node of the max core has >= max_core neighbors inside it.
  util::Rng rng(11);
  auto g = gen::ErdosRenyi(500, 5000, &rng);
  ASSERT_TRUE(g.ok());
  const KCoreResult r = KCoreDecomposition(*g);
  for (NodeId u = 0; u < g->num_nodes(); ++u) {
    if (r.coreness[u] != r.max_core) continue;
    uint32_t inside = 0;
    for (NodeId v : UndirectedNeighbors(*g, u)) {
      if (r.coreness[v] >= r.max_core) ++inside;
    }
    EXPECT_GE(inside, r.max_core);
  }
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

#include "util/lru_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/deadline.h"

namespace elitenet {
namespace util {
namespace {

using Cache = ShardedLruCache<std::string, std::string>;

TEST(LruCacheTest, GetReturnsWhatPutStored) {
  Cache cache(/*capacity=*/8, /*shards=*/2);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string v;
  ASSERT_TRUE(cache.Get("a", &v));
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(cache.Get("b", &v));
  EXPECT_EQ(v, "2");
  EXPECT_FALSE(cache.Get("missing", &v));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  Cache cache(4, 1);
  cache.Put("k", "old");
  cache.Put("k", "new");
  std::string v;
  ASSERT_TRUE(cache.Get("k", &v));
  EXPECT_EQ(v, "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is global and assertable.
  Cache cache(/*capacity=*/3, /*shards=*/1);
  cache.Put("a", "1");
  cache.Put("b", "2");
  cache.Put("c", "3");
  std::string v;
  ASSERT_TRUE(cache.Get("a", &v));  // "a" becomes most recent
  cache.Put("d", "4");              // evicts "b", the LRU
  EXPECT_FALSE(cache.Get("b", &v));
  EXPECT_TRUE(cache.Get("a", &v));
  EXPECT_TRUE(cache.Get("c", &v));
  EXPECT_TRUE(cache.Get("d", &v));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, CapacityHoldsAcrossShards) {
  Cache cache(/*capacity=*/64, /*shards=*/8);
  for (int i = 0; i < 1000; ++i) {
    cache.Put("key" + std::to_string(i), std::to_string(i));
  }
  // Per-shard capacity is ceil(64/8) = 8, so total residency is bounded
  // by shards * per-shard capacity.
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.size(), 0u);
}

TEST(LruCacheTest, ShardCountClampedToCapacity) {
  Cache cache(/*capacity=*/2, /*shards=*/16);
  EXPECT_LE(cache.num_shards(), 2u);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string v;
  EXPECT_TRUE(cache.Get("a", &v));
  EXPECT_TRUE(cache.Get("b", &v));
}

TEST(LruCacheTest, ClearDropsEntriesKeepsTallies) {
  Cache cache(8, 2);
  cache.Put("a", "1");
  std::string v;
  ASSERT_TRUE(cache.Get("a", &v));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a", &v));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// Concurrency hammer: correctness is checked by TSan (this test carries
// the "tsan" ctest label); here we only assert values are never torn.
TEST(LruCacheTest, ConcurrentMixedWorkloadIsSafe) {
  Cache cache(/*capacity=*/128, /*shards=*/8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 200);
        if (i % 3 == 0) {
          cache.Put(key, "v" + key);
        } else {
          std::string v;
          if (cache.Get(key, &v)) {
            EXPECT_EQ(v, "v" + key);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(cache.size(), 128u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * ((kOpsPerThread * 2) / 3));
}

TEST(DeadlineTest, DefaultAndInfiniteNeverExpire) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d = Deadline::After(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMicros(), 0u);
}

TEST(DeadlineTest, GenerousBudgetHasTimeRemaining) {
  Deadline d = Deadline::After(60ULL * 1000 * 1000);  // one minute
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMicros(), 0u);
}

}  // namespace
}  // namespace util
}  // namespace elitenet

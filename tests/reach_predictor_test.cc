#include "core/reach_predictor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/study.h"
#include "util/rng.h"

namespace elitenet {
namespace core {
namespace {

TEST(AucTest, PerfectSeparation) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AucScore(scores, labels), 1.0);
}

TEST(AucTest, PerfectlyWrong) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AucScore(scores, labels), 0.0);
}

TEST(AucTest, RandomScoresNearHalf) {
  util::Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.UniformDouble());
    labels.push_back(rng.Bernoulli(0.3) ? 1 : 0);
  }
  EXPECT_NEAR(AucScore(scores, labels), 0.5, 0.02);
}

TEST(AucTest, DegenerateClassesGiveHalf) {
  EXPECT_DOUBLE_EQ(AucScore({0.5, 0.6}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AucScore({0.5, 0.6}, {0, 0}), 0.5);
}

TEST(AucTest, TiesGetMidrankCredit) {
  // All scores identical: AUC must be exactly 0.5.
  EXPECT_DOUBLE_EQ(AucScore({0.7, 0.7, 0.7, 0.7}, {0, 1, 0, 1}), 0.5);
}

TEST(LogisticModelTest, RejectsBadInputs) {
  LogisticModel m;
  EXPECT_FALSE(m.Fit({{1.0}}, {1}).ok());                // too few
  EXPECT_FALSE(m.Fit({{1.0}, {2.0}}, {1}).ok());         // size mismatch
  std::vector<std::vector<double>> x(12, {1.0});
  std::vector<int> all_ones(12, 1);
  EXPECT_FALSE(m.Fit(x, all_ones).ok());                 // one class
  std::vector<int> bad(12, 0);
  bad[0] = 2;
  EXPECT_FALSE(m.Fit(x, bad).ok());                      // non-binary
}

TEST(LogisticModelTest, LearnsLinearlySeparableData) {
  util::Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.Normal();
    const double b = rng.Normal();
    x.push_back({a, b});
    y.push_back(a + 2.0 * b > 0.0 ? 1 : 0);
  }
  LogisticModel m;
  ASSERT_TRUE(m.Fit(x, y).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    correct += (m.PredictProba(x[i]) >= 0.5 ? 1 : 0) == y[i];
  }
  EXPECT_GT(static_cast<double>(correct) / x.size(), 0.97);
}

TEST(LogisticModelTest, RecoversProbabilitiesOnNoisyData) {
  // y ~ Bernoulli(sigmoid(1.5 x)): predicted probabilities should track
  // the truth on fresh points.
  util::Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 20000; ++i) {
    const double a = rng.Normal();
    const double p = 1.0 / (1.0 + std::exp(-1.5 * a));
    x.push_back({a});
    y.push_back(rng.Bernoulli(p) ? 1 : 0);
  }
  LogisticModel m;
  ASSERT_TRUE(m.Fit(x, y).ok());
  for (double probe : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    const double truth = 1.0 / (1.0 + std::exp(-1.5 * probe));
    EXPECT_NEAR(m.PredictProba({probe}), truth, 0.05) << probe;
  }
}

TEST(LogisticModelTest, ConstantFeatureDoesNotCrash) {
  util::Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Normal();
    x.push_back({a, 5.0});  // second feature constant
    y.push_back(a > 0 ? 1 : 0);
  }
  LogisticModel m;
  EXPECT_TRUE(m.Fit(x, y).ok());
}

TEST(NodeFeaturesTest, NamesCoverAllIndices) {
  for (int i = 0; i < NodeFeatures::kCount; ++i) {
    EXPECT_STRNE(NodeFeatures::Name(i), "?");
  }
  EXPECT_STREQ(NodeFeatures::Name(-1), "?");
  EXPECT_STREQ(NodeFeatures::Name(NodeFeatures::kCount), "?");
  EXPECT_EQ(NodeFeatures().ToVector().size(),
            static_cast<size_t>(NodeFeatures::kCount));
}

TEST(ReachPredictionTest, EndToEndBeatsChanceClearly) {
  StudyConfig cfg;
  cfg.network.num_users = 5000;
  VerifiedStudy study(cfg);
  ASSERT_TRUE(study.Generate().ok());

  auto report = RunReachPrediction(study.network().graph, study.profiles());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Structure predicts reach (Section IV-F): well above chance.
  EXPECT_GT(report->auc, 0.8);
  EXPECT_GT(report->accuracy, 0.85);
  EXPECT_NEAR(report->positive_rate, 0.1, 0.03);
  EXPECT_EQ(report->feature_weights.size(),
            static_cast<size_t>(NodeFeatures::kCount));
  // In-degree (the follower analogue inside the sub-graph) must carry
  // positive weight.
  EXPECT_GT(report->feature_weights[0].second, 0.0);
}

TEST(ReachPredictionTest, RejectsBadFractions) {
  StudyConfig cfg;
  cfg.network.num_users = 2000;
  VerifiedStudy study(cfg);
  ASSERT_TRUE(study.Generate().ok());
  EXPECT_FALSE(RunReachPrediction(study.network().graph, study.profiles(),
                                  0.0)
                   .ok());
  EXPECT_FALSE(RunReachPrediction(study.network().graph, study.profiles(),
                                  0.1, 1.5)
                   .ok());
}

}  // namespace
}  // namespace core
}  // namespace elitenet

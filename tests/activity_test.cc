#include "gen/activity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "timeseries/acf.h"
#include "timeseries/adf.h"
#include "timeseries/pelt.h"

namespace elitenet {
namespace gen {
namespace {

TEST(ActivityTest, ProducesRequestedLength) {
  ActivityConfig cfg;
  cfg.num_days = 100;
  auto s = GenerateActivity(cfg);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->daily_tweets.size(), 100u);
  EXPECT_EQ(s->start, cfg.start);
}

TEST(ActivityTest, RejectsBadConfigs) {
  ActivityConfig cfg;
  cfg.num_days = 5;
  EXPECT_FALSE(GenerateActivity(cfg).ok());
  cfg = ActivityConfig();
  cfg.start = {2018, 2, 31};
  EXPECT_FALSE(GenerateActivity(cfg).ok());
  cfg = ActivityConfig();
  cfg.base_level = -1.0;
  EXPECT_FALSE(GenerateActivity(cfg).ok());
}

TEST(ActivityTest, DeterministicForSeed) {
  auto a = GenerateActivity();
  auto b = GenerateActivity();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->daily_tweets, b->daily_tweets);
}

TEST(ActivityTest, ValuesNearBaseLevel) {
  auto s = GenerateActivity();
  ASSERT_TRUE(s.ok());
  for (double v : s->daily_tweets) {
    EXPECT_GT(v, 0.5 * 1.8e6);
    EXPECT_LT(v, 1.6 * 1.8e6);
  }
}

TEST(ActivityTest, SundaysRunLower) {
  auto s = GenerateActivity();
  ASSERT_TRUE(s.ok());
  double sunday_sum = 0.0, weekday_sum = 0.0;
  int sundays = 0, weekdays = 0;
  for (size_t i = 0; i < s->daily_tweets.size(); ++i) {
    const int dow = timeseries::DayOfWeek(s->DateAt(i));
    if (dow == 0) {
      sunday_sum += s->daily_tweets[i];
      ++sundays;
    } else if (dow >= 1 && dow <= 5) {
      weekday_sum += s->daily_tweets[i];
      ++weekdays;
    }
  }
  EXPECT_LT(sunday_sum / sundays, 0.985 * weekday_sum / weekdays);
}

TEST(ActivityTest, ChristmasDipPresent) {
  auto s = GenerateActivity();
  ASSERT_TRUE(s.ok());
  double dip_sum = 0.0, nearby_sum = 0.0;
  int dip_n = 0, nearby_n = 0;
  for (size_t i = 0; i < s->daily_tweets.size(); ++i) {
    const auto d = s->DateAt(i);
    if (d.year == 2017 && d.month == 12) {
      if (d.day >= 23 && d.day <= 25) {
        dip_sum += s->daily_tweets[i];
        ++dip_n;
      } else if (d.day <= 15) {
        nearby_sum += s->daily_tweets[i];
        ++nearby_n;
      }
    }
  }
  ASSERT_EQ(dip_n, 3);
  EXPECT_LT(dip_sum / dip_n, 0.85 * nearby_sum / nearby_n);
}

TEST(ActivityTest, DateAtWalksCalendar) {
  auto s = GenerateActivity();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->DateAt(0), (timeseries::Date{2017, 6, 1}));
  EXPECT_EQ(s->DateAt(30), (timeseries::Date{2017, 7, 1}));
  EXPECT_EQ(s->DateAt(365), (timeseries::Date{2018, 6, 1}));
}

// The headline integration property: the default series reproduces every
// Section V decision of the paper.
TEST(ActivityTest, DefaultSeriesReproducesPaperSectionV) {
  auto s = GenerateActivity();
  ASSERT_TRUE(s.ok());
  const auto& series = s->daily_tweets;

  auto lb = timeseries::LjungBoxTest(series, 185);
  ASSERT_TRUE(lb.ok());
  EXPECT_LT(lb->max_p_value, 1e-20);  // paper: 3.81e-38

  auto bp = timeseries::BoxPierceTest(series, 185);
  ASSERT_TRUE(bp.ok());
  EXPECT_LT(bp->max_p_value, 1e-20);  // paper: 7.57e-38

  auto adf = timeseries::AdfTest(series);
  ASSERT_TRUE(adf.ok());
  EXPECT_LT(adf->statistic, -3.42);  // paper: -3.86 vs crit -3.42
  EXPECT_TRUE(adf->stationary_at_5pct);

  auto sweep = timeseries::PeltPenaltySweep(series);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->stable.size(), 2u);  // paper: exactly two
  const auto first = timeseries::AddDays(
      s->start, static_cast<int64_t>(sweep->stable[0].index));
  const auto second = timeseries::AddDays(
      s->start, static_cast<int64_t>(sweep->stable[1].index));
  EXPECT_EQ(first.month, 12);
  EXPECT_GE(first.day, 20);
  EXPECT_LE(first.day, 28);
  EXPECT_EQ(second.month, 4);
  EXPECT_LE(second.day, 10);
}

}  // namespace
}  // namespace gen
}  // namespace elitenet

#include "analysis/bidirectional.h"

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "gen/generators.h"
#include "gen/verified_network.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(BidirectionalTest, SameNodeIsZero) {
  const DiGraph g = Build(3, {{0, 1}});
  EXPECT_EQ(BidirectionalDistance(g, 1, 1).distance, 0u);
}

TEST(BidirectionalTest, PathDistances) {
  const DiGraph g = Build(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(BidirectionalDistance(g, 0, 4).distance, 4u);
  EXPECT_EQ(BidirectionalDistance(g, 0, 1).distance, 1u);
  EXPECT_EQ(BidirectionalDistance(g, 1, 3).distance, 2u);
}

TEST(BidirectionalTest, RespectsDirection) {
  const DiGraph g = Build(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(BidirectionalDistance(g, 2, 0).distance, UINT32_MAX);
}

TEST(BidirectionalTest, PicksShortestOfParallelRoutes) {
  // Long route 0->1->2->3->4->5 and shortcut 0->6->5.
  const DiGraph g = Build(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 6}, {6, 5}});
  EXPECT_EQ(BidirectionalDistance(g, 0, 5).distance, 2u);
}

TEST(BidirectionalTest, MatchesOneSidedBfsOnRandomGraphs) {
  util::Rng rng(3);
  auto g = gen::ErdosRenyi(400, 2400, &rng);
  ASSERT_TRUE(g.ok());
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformU64(400));
    const NodeId t = static_cast<NodeId>(rng.UniformU64(400));
    const auto dist = Bfs(*g, s);
    const PairDistance pd = BidirectionalDistance(*g, s, t);
    if (dist[t] == kUnreachable) {
      EXPECT_EQ(pd.distance, UINT32_MAX);
    } else {
      EXPECT_EQ(pd.distance, dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(BidirectionalTest, ExpandsFarFewerNodesThanFullBfs) {
  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = 6000;
  auto net = gen::GenerateVerifiedNetwork(cfg);
  ASSERT_TRUE(net.ok());
  util::Rng rng(7);
  const PairSampleResult r =
      SamplePairDistances(net->graph, 50, &rng);
  EXPECT_GT(r.reachable_pairs, 40u);
  // A one-sided BFS on this graph touches nearly all ~6000 nodes; the
  // bidirectional search should do far better on average.
  EXPECT_LT(r.mean_expanded, 2500.0);
  EXPECT_GT(r.mean_distance, 1.5);
  EXPECT_LT(r.mean_distance, 5.0);
}

TEST(BidirectionalTest, SampleMeanAgreesWithBfsSampling) {
  util::Rng rng(11);
  auto g = gen::ErdosRenyi(2000, 30000, &rng);
  ASSERT_TRUE(g.ok());
  util::Rng r1(13), r2(17);
  const PairSampleResult pairs = SamplePairDistances(*g, 4000, &r1);
  const DistanceDistribution bfs = SampleDistances(*g, 64, &r2);
  EXPECT_NEAR(pairs.mean_distance, bfs.mean_distance,
              0.05 * bfs.mean_distance);
}

TEST(BidirectionalTest, EmptyAndTinyGraphs) {
  util::Rng rng(19);
  EXPECT_EQ(SamplePairDistances(graph::DiGraph(), 10, &rng).reachable_pairs,
            0u);
  const DiGraph g = Build(2, {{0, 1}});
  const PairSampleResult r = SamplePairDistances(g, 10, &rng);
  EXPECT_EQ(r.reachable_pairs + r.unreachable_pairs, 10u);
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

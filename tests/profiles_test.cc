#include "gen/profiles.h"

#include <gtest/gtest.h>

#include "analysis/degree.h"
#include "stats/correlation.h"

namespace elitenet {
namespace gen {
namespace {

const VerifiedNetwork& TestNetwork() {
  static const VerifiedNetwork* network = [] {
    VerifiedNetworkConfig cfg;
    cfg.num_users = 6000;
    auto r = GenerateVerifiedNetwork(cfg);
    EXPECT_TRUE(r.ok());
    return new VerifiedNetwork(std::move(r).value());
  }();
  return *network;
}

const std::vector<UserProfile>& TestProfiles() {
  static const std::vector<UserProfile>* profiles = [] {
    auto r = GenerateProfiles(TestNetwork());
    EXPECT_TRUE(r.ok());
    return new std::vector<UserProfile>(std::move(r).value());
  }();
  return *profiles;
}

TEST(ProfilesTest, OnePerUser) {
  EXPECT_EQ(TestProfiles().size(), TestNetwork().graph.num_nodes());
}

TEST(ProfilesTest, DeterministicForSeed) {
  auto a = GenerateProfiles(TestNetwork());
  auto b = GenerateProfiles(TestNetwork());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].followers, (*b)[i].followers);
    EXPECT_EQ((*a)[i].statuses, (*b)[i].statuses);
  }
}

TEST(ProfilesTest, FollowersCorrelateWithInDegree) {
  const auto& net = TestNetwork();
  const auto followers = FollowersColumn(TestProfiles());
  const auto in_deg = analysis::InDegreeVector(net.graph);
  EXPECT_GT(stats::SpearmanCorrelation(in_deg, followers), 0.5);
}

TEST(ProfilesTest, FriendsCorrelateWithOutDegree) {
  const auto& net = TestNetwork();
  const auto friends = FriendsColumn(TestProfiles());
  const auto out_deg = analysis::OutDegreeVector(net.graph);
  EXPECT_GT(stats::SpearmanCorrelation(out_deg, friends), 0.5);
}

TEST(ProfilesTest, ListedCorrelatesWithFollowers) {
  const auto listed = ListedColumn(TestProfiles());
  const auto followers = FollowersColumn(TestProfiles());
  // The paper: list membership "almost exclusively trends upwards" with
  // followers.
  EXPECT_GT(stats::SpearmanCorrelation(listed, followers), 0.6);
}

TEST(ProfilesTest, StatusesWeaklyCoupled) {
  const auto statuses = StatusesColumn(TestProfiles());
  const auto followers = FollowersColumn(TestProfiles());
  const double rho = stats::SpearmanCorrelation(statuses, followers);
  // Positive but visibly weaker than the list coupling (Fig. 5e vs 5f).
  EXPECT_GT(rho, 0.05);
  EXPECT_LT(rho, 0.6);
}

TEST(ProfilesTest, EveryoneHasAnAudience) {
  for (const UserProfile& p : TestProfiles()) {
    EXPECT_GT(p.followers, 0u);
    EXPECT_GT(p.statuses, 0u);
  }
}

TEST(ProfilesTest, HeavyTailInFollowers) {
  const auto followers = FollowersColumn(TestProfiles());
  double mean = 0.0, max = 0.0;
  for (double f : followers) {
    mean += f;
    if (f > max) max = f;
  }
  mean /= static_cast<double>(followers.size());
  // Heavy tail: the maximum dwarfs the mean.
  EXPECT_GT(max, 30.0 * mean);
}

TEST(ProfilesTest, ColumnsMatchStructFields) {
  const auto& profiles = TestProfiles();
  const auto followers = FollowersColumn(profiles);
  const auto friends = FriendsColumn(profiles);
  const auto listed = ListedColumn(profiles);
  const auto statuses = StatusesColumn(profiles);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(followers[i],
                     static_cast<double>(profiles[i].followers));
    EXPECT_DOUBLE_EQ(friends[i], static_cast<double>(profiles[i].friends));
    EXPECT_DOUBLE_EQ(listed[i], static_cast<double>(profiles[i].listed));
    EXPECT_DOUBLE_EQ(statuses[i],
                     static_cast<double>(profiles[i].statuses));
  }
}

TEST(ProfilesTest, RejectsEmptyNetwork) {
  VerifiedNetwork empty;
  EXPECT_FALSE(GenerateProfiles(empty).ok());
}

}  // namespace
}  // namespace gen
}  // namespace elitenet

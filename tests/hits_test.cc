#include "analysis/hits.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(HitsTest, EmptyGraph) {
  auto r = Hits(DiGraph());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->hub.empty());
}

TEST(HitsTest, RejectsBadOptions) {
  HitsOptions opts;
  opts.max_iterations = 0;
  EXPECT_FALSE(Hits(Build(2, {{0, 1}}), opts).ok());
}

TEST(HitsTest, StarAuthority) {
  // 1, 2, 3 all follow 0: node 0 is the lone authority, the others
  // equal hubs.
  const DiGraph g = Build(4, {{1, 0}, {2, 0}, {3, 0}});
  auto r = Hits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->authority[0], 1.0, 1e-9);
  EXPECT_NEAR(r->authority[1], 0.0, 1e-9);
  EXPECT_NEAR(r->hub[0], 0.0, 1e-9);
  EXPECT_NEAR(r->hub[1], r->hub[2], 1e-12);
  EXPECT_NEAR(r->hub[1], 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(HitsTest, ScoresAreUnitNorm) {
  const DiGraph g = Build(5, {{0, 1}, {0, 2}, {3, 2}, {4, 1}, {2, 4}});
  auto r = Hits(g);
  ASSERT_TRUE(r.ok());
  double hub_norm = 0.0, auth_norm = 0.0;
  for (double x : r->hub) hub_norm += x * x;
  for (double x : r->authority) auth_norm += x * x;
  EXPECT_NEAR(hub_norm, 1.0, 1e-9);
  EXPECT_NEAR(auth_norm, 1.0, 1e-9);
}

TEST(HitsTest, BipartiteHubAuthoritySeparation) {
  // Hubs {0,1} each point at authorities {2,3,4}.
  const DiGraph g =
      Build(5, {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}});
  auto r = Hits(g);
  ASSERT_TRUE(r.ok());
  for (NodeId u : {0u, 1u}) {
    EXPECT_GT(r->hub[u], 0.5);
    EXPECT_NEAR(r->authority[u], 0.0, 1e-9);
  }
  for (NodeId v : {2u, 3u, 4u}) {
    EXPECT_GT(r->authority[v], 0.4);
    EXPECT_NEAR(r->hub[v], 0.0, 1e-9);
  }
}

TEST(HitsTest, BetterConnectedAuthorityWins) {
  // 2 is followed by both hubs; 3 by only one.
  const DiGraph g = Build(4, {{0, 2}, {1, 2}, {1, 3}});
  auto r = Hits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->authority[2], r->authority[3]);
  // And 1, following two authorities, out-hubs 0.
  EXPECT_GT(r->hub[1], r->hub[0]);
}

TEST(HitsTest, IsolatedNodesScoreZero) {
  const DiGraph g = Build(4, {{0, 1}});
  auto r = Hits(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->hub[2], 0.0, 1e-12);
  EXPECT_NEAR(r->authority[3], 0.0, 1e-12);
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

// Calibration robustness: the paper-matching properties must hold for
// *any* seed, not just the shipped default — a regression guard against
// calibration that only works by luck of one RNG stream.

#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "gen/activity.h"
#include "gen/verified_network.h"
#include "stats/powerlaw.h"
#include "timeseries/acf.h"
#include "timeseries/adf.h"
#include "util/rng.h"

namespace elitenet {
namespace {

class NetworkSeedSweepTest : public testing::TestWithParam<uint64_t> {};

TEST_P(NetworkSeedSweepTest, CoreCalibrationHolds) {
  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = 8000;
  cfg.seed = GetParam();
  auto net = gen::GenerateVerifiedNetwork(cfg);
  ASSERT_TRUE(net.ok());
  const auto& g = net->graph;

  // Density within 15% of target.
  EXPECT_NEAR(g.Density(), cfg.density, 0.15 * cfg.density);

  // Reciprocity within +-0.05 of the paper's 0.337.
  EXPECT_NEAR(analysis::ComputeReciprocity(g).rate, 0.337, 0.05);

  // Giant SCC dominates.
  EXPECT_GT(analysis::StronglyConnectedComponents(g).GiantFraction(), 0.9);

  // Clustering in the paper's neighborhood.
  util::Rng rng(1);
  const double clustering =
      analysis::ComputeClusteringSampled(g, 2500, &rng).average_local;
  EXPECT_GT(clustering, 0.08);
  EXPECT_LT(clustering, 0.30);

  // Out-degree power-law exponent in band.
  std::vector<double> degrees;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > 0) {
      degrees.push_back(static_cast<double>(g.OutDegree(u)));
    }
  }
  auto fit = stats::FitDiscrete(degrees);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->alpha, 2.7);
  EXPECT_LT(fit->alpha, 4.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkSeedSweepTest,
                         testing::Values<uint64_t>(2018, 7, 99, 123456),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

class ActivitySeedSweepTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ActivitySeedSweepTest, PortmanteauAlwaysTiny) {
  // Every seed must reject "no autocorrelation" decisively; the ADF and
  // PELT outcomes are seed-sensitive enough that only the shipped default
  // is pinned exactly (activity_test.cc), but the portmanteau decision is
  // structural.
  gen::ActivityConfig cfg;
  cfg.seed = GetParam();
  auto s = gen::GenerateActivity(cfg);
  ASSERT_TRUE(s.ok());
  auto lb = timeseries::LjungBoxTest(s->daily_tweets, 185);
  ASSERT_TRUE(lb.ok());
  EXPECT_LT(lb->max_p_value, 1e-10);

  // And the series must always be at least borderline trend-stationary
  // (statistic below the 10% critical value).
  auto adf = timeseries::AdfTest(s->daily_tweets);
  ASSERT_TRUE(adf.ok());
  EXPECT_LT(adf->statistic, adf->crit_10pct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActivitySeedSweepTest,
                         testing::Values<uint64_t>(68, 9, 23, 42, 77),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace elitenet

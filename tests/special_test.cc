#include "stats/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace elitenet {
namespace stats {
namespace {

TEST(GammaTest, PAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 100.0}) {
    for (double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(GammaP(a, x) + GammaQ(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(GammaP(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(GammaQ(3.0, 0.0), 1.0);
  EXPECT_NEAR(GammaP(1.0, 1e3), 1.0, 1e-12);
}

TEST(GammaTest, ExponentialSpecialCase) {
  // For a=1, P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(GammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquareTest, MatchesKnownQuantiles) {
  // Canonical critical values: P[X > crit] = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(5.991, 2.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(18.307, 10.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(124.342, 100.0), 0.05, 1e-3);
}

TEST(ChiSquareTest, CdfSurvivalComplement) {
  EXPECT_NEAR(ChiSquareCdf(7.0, 3.0) + ChiSquareSurvival(7.0, 3.0), 1.0,
              1e-12);
}

TEST(ChiSquareTest, ChiSquareWithTwoDofIsExponential) {
  // X ~ chi2(2) has survival e^{-x/2}.
  for (double x : {0.5, 1.0, 4.0, 10.0}) {
    EXPECT_NEAR(ChiSquareSurvival(x, 2.0), std::exp(-x / 2.0), 1e-10);
  }
}

TEST(ChiSquareTest, ExtremeTailDoesNotUnderflowToZeroTooEarly) {
  // The paper quotes p-values near 1e-38; the implementation must resolve
  // that regime.
  const double p = ChiSquareSurvival(250.0, 7.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-40);
}

TEST(NormalCdfTest, SymmetryAndKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-4);
  EXPECT_NEAR(NormalCdf(1.0) + NormalCdf(-1.0), 1.0, 1e-12);
}

TEST(NormalSurvivalTest, FarTailAccuracy) {
  // Phi-bar(6) ~ 9.87e-10; erfc-based evaluation keeps relative accuracy.
  EXPECT_NEAR(NormalSurvival(6.0) / 9.865876e-10, 1.0, 1e-4);
  EXPECT_GT(NormalSurvival(10.0), 0.0);
}

TEST(HurwitzZetaTest, ReducesToRiemannZeta) {
  // zeta(2) = pi^2/6, zeta(4) = pi^4/90.
  EXPECT_NEAR(HurwitzZeta(2.0, 1.0), M_PI * M_PI / 6.0, 1e-10);
  EXPECT_NEAR(HurwitzZeta(4.0, 1.0), std::pow(M_PI, 4) / 90.0, 1e-10);
}

TEST(HurwitzZetaTest, RecurrenceRelation) {
  // zeta(s, q) = zeta(s, q+1) + q^-s.
  for (double s : {1.5, 2.5, 3.24}) {
    for (double q : {1.0, 5.0, 229.0}) {
      EXPECT_NEAR(HurwitzZeta(s, q),
                  HurwitzZeta(s, q + 1.0) + std::pow(q, -s), 1e-12);
    }
  }
}

TEST(HurwitzZetaTest, LargeQAsymptotic) {
  // zeta(s, q) ~ q^{1-s}/(s-1) for large q.
  const double s = 3.0;
  const double q = 1e6;
  EXPECT_NEAR(HurwitzZeta(s, q) / (std::pow(q, 1.0 - s) / (s - 1.0)), 1.0,
              1e-5);
}

TEST(HurwitzZetaTest, DerivativeIsNegative) {
  // zeta decreases in s for q >= 1.
  EXPECT_LT(HurwitzZetaDs(2.5, 1.0), 0.0);
  EXPECT_LT(HurwitzZetaDs(3.0, 100.0), 0.0);
}

TEST(HurwitzZetaTest, DerivativeMatchesCoarseDifference) {
  const double s = 2.8, q = 3.0, h = 1e-4;
  const double coarse =
      (HurwitzZeta(s + h, q) - HurwitzZeta(s - h, q)) / (2 * h);
  EXPECT_NEAR(HurwitzZetaDs(s, q), coarse, 1e-6 * std::fabs(coarse));
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

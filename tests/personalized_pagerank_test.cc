#include <numeric>

#include <gtest/gtest.h>

#include "analysis/centrality.h"
#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(PersonalizedPageRankTest, RejectsBadWeights) {
  const DiGraph g = Build(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(PersonalizedPageRank(g, {1.0, 1.0}).ok());  // wrong size
  EXPECT_FALSE(PersonalizedPageRank(g, {0.0, 0.0, 0.0}).ok());
  EXPECT_FALSE(PersonalizedPageRank(g, {1.0, -1.0, 1.0}).ok());
}

TEST(PersonalizedPageRankTest, UniformWeightsMatchPlainPageRank) {
  util::Rng rng(3);
  auto g = gen::ErdosRenyi(200, 1600, &rng);
  ASSERT_TRUE(g.ok());
  auto plain = PageRank(*g);
  auto personalized =
      PersonalizedPageRank(*g, std::vector<double>(200, 1.0));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(personalized.ok());
  for (NodeId u = 0; u < 200; ++u) {
    EXPECT_NEAR(plain->scores[u], personalized->scores[u], 1e-8);
  }
}

TEST(PersonalizedPageRankTest, ScoresSumToOne) {
  util::Rng rng(5);
  auto g = gen::PreferentialAttachment(300, 4, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<double> weights(300, 0.0);
  weights[0] = 3.0;
  weights[17] = 1.0;
  auto pr = PersonalizedPageRank(*g, weights);
  ASSERT_TRUE(pr.ok());
  const double sum =
      std::accumulate(pr->scores.begin(), pr->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PersonalizedPageRankTest, TeleportSetDominates) {
  // Two disconnected cycles; teleporting only into the first keeps all
  // mass there.
  const DiGraph g =
      Build(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  std::vector<double> weights(6, 0.0);
  weights[0] = 1.0;
  auto pr = PersonalizedPageRank(g, weights);
  ASSERT_TRUE(pr.ok());
  EXPECT_GT(pr->scores[0] + pr->scores[1] + pr->scores[2], 0.999);
  EXPECT_LT(pr->scores[3] + pr->scores[4] + pr->scores[5], 1e-6);
}

TEST(PersonalizedPageRankTest, TopicNeighborhoodBoosted) {
  // A chain into a hub: personalizing on the chain's start boosts nodes
  // near it relative to global PageRank.
  util::Rng rng(7);
  auto g = gen::ErdosRenyi(500, 3000, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<double> weights(500, 0.0);
  weights[42] = 1.0;
  auto plain = PageRank(*g);
  auto topical = PersonalizedPageRank(*g, weights);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(topical.ok());
  // The teleport target itself gains massively.
  EXPECT_GT(topical->scores[42], 5.0 * plain->scores[42]);
  // Its out-neighbors gain too.
  for (NodeId v : g->OutNeighbors(42)) {
    EXPECT_GT(topical->scores[v], plain->scores[v]);
  }
}

TEST(PersonalizedPageRankTest, DanglingMassFollowsTeleport) {
  // 0 -> 1 (dangling). Teleport fully on 0: mass cycles 0 -> 1 -> back.
  const DiGraph g = Build(2, {{0, 1}});
  auto pr = PersonalizedPageRank(g, {1.0, 0.0});
  ASSERT_TRUE(pr.ok());
  // Solve by hand: r0 = 0.15 + 0.85 * r1 (dangling returns to 0);
  // r1 = 0.85 * r0. => r0 (1 - 0.7225) = 0.15 => r0 = 0.5405...
  const double r0 = 0.15 / (1.0 - 0.85 * 0.85);
  EXPECT_NEAR(pr->scores[0], r0, 1e-8);
  EXPECT_NEAR(pr->scores[1], 0.85 * r0, 1e-8);
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

// Unit tests of the metrics registry: counter atomicity under
// ParallelFor, enable-disable gating, snapshot ordering and determinism,
// histogram bit-width bucketing, metric-pointer stability across
// ResetValues, and JSON snapshot validity.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "util/parallel.h"

namespace elitenet {
namespace util {
namespace {

// Same structural JSON check as trace_test: balanced braces/brackets
// outside of strings.
bool JsonBalanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    MetricsRegistry::Global().ResetValues();
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    MetricsRegistry::Global().ResetValues();
    SetThreadCount(0);
  }
};

TEST_F(MetricsTest, CounterAtomicUnderParallelFor) {
  SetThreadCount(4);
  constexpr size_t kItems = 100000;
  ParallelFor(0, kItems, 0, [](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ELITENET_COUNT("metrics_test.atomic", 1);
    }
  });
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterOr0("metrics_test.atomic"), kItems);
}

TEST_F(MetricsTest, DisabledMacrosRecordNothing) {
  SetMetricsEnabled(false);
  ELITENET_COUNT("metrics_test.gated", 5);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().CounterOr0(
                "metrics_test.gated"),
            0u);
  SetMetricsEnabled(true);
  ELITENET_COUNT("metrics_test.gated", 5);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().CounterOr0(
                "metrics_test.gated"),
            5u);
}

TEST_F(MetricsTest, SnapshotIsSortedAndRepeatable) {
  ELITENET_COUNT("metrics_test.b", 2);
  ELITENET_COUNT("metrics_test.a", 1);
  ELITENET_COUNT("metrics_test.c", 3);
  const MetricsSnapshot first = MetricsRegistry::Global().Snapshot();
  const MetricsSnapshot second = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(first.counters.size(), second.counters.size());
  for (size_t i = 0; i < first.counters.size(); ++i) {
    EXPECT_EQ(first.counters[i].name, second.counters[i].name);
    EXPECT_EQ(first.counters[i].value, second.counters[i].value);
    if (i > 0) {
      EXPECT_LT(first.counters[i - 1].name, first.counters[i].name);
    }
  }
  EXPECT_EQ(first.ToJson(), second.ToJson());
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  ELITENET_GAUGE_SET("metrics_test.gauge", 41);
  ELITENET_GAUGE_SET("metrics_test.gauge", -7);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  bool found = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "metrics_test.gauge") {
      EXPECT_EQ(g.value, -7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, HistogramBucketsByBitWidth) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("metrics_test.hist");
  h->Observe(0);     // bucket 0
  h->Observe(1);     // bucket 1
  h->Observe(2);     // bucket 2: [2, 4)
  h->Observe(3);     // bucket 2
  h->Observe(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 1030u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 2u);
  EXPECT_EQ(h->bucket(11), 1u);
  EXPECT_EQ(h->bucket(3), 0u);

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  bool found = false;
  for (const auto& hv : snap.histograms) {
    if (hv.name != "metrics_test.hist") continue;
    found = true;
    EXPECT_EQ(hv.count, 5u);
    EXPECT_EQ(hv.sum, 1030u);
    // Only non-empty buckets, ascending by bit width.
    const std::vector<std::pair<int, uint64_t>> expected = {
        {0, 1}, {1, 1}, {2, 2}, {11, 1}};
    EXPECT_EQ(hv.buckets, expected);
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, PointersSurviveResetValues) {
  Counter* c = MetricsRegistry::Global().GetCounter("metrics_test.stable");
  c->Add(9);
  EXPECT_EQ(c->value(), 9u);
  MetricsRegistry::Global().ResetValues();
  // Same object, zeroed — cached macro pointers must stay valid.
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("metrics_test.stable"), c);
  EXPECT_EQ(c->value(), 0u);
  c->Add(2);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().CounterOr0(
                "metrics_test.stable"),
            2u);
}

TEST_F(MetricsTest, CounterOr0ForUnknownName) {
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().CounterOr0(
                "metrics_test.never_registered"),
            0u);
}

TEST_F(MetricsTest, JsonSnapshotIsWellFormed) {
  ELITENET_COUNT("metrics_test.json \"quoted\"", 1);
  ELITENET_GAUGE_SET("metrics_test.json_gauge", 12);
  ELITENET_HISTOGRAM("metrics_test.json_hist", 77);
  ELITENET_SKETCH("metrics_test.json_sketch", 300);
  const std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"sketches\""), std::string::npos);
  EXPECT_NE(json.find("metrics_test.json \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("metrics_test.json_sketch"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(MetricsTest, SketchMacroRecordsQuantiles) {
  for (int i = 1; i <= 100; ++i) {
    ELITENET_SKETCH("metrics_test.sketch_macro", i);
  }
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  bool found = false;
  for (const auto& s : snap.sketches) {
    if (s.name != "metrics_test.sketch_macro") continue;
    found = true;
    EXPECT_EQ(s.count, 100u);
    // p50 within the sketch's 1/64 relative-error bound of 50.
    EXPECT_NEAR(s.p50, 50.0, 1.0);
    EXPECT_NEAR(s.p99, 99.0, 99.0 / 64.0 + 0.5);
    EXPECT_GE(s.max, 100u);
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, PrometheusTextIsSane) {
  ELITENET_COUNT("metrics_test.prom.count", 3);
  ELITENET_GAUGE_SET("metrics_test.prom-gauge", -4);
  ELITENET_SKETCH("metrics_test.prom.sketch", 42);
  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  // Names are sanitized to [a-zA-Z0-9_] and prefixed.
  EXPECT_NE(text.find("elitenet_metrics_test_prom_count 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("elitenet_metrics_test_prom_gauge -4"),
            std::string::npos)
      << text;
  // Sketches render as summaries with quantile labels + count/sum.
  EXPECT_NE(text.find("elitenet_metrics_test_prom_sketch{quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("elitenet_metrics_test_prom_sketch_count 1"),
            std::string::npos)
      << text;
  // Every line is "name[{labels}] value" or a # comment.
  EXPECT_EQ(text.find("  "), std::string::npos);
}

}  // namespace
}  // namespace util
}  // namespace elitenet

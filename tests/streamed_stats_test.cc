#include "analysis/streamed_stats.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/assortativity.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// Bit-exact comparison against the three standalone kernels. The fused
// pass promises byte-identical CSV output, so every floating-point field
// is compared with == (through EXPECT_EQ), not a tolerance.
void ExpectMatchesKernels(const DiGraph& g, NodeId window_nodes) {
  const StreamedBasicStats s = ComputeStreamedBasicStats(g, window_nodes);
  const DegreeStats d = ComputeDegreeStats(g);
  const ReciprocityStats r = ComputeReciprocity(g);
  const AssortativityReport a = ComputeAssortativity(g);

  EXPECT_EQ(s.degrees.min_out_degree, d.min_out_degree);
  EXPECT_EQ(s.degrees.max_out_degree, d.max_out_degree);
  EXPECT_EQ(s.degrees.argmax_out_degree, d.argmax_out_degree);
  EXPECT_EQ(s.degrees.avg_out_degree, d.avg_out_degree);
  EXPECT_EQ(s.degrees.min_in_degree, d.min_in_degree);
  EXPECT_EQ(s.degrees.max_in_degree, d.max_in_degree);
  EXPECT_EQ(s.degrees.argmax_in_degree, d.argmax_in_degree);
  EXPECT_EQ(s.degrees.avg_in_degree, d.avg_in_degree);
  EXPECT_EQ(s.degrees.isolated_nodes, d.isolated_nodes);
  EXPECT_EQ(s.degrees.sink_nodes, d.sink_nodes);
  EXPECT_EQ(s.degrees.source_nodes, d.source_nodes);
  EXPECT_EQ(s.degrees.density, d.density);

  EXPECT_EQ(s.reciprocity.total_edges, r.total_edges);
  EXPECT_EQ(s.reciprocity.reciprocated_edges, r.reciprocated_edges);
  EXPECT_EQ(s.reciprocity.mutual_pairs, r.mutual_pairs);
  EXPECT_EQ(s.reciprocity.rate, r.rate);

  EXPECT_EQ(s.assortativity.out_in, a.out_in);
  EXPECT_EQ(s.assortativity.out_out, a.out_out);
  EXPECT_EQ(s.assortativity.in_in, a.in_in);
  EXPECT_EQ(s.assortativity.in_out, a.in_out);
  EXPECT_EQ(s.assortativity.total, a.total);
}

TEST(StreamedStatsTest, EmptyGraph) {
  const DiGraph g;
  for (NodeId w : {NodeId{0}, NodeId{1}, NodeId{64}}) {
    ExpectMatchesKernels(g, w);
    EXPECT_EQ(ComputeStreamedBasicStats(g, w).windows, 0u);
  }
}

TEST(StreamedStatsTest, SingleIsolatedNode) {
  const DiGraph g = Build(1, {});
  ExpectMatchesKernels(g, 0);
  ExpectMatchesKernels(g, 1);
  EXPECT_EQ(ComputeStreamedBasicStats(g, 1).windows, 1u);
}

TEST(StreamedStatsTest, SmallMixedGraphAtEveryWindowSize) {
  // Mutual pair, a chain, a sink, a source, and an isolated node — every
  // degree-stat branch is exercised.
  const DiGraph g = Build(
      7, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 4}, {5, 0}});
  for (NodeId w = 0; w <= 8; ++w) ExpectMatchesKernels(g, w);
}

TEST(StreamedStatsTest, WindowCountIsCeilOfNodesOverWindow) {
  const DiGraph g = Build(10, {{0, 1}});
  EXPECT_EQ(ComputeStreamedBasicStats(g, 0).windows, 1u);   // 0 = one pass
  EXPECT_EQ(ComputeStreamedBasicStats(g, 10).windows, 1u);
  EXPECT_EQ(ComputeStreamedBasicStats(g, 3).windows, 4u);
  EXPECT_EQ(ComputeStreamedBasicStats(g, 1).windows, 10u);
  EXPECT_EQ(ComputeStreamedBasicStats(g, 999).windows, 1u);  // window > n
}

TEST(StreamedStatsTest, RandomGraphBitIdenticalAcrossWindowSizes) {
  util::Rng rng(2018);
  auto g = gen::ErdosRenyi(500, 4000, &rng);
  ASSERT_TRUE(g.ok());
  for (NodeId w : {NodeId{0}, NodeId{1}, NodeId{7}, NodeId{64},
                   NodeId{500}, NodeId{1000}}) {
    ExpectMatchesKernels(*g, w);
  }
}

TEST(StreamedStatsTest, SkewedGraphBitIdenticalAcrossWindowSizes) {
  // Preferential attachment gives heavy-tailed degrees, the regime where
  // naive accumulation-order changes would show up in the correlations.
  util::Rng rng(7);
  auto g = gen::PreferentialAttachment(800, 5, &rng);
  ASSERT_TRUE(g.ok());
  for (NodeId w : {NodeId{0}, NodeId{1}, NodeId{13}, NodeId{100}}) {
    ExpectMatchesKernels(*g, w);
  }
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

#include "stats/vuong.h"

#include <vector>

#include <gtest/gtest.h>

#include "stats/distributions.h"
#include "stats/powerlaw.h"
#include "util/rng.h"

namespace elitenet {
namespace stats {
namespace {

TEST(VuongTest, RejectsMismatchedSizes) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_FALSE(VuongTest(a, b).ok());
}

TEST(VuongTest, RejectsTooFewObservations) {
  const std::vector<double> a{1.0};
  EXPECT_FALSE(VuongTest(a, a).ok());
}

TEST(VuongTest, RejectsZeroVarianceDifferences) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{0.5, 1.5, 2.5};  // constant difference
  EXPECT_FALSE(VuongTest(a, b).ok());
}

TEST(VuongTest, PositiveStatisticFavorsModelOne) {
  // Model 1 likelihoods are systematically higher with noise.
  util::Rng rng(3);
  std::vector<double> l1, l2;
  for (int i = 0; i < 500; ++i) {
    const double base = -2.0 + 0.1 * rng.Normal();
    l1.push_back(base + 0.3 + 0.05 * rng.Normal());
    l2.push_back(base);
  }
  auto v = VuongTest(l1, l2);
  ASSERT_TRUE(v.ok());
  EXPECT_GT(v->log_likelihood_ratio, 0.0);
  EXPECT_GT(v->statistic, 2.0);
  EXPECT_LT(v->p_one_sided, 0.05);
}

TEST(VuongTest, SymmetryUnderSwap) {
  util::Rng rng(5);
  std::vector<double> l1, l2;
  for (int i = 0; i < 200; ++i) {
    l1.push_back(-1.0 + 0.2 * rng.Normal());
    l2.push_back(-1.0 + 0.2 * rng.Normal());
  }
  auto fwd = VuongTest(l1, l2);
  auto rev = VuongTest(l2, l1);
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(rev.ok());
  EXPECT_DOUBLE_EQ(fwd->statistic, -rev->statistic);
  EXPECT_DOUBLE_EQ(fwd->p_two_sided, rev->p_two_sided);
}

TEST(VuongTest, EquivalentModelsGiveInsignificantStatistic) {
  util::Rng rng(7);
  std::vector<double> l1, l2;
  for (int i = 0; i < 2000; ++i) {
    const double base = -3.0 + rng.Normal();
    l1.push_back(base + 0.1 * rng.Normal());
    l2.push_back(base + 0.1 * rng.Normal());
  }
  auto v = VuongTest(l1, l2);
  ASSERT_TRUE(v.ok());
  EXPECT_LT(std::fabs(v->statistic), 3.0);
  EXPECT_GT(v->p_two_sided, 0.001);
}

// End-to-end: power law data should decisively beat the exponential, and
// not lose decisively to the fitted log-normal.
TEST(VuongIntegrationTest, PowerLawVsAlternativesOnPlantedTail) {
  util::Rng rng(11);
  std::vector<double> data;
  for (int i = 0; i < 4000; ++i) {
    data.push_back(static_cast<double>(SampleZeta(2.6, 20, &rng)));
  }
  auto fit = FitDiscreteAlpha(data, 20.0);
  ASSERT_TRUE(fit.ok());
  const auto tail = TailOf(data, 20.0);
  const auto pl = PointwiseLogLikelihood(tail, *fit);

  auto expo = FitExponentialTail(data, 20.0, /*discrete=*/true);
  ASSERT_TRUE(expo.ok());
  auto v_exp = VuongTest(pl, AltPointwiseLogLikelihood(tail, *expo));
  ASSERT_TRUE(v_exp.ok());
  EXPECT_GT(v_exp->statistic, 3.0);
  EXPECT_GT(v_exp->log_likelihood_ratio, 100.0);

  auto ln = FitLogNormalTail(data, 20.0, /*discrete=*/true);
  ASSERT_TRUE(ln.ok());
  auto v_ln = VuongTest(pl, AltPointwiseLogLikelihood(tail, *ln));
  ASSERT_TRUE(v_ln.ok());
  // Log-normal can mimic a power law; the test must at least not find it
  // decisively better than the true model.
  EXPECT_GT(v_ln->statistic, -2.0);
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

#include "analysis/distance.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(BfsTest, DistancesOnPath) {
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto dist = Bfs(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  // Directedness: nothing reaches 0 backwards.
  const auto rdist = Bfs(g, 3);
  EXPECT_EQ(rdist[0], kUnreachable);
}

TEST(BfsTest, ShortestOfMultiplePaths) {
  // 0->1->2->3 and shortcut 0->3.
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(Bfs(g, 0)[3], 1u);
}

TEST(ReverseBfsTest, DistancesToTarget) {
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto dist = ReverseBfs(g, 3);
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[0], 3u);
}

TEST(SampleDistancesTest, ExactOnSmallCycle) {
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  util::Rng rng(3);
  // More sources than nodes: exact computation over all pairs.
  const DistanceDistribution d = SampleDistances(g, 100, &rng);
  EXPECT_EQ(d.sources_used, 4u);
  EXPECT_EQ(d.reachable_pairs, 12u);  // 4*3 ordered pairs
  EXPECT_EQ(d.unreachable_pairs, 0u);
  // Cycle distances: 1, 2, 3 from each source -> mean 2.
  EXPECT_DOUBLE_EQ(d.mean_distance, 2.0);
  EXPECT_EQ(d.diameter_lower_bound, 3u);
  EXPECT_EQ(d.hops.CountOf(1), 4u);
  EXPECT_EQ(d.hops.CountOf(2), 4u);
  EXPECT_EQ(d.hops.CountOf(3), 4u);
}

TEST(SampleDistancesTest, IsolatedNodesExcluded) {
  const DiGraph g = Build(5, {{0, 1}, {1, 0}});
  util::Rng rng(5);
  const DistanceDistribution d = SampleDistances(g, 100, &rng);
  // Only nodes 0, 1 participate (paper: isolated users omitted).
  EXPECT_EQ(d.sources_used, 2u);
  EXPECT_EQ(d.reachable_pairs, 2u);
  EXPECT_EQ(d.unreachable_pairs, 0u);
  EXPECT_DOUBLE_EQ(d.mean_distance, 1.0);
}

TEST(SampleDistancesTest, UnreachablePairsCounted) {
  const DiGraph g = Build(4, {{0, 1}, {2, 3}});
  util::Rng rng(7);
  const DistanceDistribution d = SampleDistances(g, 100, &rng);
  EXPECT_EQ(d.sources_used, 4u);
  // From 0: reach 1; 2, 3 unreachable. Symmetric across components; and
  // 1 cannot reach anyone (3 unreachable), etc.
  EXPECT_EQ(d.reachable_pairs, 2u);
  EXPECT_EQ(d.unreachable_pairs, 10u);
}

TEST(SampleDistancesTest, EmptyGraphIsEmptyReport) {
  util::Rng rng(9);
  const DistanceDistribution d = SampleDistances(DiGraph(), 10, &rng);
  EXPECT_EQ(d.sources_used, 0u);
  EXPECT_EQ(d.reachable_pairs, 0u);
}

TEST(SampleDistancesTest, SamplingApproximatesExactMean) {
  util::Rng rng(11);
  auto g = gen::ErdosRenyi(800, 12000, &rng);
  ASSERT_TRUE(g.ok());
  util::Rng r1(13), r2(17);
  const DistanceDistribution exact = SampleDistances(*g, 10000, &r1);
  const DistanceDistribution approx = SampleDistances(*g, 64, &r2);
  EXPECT_EQ(exact.sources_used, 800u);
  EXPECT_EQ(approx.sources_used, 64u);
  EXPECT_NEAR(approx.mean_distance, exact.mean_distance,
              0.05 * exact.mean_distance);
}

TEST(SampleDistancesTest, EffectiveDiameterIs90thPercentile) {
  // Long path: known distance distribution from source 0 only; with all
  // sources the percentile is well-defined anyway.
  const DiGraph g = Build(3, {{0, 1}, {1, 2}, {2, 0}});
  util::Rng rng(19);
  const DistanceDistribution d = SampleDistances(g, 100, &rng);
  EXPECT_EQ(d.median_distance, 1u);
  EXPECT_EQ(d.effective_diameter, 2u);
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

// Unit tests of the deterministic parallel primitives: pool lifecycle,
// exception propagation, nested-loop collapse, grain/chunk edge cases,
// and the reduce fold order.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace elitenet {
namespace util {
namespace {

// Restores the global thread count on scope exit so tests are independent.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetThreadCount(0); }
};

TEST(ThreadCountTest, AlwaysPositive) {
  ThreadCountGuard guard;
  EXPECT_GE(ThreadCount(), 1);
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3);
  SetThreadCount(0);  // back to auto
  EXPECT_GE(ThreadCount(), 1);
}

TEST(ParseThreadCountTest, AcceptsPlainIntegers) {
  EXPECT_EQ(ParseThreadCount("1", -1), 1);
  EXPECT_EQ(ParseThreadCount("8", -1), 8);
  EXPECT_EQ(ParseThreadCount("  16", -1), 16);  // strtol skips whitespace
  EXPECT_EQ(ParseThreadCount("1024", -1), kMaxThreads);
}

TEST(ParseThreadCountTest, RejectsNonNumeric) {
  EXPECT_EQ(ParseThreadCount(nullptr, 7), 7);
  EXPECT_EQ(ParseThreadCount("", 7), 7);
  EXPECT_EQ(ParseThreadCount("abc", 7), 7);
  EXPECT_EQ(ParseThreadCount("8x", 7), 7);    // trailing junk
  EXPECT_EQ(ParseThreadCount("3.5", 7), 7);   // not an integer
  EXPECT_EQ(ParseThreadCount("4 ", 7), 7);    // trailing space
}

TEST(ParseThreadCountTest, RejectsOutOfRange) {
  EXPECT_EQ(ParseThreadCount("0", 7), 7);
  EXPECT_EQ(ParseThreadCount("-3", 7), 7);
  EXPECT_EQ(ParseThreadCount("1025", 7), 7);  // above kMaxThreads
  EXPECT_EQ(ParseThreadCount("99999999999999999999", 7), 7);  // overflows long
}

TEST(EffectiveGrainTest, HonorsExplicitGrain) {
  EXPECT_EQ(EffectiveGrain(1000, 10), 10u);
  EXPECT_EQ(EffectiveGrain(5, 100), 100u);
}

TEST(EffectiveGrainTest, AutoGrainTargetsFixedChunkCount) {
  // grain == 0 splits into at most 64 chunks regardless of thread count —
  // this is what keeps chunk boundaries thread-count-independent.
  const size_t grain = EffectiveGrain(6400, 0);
  EXPECT_EQ(grain, 100u);
  EXPECT_GE(EffectiveGrain(10, 0), 1u);
  EXPECT_GE(EffectiveGrain(1, 0), 1u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.Run(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  int sum = 0;  // no synchronization needed: everything runs on this thread
  pool.Run(10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, ShutdownJoinsCleanly) {
  // Construct, use, and destroy several pools back to back; the destructor
  // must join all workers without hanging or leaking batches.
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    pool.Run(17, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 17);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.Run(50, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  ThreadPool pool(4);
  try {
    pool.Run(64, [](size_t i) {
      if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    // Any odd index may throw first in wall-clock time, but Run reports
    // the lowest one so failures are reproducible.
    EXPECT_STREQ(e.what(), "1");
  }
  // The pool must remain usable after a throwing batch.
  std::atomic<int> count{0};
  pool.Run(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ParallelForTest, CoversRangeWithoutOverlap) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 7, [&](size_t lo, size_t hi) {
    EXPECT_LT(lo, hi);
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  int calls = 0;  // single chunk => runs serially on this thread
  ParallelFor(0, 10, 1000, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NonZeroBeginOffsetsChunks) {
  ThreadCountGuard guard;
  SetThreadCount(2);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(40, 100, 9, [&](size_t lo, size_t hi) {
    EXPECT_GE(lo, 40u);
    EXPECT_LE(hi, 100u);
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 40; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (size_t i = 40; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, NestedCallsCollapseToSerial) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  std::atomic<int> inner_total{0};
  ParallelFor(0, 8, 1, [&](size_t, size_t) {
    EXPECT_TRUE(InParallelRegion());
    // The nested loop must complete inline rather than deadlocking on the
    // shared pool.
    int local = 0;
    ParallelFor(0, 10, 1, [&](size_t lo, size_t hi) {
      local += static_cast<int>(hi - lo);
    });
    EXPECT_EQ(local, 10);
    inner_total.fetch_add(local);
  });
  EXPECT_EQ(inner_total.load(), 80);
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelForTest, ExceptionPropagatesFromLowestChunk) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  try {
    ParallelFor(0, 100, 10, [](size_t lo, size_t) {
      if (lo >= 30) throw std::runtime_error(std::to_string(lo));
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "30");
  }
}

TEST(ParallelReduceTest, SumMatchesSerial) {
  ThreadCountGuard guard;
  std::vector<double> values(10007);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  double serial = 0.0;
  // The serial reference must fold chunk partials the same way the
  // parallel version does; plain left-to-right accumulation differs in
  // the last ulp. Reduce with one thread IS that reference.
  SetThreadCount(1);
  serial = ParallelReduce(
      0, values.size(), 0, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += values[i];
        return s;
      },
      [](double a, double b) { return a + b; });
  SetThreadCount(4);
  const double parallel = ParallelReduce(
      0, values.size(), 0, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += values[i];
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(serial, parallel);  // bit-identical, not just approximately
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  ThreadCountGuard guard;
  const int result = ParallelReduce(
      3, 3, 1, 42, [](size_t, size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelReduceTest, FoldOrderIsChunkOrder) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  // Concatenating chunk labels is order-sensitive; the result must list
  // chunks left to right regardless of execution interleaving.
  const std::string order = ParallelReduce(
      0, 40, 10, std::string(),
      [](size_t lo, size_t) { return std::to_string(lo / 10); },
      [](std::string a, std::string b) { return a + b; });
  EXPECT_EQ(order, "0123");
}

}  // namespace
}  // namespace util
}  // namespace elitenet

#include "stats/powerlaw.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/special.h"
#include "util/rng.h"

namespace elitenet {
namespace stats {
namespace {

std::vector<double> ZetaSample(double alpha, uint64_t kmin, int n,
                               uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(SampleZeta(alpha, kmin, &rng)));
  }
  return out;
}

std::vector<double> ParetoSample(double alpha, double xmin, int n,
                                 uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(rng.Pareto(alpha, xmin));
  return out;
}

TEST(SampleZetaTest, RespectsLowerBound) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(SampleZeta(2.5, 10, &rng), 10u);
  }
}

TEST(SampleZetaTest, SurvivalMatchesModel) {
  // Empirical P(X >= 2 kmin) should match zeta(a, 2k)/zeta(a, k).
  const double alpha = 3.0;
  const uint64_t kmin = 5;
  util::Rng rng(17);
  int above = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (SampleZeta(alpha, kmin, &rng) >= 2 * kmin) ++above;
  }
  const double expected = HurwitzZeta(alpha, 10.0) / HurwitzZeta(alpha, 5.0);
  EXPECT_NEAR(static_cast<double>(above) / n, expected, 0.01);
}

TEST(ContinuousAlphaTest, ClosedFormRecoversPlantedExponent) {
  const auto data = ParetoSample(2.5, 1.0, 50000, 7);
  auto fit = FitContinuousAlpha(data, 1.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, 2.5, 0.03);
  EXPECT_FALSE(fit->discrete);
  EXPECT_EQ(fit->tail_n, 50000u);
}

TEST(DiscreteAlphaTest, MleRecoversPlantedExponent) {
  const auto data = ZetaSample(3.24, 20, 20000, 11);
  auto fit = FitDiscreteAlpha(data, 20.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, 3.24, 0.06);
  EXPECT_TRUE(fit->discrete);
}

TEST(DiscreteAlphaTest, RejectsBadInputs) {
  EXPECT_FALSE(FitDiscreteAlpha(std::vector<double>{}, 1.0).ok());
  EXPECT_FALSE(FitDiscreteAlpha(std::vector<double>{5.0}, 0.5).ok());
  EXPECT_FALSE(FitDiscreteAlpha(std::vector<double>{1.0, 2.0}, 10.0).ok());
}

TEST(XminScanTest, FindsPlantedThresholdInMixture) {
  // Body uniform on [1, 9], tail zeta above 10.
  util::Rng rng(13);
  std::vector<double> data;
  for (int i = 0; i < 6000; ++i) {
    data.push_back(1.0 + static_cast<double>(rng.UniformU64(9)));
  }
  for (int i = 0; i < 3000; ++i) {
    data.push_back(static_cast<double>(SampleZeta(2.8, 10, &rng)));
  }
  auto fit = FitDiscrete(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_GE(fit->xmin, 9.0);
  EXPECT_LE(fit->xmin, 25.0);
  EXPECT_NEAR(fit->alpha, 2.8, 0.15);
}

TEST(XminScanTest, ContinuousMixture) {
  util::Rng rng(19);
  std::vector<double> data;
  for (int i = 0; i < 4000; ++i) data.push_back(rng.UniformDouble(0.1, 5.0));
  for (int i = 0; i < 3000; ++i) data.push_back(rng.Pareto(3.18, 6.0));
  auto fit = FitContinuous(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_GE(fit->xmin, 4.5);
  EXPECT_LE(fit->xmin, 12.0);
  EXPECT_NEAR(fit->alpha, 3.18, 0.2);
}

TEST(XminScanTest, FailsOnNonPositiveData) {
  EXPECT_FALSE(FitDiscrete(std::vector<double>{0.0, 1.0, 2.0}).ok());
  EXPECT_FALSE(FitContinuous(std::vector<double>{-1.0, 2.0}).ok());
}

TEST(XminScanTest, EmptyDataRejected) {
  EXPECT_FALSE(FitDiscrete(std::vector<double>{}).ok());
}

TEST(SurvivalTest, ContinuousFormula) {
  PowerLawFit fit;
  fit.alpha = 3.0;
  fit.xmin = 2.0;
  fit.discrete = false;
  EXPECT_DOUBLE_EQ(PowerLawSurvival(fit, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(PowerLawSurvival(fit, 4.0), 0.25);  // (x/xmin)^{1-a}
  EXPECT_DOUBLE_EQ(PowerLawSurvival(fit, 1.0), 1.0);   // below xmin
}

TEST(SurvivalTest, DiscreteMonotoneAndNormalized) {
  PowerLawFit fit;
  fit.alpha = 2.5;
  fit.xmin = 3.0;
  fit.discrete = true;
  EXPECT_DOUBLE_EQ(PowerLawSurvival(fit, 3.0), 1.0);
  double prev = 1.0;
  for (double x = 4.0; x < 50.0; x += 1.0) {
    const double s = PowerLawSurvival(fit, x);
    EXPECT_LT(s, prev);
    EXPECT_GT(s, 0.0);
    prev = s;
  }
}

TEST(KsDistanceTest, GoodFitHasSmallKs) {
  const auto data = ZetaSample(2.6, 15, 10000, 23);
  auto fit = FitDiscreteAlpha(data, 15.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->ks_distance, 0.02);
}

TEST(KsDistanceTest, WrongModelHasLargeKs) {
  // Geometric-ish data fit as power law at fixed xmin: bad KS.
  util::Rng rng(29);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(5.0 + static_cast<double>(rng.Geometric(0.02)));
  }
  auto fit = FitDiscreteAlpha(data, 5.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->ks_distance, 0.05);
}

TEST(PointwiseLogLikelihoodTest, SumsToFitLogLikelihood) {
  const auto data = ZetaSample(3.0, 8, 3000, 31);
  auto fit = FitDiscreteAlpha(data, 8.0);
  ASSERT_TRUE(fit.ok());
  const auto tail = TailOf(data, 8.0);
  const auto ll = PointwiseLogLikelihood(tail, *fit);
  double sum = 0.0;
  for (double v : ll) sum += v;
  EXPECT_NEAR(sum, fit->log_likelihood, 1e-6 * std::fabs(sum));
}

TEST(TailOfTest, FiltersAndSorts) {
  const std::vector<double> data{5.0, 1.0, 9.0, 3.0, 7.0};
  const auto tail = TailOf(data, 4.0);
  EXPECT_EQ(tail, (std::vector<double>{5.0, 7.0, 9.0}));
}

TEST(BootstrapTest, TruePowerLawGetsHighP) {
  const auto data = ZetaSample(2.7, 10, 3000, 37);
  auto fit = FitDiscrete(data);
  ASSERT_TRUE(fit.ok());
  util::Rng rng(41);
  auto gof = BootstrapGoodness(data, *fit, 20, &rng);
  ASSERT_TRUE(gof.ok());
  EXPECT_GT(gof->p_value, 0.1);  // CSN threshold: plausible power law
}

TEST(BootstrapTest, NonPowerLawGetsLowP) {
  // Poisson-like data: the scan finds some xmin but bootstrap rejects.
  util::Rng rng(43);
  std::vector<double> data;
  for (int i = 0; i < 4000; ++i) {
    data.push_back(1.0 + static_cast<double>(rng.Poisson(30.0)));
  }
  auto fit = FitDiscrete(data);
  ASSERT_TRUE(fit.ok());
  util::Rng rng2(47);
  auto gof = BootstrapGoodness(data, *fit, 20, &rng2);
  ASSERT_TRUE(gof.ok());
  EXPECT_LT(gof->p_value, 0.2);
}

TEST(BootstrapTest, RejectsNonPositiveReplicates) {
  const auto data = ZetaSample(2.7, 10, 500, 53);
  auto fit = FitDiscrete(data);
  ASSERT_TRUE(fit.ok());
  util::Rng rng(59);
  EXPECT_FALSE(BootstrapGoodness(data, *fit, 0, &rng).ok());
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "serve/delta_overlay.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "serve/server.h"

namespace elitenet {
namespace serve {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Mutual pair 0<->1, cycle 0->1->2->0, tail 2->3->4, isolated 5.
graph::DiGraph TestGraph() {
  graph::GraphBuilder b(6);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

std::unique_ptr<QueryEngine> MakeLiveEngine(const graph::DiGraph& g,
                                            int threads = 1,
                                            LiveEngineOptions live = {}) {
  EngineOptions opts;
  opts.threads = threads;
  auto engine = QueryEngine::CreateLive(g, live, opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

// Runs one ServeLines session (the admin channel lives there, off the
// query fast path) and returns the output lines.
std::vector<std::string> ServeSession(QueryEngine* engine,
                                      const std::string& input) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  EXPECT_NE(in, nullptr);
  EXPECT_NE(out, nullptr);
  std::fputs(input.c_str(), in);
  std::rewind(in);
  ServeLines(engine, in, out);
  std::rewind(out);
  std::vector<std::string> lines;
  std::string line;
  int c;
  while ((c = std::fgetc(out)) != EOF) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  std::fclose(in);
  std::fclose(out);
  return lines;
}

Mutation Follow(graph::NodeId s, graph::NodeId d) {
  return {MutationOp::kFollow, s, d};
}
Mutation Unfollow(graph::NodeId s, graph::NodeId d) {
  return {MutationOp::kUnfollow, s, d};
}

TEST(LiveEngineTest, ResponsesCarryVersionAndAsOf) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeLiveEngine(g);
  EXPECT_TRUE(engine->is_live());

  const QueryResponse r0 = engine->ExecuteLine("ego 1");
  ASSERT_TRUE(r0.ok) << r0.json;
  EXPECT_TRUE(Contains(r0.json, "\"version\":0")) << r0.json;
  EXPECT_TRUE(Contains(r0.json, "\"as_of\":0")) << r0.json;

  ASSERT_TRUE(engine->Apply(Follow(5, 1)).ok());
  const QueryResponse r1 = engine->ExecuteLine("ego 1");
  ASSERT_TRUE(r1.ok) << r1.json;
  EXPECT_TRUE(Contains(r1.json, "\"version\":1")) << r1.json;
  EXPECT_TRUE(Contains(r1.json, "\"in_degree\":2")) << r1.json;
}

TEST(LiveEngineTest, StaticResponsesAreUnchanged) {
  const graph::DiGraph g = TestGraph();
  auto live = MakeLiveEngine(g);
  auto static_engine = QueryEngine::Create(g);
  ASSERT_TRUE(static_engine.ok());
  const QueryResponse rs = (*static_engine)->ExecuteLine("ego 1");
  EXPECT_FALSE(Contains(rs.json, "\"version\"")) << rs.json;
  EXPECT_FALSE(Contains(rs.json, "\"as_of\"")) << rs.json;
  // Live-at-version-0 is the static answer plus the version fields.
  const QueryResponse rl = live->ExecuteLine("ego 1");
  EXPECT_TRUE(Contains(rl.json, "\"out_degree\":2")) << rl.json;
  EXPECT_TRUE(Contains(rl.json, "\"mutual\":1")) << rl.json;
}

TEST(LiveEngineTest, VersionPinReplaysHistory) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeLiveEngine(g);
  const QueryResponse before = engine->ExecuteLine("neighbors 5 out");
  ASSERT_TRUE(before.ok);
  EXPECT_TRUE(Contains(before.json, "\"total\":0")) << before.json;

  ASSERT_TRUE(engine->Apply(Follow(5, 1)).ok());
  ASSERT_TRUE(engine->Apply(Follow(5, 2)).ok());

  const QueryResponse head = engine->ExecuteLine("neighbors 5 out");
  EXPECT_TRUE(Contains(head.json, "\"version\":2")) << head.json;
  EXPECT_TRUE(Contains(head.json, "\"total\":2")) << head.json;

  const QueryResponse pinned = engine->ExecuteLine("neighbors 5 out @1");
  ASSERT_TRUE(pinned.ok) << pinned.json;
  EXPECT_TRUE(Contains(pinned.json, "\"version\":1")) << pinned.json;
  EXPECT_TRUE(Contains(pinned.json, "\"total\":1")) << pinned.json;

  // A pin above the applied version is a client error, not a wait.
  const QueryResponse future = engine->ExecuteLine("ego 1 @99");
  EXPECT_FALSE(future.ok);
  EXPECT_TRUE(Contains(future.json, "\"type\":\"error\"")) << future.json;
}

TEST(LiveEngineTest, StaticEngineRejectsVersionPins) {
  auto engine = QueryEngine::Create(TestGraph());
  ASSERT_TRUE(engine.ok());
  const QueryResponse r = (*engine)->ExecuteLine("ego 1 @3");
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(Contains(r.json, "version pins require a live engine"))
      << r.json;
}

TEST(LiveEngineTest, CacheDoesNotServeStaleVersions) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeLiveEngine(g);
  // Prime the cache at version 1 (version 0 cannot be pinned — "@0"
  // means "unpinned" on the wire), mutate, and ask again: the live cache
  // key includes the resolved version, so the answer must move.
  ASSERT_TRUE(engine->Apply(Follow(0, 4)).ok());
  const QueryResponse r1 = engine->ExecuteLine("ego 0");
  EXPECT_TRUE(Contains(r1.json, "\"version\":1")) << r1.json;
  EXPECT_TRUE(Contains(r1.json, "\"out_degree\":2")) << r1.json;
  ASSERT_TRUE(engine->Apply(Unfollow(0, 4)).ok());
  const QueryResponse r2 = engine->ExecuteLine("ego 0");
  EXPECT_TRUE(Contains(r2.json, "\"version\":2")) << r2.json;
  EXPECT_TRUE(Contains(r2.json, "\"out_degree\":1")) << r2.json;
  // Pinned replay of the old version still hits the old bytes.
  const QueryResponse r1again = engine->ExecuteLine("ego 0 @1");
  EXPECT_EQ(r1again.json, r1.json);
}

TEST(LiveEngineTest, DistanceFallsBackToExactBfsForTouchedNodes) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeLiveEngine(g);
  const QueryResponse before = engine->ExecuteLine("dist 0 3");
  ASSERT_TRUE(before.ok);
  EXPECT_TRUE(Contains(before.json, "\"distance\":3")) << before.json;

  ASSERT_TRUE(engine->Apply(Follow(0, 3)).ok());
  const QueryResponse after = engine->ExecuteLine("dist 0 3");
  ASSERT_TRUE(after.ok);
  EXPECT_TRUE(Contains(after.json, "\"distance\":1")) << after.json;

  ASSERT_TRUE(engine->Apply(Unfollow(0, 3)).ok());
  const QueryResponse back = engine->ExecuteLine("dist 0 3");
  EXPECT_TRUE(Contains(back.json, "\"distance\":3")) << back.json;
}

TEST(LiveEngineTest, PinnedResponsesByteIdenticalAcrossWorkerCounts) {
  const graph::DiGraph g = TestGraph();
  const std::vector<Mutation> muts = {Follow(5, 1), Unfollow(2, 3),
                                      Follow(4, 0), Follow(3, 5),
                                      Unfollow(0, 1), Follow(0, 1)};
  const std::vector<std::string> lines = {
      "ego 0 @3",  "ego 5 @6",        "neighbors 1 in 8 @4",
      "dist 0 4 @2", "topk 3 @5",     "fingerprint @6",
      "neighbors 3 out @6"};

  std::vector<std::string> reference;
  for (int workers : {1, 2, 4, 8}) {
    auto engine = MakeLiveEngine(g, workers);
    for (const Mutation& m : muts) ASSERT_TRUE(engine->Apply(m).ok());
    std::vector<std::future<QueryResponse>> futures;
    for (const std::string& line : lines) {
      auto parsed = ParseRequest(line);
      ASSERT_TRUE(parsed.ok()) << line;
      futures.push_back(engine->Submit(*parsed));
    }
    std::vector<std::string> got;
    for (auto& f : futures) {
      const QueryResponse r = f.get();
      EXPECT_TRUE(r.ok) << r.json;
      got.push_back(r.json);
    }
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << "workers=" << workers;
    }
  }
}

TEST(LiveEngineTest, AdminVersionAndOverlayVerbs) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeLiveEngine(g);
  ASSERT_TRUE(engine->Apply(Follow(5, 1)).ok());
  ASSERT_TRUE(engine->Apply(Follow(0, 1)).ok());  // no-op

  const std::vector<std::string> lines =
      ServeSession(engine.get(), "#version\n#overlay\nquit\n");
  ASSERT_EQ(lines.size(), 2u);
  const std::string& ver = lines[0];
  EXPECT_TRUE(Contains(ver, "\"type\":\"version\"")) << ver;
  EXPECT_TRUE(Contains(ver, "\"live\":true")) << ver;
  EXPECT_TRUE(Contains(ver, "\"version\":2")) << ver;
  EXPECT_TRUE(Contains(ver, "\"base_version\":0")) << ver;
  EXPECT_TRUE(Contains(ver, "\"edges\":7")) << ver;

  const std::string& ov = lines[1];
  EXPECT_TRUE(Contains(ov, "\"type\":\"overlay\"")) << ov;
  EXPECT_TRUE(Contains(ov, "\"applied\":2")) << ov;
  EXPECT_TRUE(Contains(ov, "\"follows\":1")) << ov;
  EXPECT_TRUE(Contains(ov, "\"noops\":1")) << ov;

  // Static engines answer them too, reporting live:false.
  auto static_engine = QueryEngine::Create(g);
  ASSERT_TRUE(static_engine.ok());
  const std::vector<std::string> st =
      ServeSession(static_engine->get(), "#version\nquit\n");
  ASSERT_EQ(st.size(), 1u);
  EXPECT_TRUE(Contains(st[0], "\"live\":false")) << st[0];
  EXPECT_TRUE(Contains(st[0], "\"edges\":6")) << st[0];
}

TEST(LiveEngineTest, ApplyOnStaticEngineFails) {
  auto engine = QueryEngine::Create(TestGraph());
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->Apply(Follow(5, 1)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*engine)->CompactNow().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LiveEngineTest, CompactNowFoldsOverlayAndKeepsServing) {
  const graph::DiGraph g = TestGraph();
  LiveEngineOptions live;
  live.compact_path = TmpPath("live_engine_compacted.eng2");
  auto engine = MakeLiveEngine(g, 2, live);
  ASSERT_TRUE(engine->Apply(Follow(5, 1)).ok());
  ASSERT_TRUE(engine->Apply(Unfollow(2, 3)).ok());

  const QueryResponse before = engine->ExecuteLine("ego 5");
  auto stats = engine->CompactNow();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->folded_version, 2u);
  EXPECT_EQ(stats->num_edges, 6u);

  // Same logical graph after the swap; as_of advances to the new base.
  const QueryResponse after = engine->ExecuteLine("ego 5");
  ASSERT_TRUE(after.ok) << after.json;
  EXPECT_TRUE(Contains(after.json, "\"out_degree\":1")) << after.json;
  EXPECT_TRUE(Contains(after.json, "\"as_of\":2")) << after.json;
  EXPECT_TRUE(Contains(after.json, "\"version\":2")) << after.json;
  EXPECT_EQ(engine->overlay_stats().compactions, 1u);

  // Pins below the new base are compacted away and must error cleanly.
  const QueryResponse old = engine->ExecuteLine("ego 5 @1");
  EXPECT_FALSE(old.ok);
  EXPECT_TRUE(Contains(old.json, "\"type\":\"error\"")) << old.json;

  // A compactNow with nothing new to fold still succeeds.
  auto again = engine->CompactNow();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->folded_version, 2u);
}

TEST(LiveEngineTest, WalRecoveryRestoresServingState) {
  const graph::DiGraph g = TestGraph();
  LiveEngineOptions live;
  live.log_path = TmpPath("live_engine_recovery.wal");
  std::remove(live.log_path.c_str());
  std::string head_json;
  {
    auto engine = MakeLiveEngine(g, 1, live);
    ASSERT_TRUE(engine->Apply(Follow(5, 1)).ok());
    ASSERT_TRUE(engine->Apply(Follow(5, 2)).ok());
    head_json = engine->ExecuteLine("ego 5").json;
  }
  auto engine = MakeLiveEngine(g, 1, live);
  EXPECT_EQ(engine->overlay_stats().recovered, 2u);
  EXPECT_EQ(engine->applied_version(), 2u);
  EXPECT_EQ(engine->ExecuteLine("ego 5").json, head_json);
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

#include "serve/request.h"

#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace elitenet {
namespace serve {
namespace {

Request MustParse(const std::string& line) {
  auto r = ParseRequest(line);
  EXPECT_TRUE(r.ok()) << line << ": " << r.status().ToString();
  return *r;
}

TEST(RequestCodecTest, RoundTripsEveryType) {
  const char* lines[] = {
      "ego 42",
      "topk 25",
      "dist 3 9000",
      "dist 3 9000 1500",
      "neighbors 7 out 64",
      "neighbors 7 in 8",
      "fingerprint",
  };
  for (const char* line : lines) {
    const Request req = MustParse(line);
    const std::string canonical = CanonicalEncoding(req);
    const Request again = MustParse(canonical);
    EXPECT_EQ(req, again) << line;
    // Canonical form is a fixed point of the codec.
    EXPECT_EQ(CanonicalEncoding(again), canonical) << line;
  }
}

TEST(RequestCodecTest, CanonicalizesSloppyInput) {
  EXPECT_EQ(CanonicalEncoding(MustParse("  ego   42  ")), "ego 42");
  // Neighbors without an explicit limit gets the default made explicit.
  const Request r = MustParse("neighbors 7 out");
  EXPECT_EQ(r.limit, 32u);
  EXPECT_EQ(CanonicalEncoding(r), "neighbors 7 out 32");
}

TEST(RequestCodecTest, DeadlineRoundTripsButStaysOutOfCacheKey) {
  const Request with = MustParse("dist 1 2 777");
  const Request without = MustParse("dist 1 2");
  EXPECT_EQ(with.deadline_us, 777u);
  EXPECT_EQ(without.deadline_us, 0u);
  EXPECT_NE(CanonicalEncoding(with), CanonicalEncoding(without));
  // The deadline changes whether a result arrives in time, never its
  // bytes, so both requests share one cache entry.
  EXPECT_EQ(CacheKey(with), CacheKey(without));
  EXPECT_EQ(CacheKey(with), "dist 1 2");
}

TEST(RequestCodecTest, CacheKeyDistinguishesEverythingElse) {
  EXPECT_NE(CacheKey(MustParse("ego 1")), CacheKey(MustParse("ego 2")));
  EXPECT_NE(CacheKey(MustParse("topk 10")), CacheKey(MustParse("topk 11")));
  EXPECT_NE(CacheKey(MustParse("dist 1 2")), CacheKey(MustParse("dist 2 1")));
  EXPECT_NE(CacheKey(MustParse("neighbors 1 out 32")),
            CacheKey(MustParse("neighbors 1 in 32")));
  EXPECT_NE(CacheKey(MustParse("neighbors 1 out 32")),
            CacheKey(MustParse("neighbors 1 out 16")));
}

TEST(RequestCodecTest, VersionPinComposesWithEveryVerb) {
  const char* lines[] = {
      "ego 42 @7",
      "topk 25 @1",
      "dist 3 9000 @12",
      "dist 3 9000 1500 @12",
      "neighbors 7 out 64 @3",
      "fingerprint @2",
  };
  for (const char* line : lines) {
    const Request req = MustParse(line);
    EXPECT_NE(req.version, 0u) << line;
    const std::string canonical = CanonicalEncoding(req);
    const Request again = MustParse(canonical);
    EXPECT_EQ(req, again) << line;
    EXPECT_EQ(CanonicalEncoding(again), canonical) << line;
  }
  EXPECT_EQ(MustParse("ego 42 @7").version, 7u);
  EXPECT_EQ(CanonicalEncoding(MustParse("  ego  42   @7 ")), "ego 42 @7");
  // The pin composes with a distance deadline; the deadline stays first.
  const Request d = MustParse("dist 3 9000 1500 @12");
  EXPECT_EQ(d.deadline_us, 1500u);
  EXPECT_EQ(d.version, 12u);
  EXPECT_EQ(CanonicalEncoding(d), "dist 3 9000 1500 @12");
}

TEST(RequestCodecTest, VersionPinStaysOutOfCacheKey) {
  // The live engine resolves the pin into its own epoch-qualified cache
  // prefix; the request-level key must not duplicate it.
  EXPECT_EQ(CacheKey(MustParse("ego 1 @5")), CacheKey(MustParse("ego 1")));
  EXPECT_EQ(CacheKey(MustParse("ego 1 @5")), "ego 1");
}

TEST(RequestCodecTest, RejectsBadVersionPins) {
  const char* bad[] = {
      "ego 1 @",       // empty pin
      "ego 1 @0",      // 0 means "unpinned"; spelling it out is an error
      "ego 1 @x",      // not a number
      "ego 1 @-3",     // negative
      "ego 1 @5 @6",   // only one trailing pin is peeled
      "@5",            // a pin is not a verb
      "ego @5",        // pin cannot replace a required argument
  };
  for (const char* line : bad) {
    auto r = ParseRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: \"" << line << "\"";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(RequestCodecTest, RejectsMalformedLines) {
  const char* bad[] = {
      "",
      "   ",
      "ego",
      "ego x",
      "ego 1 2",
      "ego -5",
      "ego 99999999999999999999",  // overflows uint32
      "topk 0",
      "topk",
      "dist 1",
      "dist 1 2 3 4",
      "dist 1 nope",
      "neighbors 1 sideways",
      "neighbors 1 out 0",
      "neighbors",
      "fingerprint 1",
      "frobnicate 1",
  };
  for (const char* line : bad) {
    auto r = ParseRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: \"" << line << "\"";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(RequestCodecTest, JsonEscapeHandlesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(RequestCodecTest, JsonDoubleIsDeterministicAndFiniteOnly) {
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  EXPECT_EQ(JsonDouble(1.0 / 3.0), JsonDouble(1.0 / 3.0));
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

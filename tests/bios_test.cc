#include "gen/bios.h"

#include <gtest/gtest.h>

#include "text/ngram.h"

namespace elitenet {
namespace gen {
namespace {

const VerifiedNetwork& TestNetwork() {
  static const VerifiedNetwork* network = [] {
    VerifiedNetworkConfig cfg;
    cfg.num_users = 40000;  // enough for stable phrase frequencies
    auto r = GenerateVerifiedNetwork(cfg);
    EXPECT_TRUE(r.ok());
    return new VerifiedNetwork(std::move(r).value());
  }();
  return *network;
}

const BioCorpus& TestCorpus() {
  static const BioCorpus* corpus = [] {
    auto r = GenerateBios(TestNetwork());
    EXPECT_TRUE(r.ok());
    return new BioCorpus(std::move(r).value());
  }();
  return *corpus;
}

TEST(BiosTest, OneBioPerUser) {
  EXPECT_EQ(TestCorpus().bios.size(), TestNetwork().graph.num_nodes());
  EXPECT_EQ(TestCorpus().roles.size(), TestNetwork().graph.num_nodes());
}

TEST(BiosTest, NoEmptyBios) {
  for (const std::string& bio : TestCorpus().bios) {
    EXPECT_FALSE(bio.empty());
  }
}

TEST(BiosTest, DeterministicForSeed) {
  BioConfig cfg;
  auto a = GenerateBios(TestNetwork(), cfg);
  auto b = GenerateBios(TestNetwork(), cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->bios, b->bios);
}

TEST(BiosTest, JournalismDominates) {
  // The paper: journalists and news outlets are the running theme.
  const BioCorpus& c = TestCorpus();
  const uint64_t journalism = c.CountRole(BioRole::kJournalist) +
                              c.CountRole(BioRole::kNewsOutlet);
  EXPECT_GT(journalism, c.bios.size() / 6);
  EXPECT_GT(c.CountRole(BioRole::kJournalist),
            c.CountRole(BioRole::kWeatherOutlet));
}

TEST(BiosTest, RoleNamesAreHuman) {
  EXPECT_STREQ(BioRoleName(BioRole::kJournalist), "journalist");
  EXPECT_STREQ(BioRoleName(BioRole::kBrand), "brand");
  EXPECT_STREQ(BioRoleName(BioRole::kNumRoles), "unknown");
}

// Phrase calibration: expected counts scale as paper_count * n / 231246.
double ScaledCount(double paper_count) {
  return paper_count * static_cast<double>(TestCorpus().bios.size()) /
         231246.0;
}

TEST(BiosTest, OfficialTwitterFrequencyCalibrated) {
  text::NGramCounter bigrams(2);
  for (const auto& bio : TestCorpus().bios) bigrams.AddDocument(bio);
  const double expected = ScaledCount(12166);
  EXPECT_NEAR(static_cast<double>(bigrams.CountOf("official twitter")),
              expected, 0.15 * expected);
}

TEST(BiosTest, TopBigramOrderingMatchesPaperHead) {
  text::NGramCounter bigrams(2), trigrams(3);
  for (const auto& bio : TestCorpus().bios) {
    bigrams.AddDocument(bio);
    trigrams.AddDocument(bio);
  }
  const auto top = text::FilterSubsumed(bigrams.TopK(40), trigrams);
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0].ngram, "official twitter");
  // "official account" and "award winning"/"follow us" occupy the next
  // band (ties in the paper: 2788 vs 2270/2268).
  EXPECT_GT(top[0].count, 3 * top[1].count);
}

TEST(BiosTest, TrigramHeadMatchesPaper) {
  text::NGramCounter trigrams(3), fourgrams(4);
  for (const auto& bio : TestCorpus().bios) {
    trigrams.AddDocument(bio);
    fourgrams.AddDocument(bio);
  }
  const auto top = text::FilterSubsumed(trigrams.TopK(40), fourgrams);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].ngram, "official twitter account");
  EXPECT_EQ(top[1].ngram, "official twitter page");
  const double expected_account = ScaledCount(5457);
  EXPECT_NEAR(static_cast<double>(top[0].count), expected_account,
              0.15 * expected_account);
}

TEST(BiosTest, PaperPhrasesAllPresent) {
  text::NGramCounter bigrams(2), trigrams(3);
  for (const auto& bio : TestCorpus().bios) {
    bigrams.AddDocument(bio);
    trigrams.AddDocument(bio);
  }
  for (const char* phrase :
       {"husband father", "opinions own", "singer songwriter",
        "anchor reporter", "breaking news", "managing editor",
        "rugby player", "co founder", "co host", "latest news",
        "new album", "follow us", "award winning", "official account"}) {
    EXPECT_GT(bigrams.CountOf(phrase), 0u) << phrase;
  }
  for (const char* phrase :
       {"weather alerts en", "emmy award winning", "new york times",
        "editor in chief", "best selling author",
        "professional rugby player", "wall street journal",
        "professional baseball player", "report crime here",
        "award winning journalist", "for customer service",
        "olympic gold medalist", "monday to friday"}) {
    EXPECT_GT(trigrams.CountOf(phrase), 0u) << phrase;
  }
}

TEST(BiosTest, WordCloudUnigramsPresent) {
  text::NGramCounter unigrams(1);
  for (const auto& bio : TestCorpus().bios) unigrams.AddDocument(bio);
  for (const char* word :
       {"official", "twitter", "journalist", "reporter", "editor",
        "producer", "founder", "director", "author", "husband", "father",
        "instagram", "facebook", "snapchat", "booking", "american",
        "london", "gay"}) {
    EXPECT_GT(unigrams.CountOf(word), 0u) << word;
  }
}

}  // namespace
}  // namespace gen
}  // namespace elitenet

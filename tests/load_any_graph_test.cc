// core::LoadAnyGraph is the one loading path shared by elitenet_cli and
// the serving front-ends: dataset directory, ".eng" binary snapshot, or
// text edge list. These tests pin the dispatch rule and — the part that
// matters for a long-lived server — that corrupt inputs surface a clean
// Status instead of crashing or yielding a half-loaded graph.

#include "core/dataset.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/study.h"
#include "graph/builder.h"
#include "graph/io.h"

namespace elitenet {
namespace core {
namespace {

std::string TempDirFor(const char* name) {
  return testing::TempDir() + "/" + name;
}

graph::DiGraph SmallGraph() {
  graph::GraphBuilder b(5);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  EXPECT_TRUE(b.AddEdge(0, 3).ok());
  // Touch the last node so the edge-list text round trip (which infers
  // the node count from edges) reproduces the same graph.
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

StudyDataset SmallDataset() {
  StudyConfig cfg;
  cfg.network.num_users = 2000;
  VerifiedStudy study(cfg);
  EXPECT_TRUE(study.Generate().ok());
  StudyDataset d;
  d.network = study.network();
  d.profiles = study.profiles();
  d.bios = study.bios();
  d.activity = study.activity();
  return d;
}

void TruncateFile(const std::string& path, long keep_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, keep_bytes) << path;
  std::string head(static_cast<size_t>(keep_bytes), '\0');
  f = std::fopen(path.c_str(), "rb");
  ASSERT_EQ(std::fread(head.data(), 1, head.size(), f), head.size());
  std::fclose(f);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
}

TEST(LoadAnyGraphTest, DispatchesToBinarySnapshot) {
  const graph::DiGraph g = SmallGraph();
  const std::string path = testing::TempDir() + "/any_graph.eng";
  ASSERT_TRUE(graph::SaveBinary(g, path).ok());
  GraphLoadInfo info;
  auto loaded = LoadAnyGraph(path, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, g);
  EXPECT_EQ(info.format, "eng1");
  EXPECT_GT(info.bytes, 0u);
  EXPECT_FALSE(loaded->borrows_storage());
}

TEST(LoadAnyGraphTest, DispatchesToZeroCopySnapshot) {
  const graph::DiGraph g = SmallGraph();
  const std::string path = testing::TempDir() + "/any_graph.eng2";
  ASSERT_TRUE(graph::SaveBinaryV2(g, path).ok());
  GraphLoadInfo info;
  auto loaded = LoadAnyGraph(path, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, g);
  EXPECT_EQ(info.format, "eng2-mmap");
  EXPECT_GT(info.bytes, 0u);
  EXPECT_TRUE(loaded->borrows_storage());
}

TEST(LoadAnyGraphTest, SnapshotDispatchSniffsMagicNotExtension) {
  // An ENG2 file behind a ".eng" name still maps zero-copy, and vice
  // versa — the front-ends promise the magic decides.
  const graph::DiGraph g = SmallGraph();
  const std::string v2_as_eng = testing::TempDir() + "/sniffed.eng";
  ASSERT_TRUE(graph::SaveBinaryV2(g, v2_as_eng).ok());
  GraphLoadInfo info;
  auto loaded = LoadAnyGraph(v2_as_eng, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(info.format, "eng2-mmap");

  const std::string v1_as_eng2 = testing::TempDir() + "/sniffed.eng2";
  ASSERT_TRUE(graph::SaveBinary(g, v1_as_eng2).ok());
  auto loaded1 = LoadAnyGraph(v1_as_eng2, &info);
  ASSERT_TRUE(loaded1.ok()) << loaded1.status().ToString();
  EXPECT_EQ(info.format, "eng1");
}

TEST(LoadAnyGraphTest, DispatchesToEdgeListText) {
  const graph::DiGraph g = SmallGraph();
  const std::string path = testing::TempDir() + "/any_graph.txt";
  ASSERT_TRUE(graph::WriteEdgeListText(g, path).ok());
  GraphLoadInfo info;
  auto loaded = LoadAnyGraph(path, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, g);
  EXPECT_EQ(info.format, "edge-list");
}

TEST(LoadAnyGraphTest, DispatchesToDatasetDirectory) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("any_graph_dataset");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  auto loaded = LoadAnyGraph(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, d.network.graph);
}

TEST(LoadAnyGraphTest, MissingPathIsCleanError) {
  auto r = LoadAnyGraph("/no/such/graph.eng");
  EXPECT_FALSE(r.ok());
  auto r2 = LoadAnyGraph("/no/such/edges.txt");
  EXPECT_FALSE(r2.ok());
}

TEST(LoadAnyGraphTest, TruncatedBinarySnapshotIsCorruption) {
  const graph::DiGraph g = SmallGraph();
  const std::string path = testing::TempDir() + "/truncated.eng";
  ASSERT_TRUE(graph::SaveBinary(g, path).ok());
  // Cut mid-array: the header parses but the payload is short.
  TruncateFile(path, 40);
  EXPECT_EQ(LoadAnyGraph(path).status().code(), StatusCode::kCorruption);
  // Cut mid-header too.
  ASSERT_TRUE(graph::SaveBinary(g, path).ok());
  TruncateFile(path, 3);
  EXPECT_EQ(LoadAnyGraph(path).status().code(), StatusCode::kCorruption);
}

TEST(LoadAnyGraphTest, TruncatedZeroCopySnapshotIsCorruption) {
  const graph::DiGraph g = SmallGraph();
  const std::string path = testing::TempDir() + "/truncated.eng2";
  ASSERT_TRUE(graph::SaveBinaryV2(g, path).ok());
  TruncateFile(path, 200);  // past the section table, mid-payload
  EXPECT_EQ(LoadAnyGraph(path).status().code(), StatusCode::kCorruption);
  ASSERT_TRUE(graph::SaveBinaryV2(g, path).ok());
  TruncateFile(path, 10);  // mid-header
  EXPECT_EQ(LoadAnyGraph(path).status().code(), StatusCode::kCorruption);
}

TEST(LoadAnyGraphTest, SnapshotExtensionWithoutMagicIsCorruption) {
  // A ".eng2" file holding text must not fall back to the edge-list
  // parser: a snapshot extension promises a snapshot.
  const std::string path = testing::TempDir() + "/not_really.eng2";
  std::ofstream(path) << "0 1\n1 2\n";
  EXPECT_EQ(LoadAnyGraph(path).status().code(), StatusCode::kCorruption);
}

TEST(LoadAnyGraphTest, ZeroLengthSnapshotIsCorruption) {
  const std::string path = testing::TempDir() + "/zero_len.eng2";
  std::ofstream(path, std::ios::binary | std::ios::trunc).flush();
  EXPECT_EQ(LoadAnyGraph(path).status().code(), StatusCode::kCorruption);
}

TEST(LoadAnyGraphTest, TruncatedDatasetGraphIsCorruption) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("any_graph_truncated");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  TruncateFile(dir + "/graph.eng", 64);
  EXPECT_EQ(LoadAnyGraph(dir).status().code(), StatusCode::kCorruption);
}

TEST(LoadAnyGraphTest, ManifestCountMismatchIsCorruption) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("any_graph_badmanifest");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  std::ofstream(dir + "/MANIFEST")
      << "elitenet-dataset v1\nusers 999\nedges 1\ndays 1\n";
  EXPECT_EQ(LoadAnyGraph(dir).status().code(), StatusCode::kCorruption);
}

TEST(LoadAnyGraphTest, GarbageUsersFileIsCorruption) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("any_graph_badusers");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  std::ofstream(dir + "/users.bin", std::ios::binary | std::ios::trunc)
      << "this is not a users file at all";
  EXPECT_EQ(LoadAnyGraph(dir).status().code(), StatusCode::kCorruption);
}

TEST(LoadAnyGraphTest, GarbageEdgeListIsCorruption) {
  const std::string path = testing::TempDir() + "/garbage_edges.txt";
  std::ofstream(path) << "# comment is fine\n0 1\nnot numbers here\n";
  EXPECT_EQ(LoadAnyGraph(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace core
}  // namespace elitenet

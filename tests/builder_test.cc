#include "graph/builder.h"

#include <gtest/gtest.h>

namespace elitenet {
namespace graph {
namespace {

TEST(GraphBuilderTest, BuildsEmptyGraph) {
  GraphBuilder b(0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(GraphBuilderTest, NodesWithoutEdges) {
  GraphBuilder b(7);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 7u);
  EXPECT_EQ(g->num_edges(), 0u);
  EXPECT_EQ(g->CountIsolated(), 7u);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdge) {
  GraphBuilder b(3);
  EXPECT_EQ(b.AddEdge(0, 3).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddEdge(3, 0).code(), StatusCode::kOutOfRange);
}

TEST(GraphBuilderTest, DropsSelfLoopsByDefault) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(1, 1).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(GraphBuilderTest, SelfLoopErrorInStrictMode) {
  GraphBuilder::Options opts;
  opts.drop_self_loops = false;
  GraphBuilder b(3, opts);
  EXPECT_EQ(b.AddEdge(1, 1).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, DeduplicatesEdges) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphBuilderTest, DuplicateErrorInStrictMode) {
  GraphBuilder::Options opts;
  opts.allow_duplicates = false;
  GraphBuilder b(3, opts);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 1).ok());  // detected at Build
  auto g = b.Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kAlreadyExists);
}

TEST(GraphBuilderTest, AddEdgesBatch) {
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdges({{0, 1}, {1, 2}, {2, 3}}).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3u);
}

TEST(GraphBuilderTest, AddEdgesBatchFailsAtomicallyOnBadEdge) {
  GraphBuilder b(2);
  EXPECT_FALSE(b.AddEdges({{0, 1}, {0, 5}}).ok());
}

TEST(GraphBuilderTest, ContainsBuffered) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.ContainsBuffered(0, 1));
  EXPECT_FALSE(b.ContainsBuffered(1, 0));
}

TEST(GraphBuilderTest, BuilderIsReusableAfterBuild) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  auto g1 = b.Build();
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(g1->num_edges(), 1u);
  // After Build the buffer is empty; a fresh build has no edges.
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  auto g2 = b.Build();
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), 1u);
  EXPECT_TRUE(g2->HasEdge(1, 2));
  EXPECT_FALSE(g2->HasEdge(0, 1));
}

TEST(GraphBuilderTest, ForwardAndReverseCsrAgree) {
  GraphBuilder b(50);
  // Deterministic pseudo-random edges.
  uint64_t x = 12345;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const NodeId u = static_cast<NodeId>((x >> 33) % 50);
    const NodeId v = static_cast<NodeId>((x >> 13) % 50);
    if (u != v) {
      ASSERT_TRUE(b.AddEdge(u, v).ok());
    }
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  // Every forward edge appears in the reverse CSR and vice versa.
  uint64_t forward = 0, reverse = 0;
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v : g->OutNeighbors(u)) {
      ++forward;
      const auto ins = g->InNeighbors(v);
      EXPECT_TRUE(std::binary_search(ins.begin(), ins.end(), u));
    }
    reverse += g->InNeighbors(u).size();
  }
  EXPECT_EQ(forward, g->num_edges());
  EXPECT_EQ(reverse, g->num_edges());
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

// Out-of-core pipeline tests: the streamed ENG2 writer and the streamed
// generator must produce files byte-identical to the in-memory path —
// SaveBinaryV2 of a built graph, SaveBinaryV2 of the in-memory generator
// — at every memory budget, window size, and thread count. Identity is
// checked on raw file bytes, which covers section checksums and the
// header graph checksum for free. Also the writer's GraphBuilder-matching
// semantics (duplicate coalescing, self-loop dropping) and its input
// validation.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/verified_network.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "util/ext_sort.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace elitenet {
namespace graph {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

util::ExtSortOptions SortOptions(const char* prefix, uint64_t budget) {
  util::ExtSortOptions o;
  o.budget_bytes = budget;
  o.temp_dir = testing::TempDir();
  o.temp_prefix = prefix;
  return o;
}

// A messy random edge multiset: duplicates and self-loops included, so
// the writer's coalescing has real work to do.
std::vector<std::pair<NodeId, NodeId>> RandomEdges(NodeId n, size_t count,
                                                   uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    edges.emplace_back(static_cast<NodeId>(rng.UniformU64(n)),
                       static_cast<NodeId>(rng.UniformU64(n)));
  }
  return edges;
}

TEST(StreamIoTest, WriterMatchesSaveBinaryV2) {
  const NodeId n = 500;
  const auto edges = RandomEdges(n, 20000, 11);

  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) ASSERT_TRUE(builder.AddEdge(u, v).ok());
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  const std::string mem_path = TempPath("writer_mem.eng2");
  ASSERT_TRUE(SaveBinaryV2(*built, mem_path).ok());

  for (const uint64_t budget : {uint64_t{0}, uint64_t{64} << 10}) {
    util::ExtSorter sorter(SortOptions("writer", budget));
    for (const auto& [u, v] : edges) {
      ASSERT_TRUE(sorter.Add(util::PackEdge(u, v)).ok());
    }
    const std::string str_path = TempPath("writer_str.eng2");
    StreamWriteOptions opts;
    opts.sort_budget_bytes = budget;
    opts.temp_dir = testing::TempDir();
    auto stats = WriteStreamedV2(&sorter, n, str_path, opts);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->num_nodes, n);
    EXPECT_EQ(stats->num_edges, built->num_edges());
    EXPECT_EQ(stats->graph_checksum, GraphChecksum(*built));
    EXPECT_GT(stats->dropped_duplicates, 0u);
    EXPECT_GT(stats->dropped_self_loops, 0u);
    EXPECT_EQ(Slurp(str_path), Slurp(mem_path)) << "budget=" << budget;
  }
}

TEST(StreamIoTest, StreamedFileMapsAndValidates) {
  const NodeId n = 300;
  const auto edges = RandomEdges(n, 5000, 12);
  util::ExtSorter sorter(SortOptions("maps", 0));
  for (const auto& [u, v] : edges) {
    ASSERT_TRUE(sorter.Add(util::PackEdge(u, v)).ok());
  }
  const std::string path = TempPath("maps.eng2");
  auto stats = WriteStreamedV2(&sorter, n, path, {});
  ASSERT_TRUE(stats.ok());
  auto g = MapBinary(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), n);
  EXPECT_EQ(g->num_edges(), stats->num_edges);
  EXPECT_EQ(GraphChecksum(*g), stats->graph_checksum);
}

TEST(StreamIoTest, SaveStreamedV2MatchesInMemoryWriter) {
  const NodeId n = 400;
  const auto edges = RandomEdges(n, 8000, 13);
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) ASSERT_TRUE(builder.AddEdge(u, v).ok());
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());

  const std::string mem_path = TempPath("save_mem.eng2");
  ASSERT_TRUE(SaveBinaryV2(*built, mem_path).ok());
  const std::string str_path = TempPath("save_str.eng2");
  StreamWriteOptions opts;
  opts.sort_budget_bytes = 64 << 10;
  opts.temp_dir = testing::TempDir();
  auto stats = SaveStreamedV2(*built, str_path, opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Slurp(str_path), Slurp(mem_path));
}

TEST(StreamIoTest, RejectsOutOfRangeEndpoints) {
  util::ExtSorter sorter(SortOptions("range", 0));
  ASSERT_TRUE(sorter.Add(util::PackEdge(0, 9)).ok());  // dst == n
  auto stats = WriteStreamedV2(&sorter, 9, TempPath("range.eng2"), {});
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamIoTest, EmptySorterWritesValidEmptyGraph) {
  util::ExtSorter sorter(SortOptions("empty", 0));
  const std::string path = TempPath("empty.eng2");
  auto stats = WriteStreamedV2(&sorter, 7, path, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_edges, 0u);
  auto g = MapBinary(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 7u);
  EXPECT_EQ(g->num_edges(), 0u);
}

// The tentpole identity: streamed generation == in-memory generation +
// SaveBinaryV2, on raw file bytes, across budgets, window sizes, and
// thread counts. Small N keeps this in tier-1 time; bench_scale asserts
// the same identity as its gate before the big run.
TEST(StreamIoTest, StreamedGeneratorMatchesInMemoryAcrossBudgets) {
  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = 3000;
  cfg.seed = 77;

  auto mem = gen::GenerateVerifiedNetwork(cfg);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  const std::string mem_path = TempPath("gen_mem.eng2");
  ASSERT_TRUE(SaveBinaryV2(mem->graph, mem_path).ok());
  const std::string expected = Slurp(mem_path);
  ASSERT_FALSE(expected.empty());

  struct Case {
    uint64_t budget;
    uint32_t window;
  };
  for (const Case c : {Case{0, 1u << 16}, Case{256 << 10, 512},
                       Case{1 << 20, 100}}) {
    gen::StreamedGenerateOptions opts;
    opts.sort_budget_bytes = c.budget;
    opts.window_sources = c.window;
    opts.temp_dir = testing::TempDir();
    const std::string path = TempPath("gen_str.eng2");
    auto streamed = gen::GenerateVerifiedNetworkToSnapshot(cfg, path, opts);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_EQ(Slurp(path), expected)
        << "budget=" << c.budget << " window=" << c.window;
    // The O(n) side outputs must match the in-memory generator too.
    EXPECT_EQ(streamed->roles, mem->roles);
    EXPECT_EQ(streamed->popularity, mem->popularity);
  }
}

TEST(StreamIoTest, StreamedGeneratorThreadCountInvariant) {
  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = 2000;
  cfg.seed = 99;
  std::string first;
  for (const int threads : {1, 3, 8}) {
    util::SetThreadCount(threads);
    gen::StreamedGenerateOptions opts;
    opts.sort_budget_bytes = 128 << 10;
    opts.window_sources = 256;
    opts.temp_dir = testing::TempDir();
    const std::string path = TempPath("gen_threads.eng2");
    auto streamed = gen::GenerateVerifiedNetworkToSnapshot(cfg, path, opts);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    const std::string bytes = Slurp(path);
    ASSERT_FALSE(bytes.empty());
    if (first.empty()) {
      first = bytes;
    } else {
      EXPECT_EQ(bytes, first) << "threads=" << threads;
    }
  }
  util::SetThreadCount(0);
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

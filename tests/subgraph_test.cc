#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace elitenet {
namespace graph {
namespace {

DiGraph PathGraph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    EXPECT_TRUE(b.AddEdge(u, u + 1).ok());
  }
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(SubgraphTest, InduceKeepsInternalEdgesOnly) {
  const DiGraph g = PathGraph(5);  // 0->1->2->3->4
  auto sub = Induce(g, {1, 2, 4});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.num_nodes(), 3u);
  EXPECT_EQ(sub->graph.num_edges(), 1u);  // only 1->2 survives
  // Mapping: new ids are in old-id order.
  EXPECT_EQ(sub->to_original[0], 1u);
  EXPECT_EQ(sub->to_original[1], 2u);
  EXPECT_EQ(sub->to_original[2], 4u);
  EXPECT_TRUE(sub->graph.HasEdge(0, 1));
}

TEST(SubgraphTest, ToSubMapsBackAndForth) {
  const DiGraph g = PathGraph(4);
  auto sub = Induce(g, {0, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->to_sub[0], 0u);
  EXPECT_EQ(sub->to_sub[3], 1u);
  EXPECT_EQ(sub->to_sub[1], InducedSubgraph::kNotInSubgraph);
  EXPECT_EQ(sub->to_sub[2], InducedSubgraph::kNotInSubgraph);
}

TEST(SubgraphTest, FullMaskIsIdentity) {
  const DiGraph g = PathGraph(6);
  auto sub = InduceByMask(g, std::vector<bool>(6, true));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph, g);
}

TEST(SubgraphTest, EmptyKeepSetGivesEmptyGraph) {
  const DiGraph g = PathGraph(3);
  auto sub = Induce(g, {});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.num_nodes(), 0u);
}

TEST(SubgraphTest, RejectsOutOfRangeNode) {
  const DiGraph g = PathGraph(3);
  EXPECT_EQ(Induce(g, {5}).status().code(), StatusCode::kOutOfRange);
}

TEST(SubgraphTest, RejectsDuplicateNode) {
  const DiGraph g = PathGraph(3);
  EXPECT_EQ(Induce(g, {1, 1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SubgraphTest, RejectsWrongMaskSize) {
  const DiGraph g = PathGraph(3);
  EXPECT_EQ(InduceByMask(g, std::vector<bool>(2, true)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SubgraphTest, PreservesParallelStructure) {
  // Mutual pair plus spoke: verify directions survive induction.
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdges({{0, 1}, {1, 0}, {1, 2}, {3, 1}}).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto sub = Induce(*g, {0, 1});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.num_edges(), 2u);
  EXPECT_TRUE(sub->graph.HasEdge(0, 1));
  EXPECT_TRUE(sub->graph.HasEdge(1, 0));
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

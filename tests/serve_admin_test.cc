// End-to-end test of the admin channel through ServeLines: queries and
// '#' admin lines interleaved on one session, each admin command answered
// with exactly one well-formed JSON line off the query fast path, plain
// comments skipped silently, bad arguments answered with error JSON, and
// #trace round-tripping an id scraped from #recent output.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "serve/telemetry.h"

namespace elitenet {
namespace serve {
namespace {

graph::DiGraph TestGraph() {
  graph::GraphBuilder b(6);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

// Runs one ServeLines session over `input`, returning the output lines
// and the session stats.
struct SessionResult {
  std::vector<std::string> lines;
  ServeStats stats;
};

SessionResult RunSession(const std::string& input,
                         const EngineOptions& opts = EngineOptions()) {
  const graph::DiGraph g = TestGraph();
  auto engine = QueryEngine::Create(g, opts);
  EXPECT_TRUE(engine.ok());

  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  EXPECT_NE(in, nullptr);
  EXPECT_NE(out, nullptr);
  std::fputs(input.c_str(), in);
  std::rewind(in);

  SessionResult result;
  result.stats = ServeLines(engine->get(), in, out);

  std::rewind(out);
  std::string line;
  int c;
  while ((c = std::fgetc(out)) != EOF) {
    if (c == '\n') {
      result.lines.push_back(line);
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  if (!line.empty()) result.lines.push_back(line);
  std::fclose(in);
  std::fclose(out);
  return result;
}

// Balanced-brace JSON shape check (strings respected).
bool JsonBalanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(ServeAdminTest, AdminLinesAnswerOffTheQueryPath) {
  const SessionResult r = RunSession(
      "ego 0\n"
      "#stats\n"
      "#healthz\n"
      "ego 1\n"
      "#recent 2\n"
      "#slow\n"
      "quit\n");
  // 2 queries + 4 admin responses, one line each, in order.
  ASSERT_EQ(r.lines.size(), 6u);
  EXPECT_EQ(r.stats.requests, 2u);
  EXPECT_EQ(r.stats.admin, 4u);
  EXPECT_EQ(r.stats.errors, 0u);
  for (const std::string& line : r.lines) {
    EXPECT_TRUE(JsonBalanced(line)) << line;
    EXPECT_EQ(line.front(), '{') << line;
  }
  EXPECT_NE(r.lines[1].find("\"type\":\"stats\""), std::string::npos);
  // Both completed queries are accounted out of flight again (guards a
  // regression where the decrement was gated behind the metrics switch).
  EXPECT_NE(r.lines[1].find("\"inflight\":0"), std::string::npos)
      << r.lines[1];
  EXPECT_NE(r.lines[2].find("\"type\":\"healthz\""), std::string::npos);
  EXPECT_NE(r.lines[4].find("\"type\":\"recent\""), std::string::npos);
  EXPECT_NE(r.lines[5].find("\"type\":\"slow\""), std::string::npos);
  // #recent 2 reports both completed queries.
  EXPECT_NE(r.lines[4].find("\"ego 0\""), std::string::npos);
  EXPECT_NE(r.lines[4].find("\"ego 1\""), std::string::npos);
}

TEST(ServeAdminTest, PlainCommentsAreSkippedSilently) {
  const SessionResult r = RunSession(
      "# a comment, not an admin verb\n"
      "#\n"
      "ego 0\n"
      "quit\n");
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_EQ(r.stats.requests, 1u);
  EXPECT_EQ(r.stats.admin, 0u);
  EXPECT_EQ(r.stats.errors, 0u);
}

TEST(ServeAdminTest, BadAdminArgumentsProduceErrorJson) {
  const SessionResult r = RunSession(
      "#recent five\n"
      "#trace not-hex\n"
      "quit\n");
  ASSERT_EQ(r.lines.size(), 2u);
  EXPECT_EQ(r.stats.errors, 2u);
  for (const std::string& line : r.lines) {
    EXPECT_TRUE(JsonBalanced(line)) << line;
    EXPECT_NE(line.find("\"type\":\"error\""), std::string::npos) << line;
    EXPECT_NE(line.find("InvalidArgument"), std::string::npos) << line;
  }
}

TEST(ServeAdminTest, TraceRoundTripsFromRecentOutput) {
  const SessionResult first = RunSession(
      "ego 2\n"
      "#recent 1\n"
      "quit\n");
  ASSERT_EQ(first.lines.size(), 2u);
  // Scrape the trace id out of the #recent response.
  const std::string& recent = first.lines[1];
  const std::string key = "\"trace_id\":\"";
  const size_t pos = recent.find(key);
  ASSERT_NE(pos, std::string::npos) << recent;
  const std::string hex = recent.substr(pos + key.size(), 16);
  uint64_t id = 0;
  ASSERT_TRUE(ParseTraceId(hex, &id));

  // Same deterministic stream in a fresh session: #trace finds the
  // record by the scraped id (trace ids are a pure function of the
  // request sequence, so session two assigns the same id).
  const SessionResult second = RunSession(
      "ego 2\n"
      "#trace " + hex + "\n"
      "quit\n");
  ASSERT_EQ(second.lines.size(), 2u);
  EXPECT_NE(second.lines[1].find("\"type\":\"trace\""), std::string::npos);
  EXPECT_NE(second.lines[1].find(hex), std::string::npos);
  EXPECT_NE(second.lines[1].find("\"ego 2\""), std::string::npos);
}

TEST(ServeAdminTest, TraceMissReportsNotFound) {
  const SessionResult r = RunSession(
      "#trace ffffffffffffffff\n"
      "quit\n");
  ASSERT_EQ(r.lines.size(), 1u);
  // A well-formed id that is not resident still answers (the command
  // parsed fine) — with found:false and no record.
  EXPECT_TRUE(JsonBalanced(r.lines[0])) << r.lines[0];
  EXPECT_NE(r.lines[0].find("\"found\":false"), std::string::npos)
      << r.lines[0];
  EXPECT_EQ(r.lines[0].find("\"record\""), std::string::npos) << r.lines[0];
}

TEST(ServeAdminTest, FlagParsingConfiguresTelemetry) {
  EngineOptions opts;
  EXPECT_TRUE(ParseServeFlag("--metrics=/tmp/m.json", &opts));
  EXPECT_EQ(opts.metrics_path, "/tmp/m.json");
  EXPECT_TRUE(ParseServeFlag("--metrics-interval=250", &opts));
  EXPECT_EQ(opts.metrics_interval_ms, 250);
  EXPECT_TRUE(ParseServeFlag("--flight-recorder=1024", &opts));
  EXPECT_EQ(opts.telemetry.recorder_capacity, 1024u);
  EXPECT_TRUE(ParseServeFlag("--slow-ms=20", &opts));
  EXPECT_EQ(opts.telemetry.slow_us, 20000u);
  EXPECT_TRUE(ParseServeFlag("--sample=8", &opts));
  EXPECT_EQ(opts.telemetry.sample_every, 8u);
  EXPECT_TRUE(ParseServeFlag("--no-telemetry", &opts));
  EXPECT_FALSE(opts.telemetry.enabled);
  EXPECT_FALSE(ParseServeFlag("--unknown=1", &opts));
  EXPECT_FALSE(ParseServeFlag("ego 5", &opts));
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

// Robustness: malformed and adversarial inputs to every file-reading
// path must produce a clean Status (IoError/Corruption), never a crash
// or an out-of-range read. Deterministic pseudo-fuzz over random byte
// files plus targeted structural corruptions.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/io.h"
#include "util/rng.h"

namespace elitenet {
namespace graph {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(IoRobustnessTest, RandomBytesAsBinarySnapshot) {
  util::Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t len = 1 + rng.UniformU64(512);
    std::string bytes;
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformU64(256)));
    }
    const std::string path = TempPath("fuzz_snapshot.bin");
    WriteBytes(path, bytes);
    const auto result = LoadBinary(path);
    EXPECT_FALSE(result.ok()) << "trial " << trial;
  }
}

TEST(IoRobustnessTest, RandomBytesWithValidMagic) {
  // Valid magic + garbage body: deeper validation layers must catch it.
  util::Rng rng(43);
  for (int trial = 0; trial < 30; ++trial) {
    std::string bytes = "ENG1";
    const size_t len = rng.UniformU64(256);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformU64(256)));
    }
    const std::string path = TempPath("fuzz_magic.bin");
    WriteBytes(path, bytes);
    EXPECT_FALSE(LoadBinary(path).ok()) << "trial " << trial;
  }
}

TEST(IoRobustnessTest, EveryByteFlipIsDetected) {
  // Build a small snapshot and flip each byte one at a time: every load
  // must either fail cleanly or — never — crash. (Header-field flips can
  // produce huge claimed counts; size validation must reject them.)
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdges({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const std::string path = TempPath("flip_base.eng");
  ASSERT_TRUE(SaveBinary(*g, path).ok());
  std::string original;
  {
    std::ifstream in(path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in), {});
  }
  int detected = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    std::string mutated = original;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    const std::string mpath = TempPath("flip_mut.eng");
    WriteBytes(mpath, mutated);
    const auto result = LoadBinary(mpath);
    if (!result.ok()) {
      ++detected;
    } else {
      // A surviving flip must decode to the identical graph (e.g. a
      // flipped padding byte) — anything else is silent corruption.
      EXPECT_EQ(*result, *g) << "undetected corruption at byte " << i;
    }
  }
  // The checksum covers all array bytes and the header is validated, so
  // the overwhelming majority of flips must be caught.
  EXPECT_GT(detected, static_cast<int>(original.size() * 9 / 10));
}

TEST(IoRobustnessTest, HugeClaimedCountsRejectedWithoutAllocation) {
  // Header claiming 2^62 nodes: must fail fast, not attempt a 2^65-byte
  // resize.
  std::string bytes = "ENG1";
  const uint32_t version = 1, reserved = 0;
  const uint64_t n = uint64_t{1} << 62;
  const uint64_t m = 0, checksum = 0;
  bytes.append(reinterpret_cast<const char*>(&version), 4);
  bytes.append(reinterpret_cast<const char*>(&reserved), 4);
  bytes.append(reinterpret_cast<const char*>(&n), 8);
  bytes.append(reinterpret_cast<const char*>(&m), 8);
  bytes.append(reinterpret_cast<const char*>(&checksum), 8);
  const std::string path = TempPath("huge_header.eng");
  WriteBytes(path, bytes);
  EXPECT_FALSE(LoadBinary(path).ok());
}

TEST(IoRobustnessTest, EdgeListWithPathologicalLines) {
  const std::string path = TempPath("fuzz_edges.txt");
  for (const char* contents :
       {"0 1\n2 18446744073709551616\n",         // id overflow
        "0 1\n1 -3\n",                           // negative
        "4294967296 0\n",                        // above uint32
        "0 1\n0x10 2\n",                         // hex not accepted
        "0 1 # trailing comment\n",              // junk after fields
        "\x01\x02\x03 binary\n"}) {              // binary noise
    std::ofstream(path) << contents;
    EXPECT_FALSE(ReadEdgeListText(path).ok()) << contents;
  }
}

TEST(IoRobustnessTest, EdgeListVeryLongLine) {
  const std::string path = TempPath("fuzz_longline.txt");
  std::ofstream(path) << std::string(100000, '7') << " 1\n";
  // Either parses as an overflow error or corruption — must not crash.
  EXPECT_FALSE(ReadEdgeListText(path).ok());
}

TEST(IoRobustnessTest, NodeCountSmallerThanIdsRejected) {
  const std::string path = TempPath("fuzz_node_count.txt");
  std::ofstream(path) << "0 9\n";
  EXPECT_FALSE(ReadEdgeListText(path, 5).ok());
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

#include "gen/verified_network.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"

namespace elitenet {
namespace gen {
namespace {

// Shared small network for the cheaper assertions (generation is the
// expensive part; reuse it across tests).
const VerifiedNetwork& TestNetwork() {
  static const VerifiedNetwork* network = [] {
    VerifiedNetworkConfig cfg;
    cfg.num_users = 8000;
    auto r = GenerateVerifiedNetwork(cfg);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return new VerifiedNetwork(std::move(r).value());
  }();
  return *network;
}

TEST(VerifiedNetworkTest, RejectsBadConfigs) {
  VerifiedNetworkConfig cfg;
  cfg.num_users = 10;
  EXPECT_FALSE(GenerateVerifiedNetwork(cfg).ok());

  cfg = VerifiedNetworkConfig();
  cfg.density = 0.0;
  EXPECT_FALSE(GenerateVerifiedNetwork(cfg).ok());

  cfg = VerifiedNetworkConfig();
  cfg.reciprocity = 1.5;
  EXPECT_FALSE(GenerateVerifiedNetwork(cfg).ok());

  cfg = VerifiedNetworkConfig();
  cfg.powerlaw_alpha = 1.5;
  EXPECT_FALSE(GenerateVerifiedNetwork(cfg).ok());
}

TEST(VerifiedNetworkTest, RoleCountsMatchFractions) {
  const VerifiedNetwork& net = TestNetwork();
  const auto& cfg = net.config;
  EXPECT_EQ(net.CountRole(UserRole::kIsolated),
            static_cast<uint64_t>(
                std::lround(cfg.isolated_fraction * cfg.num_users)));
  EXPECT_GE(net.CountRole(UserRole::kSink), 1u);
  EXPECT_EQ(net.roles.size(), cfg.num_users);
  EXPECT_EQ(net.popularity.size(), cfg.num_users);
}

TEST(VerifiedNetworkTest, IsolatedNodesHaveNoEdges) {
  const VerifiedNetwork& net = TestNetwork();
  for (graph::NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    if (net.roles[u] == UserRole::kIsolated) {
      EXPECT_EQ(net.graph.OutDegree(u), 0u);
      EXPECT_EQ(net.graph.InDegree(u), 0u);
    }
  }
}

TEST(VerifiedNetworkTest, SinksNeverFollow) {
  const VerifiedNetwork& net = TestNetwork();
  uint64_t sink_in_edges = 0;
  for (graph::NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    if (net.roles[u] == UserRole::kSink) {
      EXPECT_EQ(net.graph.OutDegree(u), 0u);
      sink_in_edges += net.graph.InDegree(u);
    }
  }
  // Celebrities are popular: they collect many followers.
  EXPECT_GT(sink_in_edges, 50u);
}

TEST(VerifiedNetworkTest, DensityNearTarget) {
  const VerifiedNetwork& net = TestNetwork();
  EXPECT_NEAR(net.graph.Density(), net.config.density,
              0.15 * net.config.density);
}

TEST(VerifiedNetworkTest, ReciprocityNearTarget) {
  const VerifiedNetwork& net = TestNetwork();
  const auto rec = analysis::ComputeReciprocity(net.graph);
  EXPECT_NEAR(rec.rate, net.config.reciprocity, 0.06);
}

TEST(VerifiedNetworkTest, CoreNodesHaveOutEdges) {
  const VerifiedNetwork& net = TestNetwork();
  for (graph::NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    if (net.roles[u] == UserRole::kCore) {
      EXPECT_GE(net.graph.OutDegree(u), 1u) << "core node " << u;
    }
  }
}

TEST(VerifiedNetworkTest, GiantSccDominates) {
  const VerifiedNetwork& net = TestNetwork();
  const auto scc =
      analysis::StronglyConnectedComponents(net.graph);
  EXPECT_GT(scc.GiantFraction(), 0.9);
}

TEST(VerifiedNetworkTest, AttractingComponentsCountIsolatedPlusSinks) {
  const VerifiedNetwork& net = TestNetwork();
  const auto scc = analysis::StronglyConnectedComponents(net.graph);
  const auto att = analysis::FindAttractingComponents(net.graph, scc);
  const uint64_t isolated = net.CountRole(UserRole::kIsolated);
  const uint64_t sinks = net.CountRole(UserRole::kSink);
  EXPECT_GE(att.count, isolated + sinks);
  // Small components contribute a few more; the bound stays tight.
  EXPECT_LE(att.count, isolated + sinks +
                           net.CountRole(UserRole::kSmallComponent));
}

TEST(VerifiedNetworkTest, SuperfollowerPlanted) {
  const VerifiedNetwork& net = TestNetwork();
  const auto stats = analysis::ComputeDegreeStats(net.graph);
  EXPECT_EQ(stats.argmax_out_degree, 0u);
  EXPECT_NEAR(
      static_cast<double>(stats.max_out_degree),
      net.config.superfollower_fraction * net.config.num_users,
      0.02 * net.config.num_users);
}

TEST(VerifiedNetworkTest, DeterministicForSeed) {
  VerifiedNetworkConfig cfg;
  cfg.num_users = 2000;
  cfg.seed = 404;
  auto a = GenerateVerifiedNetwork(cfg);
  auto b = GenerateVerifiedNetwork(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph, b->graph);
  EXPECT_EQ(a->popularity, b->popularity);
}

TEST(VerifiedNetworkTest, DifferentSeedsDiffer) {
  VerifiedNetworkConfig cfg;
  cfg.num_users = 2000;
  cfg.seed = 1;
  auto a = GenerateVerifiedNetwork(cfg);
  cfg.seed = 2;
  auto b = GenerateVerifiedNetwork(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->graph == b->graph);
}

TEST(VerifiedNetworkTest, PaperScaleConfigHasPaperUserCount) {
  EXPECT_EQ(PaperScaleConfig().num_users, 231246u);
}

TEST(VerifiedNetworkTest, SmallComponentsAreSmallAndSeparate) {
  const VerifiedNetwork& net = TestNetwork();
  const auto weak = analysis::WeaklyConnectedComponents(net.graph);
  for (graph::NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    if (net.roles[u] == UserRole::kSmallComponent) {
      EXPECT_LE(weak.sizes[weak.label[u]], 6u);
      // Their component contains no core node.
      EXPECT_NE(weak.label[u], weak.GiantId());
    }
  }
}

}  // namespace
}  // namespace gen
}  // namespace elitenet

#include "util/histogram.h"


#include <cmath>
#include <gtest/gtest.h>

namespace elitenet {
namespace util {
namespace {

TEST(LinearHistogramTest, BinsValuesCorrectly) {
  LinearHistogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(3.0);   // bin 1
  h.Add(9.99);  // bin 4
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[4].count, 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogramTest, UnderflowAndOverflowTracked) {
  LinearHistogram h(0.0, 10.0, 2);
  h.Add(-1.0);
  h.Add(10.0);  // max is exclusive
  h.Add(100.0);
  EXPECT_EQ(h.total(), 3u);
  uint64_t binned = 0;
  for (const auto& b : h.bins()) binned += b.count;
  EXPECT_EQ(binned, 0u);
}

TEST(LinearHistogramTest, AddNAccumulates) {
  LinearHistogram h(0.0, 4.0, 4);
  h.AddN(1.5, 10);
  EXPECT_EQ(h.bins()[1].count, 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(LinearHistogramTest, FractionsSumToOneWhenInRange) {
  LinearHistogram h(0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 2.5, 3.5}) h.Add(x);
  double sum = 0.0;
  for (const auto& b : h.bins()) sum += b.fraction;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(LogHistogramTest, ZeroBinCatchesSmallValues) {
  LogHistogram h(1.0, 2.0, 10);
  h.Add(0.0);
  h.Add(0.5);
  h.Add(1.0);
  const auto bins = h.bins();
  EXPECT_EQ(bins[0].count, 2u);  // zero bin
  EXPECT_EQ(bins[1].count, 1u);  // [1, 2)
}

TEST(LogHistogramTest, DoublingBinEdges) {
  LogHistogram h(1.0, 2.0, 4);
  h.Add(1.5);   // [1,2)
  h.Add(3.0);   // [2,4)
  h.Add(7.9);   // [4,8)
  h.Add(8.01);  // [8,16)
  const auto bins = h.bins();
  ASSERT_GE(bins.size(), 5u);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_EQ(bins[3].count, 1u);
  EXPECT_EQ(bins[4].count, 1u);
  EXPECT_NEAR(bins[1].lo, 1.0, 1e-9);
  EXPECT_NEAR(bins[2].lo, 2.0, 1e-9);
  EXPECT_NEAR(bins[3].lo, 4.0, 1e-9);
}

TEST(LogHistogramTest, OverflowBinAppears) {
  LogHistogram h(1.0, 2.0, 2);  // covers [1, 4)
  h.Add(100.0);
  const auto bins = h.bins();
  EXPECT_EQ(bins.back().count, 1u);
  EXPECT_TRUE(std::isinf(bins.back().hi));
}

TEST(LogHistogramTest, AsciiChartMentionsCounts) {
  LogHistogram h(1.0, 2.0, 4);
  for (int i = 0; i < 12; ++i) h.Add(1.5);
  const std::string chart = h.ToAsciiChart("degree");
  EXPECT_NE(chart.find("degree"), std::string::npos);
  EXPECT_NE(chart.find("12"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(IntHistogramTest, CountsAndTotal) {
  IntHistogram h;
  h.Add(1);
  h.Add(2, 5);
  h.Add(2);
  EXPECT_EQ(h.CountOf(1), 1u);
  EXPECT_EQ(h.CountOf(2), 6u);
  EXPECT_EQ(h.CountOf(99), 0u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.max_value(), 2u);
}

TEST(IntHistogramTest, MeanIsWeightedAverage) {
  IntHistogram h;
  h.Add(2, 3);
  h.Add(4, 1);
  EXPECT_DOUBLE_EQ(h.Mean(), (2.0 * 3 + 4.0) / 4.0);
}

TEST(IntHistogramTest, QuantilesStepThroughMass) {
  IntHistogram h;
  h.Add(1, 50);
  h.Add(2, 40);
  h.Add(10, 10);
  EXPECT_EQ(h.Quantile(0.5), 1u);
  EXPECT_EQ(h.Quantile(0.51), 2u);
  EXPECT_EQ(h.Quantile(0.9), 2u);
  EXPECT_EQ(h.Quantile(0.91), 10u);
  EXPECT_EQ(h.Quantile(1.0), 10u);
}

TEST(IntHistogramTest, MaxValueOfEmptyIsZero) {
  IntHistogram h;
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(IntHistogramTest, AsciiChartHasRowPerValue) {
  IntHistogram h;
  h.Add(0, 2);
  h.Add(3, 4);
  const std::string chart = h.ToAsciiChart("hops");
  // Rows for values 0..3 plus a header.
  int newlines = 0;
  for (char c : chart) newlines += c == '\n';
  EXPECT_EQ(newlines, 5);
}

}  // namespace
}  // namespace util
}  // namespace elitenet

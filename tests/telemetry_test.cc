// Tests of the serving telemetry plane: deterministic trace ids, the
// flight-recorder ring (wrap, ordering, lookup, concurrent hammer), slow
// -query pinning, admin-command parsing round-trips, and the engine-level
// correctness bar — response bytes identical with telemetry off, sampled,
// and full, at 1/2/4 workers. Carries the serve and tsan labels.

#include "serve/telemetry.h"

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/verified_network.h"
#include "serve/engine.h"
#include "serve/request.h"

namespace elitenet {
namespace serve {
namespace {

// --------------------------------------------------------------------------
// Trace ids

TEST(TraceIdTest, DeterministicAndDistinct) {
  std::set<uint64_t> seen;
  for (uint64_t seq = 1; seq <= 10000; ++seq) {
    const uint64_t id = TraceIdFor(seq);
    EXPECT_EQ(id, TraceIdFor(seq));  // pure function of seq
    EXPECT_TRUE(seen.insert(id).second) << "collision at seq " << seq;
  }
}

TEST(TraceIdTest, HexRoundTrip) {
  for (uint64_t seq : {uint64_t{1}, uint64_t{42}, uint64_t{1} << 60}) {
    const uint64_t id = TraceIdFor(seq);
    const std::string hex = TraceIdHex(id);
    EXPECT_EQ(hex.size(), 16u);
    uint64_t back = 0;
    ASSERT_TRUE(ParseTraceId(hex, &back)) << hex;
    EXPECT_EQ(back, id);
  }
  uint64_t v = 0;
  EXPECT_TRUE(ParseTraceId("0xABCDEF", &v));
  EXPECT_EQ(v, 0xABCDEFu);
  EXPECT_FALSE(ParseTraceId("", &v));
  EXPECT_FALSE(ParseTraceId("xyz", &v));
  EXPECT_FALSE(ParseTraceId("12345678901234567", &v));  // 17 digits
}

TEST(TraceIdTest, SamplingDensityMatchesSampleEvery) {
  TelemetryOptions opts;
  opts.sample_every = 64;
  Telemetry tel(opts);
  uint64_t sampled = 0;
  constexpr uint64_t kN = 64000;
  for (uint64_t seq = 1; seq <= kN; ++seq) {
    if (tel.Sampled(TraceIdFor(seq))) ++sampled;
  }
  // splitmix64 output is uniform, so the 1-in-64 rate concentrates
  // tightly around kN/64 = 1000.
  EXPECT_GT(sampled, kN / 64 / 2);
  EXPECT_LT(sampled, kN / 64 * 2);
}

// --------------------------------------------------------------------------
// Flight recorder

RequestRecord MakeRecord(uint64_t seq, RequestType type = RequestType::kEgoSummary) {
  RequestRecord r;
  r.seq = seq;
  r.trace_id = TraceIdFor(seq);
  r.request.type = type;
  r.latency_us = seq;
  return r;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(0).capacity(), 1u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 1u);
  EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(256).capacity(), 256u);
  EXPECT_EQ(FlightRecorder(257).capacity(), 512u);
}

TEST(FlightRecorderTest, RecentIsNewestFirstAfterWrap) {
  FlightRecorder ring(8);
  for (uint64_t seq = 1; seq <= 20; ++seq) ring.Push(MakeRecord(seq));
  EXPECT_EQ(ring.total(), 20u);
  const auto recent = ring.Recent(100);
  ASSERT_EQ(recent.size(), 8u);  // resident = capacity after wrap
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, 20 - i);  // newest first
  }
  const auto top3 = ring.Recent(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].seq, 20u);
  EXPECT_EQ(top3[2].seq, 18u);
}

TEST(FlightRecorderTest, FindTraceHitsResidentAndMissesEvicted) {
  FlightRecorder ring(8);
  for (uint64_t seq = 1; seq <= 12; ++seq) ring.Push(MakeRecord(seq));
  RequestRecord out;
  ASSERT_TRUE(ring.FindTrace(TraceIdFor(12), &out));
  EXPECT_EQ(out.seq, 12u);
  ASSERT_TRUE(ring.FindTrace(TraceIdFor(5), &out));  // still resident
  EXPECT_EQ(out.seq, 5u);
  EXPECT_FALSE(ring.FindTrace(TraceIdFor(2), &out));  // lapped away
  EXPECT_FALSE(ring.FindTrace(0xdeadbeef, &out));     // never pushed
}

TEST(FlightRecorderTest, ConcurrentPushersAndReadersAreSafe) {
  FlightRecorder ring(64);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ring.Push(MakeRecord(t * kPerThread + i + 1));
      }
    });
  }
  std::thread reader([&ring] {
    for (int i = 0; i < 200; ++i) {
      const auto recent = ring.Recent(64);
      EXPECT_LE(recent.size(), 64u);
      // Ticket order must hold even mid-hammer: newest first.
      for (size_t j = 1; j < recent.size(); ++j) {
        EXPECT_NE(recent[j].trace_id, 0u);
      }
      RequestRecord out;
      (void)ring.FindTrace(TraceIdFor(1), &out);
    }
  });
  for (auto& w : writers) w.join();
  reader.join();
  EXPECT_EQ(ring.total(), kThreads * kPerThread);
  EXPECT_EQ(ring.Recent(1000).size(), 64u);
}

TEST(TelemetryTest, SlowRingPinsOverThresholdAndDeadlineMisses) {
  TelemetryOptions opts;
  opts.slow_us = 1000;
  Telemetry tel(opts);
  RequestRecord fast = MakeRecord(1);
  fast.latency_us = 10;
  RequestRecord slow = MakeRecord(2);
  slow.latency_us = 5000;
  RequestRecord missed = MakeRecord(3);
  missed.latency_us = 10;
  missed.deadline_missed = true;
  tel.Record(fast);
  tel.Record(slow);
  tel.Record(missed);
  EXPECT_EQ(tel.recent().total(), 3u);
  const auto slow_records = tel.slow().Recent(10);
  ASSERT_EQ(slow_records.size(), 2u);
  EXPECT_EQ(slow_records[0].seq, 3u);
  EXPECT_EQ(slow_records[1].seq, 2u);
}

TEST(TelemetryTest, SloCountersBreakDownByType) {
  Telemetry tel(TelemetryOptions{});
  RequestRecord ego = MakeRecord(1, RequestType::kEgoSummary);
  ego.cache_hit = true;
  RequestRecord dist = MakeRecord(2, RequestType::kDistance);
  dist.ok = false;
  dist.oracle_fallback = true;
  RequestRecord topk = MakeRecord(3, RequestType::kTopKRank);
  topk.degraded = true;
  tel.Record(ego);
  tel.Record(dist);
  tel.Record(topk);
  EXPECT_EQ(tel.type_counters(RequestType::kEgoSummary).requests, 1u);
  EXPECT_EQ(tel.type_counters(RequestType::kEgoSummary).cache_hits, 1u);
  EXPECT_EQ(tel.type_counters(RequestType::kDistance).errors, 1u);
  EXPECT_EQ(tel.type_counters(RequestType::kTopKRank).degraded, 1u);
  EXPECT_EQ(tel.oracle_fallbacks(), 1u);
  const SloCounters totals = tel.totals();
  EXPECT_EQ(totals.requests, 3u);
  EXPECT_EQ(totals.errors, 1u);
  EXPECT_EQ(totals.degraded, 1u);
  EXPECT_EQ(totals.cache_hits, 1u);
}

// --------------------------------------------------------------------------
// Admin parsing

TEST(AdminParseTest, RecognizesEveryVerb) {
  auto stats = ParseAdminLine("#stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->kind, AdminCommand::Kind::kStats);

  auto healthz = ParseAdminLine("  #healthz  ");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->kind, AdminCommand::Kind::kHealthz);

  auto recent = ParseAdminLine("#recent 5");
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->kind, AdminCommand::Kind::kRecent);
  EXPECT_EQ(recent->n, 5u);

  auto recent_default = ParseAdminLine("#recent");
  ASSERT_TRUE(recent_default.ok());
  EXPECT_EQ(recent_default->n, 16u);

  auto slow = ParseAdminLine("# slow 3");
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->kind, AdminCommand::Kind::kSlow);
  EXPECT_EQ(slow->n, 3u);

  auto trace = ParseAdminLine("#trace 00000000deadbeef");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->kind, AdminCommand::Kind::kTrace);
  EXPECT_EQ(trace->trace_id, 0xdeadbeefu);
}

TEST(AdminParseTest, PlainCommentsAreNotFound) {
  // '#' lines with unknown verbs stay comments — old request files keep
  // working.
  EXPECT_TRUE(ParseAdminLine("# this is a comment").status().code() == StatusCode::kNotFound);
  EXPECT_TRUE(ParseAdminLine("#").status().code() == StatusCode::kNotFound);
  EXPECT_TRUE(ParseAdminLine("ego 5").status().code() == StatusCode::kNotFound);
  EXPECT_TRUE(ParseAdminLine("").status().code() == StatusCode::kNotFound);
}

TEST(AdminParseTest, BadArgumentsAreInvalidNotComments) {
  EXPECT_TRUE(
      ParseAdminLine("#recent five").status().code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(ParseAdminLine("#trace").status().code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(ParseAdminLine("#trace zz").status().code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(ParseAdminLine("#stats extra").status().code() == StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Engine byte-identity: telemetry observes, never decides.

class TelemetryEngineTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    gen::VerifiedNetworkConfig cfg;
    cfg.num_users = 1200;
    // The paper's density is too sparse for a 1200-node tail; thicken it
    // so the small fixture still generates (and has paths to probe).
    cfg.density = 0.006;
    cfg.seed = 99;
    auto net = gen::GenerateVerifiedNetwork(cfg);
    ASSERT_TRUE(net.ok());
    graph_ = new graph::DiGraph(std::move(net->graph));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static graph::DiGraph* graph_;
};

graph::DiGraph* TelemetryEngineTest::graph_ = nullptr;

std::vector<Request> SmallMix() {
  std::vector<Request> mix;
  for (uint32_t i = 0; i < 40; ++i) {
    Request ego;
    ego.type = RequestType::kEgoSummary;
    ego.node = i * 7 % 1200;
    mix.push_back(ego);
    Request nb;
    nb.type = RequestType::kNeighbors;
    nb.node = i * 13 % 1200;
    nb.limit = 16;
    mix.push_back(nb);
    Request d;
    d.type = RequestType::kDistance;
    d.node = i % 1200;
    d.target = (i * 31 + 5) % 1200;
    mix.push_back(d);
  }
  Request topk;
  topk.type = RequestType::kTopKRank;
  topk.k = 10;
  mix.push_back(topk);
  return mix;
}

std::vector<std::string> ReplayResponses(const EngineOptions& opts,
                                         const std::vector<Request>& mix) {
  auto engine = QueryEngine::Create(*TelemetryEngineTest::graph_, opts);
  EXPECT_TRUE(engine.ok());
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(mix.size());
  for (const Request& r : mix) futures.push_back((*engine)->Submit(r));
  std::vector<std::string> out;
  out.reserve(mix.size());
  for (auto& f : futures) out.push_back(f.get().json);
  return out;
}

TEST_F(TelemetryEngineTest, ResponsesIdenticalAcrossTelemetryAndWorkers) {
  const std::vector<Request> mix = SmallMix();
  EngineOptions base;
  base.cache_capacity = 64;
  base.threads = 1;
  base.telemetry.enabled = false;
  const std::vector<std::string> reference = ReplayResponses(base, mix);

  for (int threads : {1, 2, 4}) {
    for (uint32_t sample_every : {uint32_t{0}, uint32_t{64}, uint32_t{1}}) {
      EngineOptions opts = base;
      opts.threads = threads;
      opts.telemetry.enabled = true;
      opts.telemetry.sample_every = sample_every;
      const std::vector<std::string> got = ReplayResponses(opts, mix);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], reference[i])
            << "threads=" << threads << " sample_every=" << sample_every
            << " request " << i;
      }
    }
  }
}

TEST_F(TelemetryEngineTest, SubmittedRequestsGetSequentialTraceIds) {
  EngineOptions opts;
  opts.threads = 2;
  opts.telemetry.recorder_capacity = 512;
  auto engine = QueryEngine::Create(*graph_, opts);
  ASSERT_TRUE(engine.ok());
  const std::vector<Request> mix = SmallMix();
  std::vector<std::future<QueryResponse>> futures;
  for (const Request& r : mix) futures.push_back((*engine)->Submit(r));
  for (auto& f : futures) f.get();

  const Telemetry& tel = (*engine)->telemetry();
  EXPECT_EQ(tel.totals().requests, mix.size());
  // Every record's trace id must be the splitmix of its seq, and the
  // seqs must cover 1..n exactly (claimed at submission, in order).
  std::set<uint64_t> seqs;
  for (const RequestRecord& r : tel.recent().Recent(mix.size())) {
    EXPECT_EQ(r.trace_id, TraceIdFor(r.seq));
    seqs.insert(r.seq);
  }
  EXPECT_EQ(seqs.size(), mix.size());
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), mix.size());
}

TEST_F(TelemetryEngineTest, RuntimeToggleStopsRecordingNotResponses) {
  EngineOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 0;  // identical compute paths on both replays
  auto engine = QueryEngine::Create(*graph_, opts);
  ASSERT_TRUE(engine.ok());
  const std::vector<Request> mix = SmallMix();

  std::vector<std::string> on_responses;
  for (const Request& r : mix) {
    on_responses.push_back((*engine)->Submit(r).get().json);
  }
  const uint64_t recorded = (*engine)->telemetry().totals().requests;
  EXPECT_EQ(recorded, mix.size());

  // Off: nothing new is recorded, and the bytes do not change — the
  // live switch bench_observability's A/B flips must be invisible on
  // the wire.
  (*engine)->SetTelemetryEnabled(false);
  for (size_t i = 0; i < mix.size(); ++i) {
    EXPECT_EQ((*engine)->Submit(mix[i]).get().json, on_responses[i]);
  }
  EXPECT_EQ((*engine)->telemetry().totals().requests, recorded);

  // Back on: recording resumes.
  (*engine)->SetTelemetryEnabled(true);
  (*engine)->Submit(mix[0]).get();
  EXPECT_EQ((*engine)->telemetry().totals().requests, recorded + 1);
}

TEST_F(TelemetryEngineTest, SampledRequestsCarrySpanTrees) {
  EngineOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 0;          // every request computes
  opts.telemetry.sample_every = 1;  // sample everything
  auto engine = QueryEngine::Create(*graph_, opts);
  ASSERT_TRUE(engine.ok());
  Request r;
  r.type = RequestType::kEgoSummary;
  r.node = 3;
  (*engine)->Execute(r);

  const auto recent = (*engine)->telemetry().recent().Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_TRUE(recent[0].sampled);
  ASSERT_FALSE(recent[0].spans.empty());
  // Root span is the per-type span; serve.compute nests under it.
  EXPECT_STREQ(recent[0].spans[0].name, "serve.ego");
  bool has_compute = false;
  for (const auto& s : recent[0].spans) {
    if (std::string_view(s.name) == "serve.compute") {
      has_compute = true;
      EXPECT_GT(s.depth, 0);
    }
  }
  EXPECT_TRUE(has_compute);
}

TEST_F(TelemetryEngineTest, AdminResponsesAreOneLineJson) {
  EngineOptions opts;
  opts.threads = 1;
  auto engine = QueryEngine::Create(*graph_, opts);
  ASSERT_TRUE(engine.ok());
  Request r;
  r.type = RequestType::kEgoSummary;
  r.node = 1;
  (*engine)->Execute(r);

  for (const char* line :
       {"#stats", "#healthz", "#recent 4", "#slow", "#trace 1"}) {
    auto cmd = ParseAdminLine(line);
    ASSERT_TRUE(cmd.ok()) << line;
    const std::string json = (*engine)->AdminResponse(*cmd);
    EXPECT_FALSE(json.empty()) << line;
    EXPECT_EQ(json.front(), '{') << line;
    EXPECT_EQ(json.back(), '}') << line;
    EXPECT_EQ(json.find('\n'), std::string::npos) << line;
  }

  // #trace on a resident id round-trips to the full record.
  const auto recent = (*engine)->telemetry().recent().Recent(1);
  ASSERT_FALSE(recent.empty());
  auto cmd = ParseAdminLine("#trace " + TraceIdHex(recent[0].trace_id));
  ASSERT_TRUE(cmd.ok());
  const std::string json = (*engine)->AdminResponse(*cmd);
  EXPECT_NE(json.find(TraceIdHex(recent[0].trace_id)), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"trace\""), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

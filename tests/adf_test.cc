#include "timeseries/adf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elitenet {
namespace timeseries {
namespace {

std::vector<double> Iid(int n, uint64_t seed, double mean = 0.0) {
  util::Rng rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = mean + rng.Normal();
  return out;
}

std::vector<double> RandomWalk(int n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out(n);
  double x = 0.0;
  for (int i = 0; i < n; ++i) {
    x += rng.Normal();
    out[i] = x;
  }
  return out;
}

TEST(AdfTest, IidSeriesStronglyStationary) {
  auto r = AdfTest(Iid(366, 3));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->statistic, -10.0);
  EXPECT_TRUE(r->stationary_at_5pct);
  EXPECT_LT(r->gamma, -0.5);
}

TEST(AdfTest, RandomWalkNotRejected) {
  auto r = AdfTest(RandomWalk(366, 5));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->statistic, -3.0);
  EXPECT_FALSE(r->stationary_at_5pct);
}

TEST(AdfTest, TrendStationarySeriesRejectsUnitRootWithTrendTerm) {
  // y = 0.05 t + noise: stationary around a trend.
  util::Rng rng(7);
  std::vector<double> s;
  for (int i = 0; i < 366; ++i) s.push_back(0.05 * i + rng.Normal());
  AdfOptions opts;
  opts.regression = AdfRegression::kConstantTrend;
  auto r = AdfTest(s, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stationary_at_5pct);
}

TEST(AdfTest, Ar1ModeratePersistence) {
  util::Rng rng(11);
  std::vector<double> s;
  double x = 0.0;
  for (int i = 0; i < 366; ++i) {
    x = 0.7 * x + rng.Normal();
    s.push_back(x);
  }
  auto r = AdfTest(s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stationary_at_5pct);
  // Persistence should make the statistic less extreme than the iid ~-17.
  EXPECT_GT(r->statistic, -12.0);
}

TEST(AdfTest, AutoLagPicksSmallLagForIid) {
  auto r = AdfTest(Iid(366, 13));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->used_lag, 3);
}

TEST(AdfTest, FixedLagIsRespected) {
  AdfOptions opts;
  opts.auto_lag = false;
  opts.max_lag = 5;
  auto r = AdfTest(Iid(366, 17), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->used_lag, 5);
}

TEST(AdfTest, RejectsTooShortSeries) {
  EXPECT_FALSE(AdfTest(Iid(10, 19)).ok());
}

TEST(AdfTest, ConstantOnlyRegressionWorks) {
  AdfOptions opts;
  opts.regression = AdfRegression::kConstant;
  auto r = AdfTest(Iid(366, 23, 5.0), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stationary_at_5pct);
}

TEST(MacKinnonTest, AsymptoticValuesMatchTables) {
  // Large-T limits (MacKinnon 2010): "c": -3.43, -2.86, -2.57;
  // "ct": -3.96, -3.41, -3.13.
  const size_t t = 1000000;
  EXPECT_NEAR(MacKinnonCriticalValue(0.01, AdfRegression::kConstant, t),
              -3.43035, 1e-3);
  EXPECT_NEAR(MacKinnonCriticalValue(0.05, AdfRegression::kConstant, t),
              -2.86154, 1e-3);
  EXPECT_NEAR(MacKinnonCriticalValue(0.10, AdfRegression::kConstant, t),
              -2.56677, 1e-3);
  EXPECT_NEAR(
      MacKinnonCriticalValue(0.01, AdfRegression::kConstantTrend, t),
      -3.95877, 1e-3);
  EXPECT_NEAR(
      MacKinnonCriticalValue(0.05, AdfRegression::kConstantTrend, t),
      -3.41049, 1e-3);
}

TEST(MacKinnonTest, PaperSampleSizeGivesQuotedCritical) {
  // The paper quotes -3.42 at the 95% level for >250 observations with
  // constant + trend.
  const double crit =
      MacKinnonCriticalValue(0.05, AdfRegression::kConstantTrend, 360);
  EXPECT_NEAR(crit, -3.42, 0.01);
}

TEST(MacKinnonTest, FiniteSampleIsMoreNegative) {
  const double small =
      MacKinnonCriticalValue(0.05, AdfRegression::kConstantTrend, 50);
  const double large =
      MacKinnonCriticalValue(0.05, AdfRegression::kConstantTrend, 100000);
  EXPECT_LT(small, large);
}

TEST(MacKinnonTest, CriticalValuesOrderedByLevel) {
  for (auto reg :
       {AdfRegression::kConstant, AdfRegression::kConstantTrend}) {
    const double c1 = MacKinnonCriticalValue(0.01, reg, 366);
    const double c5 = MacKinnonCriticalValue(0.05, reg, 366);
    const double c10 = MacKinnonCriticalValue(0.10, reg, 366);
    EXPECT_LT(c1, c5);
    EXPECT_LT(c5, c10);
  }
}

}  // namespace
}  // namespace timeseries
}  // namespace elitenet

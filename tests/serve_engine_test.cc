#include "serve/engine.h"

#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/bidirectional.h"
#include "analysis/centrality.h"
#include "core/dataset.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "serve/request.h"
#include "serve/warm_index_cache.h"

namespace elitenet {
namespace serve {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// A small fixed graph with every structural feature the ego summary
// reports: a mutual pair (0<->1), a cycle (0->1->2->0), a tail reaching a
// sink (2->3->4), and an isolated node (5).
graph::DiGraph TestGraph() {
  graph::GraphBuilder b(6);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

std::unique_ptr<QueryEngine> MakeEngine(const graph::DiGraph& g,
                                        int threads = 1) {
  EngineOptions opts;
  opts.threads = threads;
  auto engine = QueryEngine::Create(g, opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

TEST(QueryEngineTest, RejectsEmptyGraph) {
  graph::GraphBuilder b(0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(QueryEngine::Create(std::move(*g)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, EgoSummaryMatchesGraph) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeEngine(g);
  const QueryResponse r = engine->ExecuteLine("ego 1");
  ASSERT_TRUE(r.ok) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"type\":\"ego\"")) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"node\":1")) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"out_degree\":2")) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"in_degree\":1")) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"mutual\":1")) << r.json;  // 1<->0 only
  EXPECT_TRUE(Contains(r.json, "\"degraded\":false")) << r.json;

  // The reported PageRank is the warm index's value, byte-for-byte the
  // same double the analysis kernel computes.
  auto pr = analysis::PageRank(g);
  ASSERT_TRUE(pr.ok());
  EXPECT_TRUE(Contains(r.json, JsonDouble(pr->scores[1]))) << r.json;

  const QueryResponse isolated = engine->ExecuteLine("ego 5");
  ASSERT_TRUE(isolated.ok);
  EXPECT_TRUE(Contains(isolated.json, "\"is_isolated\":true"))
      << isolated.json;
}

TEST(QueryEngineTest, TopKMatchesAnalysisRanking) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeEngine(g);
  auto pr = analysis::PageRank(g);
  ASSERT_TRUE(pr.ok());
  const auto top = analysis::TopKByScore(pr->scores, 3);

  const QueryResponse r = engine->ExecuteLine("topk 3");
  ASSERT_TRUE(r.ok) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"returned\":3")) << r.json;
  // Rows appear in the analysis kernel's order.
  size_t pos = 0;
  for (size_t i = 0; i < top.size(); ++i) {
    const std::string needle = "\"rank\":" + std::to_string(i + 1) +
                               ",\"node\":" + std::to_string(top[i]);
    const size_t found = r.json.find(needle, pos);
    EXPECT_NE(found, std::string::npos) << needle << " in " << r.json;
    pos = found;
  }

  // k beyond n clips instead of failing.
  const QueryResponse big = engine->ExecuteLine("topk 100");
  ASSERT_TRUE(big.ok);
  EXPECT_TRUE(Contains(big.json, "\"returned\":6")) << big.json;
}

TEST(QueryEngineTest, DistanceMatchesBidirectionalKernel) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeEngine(g);
  ASSERT_TRUE(engine->distance_oracle_active());
  const auto expect = analysis::BidirectionalDistance(g, 0, 4);
  ASSERT_EQ(expect.distance, 4u);  // 0 -> 1 -> 2 -> 3 -> 4

  const QueryResponse r = engine->ExecuteLine("dist 0 4");
  ASSERT_TRUE(r.ok) << r.json;
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(Contains(r.json, "\"reachable\":true")) << r.json;
  EXPECT_TRUE(Contains(
      r.json, "\"distance\":" + std::to_string(expect.distance)))
      << r.json;
}

TEST(QueryEngineTest, OracleAndBfsFallbackAreByteIdentical) {
  const graph::DiGraph g = TestGraph();
  auto oracle = MakeEngine(g);
  ASSERT_TRUE(oracle->distance_oracle_active());

  EngineOptions bfs_opts;
  bfs_opts.threads = 1;
  bfs_opts.distance_oracle = false;
  auto bfs = QueryEngine::Create(g, bfs_opts);
  ASSERT_TRUE(bfs.ok()) << bfs.status().ToString();
  ASSERT_FALSE((*bfs)->distance_oracle_active());

  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::string line =
          "dist " + std::to_string(u) + " " + std::to_string(v);
      const QueryResponse a = oracle->ExecuteLine(line);
      const QueryResponse b = (*bfs)->ExecuteLine(line);
      ASSERT_TRUE(a.ok) << line << ": " << a.json;
      ASSERT_TRUE(b.ok) << line << ": " << b.json;
      EXPECT_EQ(a.json, b.json) << line;
    }
  }
}

TEST(QueryEngineTest, UnreachableDistanceIsCompleteNotDegraded) {
  const graph::DiGraph g = TestGraph();
  auto engine = MakeEngine(g);
  // Node 4 is a sink, node 5 isolated: both directions provably empty.
  for (const char* line : {"dist 4 0", "dist 0 5", "dist 5 0"}) {
    const QueryResponse r = engine->ExecuteLine(line);
    ASSERT_TRUE(r.ok) << line << ": " << r.json;
    EXPECT_FALSE(r.degraded) << line;
    EXPECT_TRUE(Contains(r.json, "\"reachable\":false")) << r.json;
    EXPECT_TRUE(Contains(r.json, "\"distance\":-1")) << r.json;
  }
}

TEST(QueryEngineTest, TinyDeadlineDegradesGracefully) {
  // A long chain: thousands of BFS levels, each polling the deadline, so
  // a ~0 budget provably cannot complete yet still yields a well-formed
  // response carrying the proven lower bound.
  constexpr graph::NodeId kChain = 20000;
  graph::GraphBuilder b(kChain);
  for (graph::NodeId u = 0; u + 1 < kChain; ++u) {
    ASSERT_TRUE(b.AddEdge(u, u + 1).ok());
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto engine = MakeEngine(*g);
  // A chain is pathological for hub labeling (quadratic label growth),
  // so the builder's budget abort must have kicked in and left dist on
  // the BFS path — otherwise the oracle would answer without expanding
  // and this test could not exercise deadline degradation.
  ASSERT_FALSE(engine->distance_oracle_active());

  const QueryResponse r = engine->ExecuteLine("dist 0 19999 1");
  ASSERT_TRUE(r.ok) << r.json;
  EXPECT_TRUE(r.degraded) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"degraded\":true")) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"reachable\":null")) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"distance\":-1")) << r.json;
  EXPECT_TRUE(Contains(r.json, "\"lower_bound\":")) << r.json;

  // Degraded responses are never cached: asking again with no deadline
  // must recompute and return the true distance.
  const QueryResponse full = engine->ExecuteLine("dist 0 19999");
  ASSERT_TRUE(full.ok) << full.json;
  EXPECT_FALSE(full.degraded);
  EXPECT_TRUE(Contains(full.json, "\"distance\":19999")) << full.json;
}

TEST(QueryEngineTest, ResponsesAreByteIdenticalAcrossWorkerCounts) {
  const graph::DiGraph g = TestGraph();
  std::vector<std::string> lines;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    lines.push_back("ego " + std::to_string(u));
    lines.push_back("neighbors " + std::to_string(u) + " out");
    lines.push_back("neighbors " + std::to_string(u) + " in 2");
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      lines.push_back("dist " + std::to_string(u) + " " + std::to_string(v));
    }
  }
  lines.push_back("topk 4");

  std::vector<std::string> reference;
  for (int threads : {1, 2, 4}) {
    auto engine = MakeEngine(g, threads);
    // Submit everything, then reap in order — completion order is up to
    // the scheduler, response bytes must not be.
    std::vector<std::future<QueryResponse>> futures;
    for (const std::string& line : lines) {
      auto req = ParseRequest(line);
      ASSERT_TRUE(req.ok()) << line;
      futures.push_back(engine->Submit(*req));
    }
    std::vector<std::string> got;
    for (auto& f : futures) got.push_back(f.get().json);
    if (reference.empty()) {
      reference = got;
    } else {
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], reference[i])
            << "thread count " << threads << " diverged on " << lines[i];
      }
    }
  }
}

TEST(QueryEngineTest, MappedSnapshotWithSidecarServesIdenticalBytes) {
  // The full persistence path — text edge list -> ENG2 zero-copy mmap ->
  // .widx warm-index restore — must serve byte-identical responses to an
  // engine rebuilt from the text file, at any worker count. This is the
  // contract that makes the cold-start fast path safe to ship.
  const graph::DiGraph g = TestGraph();
  const std::string txt = testing::TempDir() + "/sidecar_identity.txt";
  const std::string eng2 = testing::TempDir() + "/sidecar_identity.eng2";
  const std::string widx = WarmIndexPathFor(eng2);
  ASSERT_TRUE(graph::WriteEdgeListText(g, txt).ok());
  std::remove(widx.c_str());

  // Canonical graph comes back through the public text loader; the ENG2
  // snapshot is written from it so every path serves the same bytes.
  auto from_text = core::LoadAnyGraph(txt);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(graph::SaveBinaryV2(*from_text, eng2).ok());

  std::vector<std::string> lines;
  for (graph::NodeId u = 0; u < from_text->num_nodes(); ++u) {
    lines.push_back("ego " + std::to_string(u));
    lines.push_back("neighbors " + std::to_string(u) + " out");
    for (graph::NodeId v = 0; v < from_text->num_nodes(); ++v) {
      lines.push_back("dist " + std::to_string(u) + " " + std::to_string(v));
    }
  }
  lines.push_back("topk 5");
  lines.push_back("fingerprint");

  // Reference: rebuilt-from-text engine, no sidecar.
  std::vector<std::string> reference;
  {
    auto engine = MakeEngine(*from_text);
    for (const std::string& line : lines) {
      reference.push_back(engine->ExecuteLine(line).json);
    }
  }

  // First mapped start writes the sidecar, second restores it; both must
  // match the reference byte for byte, at 1 and 4 workers.
  for (int round = 0; round < 2; ++round) {
    for (int threads : {1, 4}) {
      auto mapped = core::LoadAnyGraph(eng2);
      ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
      ASSERT_TRUE(mapped->borrows_storage());
      EngineOptions opts;
      opts.threads = threads;
      opts.warm_index_path = widx;
      auto engine = QueryEngine::Create(std::move(*mapped), opts);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      if (round == 0 && threads == 1) {
        EXPECT_FALSE((*engine)->warm_index_from_cache());
      } else {
        EXPECT_TRUE((*engine)->warm_index_from_cache());
      }
      for (size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ((*engine)->ExecuteLine(lines[i]).json, reference[i])
            << "round " << round << " threads " << threads << " line "
            << lines[i];
      }
    }
  }
}

TEST(QueryEngineTest, CacheHitsAreCountedAndByteIdentical) {
  auto engine = MakeEngine(TestGraph());
  const QueryResponse miss = engine->ExecuteLine("topk 3");
  ASSERT_TRUE(miss.ok);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(engine->cache_hits(), 0u);
  EXPECT_EQ(engine->cache_misses(), 1u);

  const QueryResponse hit = engine->ExecuteLine("topk 3");
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.json, miss.json);
  EXPECT_EQ(engine->cache_hits(), 1u);
  EXPECT_EQ(engine->cache_misses(), 1u);

  // Same query with a (generous) deadline shares the cache entry: the
  // deadline is not part of the key.
  Request with_deadline;
  with_deadline.type = RequestType::kTopKRank;
  with_deadline.k = 3;
  with_deadline.deadline_us = 60ULL * 1000 * 1000;
  const QueryResponse hit2 = engine->Execute(with_deadline);
  ASSERT_TRUE(hit2.ok);
  EXPECT_TRUE(hit2.cache_hit);
  EXPECT_EQ(hit2.json, miss.json);
}

TEST(QueryEngineTest, OutOfRangeNodesAreCleanErrors) {
  auto engine = MakeEngine(TestGraph());
  for (const char* line :
       {"ego 999", "neighbors 999 out", "dist 0 999", "dist 999 0"}) {
    const QueryResponse r = engine->ExecuteLine(line);
    EXPECT_FALSE(r.ok) << line;
    EXPECT_TRUE(Contains(r.json, "\"type\":\"error\"")) << r.json;
    EXPECT_TRUE(Contains(r.json, "NotFound")) << r.json;
  }
  // Parse failures are also well-formed error responses.
  const QueryResponse bad = engine->ExecuteLine("launch missiles");
  EXPECT_FALSE(bad.ok);
  EXPECT_TRUE(Contains(bad.json, "\"type\":\"error\"")) << bad.json;
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

// Direction-optimizing BFS vs a textbook reference on adversarial graph
// shapes (chains, stars, disconnected pieces, zero-edge graphs, random
// digraphs), in all three edge directions and all three kernel modes, at
// several thread counts — the kernels must agree with the reference bit
// for bit everywhere. Also covers ScratchArena epoch semantics, the flat
// undirected CSR, degree relabeling, and the adaptive HasEdge.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/clustering.h"
#include "graph/builder.h"
#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace elitenet {
namespace {

using graph::DiGraph;
using graph::NodeId;

DiGraph MakeGraph(NodeId n,
                  const std::vector<std::pair<NodeId, NodeId>>& edges) {
  graph::GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::vector<NodeId> Successors(const DiGraph& g, NodeId u,
                               graph::TraversalDirection dir) {
  switch (dir) {
    case graph::TraversalDirection::kForward: {
      const auto s = g.OutNeighbors(u);
      return {s.begin(), s.end()};
    }
    case graph::TraversalDirection::kReverse: {
      const auto s = g.InNeighbors(u);
      return {s.begin(), s.end()};
    }
    case graph::TraversalDirection::kUndirected:
      return analysis::UndirectedNeighbors(g, u);
  }
  return {};
}

// Level-synchronous textbook BFS with the canonical conventions the kernel
// promises: minimum-id parent one level closer, visit order ascending
// within each level.
struct RefBfs {
  std::vector<uint32_t> dist;
  std::vector<NodeId> parent;
  std::vector<NodeId> order;
};

RefBfs ReferenceBfs(const DiGraph& g, NodeId source,
                    graph::TraversalDirection dir) {
  RefBfs out;
  out.dist.assign(g.num_nodes(), UINT32_MAX);
  out.parent.assign(g.num_nodes(), graph::kNoParent);
  out.dist[source] = 0;
  out.parent[source] = source;
  std::vector<NodeId> level{source};
  while (!level.empty()) {
    out.order.insert(out.order.end(), level.begin(), level.end());
    std::vector<NodeId> next;
    for (NodeId u : level) {
      for (NodeId v : Successors(g, u, dir)) {
        if (out.dist[v] == UINT32_MAX) {
          out.dist[v] = out.dist[u] + 1;
          out.parent[v] = u;
          next.push_back(v);
        } else if (out.dist[v] == out.dist[u] + 1 && u < out.parent[v]) {
          out.parent[v] = u;
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    level.swap(next);
  }
  return out;
}

constexpr graph::BfsMode kModes[] = {graph::BfsMode::kClassic,
                                     graph::BfsMode::kDirectionOptimizing,
                                     graph::BfsMode::kBottomUp};
constexpr graph::TraversalDirection kDirections[] = {
    graph::TraversalDirection::kForward, graph::TraversalDirection::kReverse,
    graph::TraversalDirection::kUndirected};
constexpr int kThreadCounts[] = {1, 2, 4, 8};

// Every mode and direction must reproduce the reference exactly.
void CheckAllModes(const DiGraph& g, NodeId source) {
  for (auto dir : kDirections) {
    const RefBfs ref = ReferenceBfs(g, source, dir);
    for (auto mode : kModes) {
      graph::ScratchArena arena(g.num_nodes());
      std::vector<NodeId> order;
      graph::BfsOptions opts;
      opts.mode = mode;
      opts.direction = dir;
      opts.compute_parents = true;
      opts.visit_order = &order;
      // Low thresholds so direction-optimizing actually flips on tiny
      // test graphs instead of staying top-down throughout.
      opts.min_bottom_up_frontier = 1;
      opts.alpha = 4.0;
      const graph::BfsStats stats = graph::Bfs(g, source, &arena, opts);
      uint64_t reached = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(arena.DistanceOr(v, UINT32_MAX), ref.dist[v])
            << "dist of node " << v << " from " << source << " mode "
            << static_cast<int>(mode) << " dir " << static_cast<int>(dir);
        ASSERT_EQ(arena.ParentOr(v, graph::kNoParent), ref.parent[v])
            << "parent of node " << v << " from " << source << " mode "
            << static_cast<int>(mode) << " dir " << static_cast<int>(dir);
        if (ref.dist[v] != UINT32_MAX) ++reached;
      }
      EXPECT_EQ(stats.nodes_visited, reached);
      EXPECT_EQ(order, ref.order);
    }
  }
}

TEST(TraversalTest, ChainGraph) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u + 1 < 12; ++u) edges.push_back({u, u + 1});
  const DiGraph g = MakeGraph(12, edges);
  CheckAllModes(g, 0);
  CheckAllModes(g, 6);
  CheckAllModes(g, 11);
}

TEST(TraversalTest, StarGraph) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId leaf = 1; leaf < 40; ++leaf) edges.push_back({0, leaf});
  const DiGraph g = MakeGraph(40, edges);
  CheckAllModes(g, 0);
  CheckAllModes(g, 17);  // a leaf: reaches nothing forward, hub reverse
}

TEST(TraversalTest, DisconnectedGraph) {
  // Two components plus isolated nodes 8 and 9.
  const DiGraph g = MakeGraph(
      10, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  for (NodeId s = 0; s < g.num_nodes(); ++s) CheckAllModes(g, s);
}

TEST(TraversalTest, ZeroEdgeGraph) {
  const DiGraph g = MakeGraph(5, {});
  CheckAllModes(g, 0);
  CheckAllModes(g, 4);
  graph::ScratchArena arena(g.num_nodes());
  const graph::BfsStats stats = graph::Bfs(g, 2, &arena);
  EXPECT_EQ(stats.nodes_visited, 1u);
  EXPECT_EQ(stats.levels, 0u);
  EXPECT_EQ(arena.DistanceOr(2, UINT32_MAX), 0u);
  EXPECT_EQ(arena.DistanceOr(1, UINT32_MAX), UINT32_MAX);
}

TEST(TraversalTest, RandomGraphsAtEveryThreadCount) {
  util::Rng rng(404);
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId n = 180;
  for (uint32_t e = 0; e < 2200; ++e) {
    const auto u = static_cast<NodeId>(rng.UniformU64(n));
    const auto v = static_cast<NodeId>(rng.UniformU64(n));
    if (u != v) edges.push_back({u, v});
  }
  const DiGraph g = MakeGraph(n, edges);
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    CheckAllModes(g, 0);
    CheckAllModes(g, n / 2);
  }
  util::SetThreadCount(0);
}

TEST(TraversalTest, DirectionOptimizingActuallySwitches) {
  // Dense-ish random digraph: the middle level holds most nodes, so with
  // the test thresholds the heuristic must go bottom-up at least once.
  util::Rng rng(77);
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId n = 400;
  for (uint32_t e = 0; e < 6000; ++e) {
    const auto u = static_cast<NodeId>(rng.UniformU64(n));
    const auto v = static_cast<NodeId>(rng.UniformU64(n));
    if (u != v) edges.push_back({u, v});
  }
  const DiGraph g = MakeGraph(n, edges);
  graph::ScratchArena arena(g.num_nodes());
  graph::BfsOptions opts;
  opts.min_bottom_up_frontier = 1;
  opts.alpha = 4.0;
  const graph::BfsStats stats = graph::Bfs(g, 0, &arena, opts);
  EXPECT_GT(stats.direction_switches, 0u);
  EXPECT_GT(stats.bottom_up_levels, 0u);

  // And the forced-bottom-up run scans no more edges than classic by more
  // than the in-edge total (sanity bound, not a perf assertion).
  graph::BfsOptions classic;
  classic.mode = graph::BfsMode::kClassic;
  graph::ScratchArena arena2(g.num_nodes());
  const graph::BfsStats cstats = graph::Bfs(g, 0, &arena2, classic);
  EXPECT_EQ(cstats.nodes_visited, stats.nodes_visited);
  EXPECT_EQ(cstats.direction_switches, 0u);
}

TEST(TraversalTest, ScratchArenaEpochReuse) {
  const DiGraph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  graph::ScratchArena arena(g.num_nodes());
  const uint32_t epoch0 = arena.epoch();
  graph::Bfs(g, 0, &arena);
  EXPECT_EQ(arena.epoch(), epoch0 + 1);
  EXPECT_EQ(arena.DistanceOr(2, UINT32_MAX), 2u);
  EXPECT_EQ(arena.DistanceOr(4, UINT32_MAX), UINT32_MAX);

  // A new traversal invalidates the old facts without touching memory.
  graph::Bfs(g, 3, &arena);
  EXPECT_EQ(arena.epoch(), epoch0 + 2);
  EXPECT_EQ(arena.DistanceOr(2, UINT32_MAX), UINT32_MAX);
  EXPECT_EQ(arena.DistanceOr(4, UINT32_MAX), 1u);

  // BeginEpoch alone wipes the view.
  arena.BeginEpoch();
  EXPECT_FALSE(arena.Visited(3));
  EXPECT_EQ(arena.DistanceOr(4, 123u), 123u);

  // Reset rebinds to a different graph size.
  arena.Reset(2);
  EXPECT_EQ(arena.num_nodes(), 2u);
  EXPECT_FALSE(arena.Visited(0));
}

TEST(TraversalTest, MultiRootSharedEpochSweep) {
  // WCC-style sweep: later roots must not re-enter earlier components.
  const DiGraph g = MakeGraph(7, {{0, 1}, {2, 3}, {3, 2}, {5, 6}});
  graph::ScratchArena arena(g.num_nodes());
  arena.BeginEpoch();
  uint64_t remaining = 2 * g.num_edges();
  graph::BfsOptions opts;
  opts.direction = graph::TraversalDirection::kUndirected;
  opts.fresh_epoch = false;
  opts.remaining_degree = &remaining;
  std::vector<uint64_t> component_sizes;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (arena.Visited(root)) continue;
    const graph::BfsStats stats = graph::Bfs(g, root, &arena, opts);
    component_sizes.push_back(stats.nodes_visited);
  }
  EXPECT_EQ(component_sizes, (std::vector<uint64_t>{2, 2, 1, 2}));
  EXPECT_EQ(remaining, 0u);  // every endpoint's degree was consumed
}

TEST(TraversalTest, UndirectedCsrMatchesPerNodeNeighbors) {
  util::Rng rng(505);
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId n = 120;
  for (uint32_t e = 0; e < 900; ++e) {
    const auto u = static_cast<NodeId>(rng.UniformU64(n));
    const auto v = static_cast<NodeId>(rng.UniformU64(n));
    if (u != v) edges.push_back({u, v});
  }
  const DiGraph g = MakeGraph(n, edges);
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    const graph::UndirectedCsr csr = graph::BuildUndirectedCsr(g);
    ASSERT_EQ(csr.num_nodes(), n);
    for (NodeId u = 0; u < n; ++u) {
      const std::vector<NodeId> expected = analysis::UndirectedNeighbors(g, u);
      const auto got = csr.Neighbors(u);
      ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), expected)
          << "node " << u << " at " << threads << " threads";
      EXPECT_EQ(csr.Degree(u), expected.size());
    }
  }
  util::SetThreadCount(0);
}

TEST(TraversalTest, RelabelByDegreeIsDegreeSortedIsomorphism) {
  util::Rng rng(606);
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId n = 90;
  for (uint32_t e = 0; e < 500; ++e) {
    const auto u = static_cast<NodeId>(rng.UniformU64(n));
    const auto v = static_cast<NodeId>(rng.UniformU64(n));
    if (u != v) edges.push_back({u, v});
  }
  const DiGraph g = MakeGraph(n, edges);
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    const graph::DegreeRelabeling r = g.RelabelByDegree();
    ASSERT_EQ(r.graph.num_nodes(), n);
    ASSERT_EQ(r.graph.num_edges(), g.num_edges());

    // new_to_old and old_to_new are inverse bijections.
    ASSERT_EQ(r.new_to_old.size(), n);
    ASSERT_EQ(r.old_to_new.size(), n);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(r.old_to_new[r.new_to_old[v]], v);
    }

    // Total degree is non-increasing in the new id order, ties by old id.
    for (NodeId v = 0; v + 1 < n; ++v) {
      const uint32_t da = g.OutDegree(r.new_to_old[v]) +
                          g.InDegree(r.new_to_old[v]);
      const uint32_t db = g.OutDegree(r.new_to_old[v + 1]) +
                          g.InDegree(r.new_to_old[v + 1]);
      EXPECT_GE(da, db);
      if (da == db) EXPECT_LT(r.new_to_old[v], r.new_to_old[v + 1]);
    }

    // Edge-for-edge isomorphism under the mapping.
    for (NodeId u = 0; u < n; ++u) {
      std::vector<NodeId> mapped;
      for (NodeId v : g.OutNeighbors(u)) mapped.push_back(r.old_to_new[v]);
      std::sort(mapped.begin(), mapped.end());
      const auto got = r.graph.OutNeighbors(r.old_to_new[u]);
      ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), mapped)
          << "node " << u << " at " << threads << " threads";
    }
  }
  util::SetThreadCount(0);
}

TEST(TraversalTest, HasEdgeAdaptiveOnShortAndLongRows) {
  // Node 0: long row (binary-search path); others: short rows (linear).
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId n = 64;
  for (NodeId v = 1; v < 40; v += 2) edges.push_back({0, v});  // 20 > 8
  edges.push_back({1, 5});
  edges.push_back({1, 9});
  edges.push_back({2, 0});
  const DiGraph g = MakeGraph(n, edges);
  ASSERT_GE(g.OutDegree(0), graph::DiGraph::kHasEdgeLinearThreshold);
  ASSERT_LT(g.OutDegree(1), graph::DiGraph::kHasEdgeLinearThreshold);

  std::set<std::pair<NodeId, NodeId>> present(edges.begin(), edges.end());
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(g.HasEdge(u, v), present.count({u, v}) > 0)
          << "(" << u << ", " << v << ")";
    }
  }
}

}  // namespace
}  // namespace elitenet

#include "util/status.h"

#include <gtest/gtest.h>

namespace elitenet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusCodeTest, ToStringNamesEveryCode) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

namespace macros {

Status FailIf(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status Caller(bool fail, bool* reached_end) {
  EN_RETURN_IF_ERROR(FailIf(fail));
  *reached_end = true;
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EN_ASSIGN_OR_RETURN(const int half, Half(x));
  EN_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  bool reached = false;
  EXPECT_FALSE(macros::Caller(true, &reached).ok());
  EXPECT_FALSE(reached);
  EXPECT_TRUE(macros::Caller(false, &reached).ok());
  EXPECT_TRUE(reached);
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  const Result<int> ok = macros::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  EXPECT_FALSE(macros::Quarter(7).ok());   // first step fails
  EXPECT_FALSE(macros::Quarter(10).ok());  // second step fails (5 is odd)
}

}  // namespace
}  // namespace elitenet

#include "analysis/clustering.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(UndirectedNeighborsTest, UnionOfInAndOut) {
  const DiGraph g = Build(4, {{0, 1}, {2, 0}, {0, 2}});
  const auto n0 = UndirectedNeighbors(g, 0);
  EXPECT_EQ(n0, (std::vector<NodeId>{1, 2}));  // 2 deduplicated
  const auto n3 = UndirectedNeighbors(g, 3);
  EXPECT_TRUE(n3.empty());
}

TEST(ClusteringTest, DirectedTriangleIsFullyClustered) {
  const DiGraph g = Build(3, {{0, 1}, {1, 2}, {2, 0}});
  const ClusteringStats s = ComputeClustering(g);
  EXPECT_DOUBLE_EQ(s.average_local, 1.0);
  EXPECT_DOUBLE_EQ(s.transitivity, 1.0);
  EXPECT_EQ(s.triangles, 1u);
  EXPECT_EQ(s.nodes_evaluated, 3u);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  const DiGraph g = Build(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const ClusteringStats s = ComputeClustering(g);
  EXPECT_DOUBLE_EQ(s.average_local, 0.0);
  EXPECT_EQ(s.triangles, 0u);
  // Only the hub has degree >= 2.
  EXPECT_EQ(s.nodes_evaluated, 1u);
}

TEST(ClusteringTest, PartialTriangle) {
  // Path 1-0-2 plus closing edge 1-2: a triangle plus pendant 3.
  const DiGraph g = Build(4, {{0, 1}, {0, 2}, {1, 2}, {0, 3}});
  const ClusteringStats s = ComputeClustering(g);
  // Node 0: degree 3, neighbors {1,2,3}, one linked pair of 3 -> 1/3.
  // Nodes 1, 2: degree 2, their single pair linked -> 1.0.
  // Node 3: degree 1, not evaluated.
  EXPECT_NEAR(s.average_local, (1.0 / 3.0 + 1.0 + 1.0) / 3.0, 1e-12);
  EXPECT_EQ(s.triangles, 1u);
}

TEST(ClusteringTest, MutualEdgesDoNotDoubleCount) {
  // Fully mutual triangle: same clustering as the one-way triangle.
  const DiGraph g =
      Build(3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2}});
  const ClusteringStats s = ComputeClustering(g);
  EXPECT_DOUBLE_EQ(s.average_local, 1.0);
  EXPECT_EQ(s.triangles, 1u);
}

TEST(ClusteringTest, EmptyGraph) {
  const ClusteringStats s = ComputeClustering(DiGraph());
  EXPECT_EQ(s.average_local, 0.0);
  EXPECT_EQ(s.nodes_evaluated, 0u);
}

TEST(ClusteringSampledTest, SmallGraphFallsBackToExact) {
  const DiGraph g = Build(3, {{0, 1}, {1, 2}, {2, 0}});
  util::Rng rng(3);
  const ClusteringStats s = ComputeClusteringSampled(g, 100, &rng);
  EXPECT_DOUBLE_EQ(s.average_local, 1.0);
}

TEST(ClusteringSampledTest, SampleApproximatesExact) {
  // Random graph: sampled estimate within a few points of exact.
  util::Rng rng(5);
  GraphBuilder b(400);
  for (int i = 0; i < 4000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.UniformU64(400));
    const NodeId v = static_cast<NodeId>(rng.UniformU64(400));
    if (u != v) {
      ASSERT_TRUE(b.AddEdge(u, v).ok());
    }
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const ClusteringStats exact = ComputeClustering(*g);
  util::Rng rng2(7);
  const ClusteringStats approx = ComputeClusteringSampled(*g, 200, &rng2);
  EXPECT_NEAR(approx.average_local, exact.average_local, 0.02);
  EXPECT_EQ(approx.nodes_evaluated, 200u);
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

#include "analysis/assortativity.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(AssortativityTest, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(DegreeAssortativity(DiGraph()), 0.0);
}

TEST(AssortativityTest, ConstantDegreesGiveZero) {
  // Directed cycle: every node has out=in=1 -> zero variance.
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_DOUBLE_EQ(DegreeAssortativity(g, DegreeMode::kOutIn), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(g, DegreeMode::kTotal), 0.0);
}

TEST(AssortativityTest, DisassortativeStar) {
  // Undirected-style star as mutual edges: hub (total degree 6) connects
  // only to leaves (total degree 2) -> strongly negative.
  const DiGraph g =
      Build(4, {{0, 1}, {1, 0}, {0, 2}, {2, 0}, {0, 3}, {3, 0}});
  EXPECT_LT(DegreeAssortativity(g, DegreeMode::kTotal), -0.99);
}

TEST(AssortativityTest, AssortativeByConstruction) {
  // Two mutual cliques of different sizes, no cross edges: high-degree
  // nodes link to high-degree, low to low -> positive.
  GraphBuilder b(7);
  // Clique {0,1,2,3} mutual.
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) {
        ASSERT_TRUE(b.AddEdge(u, v).ok());
      }
    }
  }
  // Pair {4,5} mutual; node 6 isolated.
  ASSERT_TRUE(b.AddEdge(4, 5).ok());
  ASSERT_TRUE(b.AddEdge(5, 4).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_GT(DegreeAssortativity(*g, DegreeMode::kTotal), 0.99);
}

TEST(AssortativityTest, ModesUseCorrectEndpointDegrees) {
  // 0 -> 1, 0 -> 2, 3 -> 0. Degrees: out(0)=2, in(0)=1, out(3)=1 etc.
  const DiGraph g = Build(4, {{0, 1}, {0, 2}, {3, 0}});
  // Hand-compute kOutIn: edges (src out-degree, dst in-degree):
  // (2,1), (2,1), (1,1). Target in-degree constant -> r = 0.
  EXPECT_DOUBLE_EQ(DegreeAssortativity(g, DegreeMode::kOutIn), 0.0);
  // kOutOut: (2,0), (2,0), (1,2): sx has variance, sy too.
  // Means: x=5/3, y=2/3. cov = sum(xy)/3 - mx*my = (0+0+2)/3 - 10/9
  //      = -4/9. vx = (4+4+1)/3 - 25/9 = 2/9. vy = 4/3 - 4/9 = 8/9.
  // r = (-4/9) / sqrt(16/81) = -1.
  EXPECT_NEAR(DegreeAssortativity(g, DegreeMode::kOutOut), -1.0, 1e-12);
}

TEST(AssortativityTest, ReportContainsAllModes) {
  const DiGraph g = Build(4, {{0, 1}, {0, 2}, {3, 0}});
  const AssortativityReport r = ComputeAssortativity(g);
  EXPECT_DOUBLE_EQ(r.out_in, DegreeAssortativity(g, DegreeMode::kOutIn));
  EXPECT_DOUBLE_EQ(r.out_out, DegreeAssortativity(g, DegreeMode::kOutOut));
  EXPECT_DOUBLE_EQ(r.in_in, DegreeAssortativity(g, DegreeMode::kInIn));
  EXPECT_DOUBLE_EQ(r.in_out, DegreeAssortativity(g, DegreeMode::kInOut));
  EXPECT_DOUBLE_EQ(r.total, DegreeAssortativity(g, DegreeMode::kTotal));
}

TEST(AssortativityTest, BoundedByOne) {
  const DiGraph g = Build(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5},
                              {0, 3}, {5, 0}, {2, 4}});
  for (auto mode : {DegreeMode::kOutIn, DegreeMode::kOutOut,
                    DegreeMode::kInIn, DegreeMode::kInOut,
                    DegreeMode::kTotal}) {
    const double r = DegreeAssortativity(g, mode);
    EXPECT_GE(r, -1.0 - 1e-12);
    EXPECT_LE(r, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

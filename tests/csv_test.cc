#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace elitenet {
namespace util {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesRows) {
  const std::string path = TempPath("csv_writer_rows.csv");
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.WriteRow({"a", "b"}).ok());
  ASSERT_TRUE(w.WriteRow({"1", "2,3"}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path), "a,b\n1,\"2,3\"\n");
}

TEST(CsvWriterTest, WriteBeforeOpenFails) {
  CsvWriter w;
  EXPECT_EQ(w.WriteRow({"x"}).code(), StatusCode::kFailedPrecondition);
}

TEST(CsvWriterTest, DoubleOpenFails) {
  const std::string path = TempPath("csv_writer_double.csv");
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  EXPECT_EQ(w.Open(path).code(), StatusCode::kFailedPrecondition);
}

TEST(CsvWriterTest, OpenBadPathFails) {
  CsvWriter w;
  EXPECT_EQ(w.Open("/nonexistent-dir-zzz/file.csv").code(),
            StatusCode::kIoError);
}

TEST(CsvWriterTest, CloseIsIdempotent) {
  const std::string path = TempPath("csv_writer_close.csv");
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  EXPECT_TRUE(w.Close().ok());
  EXPECT_TRUE(w.Close().ok());
}

TEST(CsvWriterTest, EmptyRowIsJustNewline) {
  const std::string path = TempPath("csv_writer_empty.csv");
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.WriteRow({}).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(ReadFile(path), "\n");
}

}  // namespace
}  // namespace util
}  // namespace elitenet

#include "stats/descriptive.h"

#include <vector>

#include <gtest/gtest.h>

namespace elitenet {
namespace stats {
namespace {

TEST(MeanTest, Basic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(VarianceTest, UnbiasedDenominator) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sum of squared deviations = 32; n-1 = 7.
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(VarianceTest, FewerThanTwoIsZero) {
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{}), 0.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, UnsortedInputHandled) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 5.0);
}

TEST(DescribeTest, FullSummary) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const Summary s = Describe(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 31.0 / 8.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_GT(s.q75, s.q25);
  EXPECT_NEAR(s.stddev * s.stddev, s.variance, 1e-12);
}

TEST(DescribeTest, EmptySampleIsAllZero) {
  const Summary s = Describe(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SkewnessTest, SymmetricIsZero) {
  const std::vector<double> xs{-2.0, -1.0, 0.0, 1.0, 2.0};
  EXPECT_NEAR(Skewness(xs), 0.0, 1e-12);
}

TEST(SkewnessTest, RightTailIsPositive) {
  const std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_GT(Skewness(xs), 1.0);
}

TEST(SkewnessTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(Skewness(std::vector<double>{1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(Skewness(std::vector<double>{3.0, 3.0, 3.0}), 0.0);
}

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_NEAR(Gini(std::vector<double>{5.0, 5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(GiniTest, TotalConcentrationApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs[99] = 1000.0;
  EXPECT_NEAR(Gini(xs), 0.99, 1e-9);
}

TEST(GiniTest, KnownSmallExample) {
  // {1, 3}: Gini = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(Gini(std::vector<double>{1.0, 3.0}), 0.25, 1e-12);
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

#include "timeseries/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

namespace elitenet {
namespace timeseries {
namespace {

TEST(MatrixTest, StoresAndRetrieves) {
  Matrix m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(1, 2) = -4.5;
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), -4.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(MatrixTest, FillValue) {
  Matrix m(2, 2, 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
}

TEST(LeastSquaresTest, ExactSquareSystem) {
  // [1 1; 1 2] x = [3; 5] -> x = (1, 2).
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  auto sol = SolveLeastSquares(a, {3.0, 5.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 1.0, 1e-12);
  EXPECT_NEAR(sol->x[1], 2.0, 1e-12);
  EXPECT_NEAR(sol->rss, 0.0, 1e-20);
}

TEST(LeastSquaresTest, OverdeterminedRegressionLine) {
  // Fit y = 2 + 3x through noisy-free points: exact recovery.
  const int n = 10;
  Matrix a(n, 2);
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
    b[i] = 2.0 + 3.0 * i;
  }
  auto sol = SolveLeastSquares(a, b);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 2.0, 1e-10);
  EXPECT_NEAR(sol->x[1], 3.0, 1e-10);
}

TEST(LeastSquaresTest, ResidualIsOrthogonalProjection) {
  // One column: projection of b onto a. rss = |b|^2 - (a.b)^2/|a|^2.
  Matrix a(3, 1);
  a(0, 0) = 1;
  a(1, 0) = 1;
  a(2, 0) = 1;
  auto sol = SolveLeastSquares(a, {1.0, 2.0, 6.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 3.0, 1e-12);  // mean
  EXPECT_NEAR(sol->rss, 14.0, 1e-10);  // (1-3)^2+(2-3)^2+(6-3)^2
}

TEST(LeastSquaresTest, XtxInvDiagMatchesClosedForm) {
  // For a single centered column, (AᵀA)⁻¹ = 1/Σx².
  Matrix a(4, 1);
  a(0, 0) = 1;
  a(1, 0) = -1;
  a(2, 0) = 2;
  a(3, 0) = -2;
  auto sol = SolveLeastSquares(a, {0.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->xtx_inv_diag[0], 1.0 / 10.0, 1e-12);
}

TEST(LeastSquaresTest, XtxInvDiagTwoColumnOrthogonal) {
  Matrix a(4, 2, 0.0);
  // Orthogonal columns with norms² 4 and 20.
  for (int i = 0; i < 4; ++i) a(i, 0) = 1.0;
  a(0, 1) = 3.0;
  a(1, 1) = -3.0;
  a(2, 1) = 1.0;
  a(3, 1) = -1.0;
  auto sol = SolveLeastSquares(a, {1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->xtx_inv_diag[0], 0.25, 1e-12);
  EXPECT_NEAR(sol->xtx_inv_diag[1], 0.05, 1e-12);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix a(1, 2, 1.0);
  EXPECT_FALSE(SolveLeastSquares(a, {1.0}).ok());
}

TEST(LeastSquaresTest, RejectsCollinearColumns) {
  Matrix a(5, 2);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = i + 1.0;
    a(i, 1) = 2.0 * (i + 1.0);  // exact multiple
  }
  auto sol = SolveLeastSquares(a, {1, 2, 3, 4, 5});
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LeastSquaresTest, RejectsSizeMismatch) {
  Matrix a(3, 1, 1.0);
  EXPECT_FALSE(SolveLeastSquares(a, {1.0, 2.0}).ok());
}

TEST(LeastSquaresTest, IllConditionedStillAccurate) {
  // Vandermonde-ish: QR should handle moderate conditioning.
  const int n = 20;
  Matrix a(n, 3);
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) {
    const double t = i / 19.0;
    a(i, 0) = 1.0;
    a(i, 1) = t;
    a(i, 2) = t * t;
    b[i] = 0.5 - 1.25 * t + 4.0 * t * t;
  }
  auto sol = SolveLeastSquares(a, b);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 0.5, 1e-8);
  EXPECT_NEAR(sol->x[1], -1.25, 1e-8);
  EXPECT_NEAR(sol->x[2], 4.0, 1e-8);
}

}  // namespace
}  // namespace timeseries
}  // namespace elitenet

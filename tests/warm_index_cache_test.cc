// Warm-index sidecar tests: the save/load round trip restores exactly
// the indexes the engine computed, the key (graph checksum + config
// hash) invalidates stale sidecars with FailedPrecondition, structural
// damage is Corruption, and the engine degrades every failure to a
// silent rebuild — a bad .widx must never take down a server start.

#include "serve/warm_index_cache.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/io.h"
#include "serve/engine.h"

namespace elitenet {
namespace serve {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

graph::DiGraph TestGraph() {
  graph::GraphBuilder b(6);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

WarmIndexKey KeyFor(const graph::DiGraph& g, const EngineOptions& opts) {
  return {graph::GraphChecksum(g),
          WarmConfigHash(opts.pagerank, opts.fingerprint,
                         opts.distance_oracle)};
}

void FlipByte(const std::string& path, long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  char c;
  f.seekg(offset);
  f.get(c);
  f.seekp(offset);
  f.put(static_cast<char>(c ^ 0x01));
}

// Builds the engine once with the sidecar configured, which writes it.
std::unique_ptr<QueryEngine> EngineWithSidecar(const graph::DiGraph& g,
                                               const std::string& widx) {
  EngineOptions opts;
  opts.warm_index_path = widx;
  auto engine = QueryEngine::Create(g, opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

TEST(WarmIndexPathTest, AppendsWidxAndStripsTrailingSlashes) {
  EXPECT_EQ(WarmIndexPathFor("follows.eng2"), "follows.eng2.widx");
  EXPECT_EQ(WarmIndexPathFor("data/run1/"), "data/run1.widx");
  EXPECT_EQ(WarmIndexPathFor("data/run1///"), "data/run1.widx");
}

TEST(WarmConfigHashTest, SensitiveToEveryIndexOption) {
  analysis::PageRankOptions pr;
  core::FingerprintOptions fp;
  const uint64_t base = WarmConfigHash(pr, fp, true);
  EXPECT_EQ(WarmConfigHash(pr, fp, true), base);

  analysis::PageRankOptions pr2 = pr;
  pr2.damping += 0.01;
  EXPECT_NE(WarmConfigHash(pr2, fp, true), base);

  core::FingerprintOptions fp2 = fp;
  fp2.seed += 1;
  EXPECT_NE(WarmConfigHash(pr, fp2, true), base);

  // Toggling the distance oracle changes the key: a sidecar built without
  // the oracle never validates for an engine that expects one (and vice
  // versa) — it degrades to a rebuild instead of serving without labels.
  EXPECT_NE(WarmConfigHash(pr, fp, false), base);
}

TEST(WarmIndexCacheTest, RoundTripRestoresEveryIndex) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("roundtrip.widx");
  std::remove(widx.c_str());
  auto engine = EngineWithSidecar(g, widx);
  ASSERT_FALSE(engine->warm_index_from_cache());

  EngineOptions opts;
  auto restored = LoadWarmIndexes(widx, KeyFor(g, opts), g.num_nodes());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const WarmIndexes& built = engine->warm_indexes();
  EXPECT_EQ(restored->pagerank, built.pagerank);
  EXPECT_EQ(restored->rank_order, built.rank_order);
  EXPECT_EQ(restored->rank_of, built.rank_of);
  EXPECT_EQ(restored->mutual_degree, built.mutual_degree);
  EXPECT_EQ(restored->wcc.label, built.wcc.label);
  EXPECT_EQ(restored->wcc.sizes, built.wcc.sizes);
  EXPECT_EQ(restored->wcc.num_components, built.wcc.num_components);
  EXPECT_EQ(restored->scc.label, built.scc.label);
  EXPECT_EQ(restored->scc.sizes, built.scc.sizes);
  EXPECT_EQ(restored->degree_stats.density, built.degree_stats.density);
  EXPECT_EQ(restored->reciprocity.mutual_pairs,
            built.reciprocity.mutual_pairs);
  EXPECT_EQ(restored->fingerprint_ok, built.fingerprint_ok);
  EXPECT_EQ(restored->fingerprint_error, built.fingerprint_error);
  EXPECT_EQ(restored->fingerprint_similarity, built.fingerprint_similarity);
  ASSERT_FALSE(built.hub_labels.empty());
  EXPECT_EQ(restored->hub_labels.out_offsets(),
            built.hub_labels.out_offsets());
  EXPECT_EQ(restored->hub_labels.out_entries(),
            built.hub_labels.out_entries());
  EXPECT_EQ(restored->hub_labels.in_offsets(), built.hub_labels.in_offsets());
  EXPECT_EQ(restored->hub_labels.in_entries(), built.hub_labels.in_entries());
}

TEST(WarmIndexCacheTest, StaleGraphChecksumIsFailedPrecondition) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("stale_graph.widx");
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);

  EngineOptions opts;
  WarmIndexKey key = KeyFor(g, opts);
  key.graph_checksum ^= 1;  // "the graph changed"
  EXPECT_EQ(LoadWarmIndexes(widx, key, g.num_nodes()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(WarmIndexCacheTest, StaleConfigHashIsFailedPrecondition) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("stale_config.widx");
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);

  EngineOptions opts;
  WarmIndexKey key = KeyFor(g, opts);
  key.config_hash ^= 1;  // "the index options changed"
  EXPECT_EQ(LoadWarmIndexes(widx, key, g.num_nodes()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(WarmIndexCacheTest, NodeCountMismatchIsFailedPrecondition) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("node_count.widx");
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);

  EngineOptions opts;
  EXPECT_EQ(
      LoadWarmIndexes(widx, KeyFor(g, opts), g.num_nodes() + 1)
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
}

TEST(WarmIndexCacheTest, VersionSkewIsNotSupported) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("version.widx");
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);
  FlipByte(widx, 4);  // u32 version follows the magic
  EngineOptions opts;
  EXPECT_EQ(
      LoadWarmIndexes(widx, KeyFor(g, opts), g.num_nodes()).status().code(),
      StatusCode::kNotSupported);
}

// Forward compatibility, old side: a sidecar written by the previous
// format generation (version 1, no hub-label sections) must be refused
// with NotSupported — never misparsed — and the engine must degrade it
// to a rebuild that rewrites the file in the current format.
TEST(WarmIndexCacheTest, OldFormatSidecarDegradesToRebuildAndRewrite) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("old_format.widx");
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);

  // Rewind the header's version field (u32 at offset 4) from 2 to 1,
  // simulating a file left behind by the previous release.
  {
    std::fstream f(widx, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const uint32_t v1 = 1;
    f.seekp(4);
    f.write(reinterpret_cast<const char*>(&v1), sizeof(v1));
  }

  EngineOptions opts;
  EXPECT_EQ(
      LoadWarmIndexes(widx, KeyFor(g, opts), g.num_nodes()).status().code(),
      StatusCode::kNotSupported);

  auto engine = EngineWithSidecar(g, widx);  // must not fail
  EXPECT_FALSE(engine->warm_index_from_cache());
  auto next = EngineWithSidecar(g, widx);  // the rebuild rewrote v2
  EXPECT_TRUE(next->warm_index_from_cache());
}

// Forward compatibility, new side: an oracle-bearing sidecar must be
// cleanly rejected by readers that predate the hub-label sections. The
// v1 reader's first check is `version == 1` (NotSupported on mismatch),
// so it suffices that the on-disk version advanced; a reader that only
// differs in config (oracle disabled) is caught by the key instead.
TEST(WarmIndexCacheTest, NewSectionsAreInvisibleToOldReaders) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("new_sections.widx");
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);

  uint32_t version = 0;
  {
    std::ifstream f(widx, std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(4);
    f.read(reinterpret_cast<char*>(&version), sizeof(version));
  }
  EXPECT_EQ(version, 2u) << "hub-label sections must bump the format version";

  EngineOptions no_oracle;
  no_oracle.distance_oracle = false;
  EXPECT_EQ(
      LoadWarmIndexes(widx, KeyFor(g, no_oracle), g.num_nodes())
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
}

TEST(WarmIndexCacheTest, DamageIsCorruption) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("damage.widx");
  EngineOptions opts;
  const WarmIndexKey key = KeyFor(g, opts);

  // Bad magic.
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);
  FlipByte(widx, 0);
  EXPECT_EQ(LoadWarmIndexes(widx, key, g.num_nodes()).status().code(),
            StatusCode::kCorruption);

  // Payload bit flip (first section starts after the 64 B header and the
  // 14-entry * 32 B table, aligned to 512).
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);
  FlipByte(widx, 512);
  EXPECT_EQ(LoadWarmIndexes(widx, key, g.num_nodes()).status().code(),
            StatusCode::kCorruption);

  // Truncation.
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);
  {
    std::string contents;
    std::ifstream in(widx, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
    in.close();
    std::ofstream(widx, std::ios::binary | std::ios::trunc)
        << contents.substr(0, contents.size() / 2);
  }
  EXPECT_EQ(LoadWarmIndexes(widx, key, g.num_nodes()).status().code(),
            StatusCode::kCorruption);

  // Zero-length file.
  std::ofstream(widx, std::ios::binary | std::ios::trunc).flush();
  EXPECT_EQ(LoadWarmIndexes(widx, key, g.num_nodes()).status().code(),
            StatusCode::kCorruption);

  // Missing file.
  std::remove(widx.c_str());
  EXPECT_EQ(LoadWarmIndexes(widx, key, g.num_nodes()).status().code(),
            StatusCode::kIoError);
}

TEST(WarmIndexCacheTest, SecondEngineStartRestoresFromSidecar) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("second_start.widx");
  std::remove(widx.c_str());

  auto first = EngineWithSidecar(g, widx);
  EXPECT_FALSE(first->warm_index_from_cache());
  auto second = EngineWithSidecar(g, widx);
  EXPECT_TRUE(second->warm_index_from_cache());

  for (const char* line :
       {"ego 0", "ego 1", "ego 5", "topk 6", "dist 0 4", "dist 4 0",
        "neighbors 1 out", "neighbors 0 in", "fingerprint"}) {
    const QueryResponse a = first->ExecuteLine(line);
    const QueryResponse b = second->ExecuteLine(line);
    EXPECT_EQ(a.json, b.json) << line;
  }
}

TEST(WarmIndexCacheTest, EngineDegradesCorruptSidecarToRebuild) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("degrade.widx");
  std::ofstream(widx, std::ios::binary | std::ios::trunc)
      << "garbage that is definitely not a WIDX file";

  auto engine = EngineWithSidecar(g, widx);  // must not fail
  EXPECT_FALSE(engine->warm_index_from_cache());

  // The rebuild rewrote a valid sidecar: the next start hits it.
  auto next = EngineWithSidecar(g, widx);
  EXPECT_TRUE(next->warm_index_from_cache());
}

TEST(WarmIndexCacheTest, GraphChangeInvalidatesAndRewrites) {
  const graph::DiGraph g = TestGraph();
  const std::string widx = TempPath("graph_change.widx");
  std::remove(widx.c_str());
  EngineWithSidecar(g, widx);

  // A different graph with the same node count: checksum key mismatch.
  graph::GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 5).ok());
  auto other = b.Build();
  ASSERT_TRUE(other.ok());

  auto engine = EngineWithSidecar(*other, widx);
  EXPECT_FALSE(engine->warm_index_from_cache());
  auto again = EngineWithSidecar(*other, widx);
  EXPECT_TRUE(again->warm_index_from_cache());
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

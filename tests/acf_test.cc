#include "timeseries/acf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elitenet {
namespace timeseries {
namespace {

std::vector<double> WhiteNoise(int n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = rng.Normal();
  return out;
}

std::vector<double> Ar1(int n, double phi, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out(n);
  double x = 0.0;
  for (int i = 0; i < n; ++i) {
    x = phi * x + rng.Normal();
    out[i] = x;
  }
  return out;
}

TEST(AcfTest, RejectsBadLag) {
  const std::vector<double> s{1, 2, 3};
  EXPECT_FALSE(Autocorrelation(s, 0).ok());
  EXPECT_FALSE(Autocorrelation(s, 3).ok());
}

TEST(AcfTest, RejectsConstantSeries) {
  const std::vector<double> s(50, 2.0);
  EXPECT_FALSE(Autocorrelation(s, 5).ok());
}

TEST(AcfTest, WhiteNoiseHasNegligibleAcf) {
  const auto s = WhiteNoise(5000, 3);
  auto acf = Autocorrelation(s, 20);
  ASSERT_TRUE(acf.ok());
  for (double r : *acf) {
    EXPECT_LT(std::fabs(r), 0.05);
  }
}

TEST(AcfTest, Ar1AcfDecaysGeometrically) {
  const auto s = Ar1(60000, 0.8, 5);
  auto acf = Autocorrelation(s, 5);
  ASSERT_TRUE(acf.ok());
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NEAR((*acf)[k - 1], std::pow(0.8, k), 0.04) << "lag " << k;
  }
}

TEST(AcfTest, PeriodicSeriesHasPeakAtPeriod) {
  std::vector<double> s;
  for (int i = 0; i < 700; ++i) {
    s.push_back(i % 7 == 0 ? 0.0 : 1.0);
  }
  auto acf = Autocorrelation(s, 14);
  ASSERT_TRUE(acf.ok());
  EXPECT_GT((*acf)[6], 0.9);   // lag 7
  EXPECT_GT((*acf)[13], 0.9);  // lag 14
  EXPECT_LT((*acf)[0], 0.0);   // adjacent days anti-correlated
}

TEST(LjungBoxTest, WhiteNoiseNotRejected) {
  const auto s = WhiteNoise(400, 7);
  auto r = LjungBoxTest(s, 20);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->max_p_value, 0.05);
  EXPECT_EQ(r->p_values.size(), 20u);
  EXPECT_EQ(r->statistics.size(), 20u);
}

TEST(LjungBoxTest, Ar1StronglyRejected) {
  const auto s = Ar1(400, 0.7, 11);
  auto r = LjungBoxTest(s, 20);
  ASSERT_TRUE(r.ok());
  // Every lag depth should reject decisively.
  for (double p : r->p_values) EXPECT_LT(p, 1e-6);
}

TEST(LjungBoxTest, StatisticsIncreaseWithLagDepth) {
  const auto s = Ar1(300, 0.5, 13);
  auto r = LjungBoxTest(s, 10);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->statistics.size(); ++i) {
    EXPECT_GE(r->statistics[i], r->statistics[i - 1]);
  }
}

TEST(BoxPierceTest, StatisticBelowLjungBox) {
  // Q_BP = n Σ r² < Q_LB = n(n+2) Σ r²/(n-k) for every depth.
  const auto s = Ar1(300, 0.6, 17);
  auto lb = LjungBoxTest(s, 15);
  auto bp = BoxPierceTest(s, 15);
  ASSERT_TRUE(lb.ok());
  ASSERT_TRUE(bp.ok());
  for (size_t i = 0; i < 15; ++i) {
    EXPECT_LT(bp->statistics[i], lb->statistics[i]);
  }
}

TEST(BoxPierceTest, WhiteNoiseNotRejected) {
  const auto s = WhiteNoise(400, 19);
  auto r = BoxPierceTest(s, 20);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->max_p_value, 0.05);
}

TEST(PortmanteauTest, PaperScaleActivitySignalGivesTinyP) {
  // A year of daily data with persistence plus a weekly dip, as in
  // Section V: the *maximum* p over lag depths 1..185 must be
  // astronomically small, which requires signal at every depth —
  // persistence covers the small lags, the weekly pattern the rest.
  util::Rng rng(23);
  std::vector<double> s;
  double u = 0.0;
  for (int i = 0; i < 366; ++i) {
    u = 0.55 * u + 0.01 * rng.Normal();
    double lv = u;
    if (i % 7 == 0) lv += std::log(0.96);
    if (i >= 205 && i <= 207) lv += std::log(0.75);  // holiday dip
    if (i >= 306) lv += std::log(1.035);             // level shift
    s.push_back(std::exp(lv));
  }
  auto lb = LjungBoxTest(s, 185);
  auto bp = BoxPierceTest(s, 185);
  ASSERT_TRUE(lb.ok());
  ASSERT_TRUE(bp.ok());
  EXPECT_LT(lb->max_p_value, 1e-10);
  EXPECT_LT(bp->max_p_value, 1e-10);
}

}  // namespace
}  // namespace timeseries
}  // namespace elitenet

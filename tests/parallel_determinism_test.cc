// The determinism contract of the parallel kernels: every randomized or
// floating-point pipeline stage must produce bit-identical results for any
// thread count. Each test runs a kernel at 1 thread and at several worker
// counts and compares exactly (EXPECT_EQ on doubles — no tolerance).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/centrality.h"
#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/distance.h"
#include "analysis/hits.h"
#include "analysis/kcore.h"
#include "gen/verified_network.h"
#include "graph/frontier.h"
#include "graph/hub_labels.h"
#include "graph/traversal.h"
#include "stats/powerlaw.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::SetThreadCount(0);
    util::SetTracingEnabled(false);
    util::SetMetricsEnabled(false);
    util::TraceRecorder::Global().Clear();
  }

  static const gen::VerifiedNetwork& Network() {
    static const gen::VerifiedNetwork* net = [] {
      util::SetThreadCount(1);
      gen::VerifiedNetworkConfig cfg;
      cfg.num_users = 4000;
      auto result = gen::GenerateVerifiedNetwork(cfg);
      EXPECT_TRUE(result.ok());
      return new gen::VerifiedNetwork(std::move(*result));
    }();
    return *net;
  }
};

constexpr int kThreadCounts[] = {2, 3, 8};

TEST_F(ParallelDeterminismTest, GenerateVerifiedNetwork) {
  const gen::VerifiedNetwork& base = Network();  // built at 1 thread
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    gen::VerifiedNetworkConfig cfg;
    cfg.num_users = 4000;
    auto net = gen::GenerateVerifiedNetwork(cfg);
    ASSERT_TRUE(net.ok());
    ASSERT_EQ(net->graph.num_nodes(), base.graph.num_nodes());
    ASSERT_EQ(net->graph.num_edges(), base.graph.num_edges()) << threads;
    for (graph::NodeId u = 0; u < base.graph.num_nodes(); ++u) {
      const auto a = base.graph.OutNeighbors(u);
      const auto b = net->graph.OutNeighbors(u);
      ASSERT_EQ(std::vector<graph::NodeId>(a.begin(), a.end()),
                std::vector<graph::NodeId>(b.begin(), b.end()))
          << "node " << u << " at " << threads << " threads";
    }
    EXPECT_EQ(net->roles, base.roles);
    EXPECT_EQ(net->popularity, base.popularity);
  }
}

TEST_F(ParallelDeterminismTest, SampleDistances) {
  const graph::DiGraph& g = Network().graph;
  util::SetThreadCount(1);
  util::Rng rng1(77);
  const analysis::DistanceDistribution base =
      analysis::SampleDistances(g, 24, &rng1);
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    util::Rng rng(77);
    const analysis::DistanceDistribution d =
        analysis::SampleDistances(g, 24, &rng);
    EXPECT_EQ(d.mean_distance, base.mean_distance) << threads;
    EXPECT_EQ(d.median_distance, base.median_distance);
    EXPECT_EQ(d.effective_diameter, base.effective_diameter);
    EXPECT_EQ(d.reachable_pairs, base.reachable_pairs);
    EXPECT_EQ(d.unreachable_pairs, base.unreachable_pairs);
    EXPECT_EQ(d.diameter_lower_bound, base.diameter_lower_bound);
    EXPECT_EQ(d.hops.counts(), base.hops.counts());
  }
}

TEST_F(ParallelDeterminismTest, BootstrapGoodness) {
  const graph::DiGraph& g = Network().graph;
  std::vector<double> degrees;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > 0) degrees.push_back(g.OutDegree(u));
  }
  const auto fit = stats::FitDiscrete(degrees);
  ASSERT_TRUE(fit.ok());

  util::SetThreadCount(1);
  util::Rng rng1(99);
  const auto base = stats::BootstrapGoodness(degrees, *fit, 12, &rng1);
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    util::Rng rng(99);
    const auto gof = stats::BootstrapGoodness(degrees, *fit, 12, &rng);
    ASSERT_TRUE(gof.ok());
    EXPECT_EQ(gof->p_value, base->p_value) << threads;
    EXPECT_EQ(gof->replicates, base->replicates);
  }
}

TEST_F(ParallelDeterminismTest, PageRank) {
  const graph::DiGraph& g = Network().graph;
  util::SetThreadCount(1);
  const auto base = analysis::PageRank(g, {});
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    const auto pr = analysis::PageRank(g, {});
    ASSERT_TRUE(pr.ok());
    EXPECT_EQ(pr->iterations, base->iterations);
    EXPECT_EQ(pr->scores, base->scores) << threads;  // bitwise-equal vector
  }
}

TEST_F(ParallelDeterminismTest, Betweenness) {
  const graph::DiGraph& g = Network().graph;
  analysis::BetweennessOptions opts;
  opts.pivots = 96;
  opts.seed = 5;
  util::SetThreadCount(1);
  const auto base = analysis::Betweenness(g, opts);
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    const auto bc = analysis::Betweenness(g, opts);
    ASSERT_TRUE(bc.ok());
    EXPECT_EQ(*bc, *base) << threads;
  }
}

TEST_F(ParallelDeterminismTest, Hits) {
  const graph::DiGraph& g = Network().graph;
  util::SetThreadCount(1);
  const auto base = analysis::Hits(g, {});
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    const auto h = analysis::Hits(g, {});
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->hub, base->hub) << threads;
    EXPECT_EQ(h->authority, base->authority);
  }
}

TEST_F(ParallelDeterminismTest, Clustering) {
  const graph::DiGraph& g = Network().graph;
  util::SetThreadCount(1);
  const analysis::ClusteringStats base = analysis::ComputeClustering(g);
  util::Rng srng1(11);
  const analysis::ClusteringStats base_sampled =
      analysis::ComputeClusteringSampled(g, 500, &srng1);
  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    const analysis::ClusteringStats full = analysis::ComputeClustering(g);
    EXPECT_EQ(full.average_local, base.average_local) << threads;
    EXPECT_EQ(full.transitivity, base.transitivity);
    EXPECT_EQ(full.triangles, base.triangles);
    EXPECT_EQ(full.nodes_evaluated, base.nodes_evaluated);
    util::Rng srng(11);
    const analysis::ClusteringStats sampled =
        analysis::ComputeClusteringSampled(g, 500, &srng);
    EXPECT_EQ(sampled.average_local, base_sampled.average_local) << threads;
    EXPECT_EQ(sampled.nodes_evaluated, base_sampled.nodes_evaluated);
  }
}

// The distance-oracle labels are persisted and checksummed, so the
// construction must be a pure function of the graph: bit-identical
// offset and entry arrays at every thread count (the acceptance grid is
// 1/2/4/8; 3 rides along to catch non-power-of-two chunking bugs).
TEST_F(ParallelDeterminismTest, HubLabels) {
  const graph::DiGraph& g = Network().graph;
  util::SetThreadCount(1);
  const graph::HubLabels base = graph::BuildHubLabels(g);
  ASSERT_FALSE(base.empty());
  ASSERT_TRUE(graph::ValidateHubLabels(base, g.num_nodes()).ok());
  for (int threads : {2, 3, 4, 8}) {
    util::SetThreadCount(threads);
    const graph::HubLabels labels = graph::BuildHubLabels(g);
    EXPECT_EQ(labels.out_offsets(), base.out_offsets()) << threads;
    EXPECT_EQ(labels.out_entries(), base.out_entries()) << threads;
    EXPECT_EQ(labels.in_offsets(), base.in_offsets()) << threads;
    EXPECT_EQ(labels.in_entries(), base.in_entries()) << threads;
  }
}

// Relabel-invariant summary of one BFS (counts and hop sums survive any
// node renumbering).
struct BfsTally {
  uint64_t reached = 0;
  uint64_t dist_sum = 0;
  uint32_t max_dist = 0;
  bool operator==(const BfsTally&) const = default;
};

BfsTally TallyBfs(const graph::DiGraph& g, graph::NodeId source) {
  graph::ScratchArena arena(g.num_nodes());
  const graph::BfsStats stats = graph::Bfs(g, source, &arena);
  BfsTally t;
  t.reached = stats.nodes_visited;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint32_t d = arena.DistanceOr(v, 0);
    t.dist_sum += d;
    t.max_dist = std::max(t.max_dist, d);
  }
  return t;
}

// The traversal-backed kernels (multi-root WCC, flat-CSR k-core, the BFS
// kernel itself) must stay bit-identical for any thread count.
TEST_F(ParallelDeterminismTest, TraversalKernels) {
  const graph::DiGraph& g = Network().graph;
  util::SetThreadCount(1);
  const analysis::ComponentLabeling wcc_base =
      analysis::WeaklyConnectedComponents(g);
  const analysis::KCoreResult kcore_base = analysis::KCoreDecomposition(g);
  const std::vector<graph::NodeId> sources = {0, 7, g.num_nodes() / 2,
                                              g.num_nodes() - 1};
  std::vector<BfsTally> tallies_base;
  for (graph::NodeId s : sources) tallies_base.push_back(TallyBfs(g, s));

  for (int threads : kThreadCounts) {
    util::SetThreadCount(threads);
    const analysis::ComponentLabeling wcc =
        analysis::WeaklyConnectedComponents(g);
    EXPECT_EQ(wcc.label, wcc_base.label) << threads;
    EXPECT_EQ(wcc.sizes, wcc_base.sizes);
    EXPECT_EQ(wcc.num_components, wcc_base.num_components);
    const analysis::KCoreResult kcore = analysis::KCoreDecomposition(g);
    EXPECT_EQ(kcore.coreness, kcore_base.coreness) << threads;
    EXPECT_EQ(kcore.max_core, kcore_base.max_core);
    EXPECT_EQ(kcore.innermost_size, kcore_base.innermost_size);
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(TallyBfs(g, sources[i]), tallies_base[i])
          << "source " << sources[i] << " at " << threads << " threads";
    }
  }
}

// Degree relabeling is an isomorphism, so every integer-valued kernel
// output must carry over node for node (float scores are excluded: their
// accumulation order legitimately changes with the numbering).
TEST_F(ParallelDeterminismTest, RelabeledGraphEquivalence) {
  const graph::DiGraph& g = Network().graph;
  util::SetThreadCount(1);
  const graph::DegreeRelabeling r = g.RelabelByDegree();
  ASSERT_EQ(r.graph.num_nodes(), g.num_nodes());
  ASSERT_EQ(r.graph.num_edges(), g.num_edges());

  // Coreness maps node for node.
  const analysis::KCoreResult kc = analysis::KCoreDecomposition(g);
  const analysis::KCoreResult kc_rel = analysis::KCoreDecomposition(r.graph);
  EXPECT_EQ(kc.max_core, kc_rel.max_core);
  EXPECT_EQ(kc.innermost_size, kc_rel.innermost_size);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(kc_rel.coreness[r.old_to_new[u]], kc.coreness[u]) << u;
  }

  // WCC: same partition under the mapping (ids may renumber).
  const analysis::ComponentLabeling wcc = analysis::WeaklyConnectedComponents(g);
  const analysis::ComponentLabeling wcc_rel =
      analysis::WeaklyConnectedComponents(r.graph);
  ASSERT_EQ(wcc.num_components, wcc_rel.num_components);
  std::vector<uint32_t> comp_map(wcc.num_components, UINT32_MAX);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint32_t c = wcc.label[u];
    const uint32_t c_rel = wcc_rel.label[r.old_to_new[u]];
    if (comp_map[c] == UINT32_MAX) comp_map[c] = c_rel;
    ASSERT_EQ(comp_map[c], c_rel) << "node " << u;
    ASSERT_EQ(wcc.sizes[c], wcc_rel.sizes[c_rel]);
  }

  // BFS from mapped sources: identical relabel-invariant tallies.
  for (graph::NodeId s : {graph::NodeId{0}, g.num_nodes() / 2}) {
    EXPECT_EQ(TallyBfs(g, s), TallyBfs(r.graph, r.old_to_new[s]))
        << "source " << s;
  }
}

// The observability layer must observe without deciding: every kernel's
// output stays bit-identical whether tracing and metrics are on or off,
// at every thread count (satisfying the "instrumentation never feeds back
// into results" contract of util/trace.h and util/metrics.h).
TEST_F(ParallelDeterminismTest, InstrumentationDoesNotPerturbResults) {
  const graph::DiGraph& g = Network().graph;

  struct KernelOutputs {
    std::vector<double> pagerank;
    std::vector<double> betweenness;
    double mean_distance = 0.0;
    uint64_t reachable_pairs = 0;
    double bootstrap_p = 0.0;
  };
  const auto run_kernels = [&] {
    KernelOutputs out;
    const auto pr = analysis::PageRank(g, {});
    EXPECT_TRUE(pr.ok());
    if (pr.ok()) out.pagerank = pr->scores;
    analysis::BetweennessOptions opts;
    opts.pivots = 64;
    opts.seed = 5;
    const auto bc = analysis::Betweenness(g, opts);
    EXPECT_TRUE(bc.ok());
    if (bc.ok()) out.betweenness = *bc;
    util::Rng drng(42);
    const analysis::DistanceDistribution dist =
        analysis::SampleDistances(g, 16, &drng);
    out.mean_distance = dist.mean_distance;
    out.reachable_pairs = dist.reachable_pairs;
    std::vector<double> degrees;
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (g.OutDegree(u) > 0) degrees.push_back(g.OutDegree(u));
    }
    const auto fit = stats::FitDiscrete(degrees);
    EXPECT_TRUE(fit.ok());
    if (fit.ok()) {
      util::Rng brng(43);
      const auto gof = stats::BootstrapGoodness(degrees, *fit, 6, &brng);
      EXPECT_TRUE(gof.ok());
      if (gof.ok()) out.bootstrap_p = gof->p_value;
    }
    return out;
  };

  util::SetThreadCount(1);
  util::SetTracingEnabled(false);
  util::SetMetricsEnabled(false);
  const KernelOutputs base = run_kernels();

  for (int threads : {1, 2, 4, 8}) {
    util::SetThreadCount(threads);
    for (const bool instrumented : {false, true}) {
      util::SetTracingEnabled(instrumented);
      util::SetMetricsEnabled(instrumented);
      const KernelOutputs out = run_kernels();
      EXPECT_EQ(out.pagerank, base.pagerank)
          << threads << " threads, instrumented=" << instrumented;
      EXPECT_EQ(out.betweenness, base.betweenness)
          << threads << " threads, instrumented=" << instrumented;
      EXPECT_EQ(out.mean_distance, base.mean_distance);
      EXPECT_EQ(out.reachable_pairs, base.reachable_pairs);
      EXPECT_EQ(out.bootstrap_p, base.bootstrap_p);
      if (instrumented) {
        // The run actually recorded something — the comparison above must
        // not pass vacuously because instrumentation silently no-opped.
        EXPECT_GT(util::TraceRecorder::Global().size(), 0u);
        EXPECT_GT(util::MetricsRegistry::Global().Snapshot().CounterOr0(
                      "parallel.for_calls"),
                  0u);
        util::SetTracingEnabled(false);
        util::SetMetricsEnabled(false);
        util::TraceRecorder::Global().Clear();
        util::MetricsRegistry::Global().ResetValues();
      }
    }
  }
}

}  // namespace
}  // namespace elitenet

// Shape tests against the paper's reported numbers at a reduced scale:
// every headline claim of Sections III-V must hold qualitatively for the
// default-configured synthetic study. These are the assertions
// EXPERIMENTS.md cites.

#include <gtest/gtest.h>

#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "core/paper_reference.h"
#include "core/study.h"

namespace elitenet {
namespace core {
namespace {

// 12k users keeps this suite under a few seconds while leaving the
// fractions meaningful.
const VerifiedStudy& ShapeStudy() {
  static const VerifiedStudy* study = [] {
    StudyConfig cfg;
    cfg.network.num_users = 12000;
    cfg.bootstrap_replicates = 10;
    cfg.distance_sources = 24;
    cfg.betweenness_pivots = 96;
    cfg.clustering_samples = 4000;
    cfg.eigenvalue_k = 120;
    auto* s = new VerifiedStudy(cfg);
    EXPECT_TRUE(s->Generate().ok());
    return s;
  }();
  return *study;
}

double Scale() {
  return static_cast<double>(ShapeStudy().network().graph.num_nodes()) /
         static_cast<double>(paper::kUsersEnglish);
}

TEST(PaperShapeTest, SectionIII_DatasetShape) {
  const auto& g = ShapeStudy().network().graph;
  // Density 0.00148 (the key scale-free quantity).
  EXPECT_NEAR(g.Density(), paper::kDensity, 0.15 * paper::kDensity);
  // Isolated users scale with the paper's 6,027 / 231,246.
  const auto deg = analysis::ComputeDegreeStats(g);
  EXPECT_NEAR(static_cast<double>(deg.isolated_nodes),
              paper::kIsolatedUsers * Scale(),
              0.1 * paper::kIsolatedUsers * Scale() + 3.0);
}

TEST(PaperShapeTest, SectionIVA_GiantSccAndComponents) {
  auto basic = ShapeStudy().RunBasic();
  ASSERT_TRUE(basic.ok());
  // GSCC 97.24% of users.
  EXPECT_NEAR(basic->giant_scc_fraction, paper::kGiantSccFraction, 0.02);
  // Weak components scale with 6,251.
  EXPECT_NEAR(static_cast<double>(basic->weak_components),
              paper::kConnectedComponents * Scale(),
              0.15 * paper::kConnectedComponents * Scale());
  // Attracting components scale with 6,091 and exceed the isolated count.
  EXPECT_NEAR(static_cast<double>(basic->attracting_components),
              paper::kAttractingComponents * Scale(),
              0.15 * paper::kAttractingComponents * Scale());
}

TEST(PaperShapeTest, SectionIVA_ClusteringAndAssortativity) {
  auto basic = ShapeStudy().RunBasic();
  ASSERT_TRUE(basic.ok());
  // Clustering 0.1583: same order, within a factor ~1.6 at reduced scale.
  EXPECT_GT(basic->clustering.average_local, 0.08);
  EXPECT_LT(basic->clustering.average_local, 0.25);
  // Slight dissortativity (paper: -0.04) — negative but small.
  EXPECT_LT(basic->assortativity.out_in, 0.0);
  EXPECT_GT(basic->assortativity.out_in, -0.15);
}

TEST(PaperShapeTest, SectionIVC_Reciprocity) {
  const auto rec =
      analysis::ComputeReciprocity(ShapeStudy().network().graph);
  // 33.7%, above whole-Twitter's 22.1% and below Flickr's 68%.
  EXPECT_NEAR(rec.rate, paper::kReciprocity, 0.04);
  EXPECT_GT(rec.rate, paper::kReciprocityWholeTwitter);
  EXPECT_LT(rec.rate, paper::kReciprocityFlickr);
}

TEST(PaperShapeTest, SectionIVB_OutDegreePowerLaw) {
  auto fit = ShapeStudy().RunOutDegreeFit(/*with_bootstrap=*/true);
  ASSERT_TRUE(fit.ok());
  // Alpha 3.24 +- band; xmin scales like 1334 (i.e. ~3.9x mean degree).
  EXPECT_NEAR(fit->fit.alpha, paper::kOutDegreeAlpha, 0.35);
  const double mean_degree =
      ShapeStudy().network().graph.Density() *
      static_cast<double>(ShapeStudy().network().graph.num_nodes());
  EXPECT_GT(fit->fit.xmin, 1.5 * mean_degree);
  // Goodness of fit: p > 0.1 (paper: 0.13).
  ASSERT_TRUE(fit->gof.has_value());
  EXPECT_GT(fit->gof->p_value, 0.1);
  // Vuong: exponential and Poisson decisively rejected.
  ASSERT_TRUE(fit->vs_exponential.has_value());
  EXPECT_GT(fit->vs_exponential->log_likelihood_ratio, 10.0);
  if (fit->vs_poisson.has_value()) {
    EXPECT_GT(fit->vs_poisson->log_likelihood_ratio, 10.0);
  }
  // Log-normal must not be decisively better than the power law.
  ASSERT_TRUE(fit->vs_lognormal.has_value());
  EXPECT_GT(fit->vs_lognormal->statistic, -2.0);
}

TEST(PaperShapeTest, SectionIVB_EigenvaluePowerLaw) {
  auto fit = ShapeStudy().RunEigenvalueFit(/*with_bootstrap=*/false);
  ASSERT_TRUE(fit.ok());
  // Paper: alpha 3.18. The spectral tail at reduced scale is noisier;
  // require the right ballpark.
  EXPECT_GT(fit->fit.alpha, 2.2);
  EXPECT_LT(fit->fit.alpha, 4.2);
}

TEST(PaperShapeTest, SectionIVD_DegreesOfSeparation) {
  auto d = ShapeStudy().RunDistances();
  ASSERT_TRUE(d.ok());
  // Mean distance 2.74; the network is smaller so allow a wider band,
  // but it must stay well below the whole-Twitter 4.12.
  EXPECT_GT(d->mean_distance, 2.0);
  EXPECT_LT(d->mean_distance, paper::kMeanDistanceWholeTwitterSampled);
  // Effective diameter in single digits (MSN-scale networks had 7.8).
  EXPECT_LE(d->effective_diameter, 6u);
}

TEST(PaperShapeTest, Fig5_CentralityPredictsReach) {
  auto rel = ShapeStudy().RunCentralityRelations();
  ASSERT_TRUE(rel.ok());
  // All six trends positive.
  for (const auto& r : *rel) {
    EXPECT_GT(r.curve.spearman, 0.0) << r.x_name << " vs " << r.y_name;
  }
  // PageRank-followers stronger than betweenness-followers ("especially
  // strong" in the paper), and lists-followers the strongest panel.
  EXPECT_GT((*rel)[3].curve.spearman, (*rel)[1].curve.spearman);
  EXPECT_GT((*rel)[5].curve.spearman, 0.6);
  // Statuses-followers is the weakest but still positive (Fig. 5e).
  EXPECT_LT((*rel)[4].curve.spearman, (*rel)[5].curve.spearman);
}

TEST(PaperShapeTest, SectionV_ActivityBattery) {
  auto act = ShapeStudy().RunActivity();
  ASSERT_TRUE(act.ok());
  EXPECT_LT(act->ljung_box.max_p_value, 1e-20);
  EXPECT_LT(act->box_pierce.max_p_value, 1e-20);
  EXPECT_LT(act->adf.statistic, paper::kAdfCritical95);
  EXPECT_NEAR(act->adf.crit_5pct, paper::kAdfCritical95, 0.01);
  ASSERT_EQ(act->change_dates.size(),
            static_cast<size_t>(paper::kChangePoints));
  EXPECT_EQ(act->change_dates[0].month, 12);
  EXPECT_EQ(act->change_dates[1].month, 4);
}

TEST(PaperShapeTest, TablesIAndII_TopPhrases) {
  auto text = ShapeStudy().RunText();
  ASSERT_TRUE(text.ok());
  ASSERT_GE(text->top_bigrams.size(), 10u);
  EXPECT_EQ(text->top_bigrams[0].ngram, "official twitter");
  ASSERT_GE(text->top_trigrams.size(), 3u);
  EXPECT_EQ(text->top_trigrams[0].ngram, "official twitter account");
  EXPECT_EQ(text->top_trigrams[1].ngram, "official twitter page");
  // The ratio head/second in Table I is ~4.4; require same regime.
  const double ratio = static_cast<double>(text->top_bigrams[0].count) /
                       static_cast<double>(text->top_bigrams[1].count);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 7.0);
}

}  // namespace
}  // namespace core
}  // namespace elitenet

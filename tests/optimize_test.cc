#include "stats/optimize.h"

#include <cmath>

#include <gtest/gtest.h>

namespace elitenet {
namespace stats {
namespace {

TEST(GoldenSectionTest, FindsParabolaMinimum) {
  const auto f = [](double x) { return (x - 3.0) * (x - 3.0) + 2.0; };
  const ScalarMin m = MinimizeGoldenSection(f, -10.0, 10.0);
  EXPECT_NEAR(m.x, 3.0, 1e-6);
  EXPECT_NEAR(m.fx, 2.0, 1e-10);
}

TEST(GoldenSectionTest, MinimumAtBoundary) {
  const auto f = [](double x) { return x; };
  const ScalarMin m = MinimizeGoldenSection(f, 1.0, 5.0);
  EXPECT_NEAR(m.x, 1.0, 1e-5);
}

TEST(GoldenSectionTest, NonSymmetricUnimodal) {
  const auto f = [](double x) { return std::cosh(x - 0.7); };
  const ScalarMin m = MinimizeGoldenSection(f, -3.0, 4.0);
  EXPECT_NEAR(m.x, 0.7, 1e-6);
}

TEST(NelderMeadTest, Quadratic2D) {
  const auto f = [](const std::vector<double>& p) {
    const double dx = p[0] - 1.0;
    const double dy = p[1] + 2.0;
    return dx * dx + 3.0 * dy * dy;
  };
  const SimplexMin m = MinimizeNelderMead(f, {0.0, 0.0});
  EXPECT_TRUE(m.converged);
  EXPECT_NEAR(m.x[0], 1.0, 1e-4);
  EXPECT_NEAR(m.x[1], -2.0, 1e-4);
}

TEST(NelderMeadTest, Rosenbrock) {
  const auto f = [](const std::vector<double>& p) {
    const double a = 1.0 - p[0];
    const double b = p[1] - p[0] * p[0];
    return a * a + 100.0 * b * b;
  };
  const SimplexMin m = MinimizeNelderMead(f, {-1.2, 1.0}, 0.5, 1e-14, 5000);
  EXPECT_NEAR(m.x[0], 1.0, 1e-3);
  EXPECT_NEAR(m.x[1], 1.0, 1e-3);
}

TEST(NelderMeadTest, OneDimensional) {
  const auto f = [](const std::vector<double>& p) {
    return std::pow(p[0] - 4.0, 2);
  };
  const SimplexMin m = MinimizeNelderMead(f, {0.0});
  EXPECT_NEAR(m.x[0], 4.0, 1e-4);
}

TEST(BisectTest, FindsSimpleRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  EXPECT_NEAR(FindRootBisect(f, 0.0, 2.0), std::sqrt(2.0), 1e-9);
}

TEST(BisectTest, DecreasingFunction) {
  const auto f = [](double x) { return 5.0 - x; };
  EXPECT_NEAR(FindRootBisect(f, 0.0, 10.0), 5.0, 1e-9);
}

TEST(BisectTest, RootAtEndpoint) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(FindRootBisect(f, 0.0, 1.0), 0.0, 1e-9);
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

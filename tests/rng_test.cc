#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace elitenet {
namespace util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ParetoRespectsLowerBoundAndTail) {
  Rng rng(23);
  const int n = 30000;
  int above_double = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Pareto(3.0, 5.0);
    EXPECT_GE(x, 5.0);
    if (x >= 10.0) ++above_double;
  }
  // P(X >= 2 xmin) = 2^{1-alpha} = 0.25 for alpha = 3.
  EXPECT_NEAR(static_cast<double>(above_double) / n, 0.25, 0.02);
}

TEST(RngTest, PowerLawIntAtLeastKmin) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(rng.PowerLawInt(2.5, 7), 7u);
  }
}

TEST(RngTest, PoissonSmallLambdaMean) {
  Rng rng(31);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.07);
}

TEST(RngTest, PoissonLargeLambdaMean) {
  Rng rng(37);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(41);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, GeometricMean) {
  Rng rng(43);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(0.25));
  // Mean failures before success: (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(47);
  EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(59);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(61);
  for (uint32_t k : {0u, 1u, 5u, 50u, 99u, 100u}) {
    const std::vector<uint32_t> s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<uint32_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), k);
    for (uint32_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsUnbiasedish) {
  // Every element should be picked roughly equally often.
  Rng rng(67);
  std::vector<int> counts(20, 0);
  const int reps = 6000;
  for (int r = 0; r < reps; ++r) {
    for (uint32_t x : rng.SampleWithoutReplacement(20, 5)) ++counts[x];
  }
  const double expected = reps * 5.0 / 20.0;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(71);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
}

TEST(AliasSamplerTest, DegenerateSingleOutcome) {
  Rng rng(73);
  AliasSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(&rng), 1u);
  }
}

TEST(AliasSamplerTest, FrequenciesMatchWeights) {
  Rng rng(79);
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  for (int i = 0; i < 4; ++i) {
    const double expect = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expect, 0.01);
  }
}

TEST(AliasSamplerTest, UniformWeights) {
  Rng rng(83);
  AliasSampler sampler(std::vector<double>(10, 0.1));
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 50000.0, 0.1, 0.01);
  }
}

}  // namespace
}  // namespace util
}  // namespace elitenet

#include "stats/correlation.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elitenet {
namespace stats {
namespace {

TEST(PearsonTest, PerfectLinear) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{7, 7, 7};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(c, x), 0.0);
}

TEST(PearsonTest, IndependentSamplesNearZero) {
  util::Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.02);
}

TEST(PearsonTest, InvariantToAffineTransforms) {
  util::Rng rng(7);
  std::vector<double> x, y, x2, y2;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Normal();
    const double b = 0.5 * a + rng.Normal();
    x.push_back(a);
    y.push_back(b);
    x2.push_back(3.0 * a - 7.0);
    y2.push_back(-2.0 * b + 1.0);
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), -PearsonCorrelation(x2, y2), 1e-12);
}

TEST(FractionalRanksTest, NoTies) {
  const std::vector<double> x{30.0, 10.0, 20.0};
  const std::vector<double> r = FractionalRanks(x);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(FractionalRanksTest, TiesGetAverageRank) {
  const std::vector<double> x{1.0, 2.0, 2.0, 3.0};
  const std::vector<double> r = FractionalRanks(x);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(FractionalRanksTest, AllTied) {
  const std::vector<double> x{5.0, 5.0, 5.0};
  for (double r : FractionalRanks(x)) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.2 * i));  // monotone but very nonlinear
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  // Pearson should be noticeably below 1 for this curve.
  EXPECT_LT(PearsonCorrelation(x, y), 0.8);
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{9, 7, 5, 3};
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(SpearmanTest, RecoversPlantedRankCorrelation) {
  util::Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    const double a = rng.Normal();
    x.push_back(a);
    y.push_back(0.8 * a + 0.6 * rng.Normal());
  }
  // Spearman of a bivariate normal with rho: (6/pi) asin(rho/2).
  const double expected = 6.0 / M_PI * std::asin(0.8 / 2.0);
  EXPECT_NEAR(SpearmanCorrelation(x, y), expected, 0.02);
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

#include "timeseries/calendar.h"

#include <vector>

#include <gtest/gtest.h>

namespace elitenet {
namespace timeseries {
namespace {

TEST(CalendarTest, EpochIsZero) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
}

TEST(CalendarTest, KnownOffsets) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 2}), 1);
  EXPECT_EQ(DaysFromCivil({1969, 12, 31}), -1);
  EXPECT_EQ(DaysFromCivil({2000, 3, 1}), 11017);
  EXPECT_EQ(DaysFromCivil({2017, 6, 1}), 17318);
}

TEST(CalendarTest, RoundTripOverDecades) {
  for (int64_t day = -40000; day <= 40000; day += 97) {
    const Date d = CivilFromDays(day);
    EXPECT_EQ(DaysFromCivil(d), day);
  }
}

TEST(CalendarTest, DayOfWeekKnownDates) {
  EXPECT_EQ(DayOfWeek({1970, 1, 1}), 4);   // Thursday
  EXPECT_EQ(DayOfWeek({2017, 12, 25}), 1); // Christmas 2017: Monday
  EXPECT_EQ(DayOfWeek({2018, 4, 1}), 0);   // April 1, 2018: Sunday
  EXPECT_EQ(DayOfWeek({2018, 7, 18}), 3);  // crawl date: Wednesday
}

TEST(CalendarTest, AddDaysCrossesMonthAndYear) {
  EXPECT_EQ(AddDays({2017, 12, 30}, 3), (Date{2018, 1, 2}));
  EXPECT_EQ(AddDays({2018, 3, 1}, -1), (Date{2018, 2, 28}));
  EXPECT_EQ(AddDays({2016, 2, 28}, 1), (Date{2016, 2, 29}));  // leap year
  EXPECT_EQ(AddDays({2017, 6, 1}, 365), (Date{2018, 6, 1}));
}

TEST(CalendarTest, LeapYearValidity) {
  EXPECT_TRUE(IsValidDate({2016, 2, 29}));
  EXPECT_FALSE(IsValidDate({2017, 2, 29}));
  EXPECT_TRUE(IsValidDate({2000, 2, 29}));   // divisible by 400
  EXPECT_FALSE(IsValidDate({1900, 2, 29}));  // divisible by 100 only
}

TEST(CalendarTest, InvalidDatesRejected) {
  EXPECT_FALSE(IsValidDate({2018, 0, 1}));
  EXPECT_FALSE(IsValidDate({2018, 13, 1}));
  EXPECT_FALSE(IsValidDate({2018, 4, 31}));
  EXPECT_FALSE(IsValidDate({2018, 1, 0}));
}

TEST(CalendarTest, FormatDateIsIso) {
  EXPECT_EQ(FormatDate({2017, 12, 24}), "2017-12-24");
  EXPECT_EQ(FormatDate({2018, 4, 3}), "2018-04-03");
}

TEST(CalendarTest, MonthNames) {
  EXPECT_STREQ(MonthName(1), "Jan");
  EXPECT_STREQ(MonthName(12), "Dec");
  EXPECT_STREQ(MonthName(0), "???");
  EXPECT_STREQ(MonthName(13), "???");
}

TEST(HeatmapTest, RendersHeaderAndIntensities) {
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) values.push_back(i);
  auto map = RenderCalendarHeatmap({2017, 6, 1}, values);
  ASSERT_TRUE(map.ok());
  EXPECT_NE(map->find("Su Mo Tu We Th Fr Sa"), std::string::npos);
  EXPECT_NE(map->find("Jun 2017"), std::string::npos);
  EXPECT_NE(map->find("Jul 2017"), std::string::npos);
  // All five intensity glyphs appear for a ramp.
  for (char c : {'.', '-', '+', '*', '#'}) {
    EXPECT_NE(map->find(c), std::string::npos) << "missing glyph " << c;
  }
}

TEST(HeatmapTest, RejectsBadInputs) {
  EXPECT_FALSE(RenderCalendarHeatmap({2018, 2, 30}, std::vector<double>{1.0}).ok());
  EXPECT_FALSE(RenderCalendarHeatmap({2018, 1, 1}, std::vector<double>{}).ok());
}

TEST(HeatmapTest, SingleDaySeries) {
  auto map = RenderCalendarHeatmap({2018, 1, 1}, std::vector<double>{5.0});
  ASSERT_TRUE(map.ok());
  EXPECT_NE(map->find("Jan 2018"), std::string::npos);
}

}  // namespace
}  // namespace timeseries
}  // namespace elitenet

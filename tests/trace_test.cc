// Unit tests of the span tracer: nesting / parent links, enable-disable
// gating, SpanTimer phase chaining, thread safety under ParallelFor, and
// well-formedness of the Chrome trace-event JSON export.

#include "util/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/parallel.h"

namespace elitenet {
namespace util {
namespace {

// Structural JSON check without a parser dependency: braces and brackets
// balance outside of strings, and strings/escapes terminate.
bool JsonBalanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(true);
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    TraceRecorder::Global().Clear();
    SetThreadCount(0);
  }
};

TEST_F(TraceTest, RecordsNestedSpansWithParentLinks) {
  {
    ELITENET_SPAN("outer");
    {
      ELITENET_SPAN("middle");
      { ELITENET_SPAN("inner"); }
    }
    { ELITENET_SPAN("sibling"); }
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().snapshot();
  ASSERT_EQ(events.size(), 4u);  // recorded in open order
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[1].parent, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].parent, 1);
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_EQ(events[3].name, "sibling");
  EXPECT_EQ(events[3].parent, 0);
  EXPECT_EQ(events[3].depth, 1);
  // All closed; children start no earlier and end no later than parents.
  for (const TraceEvent& e : events) EXPECT_GT(e.duration_ns, 0u);
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetTracingEnabled(false);
  { ELITENET_SPAN("invisible"); }
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
  SetTracingEnabled(true);
  { ELITENET_SPAN("visible"); }
  EXPECT_EQ(TraceRecorder::Global().size(), 1u);
}

TEST_F(TraceTest, ClearDropsEverything) {
  { ELITENET_SPAN("a"); }
  ASSERT_EQ(TraceRecorder::Global().size(), 1u);
  TraceRecorder::Global().Clear();
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
  EXPECT_TRUE(TraceRecorder::Global().snapshot().empty());
}

TEST_F(TraceTest, SpanTimerChainsSiblingPhases) {
  {
    SpanTimer timer("phase1");
    EXPECT_GE(timer.Seconds(), 0.0);
    timer.Reset("phase2");
    timer.Reset();  // plain timing, no third span
    EXPECT_GE(timer.Millis(), 0.0);
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "phase1");
  EXPECT_EQ(events[1].name, "phase2");
  // Siblings, not nested: phase2 is also a root.
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_EQ(events[1].parent, -1);
  EXPECT_GT(events[0].duration_ns, 0u);
  EXPECT_GT(events[1].duration_ns, 0u);
}

TEST_F(TraceTest, ThreadSafeUnderParallelFor) {
  SetThreadCount(4);
  constexpr size_t kChunks = 64;
  ParallelFor(0, kChunks, 1, [](size_t, size_t) {
    ELITENET_SPAN("chunk");
    volatile int sink = 0;
    for (int i = 0; i < 100; ++i) sink = sink + i;
  });
  const std::vector<TraceEvent> events = TraceRecorder::Global().snapshot();
  ASSERT_EQ(events.size(), kChunks);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.name, "chunk");
    EXPECT_GT(e.duration_ns, 0u);  // every span was closed
  }
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  {
    ELITENET_SPAN("alpha");
    { ELITENET_SPAN("beta \"quoted\"\\slash"); }  // escaping stress
  }
  SetThreadCount(2);
  ParallelFor(0, 8, 1, [](size_t, size_t) { ELITENET_SPAN("par"); });

  const std::string json = TraceRecorder::Global().ToChromeJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  // The quote and backslash in the name must arrive escaped.
  EXPECT_NE(json.find("beta \\\"quoted\\\"\\\\slash"), std::string::npos);
  EXPECT_EQ(json.find('\n', json.size() - 2), json.size() - 1);

  const std::string tree = TraceRecorder::Global().ToTextTree();
  EXPECT_NE(tree.find("alpha"), std::string::npos);
  EXPECT_NE(tree.find("par"), std::string::npos);
}

}  // namespace
}  // namespace util
}  // namespace elitenet

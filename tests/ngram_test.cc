#include "text/ngram.h"

#include <gtest/gtest.h>

namespace elitenet {
namespace text {
namespace {

TEST(NGramCounterTest, UnigramCounts) {
  NGramCounter c(1);
  c.AddDocument("Journalist. Author. Journalist");
  EXPECT_EQ(c.CountOf("journalist"), 2u);
  EXPECT_EQ(c.CountOf("author"), 1u);
  EXPECT_EQ(c.total_ngrams(), 3u);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(NGramCounterTest, UnigramStopwordsFiltered) {
  NGramCounter c(1);
  c.AddDocument("the best of the best");
  EXPECT_EQ(c.CountOf("the"), 0u);
  EXPECT_EQ(c.CountOf("best"), 2u);
}

TEST(NGramCounterTest, BigramsWithinClauseOnly) {
  NGramCounter c(2);
  c.AddDocument("Official Twitter, Acme Media");
  EXPECT_EQ(c.CountOf("official twitter"), 1u);
  EXPECT_EQ(c.CountOf("acme media"), 1u);
  // The comma is a clause break: no bigram spans it.
  EXPECT_EQ(c.CountOf("twitter acme"), 0u);
}

TEST(NGramCounterTest, MajorityStopwordNGramsDropped) {
  NGramCounter c(2);
  c.AddDocument("to the moon");
  // "to the" is 2/2 stop words -> dropped; "the moon" is 1/2 -> kept.
  EXPECT_EQ(c.CountOf("to the"), 0u);
  EXPECT_EQ(c.CountOf("the moon"), 1u);
}

TEST(NGramCounterTest, TrigramMinorityStopwordKept) {
  NGramCounter c(3);
  c.AddDocument("Editor in Chief");
  c.AddDocument("Monday to Friday");
  EXPECT_EQ(c.CountOf("editor in chief"), 1u);
  EXPECT_EQ(c.CountOf("monday to friday"), 1u);
}

TEST(NGramCounterTest, NoFilteringWhenDisabled) {
  NGramCounter c(2, /*filter_stopwords=*/false);
  c.AddDocument("to the moon");
  EXPECT_EQ(c.CountOf("to the"), 1u);
}

TEST(NGramCounterTest, ShortClausesProduceNothing) {
  NGramCounter c(3);
  c.AddDocument("Husband. Father. Coach");
  EXPECT_EQ(c.total_ngrams(), 0u);
}

TEST(NGramCounterTest, TopKOrdersByCountThenAlpha) {
  NGramCounter c(1);
  c.AddDocument("zebra zebra apple apple mango");
  const auto top = c.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].ngram, "apple");  // tie with zebra broken alphabetically
  EXPECT_EQ(top[1].ngram, "zebra");
  EXPECT_EQ(top[2].ngram, "mango");
}

TEST(NGramCounterTest, TopKClampsToDistinct) {
  NGramCounter c(1);
  c.AddDocument("single");
  EXPECT_EQ(c.TopK(10).size(), 1u);
}

TEST(TitleCaseTest, CapitalizesEachWord) {
  EXPECT_EQ(TitleCase("official twitter account"),
            "Official Twitter Account");
  EXPECT_EQ(TitleCase("a"), "A");
  EXPECT_EQ(TitleCase(""), "");
}

TEST(FilterSubsumedTest, DropsFullyExplainedBigram) {
  NGramCounter bigrams(2), trigrams(3);
  for (int i = 0; i < 10; ++i) {
    bigrams.AddDocument("official twitter account");
    trigrams.AddDocument("official twitter account");
  }
  // "twitter account" (10) is fully subsumed by the trigram (10);
  // "official twitter" also appears 10 times... also subsumed here.
  // Add standalone occurrences so "official twitter" survives.
  for (int i = 0; i < 15; ++i) bigrams.AddDocument("official twitter");

  const auto kept = FilterSubsumed(bigrams.TopK(10), trigrams);
  bool has_official_twitter = false, has_twitter_account = false;
  for (const auto& g : kept) {
    if (g.ngram == "official twitter") has_official_twitter = true;
    if (g.ngram == "twitter account") has_twitter_account = true;
  }
  EXPECT_TRUE(has_official_twitter);   // 25 vs parent 10: kept
  EXPECT_FALSE(has_twitter_account);   // 10 vs parent 10: dropped
}

TEST(FilterSubsumedTest, KeepsIndependentPhrases) {
  NGramCounter bigrams(2), trigrams(3);
  bigrams.AddDocument("husband father");
  const auto kept = FilterSubsumed(bigrams.TopK(10), trigrams);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].ngram, "husband father");
}

TEST(FilterSubsumedTest, RatioControlsAggressiveness) {
  NGramCounter bigrams(2), trigrams(3);
  for (int i = 0; i < 10; ++i) bigrams.AddDocument("award winning");
  for (int i = 0; i < 6; ++i) trigrams.AddDocument("emmy award winning");
  // Parent covers 60% of the bigram.
  EXPECT_EQ(FilterSubsumed(bigrams.TopK(5), trigrams, 0.9).size(), 1u);
  EXPECT_EQ(FilterSubsumed(bigrams.TopK(5), trigrams, 0.5).size(), 0u);
}

}  // namespace
}  // namespace text
}  // namespace elitenet

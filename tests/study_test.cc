// Integration tests of the VerifiedStudy façade: a small study end to
// end, exercising every Run* stage and the report renderer.

#include "core/study.h"

#include <gtest/gtest.h>

namespace elitenet {
namespace core {
namespace {

const VerifiedStudy& SmallStudy() {
  static const VerifiedStudy* study = [] {
    StudyConfig cfg;
    cfg.network.num_users = 5000;
    // Enough replicates for the bootstrap p-value to resolve above the
    // 0.1 plausibility floor; 5 was too grainy (p only takes values k/5).
    cfg.bootstrap_replicates = 20;
    cfg.distance_sources = 16;
    cfg.betweenness_pivots = 64;
    cfg.clustering_samples = 1500;
    cfg.eigenvalue_k = 80;
    auto* s = new VerifiedStudy(cfg);
    EXPECT_TRUE(s->Generate().ok());
    return s;
  }();
  return *study;
}

TEST(StudyTest, AnalysesRequireGenerate) {
  StudyConfig cfg;
  VerifiedStudy fresh(cfg);
  EXPECT_FALSE(fresh.generated());
  EXPECT_EQ(fresh.RunBasic().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(fresh.RunActivity().ok());
  EXPECT_FALSE(fresh.RunText().ok());
}

TEST(StudyTest, GenerateProducesAllDatasets) {
  const VerifiedStudy& s = SmallStudy();
  EXPECT_TRUE(s.generated());
  EXPECT_EQ(s.network().graph.num_nodes(), 5000u);
  EXPECT_EQ(s.profiles().size(), 5000u);
  EXPECT_EQ(s.bios().bios.size(), 5000u);
  EXPECT_EQ(s.activity().daily_tweets.size(), 366u);
}

TEST(StudyTest, BasicReportInternallyConsistent) {
  auto r = SmallStudy().RunBasic();
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->giant_scc_fraction, 0.85);
  EXPECT_LE(r->giant_scc_size, SmallStudy().network().graph.num_nodes());
  EXPECT_GE(r->strong_components, r->weak_components);
  EXPECT_GE(r->attracting_components, r->degrees.isolated_nodes);
  EXPECT_GT(r->reciprocity.rate, 0.2);
  EXPECT_LT(r->reciprocity.rate, 0.5);
  EXPECT_GT(r->clustering.average_local, 0.0);
}

TEST(StudyTest, OutDegreeFitIsPowerLawish) {
  auto r = SmallStudy().RunOutDegreeFit(/*with_bootstrap=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->fit.alpha, 2.5);
  EXPECT_LT(r->fit.alpha, 4.2);
  EXPECT_TRUE(r->fit.discrete);
  ASSERT_TRUE(r->gof.has_value());
  EXPECT_GT(r->gof->p_value, 0.1);  // plausible power law
  ASSERT_TRUE(r->vs_exponential.has_value());
  EXPECT_GT(r->vs_exponential->log_likelihood_ratio, 0.0);
}

TEST(StudyTest, EigenvalueFitRuns) {
  auto r = SmallStudy().RunEigenvalueFit(/*with_bootstrap=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->fit.discrete);
  EXPECT_GT(r->fit.alpha, 1.5);
  EXPECT_GT(r->fit.tail_n, 10u);
}

TEST(StudyTest, DistancesAreShort) {
  auto r = SmallStudy().RunDistances();
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->mean_distance, 1.0);
  EXPECT_LT(r->mean_distance, 6.0);
  EXPECT_GT(r->reachable_pairs, 0u);
}

TEST(StudyTest, CentralityRelationsAllPositive) {
  auto r = SmallStudy().RunCentralityRelations();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 6u);  // Fig. 5 panels (a)-(f)
  for (const RelationReport& rel : *r) {
    EXPECT_GT(rel.curve.spearman, 0.0)
        << rel.x_name << " vs " << rel.y_name;
  }
  // The paper: PageRank relationships are "especially strong"; the
  // list-membership/followers panel is the strongest of all.
  EXPECT_GT((*r)[5].curve.spearman, 0.6);
}

TEST(StudyTest, TextReportHasTables) {
  auto r = SmallStudy().RunText();
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->top_bigrams.size(), 10u);
  EXPECT_GE(r->top_trigrams.size(), 5u);
  EXPECT_FALSE(r->top_unigrams.empty());
  EXPECT_EQ(r->top_bigrams[0].ngram, "official twitter");
}

TEST(StudyTest, ActivityReportMatchesPaperDecisions) {
  auto r = SmallStudy().RunActivity();
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->ljung_box.max_p_value, 1e-10);
  EXPECT_LT(r->box_pierce.max_p_value, 1e-10);
  EXPECT_TRUE(r->adf.stationary_at_5pct);
  EXPECT_EQ(r->change_dates.size(), r->pelt.stable.size());
}

TEST(StudyTest, RunAllAggregates) {
  auto r = SmallStudy().RunAll();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->relations.size(), 6u);
  EXPECT_TRUE(r->eigenvalues.has_value());

  const std::string report =
      RenderReport(*r, SmallStudy().network().graph.num_nodes());
  // The renderer must mention every section of the paper.
  EXPECT_NE(report.find("Section IV-A"), std::string::npos);
  EXPECT_NE(report.find("power law"), std::string::npos);
  EXPECT_NE(report.find("degrees of separation"), std::string::npos);
  EXPECT_NE(report.find("Ljung-Box"), std::string::npos);
  EXPECT_NE(report.find("PELT"), std::string::npos);
  EXPECT_NE(report.find("Official Twitter"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace elitenet

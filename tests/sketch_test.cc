// Unit tests of the log-linear quantile sketch: exact unit buckets for
// small values, bucket-map monotonicity across the whole uint64 range,
// the 1/64 relative-error bound on quantiles against exact sorted
// samples, merge-equals-serial aggregation, derived count/sum/max
// estimators, and lossless counting under a concurrent writer hammer
// (the tsan label runs this file under -fsanitize=thread).

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace elitenet {
namespace util {
namespace {

TEST(SketchTest, EmptySketchIsZero) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.SumEstimate(), 0.0);
  EXPECT_EQ(s.MaxEstimate(), 0u);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(SketchTest, SmallValuesAreExact) {
  // Below 2 * kSubBuckets every bucket has unit width, so quantiles, sum,
  // and max are exact, not estimates.
  QuantileSketch s;
  for (uint64_t v = 0; v < 2 * QuantileSketch::kSubBuckets; ++v) {
    s.Observe(v);
  }
  EXPECT_EQ(s.count(), 2 * QuantileSketch::kSubBuckets);
  EXPECT_EQ(s.MaxEstimate(), 2 * QuantileSketch::kSubBuckets - 1);
  const uint64_t n = 2 * QuantileSketch::kSubBuckets;
  EXPECT_EQ(s.SumEstimate(), static_cast<double>(n * (n - 1) / 2));
  EXPECT_EQ(s.Quantile(0.5), std::ceil(0.5 * static_cast<double>(n)) - 1);
}

TEST(SketchTest, BucketMapIsMonotoneAndConsistent) {
  // Probe value boundaries across the full range: every value maps into a
  // bucket whose [lower, lower + width) range contains it, and the bucket
  // index never decreases as values grow.
  std::vector<uint64_t> probes = {0, 1, 2, 63, 64, 65, 127, 128, 129};
  for (int shift = 8; shift < 64; ++shift) {
    const uint64_t v = uint64_t{1} << shift;
    probes.push_back(v - 1);
    probes.push_back(v);
    probes.push_back(v + 1);
    probes.push_back(v + (v >> 1));
  }
  probes.push_back(UINT64_MAX);
  std::sort(probes.begin(), probes.end());
  size_t prev_bucket = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    const uint64_t v = probes[i];
    const size_t b = QuantileSketch::BucketIndex(v);
    ASSERT_LT(b, QuantileSketch::kNumBuckets) << "value " << v;
    EXPECT_LE(QuantileSketch::BucketLowerBound(b), v) << "value " << v;
    EXPECT_LT(v - QuantileSketch::BucketLowerBound(b),
              QuantileSketch::BucketWidth(b))
        << "value " << v;
    if (i > 0) EXPECT_GE(b, prev_bucket) << "value " << v;
    prev_bucket = b;
  }
}

TEST(SketchTest, QuantileErrorBoundAgainstExactSamples) {
  // Log-normal-ish latency population: quantile answers must stay within
  // the advertised 1/64 relative error of the exact order statistic.
  Rng rng(7);
  std::vector<uint64_t> samples;
  QuantileSketch s;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    const uint64_t v =
        static_cast<uint64_t>(std::exp(4.0 + 8.0 * u));  // ~55 .. ~160k
    samples.push_back(v);
    s.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank == 0) rank = 1;
    const double exact = static_cast<double>(samples[rank - 1]);
    const double approx = s.Quantile(q);
    EXPECT_LE(std::fabs(approx - exact), exact / 64.0 + 0.5)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  // Sum estimate carries the same relative bound.
  double exact_sum = 0.0;
  for (uint64_t v : samples) exact_sum += static_cast<double>(v);
  EXPECT_LE(std::fabs(s.SumEstimate() - exact_sum), exact_sum / 64.0);
  // Max estimate bounds the true max from above, within one bucket.
  const uint64_t true_max = samples.back();
  EXPECT_GE(s.MaxEstimate(), true_max);
  EXPECT_LE(static_cast<double>(s.MaxEstimate() - true_max),
            static_cast<double>(true_max) / 64.0 + 1.0);
}

TEST(SketchTest, MergeEqualsSerialObservation) {
  Rng rng(11);
  QuantileSketch merged, serial;
  QuantileSketch shards[4];
  for (int i = 0; i < 4000; ++i) {
    const uint64_t v = rng.UniformU64(1u << 20);
    shards[i % 4].Observe(v);
    serial.Observe(v);
  }
  for (const auto& shard : shards) merged.Merge(shard);
  ASSERT_EQ(merged.count(), serial.count());
  for (size_t b = 0; b < QuantileSketch::kNumBuckets; ++b) {
    ASSERT_EQ(merged.bucket(b), serial.bucket(b)) << "bucket " << b;
  }
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(merged.Quantile(q), serial.Quantile(q));
  }
}

TEST(SketchTest, ConcurrentObserversLoseNothing) {
  // 8 writer threads hammering one sketch: every observation must land
  // (Observe is a single relaxed fetch_add on one bucket).
  QuantileSketch s;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&s, t] {
      Rng rng(100 + t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        s.Observe(rng.UniformU64(1u << 16));
      }
    });
  }
  // Concurrent reader: counts and quantiles must be safe to read (values
  // racy but bounded) while writers run.
  std::thread reader([&s] {
    for (int i = 0; i < 100; ++i) {
      const uint64_t n = s.count();
      EXPECT_LE(n, kThreads * kPerThread);
      (void)s.Quantile(0.99);
    }
  });
  for (auto& w : writers) w.join();
  reader.join();
  EXPECT_EQ(s.count(), kThreads * kPerThread);
}

TEST(SketchTest, ResetClearsEverything) {
  QuantileSketch s;
  s.Observe(12345);
  s.Observe(7);
  ASSERT_EQ(s.count(), 2u);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.MaxEstimate(), 0u);
  EXPECT_EQ(s.Quantile(0.99), 0.0);
}

}  // namespace
}  // namespace util
}  // namespace elitenet

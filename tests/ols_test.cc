#include "timeseries/ols.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elitenet {
namespace timeseries {
namespace {

TEST(OlsTest, RecoversCoefficientsWithNoise) {
  util::Rng rng(3);
  const int n = 2000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Normal();
    y[i] = 1.5 + 0.7 * x(i, 1) + 0.1 * rng.Normal();
  }
  auto fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 1.5, 0.02);
  EXPECT_NEAR(fit->coefficients[1], 0.7, 0.02);
  EXPECT_GT(fit->r_squared, 0.9);
}

TEST(OlsTest, StandardErrorsCalibrated) {
  // For y = b x + e with x ~ N(0,1), e ~ N(0, s²):
  // se(b) ≈ s / sqrt(n). t-stat of a true zero coefficient should be
  // modest; of a strong one, large.
  util::Rng rng(5);
  const int n = 5000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Normal();
    y[i] = 2.0 * x(i, 1) + rng.Normal();
  }
  auto fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->std_errors[1], 1.0 / std::sqrt(n), 0.002);
  EXPECT_GT(fit->t_statistics[1], 50.0);
  EXPECT_LT(std::fabs(fit->t_statistics[0]), 4.0);
}

TEST(OlsTest, PerfectFitHasZeroRss) {
  Matrix x(4, 2);
  std::vector<double> y(4);
  for (int i = 0; i < 4; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = i;
    y[i] = 3.0 - 2.0 * i;
  }
  auto fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->rss, 0.0, 1e-18);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(OlsTest, AicPenalizesExtraUselessRegressor) {
  util::Rng rng(7);
  const int n = 400;
  Matrix x1(n, 2), x2(n, 3);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    x1(i, 0) = 1.0;
    x1(i, 1) = v;
    x2(i, 0) = 1.0;
    x2(i, 1) = v;
    x2(i, 2) = rng.Normal();  // junk regressor
    y[i] = 0.5 * v + rng.Normal();
  }
  auto f1 = FitOls(x1, y);
  auto f2 = FitOls(x2, y);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  // The junk column cannot buy 2 AIC points on average.
  EXPECT_LT(f1->aic, f2->aic + 2.0);
}

TEST(OlsTest, LogLikelihoodMatchesGaussianFormula) {
  Matrix x(5, 1, 1.0);
  const std::vector<double> y{1.0, 2.0, 3.0, 4.0, 5.0};
  auto fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok());
  const double n = 5.0;
  const double sigma2 = fit->rss / n;
  const double expect =
      -0.5 * n * (std::log(2.0 * M_PI) + std::log(sigma2) + 1.0);
  EXPECT_NEAR(fit->log_likelihood, expect, 1e-10);
  EXPECT_NEAR(fit->aic, 2.0 - 2.0 * expect, 1e-10);
  EXPECT_NEAR(fit->bic, std::log(5.0) - 2.0 * expect, 1e-10);
}

TEST(OlsTest, RejectsTooFewObservations) {
  Matrix x(2, 2, 1.0);
  EXPECT_FALSE(FitOls(x, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace timeseries
}  // namespace elitenet

#include "serve/delta_overlay.h"

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/io.h"
#include "util/rng.h"

namespace elitenet {
namespace serve {
namespace {

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Mutual pair 0<->1, cycle 0->1->2->0, tail 2->3->4, isolated 5.
graph::DiGraph TestGraph() {
  graph::GraphBuilder b(6);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

std::unique_ptr<LiveGraph> MakeLive(const graph::DiGraph& g) {
  auto live = LiveGraph::Create(g);
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  return std::move(*live);
}

Mutation Follow(graph::NodeId s, graph::NodeId d) {
  return {MutationOp::kFollow, s, d};
}
Mutation Unfollow(graph::NodeId s, graph::NodeId d) {
  return {MutationOp::kUnfollow, s, d};
}

std::vector<graph::NodeId> Out(const LiveSnapshot& s, graph::NodeId u) {
  std::vector<graph::NodeId> v;
  s.CollectOut(u, &v);
  return v;
}
std::vector<graph::NodeId> In(const LiveSnapshot& s, graph::NodeId u) {
  std::vector<graph::NodeId> v;
  s.CollectIn(u, &v);
  return v;
}

TEST(DeltaOverlayTest, UnfollowBaseEdge) {
  auto live = MakeLive(TestGraph());
  auto out = live->Apply(Unfollow(2, 3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->version, 1u);
  EXPECT_TRUE(out->changed);

  const LiveSnapshot snap = live->Snapshot();
  EXPECT_FALSE(snap.HasEdge(2, 3));
  EXPECT_EQ(snap.OutDegree(2), 1u);  // only 2->0 left
  EXPECT_EQ(snap.InDegree(3), 0u);
  EXPECT_EQ(Out(snap, 2), (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(In(snap, 3), std::vector<graph::NodeId>{});
  EXPECT_EQ(live->current_edges(), 5u);
  EXPECT_EQ(live->Stats().tombstones, 1u);
}

TEST(DeltaOverlayTest, UnfollowOverlayEdgeLeavesNoTombstone) {
  auto live = MakeLive(TestGraph());
  ASSERT_TRUE(live->Apply(Follow(5, 0)).ok());
  EXPECT_EQ(live->Stats().overlay_adds, 1u);
  ASSERT_TRUE(live->Apply(Unfollow(5, 0)).ok());

  const LiveSnapshot snap = live->Snapshot();
  EXPECT_FALSE(snap.HasEdge(5, 0));
  EXPECT_EQ(snap.OutDegree(5), 0u);
  EXPECT_EQ(live->current_edges(), 6u);
  const OverlayStats stats = live->Stats();
  EXPECT_EQ(stats.tombstones, 0u);  // never was a base edge
  EXPECT_EQ(stats.overlay_adds, 0u);
}

TEST(DeltaOverlayTest, ReFollowAfterTombstone) {
  auto live = MakeLive(TestGraph());
  ASSERT_TRUE(live->Apply(Unfollow(0, 1)).ok());
  EXPECT_FALSE(live->Snapshot().HasEdge(0, 1));
  ASSERT_TRUE(live->Apply(Follow(0, 1)).ok());

  const LiveSnapshot snap = live->Snapshot();
  EXPECT_TRUE(snap.HasEdge(0, 1));
  EXPECT_EQ(snap.OutDegree(0), 1u);
  EXPECT_EQ(Out(snap, 0), std::vector<graph::NodeId>{1});
  EXPECT_EQ(live->current_edges(), 6u);
  EXPECT_EQ(live->Stats().tombstones, 0u);
  // The history is still visible at the intermediate version.
  auto mid = live->SnapshotAt(1);
  ASSERT_TRUE(mid.ok());
  EXPECT_FALSE(mid->HasEdge(0, 1));
}

TEST(DeltaOverlayTest, InvalidMutationsConsumeNoVersion) {
  auto live = MakeLive(TestGraph());
  EXPECT_EQ(live->Apply(Follow(0, 0)).status().code(),
            StatusCode::kInvalidArgument);  // self-follow
  EXPECT_EQ(live->Apply(Follow(0, 6)).status().code(),
            StatusCode::kInvalidArgument);  // dst out of range
  EXPECT_EQ(live->Apply(Follow(6, 0)).status().code(),
            StatusCode::kInvalidArgument);  // src out of range
  EXPECT_EQ(live->applied_version(), 0u);
  EXPECT_EQ(live->Snapshot().version(), 0u);
}

TEST(DeltaOverlayTest, NoOpStillConsumesAVersion) {
  auto live = MakeLive(TestGraph());
  auto out = live->Apply(Follow(0, 1));  // already present in the base
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->version, 1u);
  EXPECT_FALSE(out->changed);
  EXPECT_EQ(live->applied_version(), 1u);
  EXPECT_EQ(live->Stats().noops, 1u);
  EXPECT_EQ(live->current_edges(), 6u);
}

TEST(DeltaOverlayTest, SnapshotAtBounds) {
  auto live = MakeLive(TestGraph());
  ASSERT_TRUE(live->Apply(Follow(5, 0)).ok());
  EXPECT_TRUE(live->SnapshotAt(0).ok());
  EXPECT_TRUE(live->SnapshotAt(1).ok());
  EXPECT_EQ(live->SnapshotAt(2).status().code(),
            StatusCode::kFailedPrecondition);  // not applied yet
}

TEST(DeltaOverlayTest, TouchedIsVersionFiltered) {
  auto live = MakeLive(TestGraph());
  ASSERT_TRUE(live->Apply(Follow(5, 3)).ok());  // version 1
  auto before = live->SnapshotAt(0);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->Touched(5));
  EXPECT_FALSE(before->Touched(3));
  const LiveSnapshot after = live->Snapshot();
  EXPECT_TRUE(after.Touched(5));   // forward row
  EXPECT_TRUE(after.Touched(3));   // reverse row
  EXPECT_FALSE(after.Touched(0));  // untouched node
}

// Every version's merged adjacency must equal a plain simulator's edge
// set at that version — randomized against the overlay's COW rows.
TEST(DeltaOverlayTest, VersionedReadsMatchReferenceSimulator) {
  const graph::DiGraph g = TestGraph();
  auto live = MakeLive(g);
  util::Rng rng(77);

  std::set<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v : g.OutNeighbors(u)) edges.insert({u, v});
  }
  std::vector<std::set<std::pair<graph::NodeId, graph::NodeId>>> history;
  history.push_back(edges);  // version 0

  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.UniformU64(6));
    auto dst = static_cast<graph::NodeId>(rng.UniformU64(6));
    if (src == dst) dst = (dst + 1) % 6;
    const bool follow = rng.Bernoulli(0.6);
    ASSERT_TRUE(
        live->Apply(follow ? Follow(src, dst) : Unfollow(src, dst)).ok());
    if (follow) {
      edges.insert({src, dst});
    } else {
      edges.erase({src, dst});
    }
    history.push_back(edges);
  }

  for (uint64_t v = 0; v < history.size(); v += 7) {
    auto snap = live->SnapshotAt(v);
    ASSERT_TRUE(snap.ok()) << "version " << v;
    uint64_t count = 0;
    for (graph::NodeId u = 0; u < 6; ++u) {
      std::vector<graph::NodeId> expect_out, expect_in;
      for (const auto& [a, b] : history[v]) {
        if (a == u) expect_out.push_back(b);
        if (b == u) expect_in.push_back(a);
      }
      EXPECT_EQ(Out(*snap, u), expect_out) << "v=" << v << " u=" << u;
      EXPECT_EQ(In(*snap, u), expect_in) << "v=" << v << " u=" << u;
      EXPECT_EQ(snap->OutDegree(u), expect_out.size());
      EXPECT_EQ(snap->InDegree(u), expect_in.size());
      for (graph::NodeId w = 0; w < 6; ++w) {
        EXPECT_EQ(snap->HasEdge(u, w), history[v].count({u, w}) > 0);
      }
      count += expect_out.size();
    }
    if (v == live->applied_version()) {
      EXPECT_EQ(live->current_edges(), count);
    }
  }
}

TEST(DeltaOverlayTest, WalRecoveryReplaysDeterministically) {
  const std::string wal = TmpPath("overlay_recovery.wal");
  std::remove(wal.c_str());
  const graph::DiGraph g = TestGraph();
  LiveGraphOptions opts;
  opts.log_path = wal;

  uint64_t edges_before = 0, version_before = 0;
  {
    auto live = LiveGraph::Create(g, opts);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->Apply(Follow(5, 0)).ok());
    ASSERT_TRUE((*live)->Apply(Unfollow(2, 3)).ok());
    ASSERT_TRUE((*live)->Apply(Follow(0, 1)).ok());  // no-op, journaled too
    edges_before = (*live)->current_edges();
    version_before = (*live)->applied_version();
  }  // destructor flushes the WAL

  auto live = LiveGraph::Create(g, opts);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ((*live)->recovered(), 3u);
  EXPECT_EQ((*live)->applied_version(), version_before);
  EXPECT_EQ((*live)->current_edges(), edges_before);
  const LiveSnapshot snap = (*live)->Snapshot();
  EXPECT_TRUE(snap.HasEdge(5, 0));
  EXPECT_FALSE(snap.HasEdge(2, 3));
  // Recovery preserves version semantics, not just head state.
  auto v1 = (*live)->SnapshotAt(1);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->HasEdge(2, 3));
}

TEST(DeltaOverlayTest, CompactionIsByteIdenticalToColdRebuild) {
  auto live = MakeLive(TestGraph());
  ASSERT_TRUE(live->Apply(Unfollow(2, 3)).ok());
  ASSERT_TRUE(live->Apply(Follow(5, 0)).ok());
  ASSERT_TRUE(live->Apply(Follow(4, 2)).ok());

  const std::string compacted = TmpPath("overlay_compacted.eng2");
  auto stats = live->Compact(compacted);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->folded_version, 3u);
  EXPECT_EQ(stats->num_edges, 7u);

  graph::GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 0).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 0).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  ASSERT_TRUE(b.AddEdge(5, 0).ok());
  ASSERT_TRUE(b.AddEdge(4, 2).ok());
  auto reference = b.Build();
  ASSERT_TRUE(reference.ok());
  const std::string rebuilt = TmpPath("overlay_rebuilt.eng2");
  ASSERT_TRUE(graph::SaveBinaryV2(*reference, rebuilt).ok());

  auto slurp = [](const std::string& path) {
    std::string bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.append(buf, got);
    }
    std::fclose(f);
    return bytes;
  };
  EXPECT_EQ(slurp(compacted), slurp(rebuilt));
}

TEST(DeltaOverlayTest, SnapshotsSurviveCompaction) {
  auto live = MakeLive(TestGraph());
  ASSERT_TRUE(live->Apply(Unfollow(2, 3)).ok());
  const LiveSnapshot pre = live->Snapshot();  // pins the old epoch at v1
  ASSERT_TRUE(live->Apply(Follow(5, 0)).ok());

  const std::string path = TmpPath("overlay_swap.eng2");
  ASSERT_TRUE(live->Compact(path).ok());

  // The in-flight snapshot still reads its pre-swap state.
  EXPECT_EQ(pre.version(), 1u);
  EXPECT_FALSE(pre.HasEdge(2, 3));
  EXPECT_FALSE(pre.HasEdge(5, 0));  // v2 happened after the capture
  EXPECT_EQ(pre.base_version(), 0u);

  // New snapshots come from the compacted epoch.
  const LiveSnapshot post = live->Snapshot();
  EXPECT_EQ(post.base_version(), 2u);
  EXPECT_EQ(post.epoch_seq(), pre.epoch_seq() + 1);
  EXPECT_TRUE(post.HasEdge(5, 0));
  EXPECT_FALSE(post.Touched(5));  // folded into the new base

  // Folded versions are gone; the head version is still addressable.
  EXPECT_EQ(live->SnapshotAt(1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(live->SnapshotAt(2).ok());
}

TEST(DeltaOverlayTest, ApplyDuringCompactionIsNotLost) {
  // Mutations racing the merge land in the tail and re-apply to the new
  // epoch at their original versions.
  auto live = MakeLive(TestGraph());
  for (int round = 0; round < 4; ++round) {
    std::atomic<bool> stop{false};
    std::thread mutator([&] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto u = static_cast<graph::NodeId>(i % 6);
        const auto v = static_cast<graph::NodeId>((i + 1) % 6);
        ASSERT_TRUE(
            live->Apply((i & 1) ? Follow(u, v) : Unfollow(u, v)).ok());
        ++i;
      }
    });
    const std::string path =
        TmpPath("overlay_race_" + std::to_string(round) + ".eng2");
    auto stats = live->Compact(path);
    stop.store(true, std::memory_order_relaxed);
    mutator.join();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    // Every version up to applied_version() must still be readable, and
    // the head snapshot must agree with the incremental edge counter.
    const uint64_t head = live->applied_version();
    ASSERT_TRUE(live->SnapshotAt(head).ok());
    uint64_t count = 0;
    const LiveSnapshot snap = live->Snapshot();
    for (graph::NodeId u = 0; u < 6; ++u) count += snap.OutDegree(u);
    EXPECT_EQ(live->current_edges(), count);
  }
}

// tsan-labelled hammer: one writer, several snapshot readers, and a
// compactor, all concurrent. Readers assert per-snapshot invariants
// (consistent degrees vs merged rows); TSan asserts the memory model.
TEST(DeltaOverlayTest, ConcurrentReaderWriterCompactorHammer) {
  const graph::DiGraph g = TestGraph();
  auto live = MakeLive(g);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    util::Rng rng(123);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto u = static_cast<graph::NodeId>(rng.UniformU64(6));
      auto v = static_cast<graph::NodeId>(rng.UniformU64(6));
      if (u == v) v = (v + 1) % 6;
      ASSERT_TRUE(
          live->Apply(rng.Bernoulli(0.6) ? Follow(u, v) : Unfollow(u, v))
              .ok());
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_version = 0;
      util::Rng rng(900 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const LiveSnapshot snap = live->Snapshot();
        // Versions move forward monotonically within one epoch lineage.
        EXPECT_GE(snap.version(), last_version);
        last_version = snap.version();
        const auto u = static_cast<graph::NodeId>(rng.UniformU64(6));
        std::vector<graph::NodeId> out;
        snap.CollectOut(u, &out);
        EXPECT_EQ(out.size(), snap.OutDegree(u));
        for (graph::NodeId v : out) EXPECT_TRUE(snap.HasEdge(u, v));
      }
    });
  }

  std::thread compactor([&] {
    for (int i = 0; i < 6; ++i) {
      auto stats =
          live->Compact(TmpPath("hammer_" + std::to_string(i) + ".eng2"));
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
  });

  compactor.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::thread& t : readers) t.join();

  // Post-hammer head state must still balance.
  uint64_t count = 0;
  const LiveSnapshot snap = live->Snapshot();
  for (graph::NodeId u = 0; u < 6; ++u) count += snap.OutDegree(u);
  EXPECT_EQ(live->current_edges(), count);
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

#include "graph/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace graph {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

DiGraph SmallGraph() {
  GraphBuilder b(4);
  EXPECT_TRUE(b.AddEdges({{0, 1}, {1, 2}, {2, 0}, {0, 3}}).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(EdgeListTextTest, RoundTrip) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("edges_roundtrip.txt");
  ASSERT_TRUE(WriteEdgeListText(g, path).ok());
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, g);
}

TEST(EdgeListTextTest, CommentsAndBlankLinesIgnored) {
  const std::string path = TempPath("edges_comments.txt");
  std::ofstream(path) << "# header\n\n0 1\n  # indented comment\n1 0\n";
  auto g = ReadEdgeListText(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->num_nodes(), 2u);
}

TEST(EdgeListTextTest, ExplicitNodeCountAllowsTrailingIsolated) {
  const std::string path = TempPath("edges_isolated.txt");
  std::ofstream(path) << "0 1\n";
  auto g = ReadEdgeListText(path, 10);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 10u);
  EXPECT_EQ(g->CountIsolated(), 8u);
}

TEST(EdgeListTextTest, MalformedLineIsCorruption) {
  const std::string path = TempPath("edges_bad.txt");
  std::ofstream(path) << "0 1 2\n";
  EXPECT_EQ(ReadEdgeListText(path).status().code(), StatusCode::kCorruption);
}

TEST(EdgeListTextTest, NonNumericIdIsCorruption) {
  const std::string path = TempPath("edges_nonnum.txt");
  std::ofstream(path) << "a b\n";
  EXPECT_EQ(ReadEdgeListText(path).status().code(), StatusCode::kCorruption);
}

TEST(EdgeListTextTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadEdgeListText("/no/such/file.txt").status().code(),
            StatusCode::kIoError);
}

TEST(EdgeListTextTest, EmptyFileGivesEmptyGraph) {
  const std::string path = TempPath("edges_empty.txt");
  std::ofstream(path) << "";
  auto g = ReadEdgeListText(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0u);
}

TEST(BinarySnapshotTest, RoundTrip) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("snapshot.eng");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, g);
}

TEST(BinarySnapshotTest, RoundTripLargerRandomGraph) {
  util::Rng rng(99);
  auto g = gen::ErdosRenyi(500, 3000, &rng);
  ASSERT_TRUE(g.ok());
  const std::string path = TempPath("snapshot_big.eng");
  ASSERT_TRUE(SaveBinary(*g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, *g);
}

TEST(BinarySnapshotTest, EmptyGraphRoundTrip) {
  DiGraph g;
  const std::string path = TempPath("snapshot_empty.eng");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 0u);
}

TEST(BinarySnapshotTest, DetectsBitFlipCorruption) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("snapshot_flip.eng");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // Flip one byte in the payload (past the 32-byte header).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x01));
  }
  EXPECT_EQ(LoadBinary(path).status().code(), StatusCode::kCorruption);
}

TEST(BinarySnapshotTest, BadMagicRejected) {
  const std::string path = TempPath("snapshot_magic.eng");
  std::ofstream(path, std::ios::binary) << "NOPE some bytes here";
  const Status s = LoadBinary(path).status();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(BinarySnapshotTest, TruncatedFileRejected) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("snapshot_trunc.eng");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // Rewrite keeping only the first 20 bytes.
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  std::ofstream(path, std::ios::binary) << contents.substr(0, 20);
  EXPECT_EQ(LoadBinary(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

#include "core/fingerprint.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/verified_network.h"
#include "util/rng.h"

namespace elitenet {
namespace core {
namespace {

TEST(FingerprintTest, RejectsEmptyGraph) {
  EXPECT_FALSE(ComputeFingerprint(graph::DiGraph()).ok());
}

TEST(FingerprintTest, PaperFingerprintMatchesConstants) {
  const GraphFingerprint fp = PaperFingerprint();
  EXPECT_DOUBLE_EQ(fp.reciprocity, 0.337);
  EXPECT_DOUBLE_EQ(fp.clustering, 0.1583);
  EXPECT_DOUBLE_EQ(fp.powerlaw_alpha, 3.24);
  EXPECT_NEAR(fp.attracting_fraction, 6091.0 / 231246.0, 1e-9);
}

TEST(FingerprintTest, SelfSimilarityIsOne) {
  const GraphFingerprint fp = PaperFingerprint();
  EXPECT_DOUBLE_EQ(FingerprintSimilarity(fp, fp), 1.0);
}

TEST(FingerprintTest, SimilarityIsSymmetric) {
  util::Rng rng(3);
  auto er = gen::ErdosRenyi(3000, 30000, &rng);
  ASSERT_TRUE(er.ok());
  auto fp = ComputeFingerprint(*er);
  ASSERT_TRUE(fp.ok());
  const GraphFingerprint paper = PaperFingerprint();
  EXPECT_DOUBLE_EQ(FingerprintSimilarity(*fp, paper),
                   FingerprintSimilarity(paper, *fp));
}

TEST(FingerprintTest, VerifiedNetworkScoresAbovePlainGenerators) {
  // The headline fingerprint claim: the calibrated generator is closer
  // to the paper's signature than ER / BA / WS graphs of similar size.
  gen::VerifiedNetworkConfig vcfg;
  vcfg.num_users = 6000;
  auto verified = gen::GenerateVerifiedNetwork(vcfg);
  ASSERT_TRUE(verified.ok());
  auto fp_verified = ComputeFingerprint(verified->graph);
  ASSERT_TRUE(fp_verified.ok());

  const GraphFingerprint paper = PaperFingerprint();
  const double s_verified = FingerprintSimilarity(*fp_verified, paper);
  EXPECT_GT(s_verified, 0.8);

  util::Rng rng(7);
  const uint64_t m = verified->graph.num_edges();
  auto er = gen::ErdosRenyi(6000, m, &rng);
  ASSERT_TRUE(er.ok());
  auto fp_er = ComputeFingerprint(*er);
  ASSERT_TRUE(fp_er.ok());
  EXPECT_GT(s_verified, FingerprintSimilarity(*fp_er, paper) + 0.1);

  auto ba = gen::PreferentialAttachment(6000, 50, &rng);
  ASSERT_TRUE(ba.ok());
  auto fp_ba = ComputeFingerprint(*ba);
  ASSERT_TRUE(fp_ba.ok());
  EXPECT_GT(s_verified, FingerprintSimilarity(*fp_ba, paper));

  auto ws = gen::WattsStrogatz(6000, 25, 0.1, &rng);
  ASSERT_TRUE(ws.ok());
  auto fp_ws = ComputeFingerprint(*ws);
  ASSERT_TRUE(fp_ws.ok());
  EXPECT_GT(s_verified, FingerprintSimilarity(*fp_ws, paper));
}

TEST(FingerprintTest, ToStringNamesComponents) {
  const std::string s = PaperFingerprint().ToString();
  EXPECT_NE(s.find("recip=0.337"), std::string::npos);
  EXPECT_NE(s.find("alpha=3.24"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace elitenet

#include "stats/distributions.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/powerlaw.h"
#include "util/rng.h"

namespace elitenet {
namespace stats {
namespace {

TEST(LogNormalTailTest, RecoversParamsWithoutTruncationPressure) {
  // xmin far below the bulk: truncation barely binds, so the fitted
  // params should approximate the true (mu, sigma).
  util::Rng rng(3);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.LogNormal(3.0, 0.5));
  auto fit = FitLogNormalTail(data, 0.1);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->name, "log-normal");
  ASSERT_EQ(fit->params.size(), 2u);
  EXPECT_NEAR(fit->params[0], 3.0, 0.05);
  EXPECT_NEAR(fit->params[1], 0.5, 0.05);
}

TEST(LogNormalTailTest, TruncatedFitBeatsNaiveFit) {
  // With a binding truncation the truncated MLE must achieve at least the
  // naive (untruncated-estimate) likelihood.
  util::Rng rng(5);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) data.push_back(rng.LogNormal(2.0, 1.0));
  const double xmin = 10.0;  // above the median
  auto fit = FitLogNormalTail(data, xmin);
  ASSERT_TRUE(fit.ok());

  const auto tail = TailOf(data, xmin);
  double naive_mu = 0.0;
  for (double x : tail) naive_mu += std::log(x);
  naive_mu /= static_cast<double>(tail.size());
  AltFit naive;
  naive.name = "log-normal";
  naive.params = {naive_mu, 1.0};
  naive.xmin = xmin;
  double naive_ll = 0.0;
  for (double v : AltPointwiseLogLikelihood(tail, naive)) naive_ll += v;
  EXPECT_GE(fit->log_likelihood, naive_ll - 1e-6);
}

TEST(LogNormalTailTest, NeedsTwoValues) {
  EXPECT_FALSE(FitLogNormalTail(std::vector<double>{5.0}, 1.0).ok());
}

TEST(LogNormalTailTest, DiscreteLikelihoodsAreProperLogProbs) {
  util::Rng rng(7);
  std::vector<double> data;
  for (int i = 0; i < 3000; ++i) {
    data.push_back(std::floor(rng.LogNormal(3.0, 0.6)) + 10.0);
  }
  auto fit = FitLogNormalTail(data, 10.0, /*discrete=*/true);
  ASSERT_TRUE(fit.ok());
  const auto tail = TailOf(data, 10.0);
  for (double ll : AltPointwiseLogLikelihood(tail, *fit)) {
    EXPECT_LE(ll, 0.0);  // log of a probability mass
  }
}

TEST(ExponentialTailTest, ClosedFormMle) {
  util::Rng rng(11);
  std::vector<double> data;
  for (int i = 0; i < 30000; ++i) data.push_back(5.0 + rng.Exponential(2.0));
  auto fit = FitExponentialTail(data, 5.0);
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->params.size(), 1u);
  EXPECT_NEAR(fit->params[0], 2.0, 0.05);
}

TEST(ExponentialTailTest, DiscreteGeometricMle) {
  util::Rng rng(13);
  std::vector<double> data;
  for (int i = 0; i < 30000; ++i) {
    data.push_back(4.0 + static_cast<double>(rng.Geometric(0.3)));
  }
  auto fit = FitExponentialTail(data, 4.0, /*discrete=*/true);
  ASSERT_TRUE(fit.ok());
  // lambda = -ln(1 - p) for the geometric with success probability p.
  EXPECT_NEAR(fit->params[0], -std::log1p(-0.3), 0.02);
}

TEST(ExponentialTailTest, DegenerateTailRejected) {
  EXPECT_FALSE(
      FitExponentialTail(std::vector<double>{3.0, 3.0, 3.0}, 3.0).ok());
  EXPECT_FALSE(FitExponentialTail(std::vector<double>{}, 1.0).ok());
}

TEST(PoissonTailTest, RecoversLambdaWithoutTruncationPressure) {
  util::Rng rng(17);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(static_cast<double>(rng.Poisson(25.0)));
  }
  auto fit = FitPoissonTail(data, 1.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->params[0], 25.0, 0.3);
}

TEST(PoissonTailTest, TruncatedLambdaBelowTailMean) {
  util::Rng rng(19);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(static_cast<double>(rng.Poisson(20.0)));
  }
  // Condition on k >= 25 (upper tail): the truncated MLE of lambda must
  // fall well below the conditional mean.
  auto fit = FitPoissonTail(data, 25.0);
  ASSERT_TRUE(fit.ok());
  const auto tail = TailOf(data, 25.0);
  double tail_mean = 0.0;
  for (double x : tail) tail_mean += x;
  tail_mean /= static_cast<double>(tail.size());
  EXPECT_LT(fit->params[0], tail_mean);
  EXPECT_NEAR(fit->params[0], 20.0, 3.0);
}

TEST(PoissonTailTest, RejectsNonIntegerData) {
  EXPECT_FALSE(FitPoissonTail(std::vector<double>{1.5, 2.0}, 1.0).ok());
}

TEST(AltPointwiseTest, SumMatchesFitLogLikelihood) {
  util::Rng rng(23);
  std::vector<double> data;
  for (int i = 0; i < 4000; ++i) data.push_back(2.0 + rng.Exponential(1.0));
  auto fit = FitExponentialTail(data, 2.0);
  ASSERT_TRUE(fit.ok());
  const auto tail = TailOf(data, 2.0);
  double sum = 0.0;
  for (double v : AltPointwiseLogLikelihood(tail, *fit)) sum += v;
  EXPECT_NEAR(sum, fit->log_likelihood, 1e-6 * std::fabs(sum));
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

#include "gen/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "stats/powerlaw.h"
#include "util/rng.h"

namespace elitenet {
namespace gen {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  util::Rng rng(3);
  auto g = ErdosRenyi(100, 500, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 100u);
  EXPECT_EQ(g->num_edges(), 500u);
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  util::Rng rng(5);
  auto g = ErdosRenyi(50, 400, &rng);
  ASSERT_TRUE(g.ok());
  for (graph::NodeId u = 0; u < 50; ++u) {
    EXPECT_FALSE(g->HasEdge(u, u));
  }
}

TEST(ErdosRenyiTest, RejectsTooManyEdges) {
  util::Rng rng(7);
  EXPECT_FALSE(ErdosRenyi(3, 7, &rng).ok());
  EXPECT_TRUE(ErdosRenyi(3, 6, &rng).ok());  // exactly complete
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  util::Rng a(11), b(11);
  auto g1 = ErdosRenyi(80, 300, &a);
  auto g2 = ErdosRenyi(80, 300, &b);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(*g1, *g2);
}

TEST(ErdosRenyiTest, DegreeDistributionIsHomogeneous) {
  util::Rng rng(13);
  auto g = ErdosRenyi(2000, 40000, &rng);
  ASSERT_TRUE(g.ok());
  const auto stats = analysis::ComputeDegreeStats(*g);
  EXPECT_NEAR(stats.avg_out_degree, 20.0, 0.01);
  // Poisson(20): max should stay well below power-law-like extremes.
  EXPECT_LT(stats.max_out_degree, 60u);
}

TEST(PreferentialAttachmentTest, NodeAndEdgeCounts) {
  util::Rng rng(17);
  auto g = PreferentialAttachment(500, 3, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 500u);
  // First nodes emit fewer edges (can't exceed existing nodes).
  EXPECT_LE(g->num_edges(), 3u * 499u);
  EXPECT_GE(g->num_edges(), 3u * 490u);
}

TEST(PreferentialAttachmentTest, InDegreeIsHeavyTailed) {
  util::Rng rng(19);
  auto g = PreferentialAttachment(5000, 3, &rng);
  ASSERT_TRUE(g.ok());
  const auto stats = analysis::ComputeDegreeStats(*g);
  // The oldest/most popular node should accumulate a large in-degree,
  // far above the mean of ~3.
  EXPECT_GT(stats.max_in_degree, 60u);
  // And the in-degree tail should fit a power law plausibly.
  std::vector<double> in_deg;
  for (graph::NodeId u = 0; u < g->num_nodes(); ++u) {
    if (g->InDegree(u) > 0) {
      in_deg.push_back(static_cast<double>(g->InDegree(u)));
    }
  }
  auto fit = stats::FitDiscrete(in_deg);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->alpha, 1.8);
  EXPECT_LT(fit->alpha, 3.6);
}

TEST(PreferentialAttachmentTest, RejectsZeroFanout) {
  util::Rng rng(23);
  EXPECT_FALSE(PreferentialAttachment(10, 0, &rng).ok());
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  util::Rng rng(29);
  auto g = WattsStrogatz(30, 3, 0.0, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 90u);
  for (graph::NodeId u = 0; u < 30; ++u) {
    for (uint32_t j = 1; j <= 3; ++j) {
      EXPECT_TRUE(g->HasEdge(u, (u + j) % 30));
    }
  }
}

TEST(WattsStrogatzTest, LatticeHasHighClustering) {
  util::Rng rng(31);
  auto lattice = WattsStrogatz(400, 6, 0.0, &rng);
  auto rewired = WattsStrogatz(400, 6, 1.0, &rng);
  ASSERT_TRUE(lattice.ok());
  ASSERT_TRUE(rewired.ok());
  const auto c_lat = analysis::ComputeClustering(*lattice);
  const auto c_rnd = analysis::ComputeClustering(*rewired);
  EXPECT_GT(c_lat.average_local, 0.4);
  EXPECT_LT(c_rnd.average_local, 0.15);
}

TEST(WattsStrogatzTest, RejectsBadParameters) {
  util::Rng rng(37);
  EXPECT_FALSE(WattsStrogatz(2, 1, 0.1, &rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.1, &rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 10, 0.1, &rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.5, &rng).ok());
}

TEST(ConfigurationModelTest, HonorsOutDegreeSequence) {
  util::Rng rng(41);
  std::vector<uint32_t> out_deg(200, 5);
  std::vector<double> weights(200, 1.0);
  auto g = ConfigurationModel(out_deg, weights, &rng);
  ASSERT_TRUE(g.ok());
  for (graph::NodeId u = 0; u < 200; ++u) {
    EXPECT_EQ(g->OutDegree(u), 5u);
  }
}

TEST(ConfigurationModelTest, InDegreeTracksWeights) {
  util::Rng rng(43);
  const size_t n = 500;
  std::vector<uint32_t> out_deg(n, 20);
  std::vector<double> weights(n, 1.0);
  weights[0] = 100.0;  // one very popular node
  auto g = ConfigurationModel(out_deg, weights, &rng);
  ASSERT_TRUE(g.ok());
  const double avg_in =
      static_cast<double>(g->num_edges()) / static_cast<double>(n);
  EXPECT_GT(g->InDegree(0), 3 * avg_in);
}

TEST(ConfigurationModelTest, RejectsBadInputs) {
  util::Rng rng(47);
  EXPECT_FALSE(
      ConfigurationModel({1, 2}, {1.0}, &rng).ok());  // size mismatch
  EXPECT_FALSE(ConfigurationModel({}, {}, &rng).ok());
  EXPECT_FALSE(ConfigurationModel({1}, {-1.0}, &rng).ok());
  EXPECT_FALSE(ConfigurationModel({1, 1}, {0.0, 0.0}, &rng).ok());
}

}  // namespace
}  // namespace gen
}  // namespace elitenet

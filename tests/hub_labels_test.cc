// Pruned landmark labeling tests: the oracle must agree with BFS on
// every (s, t) pair of randomized digraphs — exactness is the whole
// contract — the label arrays must satisfy the structural invariants
// ValidateHubLabels enforces on load, and the construction budget must
// abort cleanly (empty result, never a partial one) on graphs where
// labels would grow superlinearly.

#include "graph/hub_labels.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/verified_network.h"
#include "graph/builder.h"
#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace elitenet {
namespace graph {
namespace {

// Ground truth: forward BFS distances from every source.
std::vector<std::vector<uint32_t>> AllPairsBfs(const DiGraph& g) {
  std::vector<std::vector<uint32_t>> dist(g.num_nodes());
  ScratchArena arena(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    Bfs(g, s, &arena);
    dist[s].resize(g.num_nodes());
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      dist[s][t] = arena.DistanceOr(t, kInfiniteDistance);
    }
  }
  return dist;
}

DiGraph RandomDigraph(NodeId n, double p, uint64_t seed) {
  GraphBuilder b(n);
  util::Rng rng(seed);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng.Bernoulli(p)) EXPECT_TRUE(b.AddEdge(u, v).ok());
    }
  }
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

void ExpectOracleMatchesBfs(const DiGraph& g, const std::string& what) {
  const HubLabels labels = BuildHubLabels(g);
  ASSERT_FALSE(labels.empty()) << what;
  ASSERT_TRUE(ValidateHubLabels(labels, g.num_nodes()).ok()) << what;
  const auto truth = AllPairsBfs(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      ASSERT_EQ(labels.Distance(s, t), truth[s][t])
          << what << ": dist(" << s << ", " << t << ")";
    }
  }
}

TEST(HubLabelsTest, EmptyGraphBuildsEmptyOracle) {
  GraphBuilder b(0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const HubLabels labels = BuildHubLabels(*g);
  EXPECT_EQ(labels.num_nodes(), 0u);
  EXPECT_TRUE(ValidateHubLabels(labels, 0).ok());
}

TEST(HubLabelsTest, SingleNodeAndSelfDistance) {
  GraphBuilder b(1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const HubLabels labels = BuildHubLabels(*g);
  ASSERT_FALSE(labels.empty());
  EXPECT_EQ(labels.Distance(0, 0), 0u);
}

TEST(HubLabelsTest, DirectedPathIsAsymmetric) {
  constexpr NodeId kLen = 12;
  GraphBuilder b(kLen);
  for (NodeId u = 0; u + 1 < kLen; ++u) {
    ASSERT_TRUE(b.AddEdge(u, u + 1).ok());
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const HubLabels labels = BuildHubLabels(*g);
  ASSERT_FALSE(labels.empty());
  for (NodeId s = 0; s < kLen; ++s) {
    for (NodeId t = 0; t < kLen; ++t) {
      const uint32_t want = s <= t ? t - s : kInfiniteDistance;
      EXPECT_EQ(labels.Distance(s, t), want) << s << " -> " << t;
    }
  }
}

TEST(HubLabelsTest, MatchesBfsOnRandomDigraphs) {
  // Sparse through dense, several seeds each: disconnected fragments,
  // one giant SCC, and everything between.
  for (const double p : {0.02, 0.08, 0.25}) {
    for (const uint64_t seed : {1u, 7u, 99u}) {
      const DiGraph g = RandomDigraph(60, p, seed);
      ExpectOracleMatchesBfs(
          g, "p=" + std::to_string(p) + " seed=" + std::to_string(seed));
    }
  }
}

TEST(HubLabelsTest, MatchesBfsOnGeneratedNetwork) {
  // The smallest scale the generator's default density supports. Full
  // all-pairs would be 16M checks; BFS from a spread of sources against
  // every target keeps the same exactness bar at test speed.
  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = 4000;
  auto net = gen::GenerateVerifiedNetwork(cfg);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const DiGraph& g = net->graph;

  const HubLabels labels = BuildHubLabels(g);
  ASSERT_FALSE(labels.empty());
  ASSERT_TRUE(ValidateHubLabels(labels, g.num_nodes()).ok());

  ScratchArena arena(g.num_nodes());
  util::Rng rng(2026);
  for (int i = 0; i < 200; ++i) {
    const NodeId s = static_cast<NodeId>(rng.UniformU64(g.num_nodes()));
    Bfs(g, s, &arena);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      ASSERT_EQ(labels.Distance(s, t),
                arena.DistanceOr(t, kInfiniteDistance))
          << "dist(" << s << ", " << t << ")";
    }
  }
}

TEST(HubLabelsTest, StatsDescribeTheLabelArrays) {
  const DiGraph g = RandomDigraph(50, 0.1, 3);
  const HubLabels labels = BuildHubLabels(g);
  ASSERT_FALSE(labels.empty());
  const HubLabelStats stats = labels.Stats();
  EXPECT_EQ(stats.out_entries, labels.out_entries().size());
  EXPECT_EQ(stats.in_entries, labels.in_entries().size());
  // Every node carries at least its own hub in both directions.
  EXPECT_GE(stats.out_entries, static_cast<uint64_t>(g.num_nodes()));
  EXPECT_GE(stats.in_entries, static_cast<uint64_t>(g.num_nodes()));
  EXPECT_GE(stats.max_out_entries, 1u);
  EXPECT_GE(stats.avg_out_entries, 1.0);
  EXPECT_EQ(stats.bytes, (labels.out_entries().size() +
                          labels.in_entries().size()) *
                                 sizeof(HubLabelEntry) +
                             (labels.out_offsets().size() +
                              labels.in_offsets().size()) *
                                 sizeof(EdgeIdx));
}

TEST(HubLabelsTest, BudgetAbortReturnsEmptyNotPartial) {
  const DiGraph g = RandomDigraph(80, 0.1, 11);
  HubLabelOptions opts;
  opts.max_avg_label_entries = 1;  // impossible: self-labels alone hit it
  const HubLabels labels = BuildHubLabels(g, opts);
  EXPECT_TRUE(labels.empty());
  EXPECT_TRUE(labels.out_offsets().empty());
  EXPECT_TRUE(labels.out_entries().empty());
  EXPECT_TRUE(labels.in_offsets().empty());
  EXPECT_TRUE(labels.in_entries().empty());
  // "Not built" is a valid persisted state.
  EXPECT_TRUE(ValidateHubLabels(labels, g.num_nodes()).ok());
}

TEST(HubLabelsTest, ValidateRejectsStructuralDamage) {
  const DiGraph g = RandomDigraph(40, 0.1, 5);
  const HubLabels good = BuildHubLabels(g);
  ASSERT_FALSE(good.empty());
  const NodeId n = g.num_nodes();

  auto arrays = [&](auto mutate) {
    std::vector<EdgeIdx> oo(good.out_offsets().begin(),
                            good.out_offsets().end());
    std::vector<HubLabelEntry> oe(good.out_entries().begin(),
                                  good.out_entries().end());
    std::vector<EdgeIdx> io(good.in_offsets().begin(),
                            good.in_offsets().end());
    std::vector<HubLabelEntry> ie(good.in_entries().begin(),
                                  good.in_entries().end());
    mutate(oo, oe, io, ie);
    return HubLabels::FromArrays(std::move(oo), std::move(oe), std::move(io),
                                 std::move(ie));
  };
  using OffV = std::vector<EdgeIdx>;
  using EntV = std::vector<HubLabelEntry>;

  // Wrong offsets length.
  EXPECT_FALSE(ValidateHubLabels(
                   arrays([](OffV& oo, EntV&, OffV&, EntV&) {
                     oo.pop_back();
                   }),
                   n)
                   .ok());
  // Offsets not monotone.
  EXPECT_FALSE(ValidateHubLabels(
                   arrays([](OffV& oo, EntV&, OffV&, EntV&) {
                     std::swap(oo[1], oo[2]);
                   }),
                   n)
                   .ok());
  // Hub rank out of range.
  EXPECT_FALSE(ValidateHubLabels(
                   arrays([&](OffV&, EntV& oe, OffV&, EntV&) {
                     oe[0] = PackHubLabel(n, 0);
                   }),
                   n)
                   .ok());
  // Ranks within a row not strictly ascending.
  EXPECT_FALSE(ValidateHubLabels(
                   arrays([&](OffV& oo, EntV& oe, OffV&, EntV&) {
                     for (NodeId u = 0; u < n; ++u) {
                       if (oo[u + 1] - oo[u] >= 2) {
                         std::swap(oe[oo[u]], oe[oo[u] + 1]);
                         break;
                       }
                     }
                   }),
                   n)
                   .ok());
  // One direction present, the other missing: partial state is invalid.
  EXPECT_FALSE(ValidateHubLabels(
                   arrays([](OffV&, EntV&, OffV& io, EntV& ie) {
                     io.clear();
                     ie.clear();
                   }),
                   n)
                   .ok());
  // Node-count mismatch against the caller's graph.
  EXPECT_FALSE(ValidateHubLabels(good, n + 1).ok());
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

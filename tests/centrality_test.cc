#include "analysis/centrality.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(PageRankTest, RejectsBadOptions) {
  const DiGraph g = Build(2, {{0, 1}});
  PageRankOptions opts;
  opts.damping = 1.5;
  EXPECT_FALSE(PageRank(g, opts).ok());
  opts.damping = 0.85;
  opts.max_iterations = 0;
  EXPECT_FALSE(PageRank(g, opts).ok());
}

TEST(PageRankTest, ScoresSumToOne) {
  util::Rng rng(3);
  auto g = gen::ErdosRenyi(200, 1500, &rng);
  ASSERT_TRUE(g.ok());
  auto pr = PageRank(*g);
  ASSERT_TRUE(pr.ok());
  EXPECT_TRUE(pr->converged);
  const double sum =
      std::accumulate(pr->scores.begin(), pr->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double s : pr->scores) EXPECT_GT(s, 0.0);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  const DiGraph g = Build(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto pr = PageRank(g);
  ASSERT_TRUE(pr.ok());
  for (double s : pr->scores) EXPECT_NEAR(s, 0.25, 1e-9);
}

TEST(PageRankTest, SinkAccumulatesMass) {
  // Star into node 0: the followed celebrity outranks followers.
  const DiGraph g = Build(4, {{1, 0}, {2, 0}, {3, 0}});
  auto pr = PageRank(g);
  ASSERT_TRUE(pr.ok());
  EXPECT_GT(pr->scores[0], pr->scores[1]);
  EXPECT_NEAR(pr->scores[1], pr->scores[2], 1e-12);
  const double sum =
      std::accumulate(pr->scores.begin(), pr->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);  // dangling node handled
}

TEST(PageRankTest, MatchesHandComputedTwoNodeChain) {
  // 0 -> 1, both dangle-corrected. Solve the 2-node system by hand:
  // dangling node 1 spreads uniformly. r0 = 0.15/2 + 0.85 r1 / 2;
  // r1 = 0.15/2 + 0.85 (r0 + r1/2).
  const DiGraph g = Build(2, {{0, 1}});
  PageRankOptions opts;
  opts.tolerance = 1e-14;
  auto pr = PageRank(g, opts);
  ASSERT_TRUE(pr.ok());
  // Solving: r0 = (0.075 + 0.425 r1), r1 = 0.075 + 0.85 r0 + 0.425 r1.
  // Substituting r0 + r1 = 1: r0 = 0.075 + 0.425(1 - r0)
  //   -> r0 = 0.5/1.425 ... compute directly:
  const double r0 = (0.075 + 0.425) / 1.425;
  EXPECT_NEAR(pr->scores[0], r0, 1e-9);
  EXPECT_NEAR(pr->scores[1], 1.0 - r0, 1e-9);
}

TEST(PageRankTest, EmptyGraphHandled) {
  auto pr = PageRank(DiGraph());
  ASSERT_TRUE(pr.ok());
  EXPECT_TRUE(pr->scores.empty());
}

TEST(BetweennessTest, PathCenterIsHighest) {
  const DiGraph g = Build(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto bc = Betweenness(g);
  ASSERT_TRUE(bc.ok());
  // Node 2 lies on 0->3, 0->4, 1->3, 1->4 (4 paths) as interior node.
  EXPECT_DOUBLE_EQ((*bc)[2], 4.0);
  EXPECT_DOUBLE_EQ((*bc)[0], 0.0);
  EXPECT_DOUBLE_EQ((*bc)[4], 0.0);
  EXPECT_DOUBLE_EQ((*bc)[1], 3.0);  // interior of 0->2, 0->3, 0->4
}

TEST(BetweennessTest, EvenSplitAcrossParallelShortestPaths) {
  // Diamond: 0->1->3, 0->2->3. Each middle node carries half of the
  // single s-t dependency.
  const DiGraph g = Build(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto bc = Betweenness(g);
  ASSERT_TRUE(bc.ok());
  EXPECT_DOUBLE_EQ((*bc)[1], 0.5);
  EXPECT_DOUBLE_EQ((*bc)[2], 0.5);
  EXPECT_DOUBLE_EQ((*bc)[3], 0.0);
}

TEST(BetweennessTest, CycleSymmetry) {
  const DiGraph g = Build(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  auto bc = Betweenness(g);
  ASSERT_TRUE(bc.ok());
  for (NodeId u = 1; u < 5; ++u) {
    EXPECT_NEAR((*bc)[u], (*bc)[0], 1e-12);
  }
}

TEST(BetweennessTest, SampledApproximatesExact) {
  util::Rng rng(7);
  auto g = gen::ErdosRenyi(300, 3000, &rng);
  ASSERT_TRUE(g.ok());
  auto exact = Betweenness(*g);
  ASSERT_TRUE(exact.ok());
  BetweennessOptions opts;
  opts.pivots = 150;
  opts.seed = 11;
  auto approx = Betweenness(*g, opts);
  ASSERT_TRUE(approx.ok());
  // Totals should agree within sampling error.
  const double sum_exact =
      std::accumulate(exact->begin(), exact->end(), 0.0);
  const double sum_approx =
      std::accumulate(approx->begin(), approx->end(), 0.0);
  EXPECT_NEAR(sum_approx / sum_exact, 1.0, 0.15);
  // Rankings: the exact top node should rank highly in the estimate.
  const auto top_exact = TopKByScore(*exact, 5);
  const auto top_approx = TopKByScore(*approx, 30);
  bool found = false;
  for (NodeId u : top_approx) found |= u == top_exact[0];
  EXPECT_TRUE(found);
}

TEST(TopKByScoreTest, OrdersAndClamps) {
  const std::vector<double> scores{0.1, 0.9, 0.5, 0.9};
  const auto top = TopKByScore(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie with 3 broken by id
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_EQ(TopKByScore(scores, 100).size(), 4u);
  EXPECT_TRUE(TopKByScore({}, 5).empty());
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace elitenet {
namespace text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("Award Winning Journalist"),
            (std::vector<std::string>{"award", "winning", "journalist"}));
}

TEST(TokenizerTest, ClausesSplitOnPunctuation) {
  const auto clauses = TokenizeClauses("Reporter, New York Times. Opinions own");
  ASSERT_EQ(clauses.size(), 3u);
  EXPECT_EQ(clauses[0], (std::vector<std::string>{"reporter"}));
  EXPECT_EQ(clauses[1],
            (std::vector<std::string>{"new", "york", "times"}));
  EXPECT_EQ(clauses[2], (std::vector<std::string>{"opinions", "own"}));
}

TEST(TokenizerTest, DropsUrls) {
  EXPECT_EQ(Tokenize("see https://t.co/xyz now"),
            (std::vector<std::string>{"see", "now"}));
  EXPECT_EQ(Tokenize("at www.example.com daily"),
            (std::vector<std::string>{"at", "daily"}));
}

TEST(TokenizerTest, DropsMentionsKeepsHashtagText) {
  EXPECT_EQ(Tokenize("follow @handle for #Updates"),
            (std::vector<std::string>{"follow", "for", "updates"}));
}

TEST(TokenizerTest, HashtagDroppedWhenConfigured) {
  TokenizerOptions opts;
  opts.keep_hashtag_text = false;
  EXPECT_EQ(Tokenize("big #Party now", opts),
            (std::vector<std::string>{"big", "now"}));
}

TEST(TokenizerTest, ApostrophesJoinWords) {
  EXPECT_EQ(Tokenize("world's best"),
            (std::vector<std::string>{"worlds", "best"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  EXPECT_EQ(Tokenize("Top 40 radio"),
            (std::vector<std::string>{"top", "40", "radio"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... / ,,, !!").empty());
  EXPECT_TRUE(TokenizeClauses("...").empty());
}

TEST(TokenizerTest, HyphenSplitsWithinClause) {
  const auto clauses = TokenizeClauses("Co-founder of Things");
  ASSERT_EQ(clauses.size(), 1u);
  EXPECT_EQ(clauses[0],
            (std::vector<std::string>{"co", "founder", "of", "things"}));
}

TEST(TokenizerTest, CaseCanBePreserved) {
  TokenizerOptions opts;
  opts.lowercase = false;
  EXPECT_EQ(Tokenize("London Pride", opts),
            (std::vector<std::string>{"London", "Pride"}));
}

TEST(StopWordTest, CommonWordsAreStops) {
  for (const char* w : {"the", "of", "and", "to", "in", "my", "us"}) {
    EXPECT_TRUE(IsStopWord(w)) << w;
  }
}

TEST(StopWordTest, ContentWordsAreNot) {
  for (const char* w :
       {"official", "twitter", "journalist", "rugby", "award"}) {
    EXPECT_FALSE(IsStopWord(w)) << w;
  }
}

}  // namespace
}  // namespace text
}  // namespace elitenet

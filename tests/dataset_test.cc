#include "core/dataset.h"

#include <fstream>

#include <gtest/gtest.h>

#include "core/study.h"

namespace elitenet {
namespace core {
namespace {

std::string TempDirFor(const char* name) {
  return testing::TempDir() + "/" + name;
}

StudyDataset SmallDataset() {
  StudyConfig cfg;
  cfg.network.num_users = 2000;
  VerifiedStudy study(cfg);
  EXPECT_TRUE(study.Generate().ok());
  StudyDataset d;
  d.network = study.network();
  d.profiles = study.profiles();
  d.bios = study.bios();
  d.activity = study.activity();
  return d;
}

TEST(DatasetTest, RoundTripPreservesEverything) {
  const StudyDataset original = SmallDataset();
  const std::string dir = TempDirFor("dataset_roundtrip");
  ASSERT_TRUE(SaveDataset(original, dir).ok());

  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->network.graph, original.network.graph);
  EXPECT_EQ(loaded->network.roles, original.network.roles);
  EXPECT_EQ(loaded->network.popularity, original.network.popularity);
  EXPECT_EQ(loaded->bios.bios, original.bios.bios);
  EXPECT_EQ(loaded->bios.roles, original.bios.roles);
  EXPECT_EQ(loaded->activity.start, original.activity.start);
  ASSERT_EQ(loaded->activity.daily_tweets.size(),
            original.activity.daily_tweets.size());
  for (size_t i = 0; i < original.activity.daily_tweets.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->activity.daily_tweets[i],
                     original.activity.daily_tweets[i]);
  }
  ASSERT_EQ(loaded->profiles.size(), original.profiles.size());
  for (size_t i = 0; i < original.profiles.size(); ++i) {
    EXPECT_EQ(loaded->profiles[i].followers, original.profiles[i].followers);
    EXPECT_EQ(loaded->profiles[i].friends, original.profiles[i].friends);
    EXPECT_EQ(loaded->profiles[i].listed, original.profiles[i].listed);
    EXPECT_EQ(loaded->profiles[i].statuses, original.profiles[i].statuses);
  }
}

TEST(DatasetTest, MissingDirectoryFails) {
  EXPECT_EQ(LoadDataset("/no/such/dataset-dir").status().code(),
            StatusCode::kIoError);
}

TEST(DatasetTest, CorruptManifestRejected) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("dataset_badmanifest");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  std::ofstream(dir + "/MANIFEST") << "not a manifest\n";
  EXPECT_EQ(LoadDataset(dir).status().code(), StatusCode::kCorruption);
}

TEST(DatasetTest, UserCountMismatchRejected) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("dataset_badcount");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  std::ofstream(dir + "/MANIFEST")
      << "elitenet-dataset v1\nusers 999\nedges 1\ndays 1\n";
  EXPECT_EQ(LoadDataset(dir).status().code(), StatusCode::kCorruption);
}

TEST(DatasetTest, TruncatedBiosRejected) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("dataset_badbios");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  std::ofstream(dir + "/bios.txt") << "only one bio\n";
  EXPECT_EQ(LoadDataset(dir).status().code(), StatusCode::kCorruption);
}

TEST(DatasetTest, MismatchedComponentSizesRejectedOnSave) {
  StudyDataset d = SmallDataset();
  d.profiles.pop_back();
  EXPECT_EQ(SaveDataset(d, TempDirFor("dataset_badsave")).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetTest, LoadedDatasetIsAnalyzable) {
  const StudyDataset original = SmallDataset();
  const std::string dir = TempDirFor("dataset_analyze");
  ASSERT_TRUE(SaveDataset(original, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());

  StudyConfig cfg;
  cfg.clustering_samples = 500;
  cfg.distance_sources = 8;
  VerifiedStudy study(cfg);
  ASSERT_TRUE(study
                  .AdoptDataset(std::move(loaded->network),
                                std::move(loaded->profiles),
                                std::move(loaded->bios),
                                std::move(loaded->activity))
                  .ok());
  EXPECT_TRUE(study.generated());
  auto basic = study.RunBasic();
  ASSERT_TRUE(basic.ok());
  EXPECT_GT(basic->reciprocity.rate, 0.2);
  auto activity = study.RunActivity();
  EXPECT_TRUE(activity.ok());
}

TEST(DatasetTest, AdoptRejectsInconsistentComponents) {
  StudyDataset d = SmallDataset();
  d.bios.bios.pop_back();
  StudyConfig cfg;
  VerifiedStudy study(cfg);
  EXPECT_EQ(study
                .AdoptDataset(std::move(d.network), std::move(d.profiles),
                              std::move(d.bios), std::move(d.activity))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetTest, SaveIsIdempotent) {
  const StudyDataset d = SmallDataset();
  const std::string dir = TempDirFor("dataset_twice");
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  ASSERT_TRUE(SaveDataset(d, dir).ok());  // overwrite in place
  EXPECT_TRUE(LoadDataset(dir).ok());
}

}  // namespace
}  // namespace core
}  // namespace elitenet

#include "analysis/spectral.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

DiGraph Build(NodeId n,
              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  EXPECT_TRUE(b.AddEdges(edges).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(TridiagonalTest, DiagonalMatrixEigenvalues) {
  auto evals = SymmetricTridiagonalEigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
  ASSERT_TRUE(evals.ok());
  EXPECT_EQ(*evals, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TridiagonalTest, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  auto evals = SymmetricTridiagonalEigenvalues({2.0, 2.0}, {1.0});
  ASSERT_TRUE(evals.ok());
  EXPECT_NEAR((*evals)[0], 1.0, 1e-12);
  EXPECT_NEAR((*evals)[1], 3.0, 1e-12);
}

TEST(TridiagonalTest, LaplacianOfPathClosedForm) {
  // Path graph Laplacian eigenvalues: 2 - 2 cos(pi k / n), k = 0..n-1.
  const int n = 8;
  std::vector<double> diag(n, 2.0);
  diag.front() = diag.back() = 1.0;
  std::vector<double> off(n - 1, -1.0);
  auto evals = SymmetricTridiagonalEigenvalues(diag, off);
  ASSERT_TRUE(evals.ok());
  for (int k = 0; k < n; ++k) {
    const double expect = 2.0 - 2.0 * std::cos(M_PI * k / n);
    EXPECT_NEAR((*evals)[k], expect, 1e-10) << "k=" << k;
  }
}

TEST(TridiagonalTest, SingleElement) {
  auto evals = SymmetricTridiagonalEigenvalues({5.0}, {});
  ASSERT_TRUE(evals.ok());
  EXPECT_EQ(*evals, std::vector<double>{5.0});
}

TEST(TridiagonalTest, RejectsBadShapes) {
  EXPECT_FALSE(SymmetricTridiagonalEigenvalues({}, {}).ok());
  EXPECT_FALSE(SymmetricTridiagonalEigenvalues({1.0, 2.0}, {}).ok());
}

TEST(LaplacianOperatorTest, DegreesOnMixedGraph) {
  // 0<->1 mutual (one undirected edge), 1->2 one-way.
  const DiGraph g = Build(3, {{0, 1}, {1, 0}, {1, 2}});
  const LaplacianOperator op(g);
  EXPECT_DOUBLE_EQ(op.degree(0), 1.0);
  EXPECT_DOUBLE_EQ(op.degree(1), 2.0);
  EXPECT_DOUBLE_EQ(op.degree(2), 1.0);
}

TEST(LaplacianOperatorTest, ConstantVectorMapsToZero) {
  util::Rng rng(3);
  auto g = gen::ErdosRenyi(50, 300, &rng);
  ASSERT_TRUE(g.ok());
  const LaplacianOperator op(*g);
  std::vector<double> ones(50, 1.0), out(50, -1.0);
  op.Apply(ones, &out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(LaplacianOperatorTest, QuadraticFormIsEdgeDifferenceSum) {
  // xᵀ L x = Σ_{undirected edges} (x_u - x_v)².
  const DiGraph g = Build(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}});
  const LaplacianOperator op(g);
  const std::vector<double> x{1.0, 2.0, 4.0, 7.0};
  std::vector<double> lx(4, 0.0);
  op.Apply(x, &lx);
  double quad = 0.0;
  for (int i = 0; i < 4; ++i) quad += x[i] * lx[i];
  // Undirected edges: (0,1), (1,2), (2,3): 1 + 4 + 9 = 14.
  EXPECT_NEAR(quad, 14.0, 1e-12);
}

TEST(LanczosTest, CompleteGraphSpectrum) {
  // K_n (mutual): Laplacian eigenvalues are n (n-1 times) and 0.
  const NodeId n = 12;
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) {
        ASSERT_TRUE(b.AddEdge(u, v).ok());
      }
    }
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  LanczosOptions opts;
  opts.k = 12;
  auto r = TopLaplacianEigenvalues(*g, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->eigenvalues.size(), 2u);
  for (size_t i = 0; i + 1 < r->eigenvalues.size(); ++i) {
    // All but the smallest returned value should be ~n.
    if (i < r->eigenvalues.size() - 1 &&
        r->eigenvalues[i] > 1.0) {
      EXPECT_NEAR(r->eigenvalues[i], 12.0, 1e-6);
    }
  }
  EXPECT_NEAR(r->eigenvalues.front(), 12.0, 1e-6);
}

TEST(LanczosTest, StarGraphLargestEigenvalue) {
  // Star K_{1,n-1}: Laplacian eigenvalues {0, 1 (n-2 times), n}.
  const NodeId n = 20;
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  LanczosOptions opts;
  opts.k = 3;
  auto r = TopLaplacianEigenvalues(*g, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->eigenvalues[0], 20.0, 1e-8);
  EXPECT_NEAR(r->eigenvalues[1], 1.0, 1e-8);
}

TEST(LanczosTest, AgreesWithPowerIteration) {
  util::Rng rng(7);
  auto g = gen::ErdosRenyi(300, 2500, &rng);
  ASSERT_TRUE(g.ok());
  LanczosOptions opts;
  opts.k = 5;
  auto lanczos = TopLaplacianEigenvalues(*g, opts);
  ASSERT_TRUE(lanczos.ok());
  const LaplacianOperator op(*g);
  auto largest = PowerIterationLargest(op, 5000, 1e-12);
  ASSERT_TRUE(largest.ok());
  EXPECT_NEAR(lanczos->eigenvalues[0], *largest,
              1e-5 * (*largest));
}

TEST(LanczosTest, EigenvaluesDescendingAndNonNegative) {
  util::Rng rng(11);
  auto g = gen::PreferentialAttachment(400, 4, &rng);
  ASSERT_TRUE(g.ok());
  LanczosOptions opts;
  opts.k = 30;
  auto r = TopLaplacianEigenvalues(*g, opts);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->eigenvalues.size(); ++i) {
    EXPECT_LE(r->eigenvalues[i], r->eigenvalues[i - 1] + 1e-9);
  }
  for (double ev : r->eigenvalues) EXPECT_GE(ev, 0.0);
}

TEST(LanczosTest, LargestEigenvalueBoundedByTwiceMaxDegree) {
  util::Rng rng(13);
  auto g = gen::ErdosRenyi(200, 1000, &rng);
  ASSERT_TRUE(g.ok());
  LanczosOptions opts;
  opts.k = 1;
  auto r = TopLaplacianEigenvalues(*g, opts);
  ASSERT_TRUE(r.ok());
  const LaplacianOperator op(*g);
  double max_deg = 0.0;
  for (NodeId u = 0; u < g->num_nodes(); ++u) {
    max_deg = std::max(max_deg, op.degree(u));
  }
  EXPECT_LE(r->eigenvalues[0], 2.0 * max_deg + 1e-9);
  EXPECT_GE(r->eigenvalues[0], max_deg);  // λ_max >= d_max + 1 in fact
}

TEST(LanczosTest, RejectsBadInputs) {
  EXPECT_FALSE(TopLaplacianEigenvalues(DiGraph()).ok());
  const DiGraph g = Build(3, {{0, 1}});
  LanczosOptions opts;
  opts.k = 0;
  EXPECT_FALSE(TopLaplacianEigenvalues(g, opts).ok());
}

TEST(PowerIterationTest, EdgelessGraphIsZero) {
  GraphBuilder b(5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const LaplacianOperator op(*g);
  auto r = PowerIterationLargest(op);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.0, 1e-9);
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

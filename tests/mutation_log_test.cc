#include "serve/mutation_log.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace elitenet {
namespace serve {
namespace {

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<Mutation> SampleTrace() {
  return {
      {MutationOp::kFollow, 1, 2},   {MutationOp::kFollow, 2, 1},
      {MutationOp::kUnfollow, 1, 2}, {MutationOp::kFollow, 0, 3},
      {MutationOp::kUnfollow, 4, 0},
  };
}

// Reads the raw file, applies `edit`, writes it back.
void EditFile(const std::string& path,
              const std::function<void(std::string*)>& edit) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  edit(&bytes);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(MutationLogTest, RoundTrip) {
  const std::string path = TmpPath("roundtrip.emut");
  const std::vector<Mutation> trace = SampleTrace();
  ASSERT_TRUE(WriteMutationLog(path, trace).ok());
  auto back = ReadMutationLog(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, trace);
}

TEST(MutationLogTest, HeaderOnlyLogIsEmpty) {
  const std::string path = TmpPath("empty.emut");
  ASSERT_TRUE(WriteMutationLog(path, {}).ok());
  auto back = ReadMutationLog(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(MutationLogTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadMutationLog(TmpPath("nonexistent.emut")).status().code(),
            StatusCode::kIoError);
}

TEST(MutationLogTest, AppendAcrossReopen) {
  const std::string path = TmpPath("reopen.emut");
  std::remove(path.c_str());
  const std::vector<Mutation> trace = SampleTrace();
  {
    auto w = MutationLogWriter::Open(path);
    ASSERT_TRUE(w.ok());
    for (size_t i = 0; i < 3; ++i) ASSERT_TRUE((*w)->Append(trace[i]).ok());
    EXPECT_EQ((*w)->size(), 3u);
  }
  {
    auto w = MutationLogWriter::Open(path);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ((*w)->size(), 3u);  // resumed past the existing records
    for (size_t i = 3; i < trace.size(); ++i) {
      ASSERT_TRUE((*w)->Append(trace[i]).ok());
    }
  }
  auto back = ReadMutationLog(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, trace);
}

TEST(MutationLogTest, TruncationMidRecordIsCorruption) {
  const std::string path = TmpPath("truncated.emut");
  ASSERT_TRUE(WriteMutationLog(path, SampleTrace()).ok());
  // Header (16) + one whole record (16) + half a record: the tail is not
  // a whole record, which must read as corruption, not a shorter trace.
  EditFile(path, [](std::string* bytes) { bytes->resize(16 + 16 + 8); });
  EXPECT_EQ(ReadMutationLog(path).status().code(), StatusCode::kCorruption);
}

TEST(MutationLogTest, WholeRecordTruncationStillReads) {
  // Chopping whole records is indistinguishable from a shorter log by
  // design (append-only format, no footer) — it must parse.
  const std::string path = TmpPath("short.emut");
  const std::vector<Mutation> trace = SampleTrace();
  ASSERT_TRUE(WriteMutationLog(path, trace).ok());
  EditFile(path, [](std::string* bytes) { bytes->resize(16 + 2 * 16); });
  auto back = ReadMutationLog(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], trace[0]);
  EXPECT_EQ((*back)[1], trace[1]);
}

TEST(MutationLogTest, BadMagicIsCorruption) {
  const std::string path = TmpPath("badmagic.emut");
  ASSERT_TRUE(WriteMutationLog(path, SampleTrace()).ok());
  EditFile(path, [](std::string* bytes) { (*bytes)[0] = 'X'; });
  EXPECT_EQ(ReadMutationLog(path).status().code(), StatusCode::kCorruption);
  // The writer must refuse to append to it too.
  EXPECT_EQ(MutationLogWriter::Open(path).status().code(),
            StatusCode::kCorruption);
}

TEST(MutationLogTest, FlippedPayloadByteIsCorruption) {
  const std::string path = TmpPath("bitflip.emut");
  ASSERT_TRUE(WriteMutationLog(path, SampleTrace()).ok());
  // Flip a byte of record 2's dst field (offset 16 + 2*16 + 8).
  EditFile(path, [](std::string* bytes) { (*bytes)[16 + 32 + 8] ^= 0x01; });
  EXPECT_EQ(ReadMutationLog(path).status().code(), StatusCode::kCorruption);
}

TEST(MutationLogTest, SplicedRecordIsCorruption) {
  // The checksum binds a record to its position: swapping two valid
  // records yields per-record checksum failures.
  const std::string path = TmpPath("spliced.emut");
  ASSERT_TRUE(WriteMutationLog(path, SampleTrace()).ok());
  EditFile(path, [](std::string* bytes) {
    std::string r0 = bytes->substr(16, 16);
    std::string r1 = bytes->substr(32, 16);
    bytes->replace(16, 16, r1);
    bytes->replace(32, 16, r0);
  });
  EXPECT_EQ(ReadMutationLog(path).status().code(), StatusCode::kCorruption);
}

TEST(MutationLogTest, ChecksumIsPositionDependent) {
  const Mutation m{MutationOp::kFollow, 7, 9};
  EXPECT_NE(MutationRecordChecksum(0, m), MutationRecordChecksum(1, m));
}

}  // namespace
}  // namespace serve
}  // namespace elitenet

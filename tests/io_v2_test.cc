// ENG2 zero-copy snapshot tests: the save/map round trip, the borrowed-
// storage semantics of the mapped graph (copies and transposes share the
// mapping, the mapping outlives the loading scope), and the corruption
// matrix — every kind of damage must surface as a clean Status, never a
// crash or a half-valid graph, because MapBinary is the serving layer's
// startup path.

#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace elitenet {
namespace graph {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

DiGraph SmallGraph() {
  GraphBuilder b(4);
  EXPECT_TRUE(b.AddEdges({{0, 1}, {1, 2}, {2, 0}, {0, 3}}).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

void FlipByte(const std::string& path, long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  char c;
  f.seekg(offset);
  f.get(c);
  f.seekp(offset);
  f.put(static_cast<char>(c ^ 0x01));
}

void Truncate(const std::string& path, size_t keep_bytes) {
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(contents.size(), keep_bytes);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << contents.substr(0, keep_bytes);
}

TEST(SnapshotV2Test, RoundTrip) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("v2_roundtrip.eng2");
  ASSERT_TRUE(SaveBinaryV2(g, path).ok());
  auto mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(*mapped, g);
  EXPECT_TRUE(mapped->borrows_storage());
  EXPECT_FALSE(g.borrows_storage());
  EXPECT_EQ(GraphChecksum(*mapped), GraphChecksum(g));
}

TEST(SnapshotV2Test, RoundTripLargerRandomGraph) {
  util::Rng rng(99);
  auto g = gen::ErdosRenyi(500, 3000, &rng);
  ASSERT_TRUE(g.ok());
  const std::string path = TempPath("v2_big.eng2");
  ASSERT_TRUE(SaveBinaryV2(*g, path).ok());
  auto mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(*mapped, *g);
}

TEST(SnapshotV2Test, EmptyGraphRoundTrip) {
  DiGraph g;
  const std::string path = TempPath("v2_empty.eng2");
  ASSERT_TRUE(SaveBinaryV2(g, path).ok());
  auto mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->num_nodes(), 0u);
  EXPECT_EQ(mapped->num_edges(), 0u);
}

TEST(SnapshotV2Test, CopiesAndTransposeShareTheMapping) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("v2_share.eng2");
  ASSERT_TRUE(SaveBinaryV2(g, path).ok());

  // The original mapped graph goes out of scope; the copy must keep the
  // mapping alive and stay fully readable.
  DiGraph copy;
  {
    auto mapped = MapBinary(path);
    ASSERT_TRUE(mapped.ok());
    copy = *mapped;
  }
  EXPECT_EQ(copy, g);
  EXPECT_TRUE(copy.borrows_storage());

  const DiGraph t = copy.Transpose();
  EXPECT_TRUE(t.borrows_storage());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_TRUE(t.HasEdge(1, 0));  // g has 0 -> 1
  EXPECT_EQ(t.Transpose(), g);
}

TEST(SnapshotV2Test, MovedFromGraphIsEmptyAndValid) {
  const std::string path = TempPath("v2_move.eng2");
  ASSERT_TRUE(SaveBinaryV2(SmallGraph(), path).ok());
  auto mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok());
  DiGraph stolen = std::move(*mapped);
  EXPECT_EQ(stolen, SmallGraph());
  EXPECT_EQ(mapped->num_nodes(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(mapped->borrows_storage());
}

TEST(SnapshotV2Test, ZeroLengthFileIsCorruption) {
  const std::string path = TempPath("v2_zero.eng2");
  std::ofstream(path, std::ios::binary | std::ios::trunc).flush();
  EXPECT_EQ(MapBinary(path).status().code(), StatusCode::kCorruption);
}

TEST(SnapshotV2Test, MissingFileIsIoError) {
  EXPECT_EQ(MapBinary("/no/such/file.eng2").status().code(),
            StatusCode::kIoError);
}

TEST(SnapshotV2Test, BadMagicIsCorruption) {
  const std::string path = TempPath("v2_magic.eng2");
  ASSERT_TRUE(SaveBinaryV2(SmallGraph(), path).ok());
  FlipByte(path, 0);
  EXPECT_EQ(MapBinary(path).status().code(), StatusCode::kCorruption);
}

TEST(SnapshotV2Test, VersionSkewIsNotSupported) {
  const std::string path = TempPath("v2_version.eng2");
  ASSERT_TRUE(SaveBinaryV2(SmallGraph(), path).ok());
  FlipByte(path, 4);  // u32 version field follows the magic
  EXPECT_EQ(MapBinary(path).status().code(), StatusCode::kNotSupported);
}

TEST(SnapshotV2Test, Eng1FileIsCorruptionNotCrash) {
  const std::string path = TempPath("v2_eng1.eng2");
  ASSERT_TRUE(SaveBinary(SmallGraph(), path).ok());  // ENG1 bytes
  EXPECT_EQ(MapBinary(path).status().code(), StatusCode::kCorruption);
}

TEST(SnapshotV2Test, TruncationAnywhereIsCorruption) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("v2_trunc.eng2");
  ASSERT_TRUE(SaveBinaryV2(g, path).ok());
  size_t full_size = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    full_size = static_cast<size_t>(in.tellg());
  }
  // Mid-header, mid-table, and mid-payload cuts.
  for (size_t keep : {size_t{3}, size_t{63}, size_t{100}, full_size - 1}) {
    ASSERT_TRUE(SaveBinaryV2(g, path).ok());
    Truncate(path, keep);
    EXPECT_EQ(MapBinary(path).status().code(), StatusCode::kCorruption)
        << "kept " << keep << " of " << full_size;
  }
}

TEST(SnapshotV2Test, PayloadBitFlipIsCorruption) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("v2_flip.eng2");
  ASSERT_TRUE(SaveBinaryV2(g, path).ok());
  // First byte of the first section (header 64 + table 4*32 = 192).
  FlipByte(path, 192);
  EXPECT_EQ(MapBinary(path).status().code(), StatusCode::kCorruption);
}

TEST(SnapshotV2Test, SectionTableBitFlipIsCorruption) {
  const DiGraph g = SmallGraph();
  const std::string path = TempPath("v2_table.eng2");
  ASSERT_TRUE(SaveBinaryV2(g, path).ok());
  FlipByte(path, 64 + 8);  // first section entry's offset field
  EXPECT_EQ(MapBinary(path).status().code(), StatusCode::kCorruption);
}

TEST(SniffSnapshotTest, ClassifiesAllFormats) {
  const DiGraph g = SmallGraph();
  const std::string v1 = TempPath("sniff.eng");
  const std::string v2 = TempPath("sniff.eng2");
  const std::string txt = TempPath("sniff.txt");
  ASSERT_TRUE(SaveBinary(g, v1).ok());
  ASSERT_TRUE(SaveBinaryV2(g, v2).ok());
  ASSERT_TRUE(WriteEdgeListText(g, txt).ok());

  auto s1 = SniffSnapshot(v1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, SnapshotFormat::kV1);
  auto s2 = SniffSnapshot(v2);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, SnapshotFormat::kV2);
  auto st = SniffSnapshot(txt);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, SnapshotFormat::kNotSnapshot);
  EXPECT_EQ(SniffSnapshot("/no/such/file").status().code(),
            StatusCode::kIoError);
}

TEST(LoadSnapshotTest, DispatchesOnMagicNotExtension) {
  const DiGraph g = SmallGraph();
  // Deliberately swapped extensions: the magic decides.
  const std::string v1_as_eng2 = TempPath("swap.eng2");
  const std::string v2_as_eng = TempPath("swap.eng");
  ASSERT_TRUE(SaveBinary(g, v1_as_eng2).ok());
  ASSERT_TRUE(SaveBinaryV2(g, v2_as_eng).ok());

  auto a = LoadSnapshot(v1_as_eng2);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(*a, g);
  EXPECT_FALSE(a->borrows_storage());  // ENG1 deserializes into vectors

  auto b = LoadSnapshot(v2_as_eng);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(*b, g);
  EXPECT_TRUE(b->borrows_storage());  // ENG2 maps in place

  const std::string txt = TempPath("swap.txt");
  ASSERT_TRUE(WriteEdgeListText(g, txt).ok());
  EXPECT_EQ(LoadSnapshot(txt).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

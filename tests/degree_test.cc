#include "analysis/degree.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace elitenet {
namespace analysis {
namespace {

using graph::DiGraph;
using graph::GraphBuilder;

DiGraph Star() {
  // 0 follows 1..4; node 5 isolated; node 6 is a sink followed by 0.
  GraphBuilder b(7);
  for (graph::NodeId v = 1; v <= 4; ++v) {
    EXPECT_TRUE(b.AddEdge(0, v).ok());
  }
  EXPECT_TRUE(b.AddEdge(0, 6).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(DegreeStatsTest, EmptyGraph) {
  const DegreeStats s = ComputeDegreeStats(DiGraph());
  EXPECT_EQ(s.max_out_degree, 0u);
  EXPECT_EQ(s.isolated_nodes, 0u);
  EXPECT_EQ(s.density, 0.0);
}

TEST(DegreeStatsTest, StarGraph) {
  const DegreeStats s = ComputeDegreeStats(Star());
  EXPECT_EQ(s.max_out_degree, 5u);
  EXPECT_EQ(s.argmax_out_degree, 0u);
  EXPECT_EQ(s.min_out_degree, 0u);
  EXPECT_NEAR(s.avg_out_degree, 5.0 / 7.0, 1e-12);
  EXPECT_EQ(s.max_in_degree, 1u);
  EXPECT_EQ(s.isolated_nodes, 1u);  // node 5
  // Sinks: out 0 and in > 0 -> nodes 1, 2, 3, 4, 6.
  EXPECT_EQ(s.sink_nodes, 5u);
  // Sources: in 0 and out > 0 -> node 0.
  EXPECT_EQ(s.source_nodes, 1u);
  EXPECT_NEAR(s.density, 5.0 / (7.0 * 6.0), 1e-12);
}

TEST(DegreeStatsTest, AvgInEqualsAvgOut) {
  const DegreeStats s = ComputeDegreeStats(Star());
  EXPECT_DOUBLE_EQ(s.avg_in_degree, s.avg_out_degree);
}

TEST(DegreeVectorTest, MatchesPerNodeDegrees) {
  const DiGraph g = Star();
  const auto out = OutDegreeVector(g);
  const auto in = InDegreeVector(g);
  const auto total = TotalDegreeVector(g);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(in[1], 1.0);
  EXPECT_DOUBLE_EQ(in[0], 0.0);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(total[i], out[i] + in[i]);
  }
}

}  // namespace
}  // namespace analysis
}  // namespace elitenet

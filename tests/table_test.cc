#include "util/table.h"

#include <gtest/gtest.h>

namespace elitenet {
namespace util {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "count"});
  t.AddRow();
  t.AddCell("a");
  t.AddCell(uint64_t{1});
  t.AddRow();
  t.AddCell("longer-name");
  t.AddCell(uint64_t{123456});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, EveryRowEndsWithNewline) {
  TextTable t({"x"});
  t.AddRowCells({"1"});
  t.AddRowCells({"2"});
  const std::string out = t.ToString();
  EXPECT_EQ(out.back(), '\n');
  int lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 4);  // header + rule + 2 rows
}

TEST(TextTableTest, NumericCellFormatting) {
  TextTable t({"v"});
  t.AddRow();
  t.AddCell(3.14159, 3);
  t.AddRow();
  t.AddCell(int64_t{-42});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("-42"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadMissingCells) {
  TextTable t({"a", "b", "c"});
  t.AddRowCells({"only-one"});
  EXPECT_NO_FATAL_FAILURE(t.ToString());
}

TEST(FormatNumberTest, RespectsPrecision) {
  EXPECT_EQ(FormatNumber(1234.5678, 6), "1234.57");
  EXPECT_EQ(FormatNumber(2.0, 4), "2");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(79213811), "79,213,811");
  EXPECT_EQ(FormatWithCommas(231246), "231,246");
}

}  // namespace
}  // namespace util
}  // namespace elitenet

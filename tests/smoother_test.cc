#include "stats/smoother.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace elitenet {
namespace stats {
namespace {

TEST(SmootherTest, RejectsMismatchedSizes) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_FALSE(SmoothLogLog(x, y).ok());
}

TEST(SmootherTest, RejectsAllNonPositive) {
  const std::vector<double> x{-1.0, 0.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_FALSE(SmoothLogLog(x, y).ok());
}

TEST(SmootherTest, DropsNonPositivePairsAndCounts) {
  const std::vector<double> x{1.0, 10.0, 0.0, 100.0, 5.0};
  const std::vector<double> y{1.0, 10.0, 5.0, 100.0, -2.0};
  auto curve = SmoothLogLog(x, y, 3, 1);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->dropped, 2u);
}

TEST(SmootherTest, PowerLawRelationRecoversSlope) {
  // y = 4 x^1.5 exactly: log-log slope 1.5, perfect correlation.
  std::vector<double> x, y;
  for (int i = 1; i <= 300; ++i) {
    x.push_back(i);
    y.push_back(4.0 * std::pow(static_cast<double>(i), 1.5));
  }
  auto curve = SmoothLogLog(x, y);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve->ols_slope, 1.5, 1e-9);
  EXPECT_NEAR(curve->log_log_pearson, 1.0, 1e-9);
  EXPECT_NEAR(curve->spearman, 1.0, 1e-12);
  // Smoothed points must be monotone increasing in y.
  for (size_t i = 1; i < curve->points.size(); ++i) {
    EXPECT_GT(curve->points[i].mean_log_y,
              curve->points[i - 1].mean_log_y);
  }
}

TEST(SmootherTest, NoisyPowerLawCiContainsTrend) {
  util::Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    const double xv = std::exp(rng.UniformDouble(0.0, 6.0));
    x.push_back(xv);
    y.push_back(2.0 * std::pow(xv, 0.8) * rng.LogNormal(0.0, 0.4));
  }
  auto curve = SmoothLogLog(x, y, 15, 20);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve->ols_slope, 0.8, 0.05);
  for (const SmoothedPoint& p : curve->points) {
    // 95% CI: the true trend log10(2) + 0.8 * log_x should usually lie
    // inside. Allow a couple of misses.
    const double truth = std::log10(2.0) + 0.8 * p.log_x_center;
    EXPECT_NEAR(p.mean_log_y, truth, 0.2);
    EXPECT_LE(p.ci_low, p.mean_log_y);
    EXPECT_GE(p.ci_high, p.mean_log_y);
  }
}

TEST(SmootherTest, SparseBinsAreMerged) {
  std::vector<double> x, y;
  // 100 points near x=1, a single point at x=1e6.
  for (int i = 0; i < 100; ++i) {
    x.push_back(1.0 + i * 0.001);
    y.push_back(10.0);
  }
  x.push_back(1e6);
  y.push_back(20.0);
  auto curve = SmoothLogLog(x, y, 10, 5);
  ASSERT_TRUE(curve.ok());
  // The lone far-right point merges leftward instead of forming its own
  // unreliable bin.
  for (const SmoothedPoint& p : curve->points) {
    EXPECT_GE(p.n, 5u);
  }
}

TEST(SmootherTest, ConstantXSingleBin) {
  std::vector<double> x(50, 3.0), y;
  for (int i = 0; i < 50; ++i) y.push_back(1.0 + i);
  auto curve = SmoothLogLog(x, y, 10, 5);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->points.size(), 1u);
  EXPECT_EQ(curve->points[0].n, 50u);
}

TEST(SmootherTest, AsciiChartRendersOneRowPerPoint) {
  std::vector<double> x, y;
  for (int i = 1; i <= 200; ++i) {
    x.push_back(i);
    y.push_back(i * 2.0);
  }
  auto curve = SmoothLogLog(x, y, 5, 10);
  ASSERT_TRUE(curve.ok());
  const std::string chart = curve->ToAsciiChart("followers", "lists");
  EXPECT_NE(chart.find("followers"), std::string::npos);
  int lines = 0;
  for (char c : chart) lines += c == '\n';
  EXPECT_EQ(static_cast<size_t>(lines), curve->points.size() + 1);
}

}  // namespace
}  // namespace stats
}  // namespace elitenet

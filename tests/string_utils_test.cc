#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace elitenet {
namespace util {
namespace {

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, SingleField) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StripTest, RemovesBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
  EXPECT_EQ(StripAsciiWhitespace("\t\n"), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("AbC123"), "abc123");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("official twitter", "official"));
  EXPECT_FALSE(StartsWith("off", "official"));
  EXPECT_TRUE(EndsWith("a.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(JoinTest, SeparatorBetweenElements) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseUint64Test, ValidNumbers) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("79213811", &v));
  EXPECT_EQ(v, 79213811u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsBadInput) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64(" 12", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
}

TEST(ParseDoubleTest, ValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.14", &v));
  EXPECT_DOUBLE_EQ(v, 3.14);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(ParseDoubleTest, RejectsTrailingGarbageAndEmpty) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5abc", &v));
}

}  // namespace
}  // namespace util
}  // namespace elitenet

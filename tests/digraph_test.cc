#include "graph/digraph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace elitenet {
namespace graph {
namespace {

DiGraph MakeTriangle() {
  // 0 -> 1, 1 -> 2, 2 -> 0
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(DiGraphTest, EmptyGraph) {
  DiGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.Density(), 0.0);
  EXPECT_EQ(g.CountIsolated(), 0u);
}

TEST(DiGraphTest, TriangleStructure) {
  const DiGraph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.OutDegree(u), 1u);
    EXPECT_EQ(g.InDegree(u), 1u);
  }
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(DiGraphTest, NeighborsAreSorted) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 4).ok());
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  ASSERT_TRUE(b.AddEdge(2, 0).ok());
  ASSERT_TRUE(b.AddEdge(1, 0).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const auto outs = g->OutNeighbors(0);
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0], 1u);
  EXPECT_EQ(outs[1], 3u);
  EXPECT_EQ(outs[2], 4u);
  const auto ins = g->InNeighbors(0);
  ASSERT_EQ(ins.size(), 2u);
  EXPECT_EQ(ins[0], 1u);
  EXPECT_EQ(ins[1], 2u);
}

TEST(DiGraphTest, DensityOfCompleteDigraph) {
  GraphBuilder b(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) {
        ASSERT_TRUE(b.AddEdge(u, v).ok());
      }
    }
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->Density(), 1.0);
}

TEST(DiGraphTest, CountIsolated) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->CountIsolated(), 3u);  // 2, 3, 4
}

TEST(DiGraphTest, TransposeReversesEdges) {
  const DiGraph g = MakeTriangle();
  const DiGraph t = g.Transpose();
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_TRUE(t.HasEdge(1, 0));
  EXPECT_TRUE(t.HasEdge(2, 1));
  EXPECT_TRUE(t.HasEdge(0, 2));
  EXPECT_FALSE(t.HasEdge(0, 1));
}

TEST(DiGraphTest, DoubleTransposeIsIdentity) {
  const DiGraph g = MakeTriangle();
  EXPECT_EQ(g.Transpose().Transpose(), g);
}

TEST(DiGraphTest, EqualityIsStructural) {
  EXPECT_EQ(MakeTriangle(), MakeTriangle());
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  auto other = b.Build();
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(MakeTriangle() == *other);
}

TEST(DiGraphTest, HasEdgeOnHighDegreeNodeUsesBinarySearch) {
  GraphBuilder b(1000);
  for (NodeId v = 1; v < 1000; v += 2) {
    ASSERT_TRUE(b.AddEdge(0, v).ok());
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(0, 999));
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(0, 2));
  EXPECT_FALSE(g->HasEdge(0, 998));
}

}  // namespace
}  // namespace graph
}  // namespace elitenet

// Property-based sweeps over the statistical estimators: recovery of
// planted parameters across a grid of exponents, thresholds and sample
// sizes, plus invariances the estimators must respect.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/powerlaw.h"
#include "timeseries/acf.h"
#include "timeseries/adf.h"
#include "timeseries/pelt.h"
#include "util/rng.h"

namespace elitenet {
namespace {

// ---- Power-law recovery across (alpha, kmin) grid -------------------------

class PowerLawRecoveryTest
    : public testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(PowerLawRecoveryTest, DiscreteMleWithinTolerance) {
  const auto& [alpha, kmin] = GetParam();
  util::Rng rng(1000 + static_cast<uint64_t>(alpha * 100) + kmin);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(static_cast<double>(stats::SampleZeta(alpha, kmin, &rng)));
  }
  auto fit = stats::FitDiscreteAlpha(data, static_cast<double>(kmin));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, alpha, 0.07) << "alpha=" << alpha
                                       << " kmin=" << kmin;
  EXPECT_LT(fit->ks_distance, 0.02);
}

TEST_P(PowerLawRecoveryTest, ContinuousMleWithinTolerance) {
  const auto& [alpha, kmin] = GetParam();
  util::Rng rng(2000 + static_cast<uint64_t>(alpha * 100) + kmin);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(rng.Pareto(alpha, static_cast<double>(kmin)));
  }
  auto fit = stats::FitContinuousAlpha(data, static_cast<double>(kmin));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, alpha, 0.06);
  EXPECT_LT(fit->ks_distance, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaKminGrid, PowerLawRecoveryTest,
    testing::Combine(testing::Values(2.2, 2.8, 3.24, 4.0),
                     testing::Values<uint64_t>(1, 10, 100)),
    [](const testing::TestParamInfo<PowerLawRecoveryTest::ParamType>&
           info) {
      return "a" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 100)) +
             "_k" + std::to_string(std::get<1>(info.param));
    });

// ---- ADF decision grid -----------------------------------------------------

class AdfDecisionTest : public testing::TestWithParam<double> {};

TEST_P(AdfDecisionTest, StationaryAr1AlwaysRejectsUnitRoot) {
  const double phi = GetParam();
  util::Rng rng(static_cast<uint64_t>(phi * 1000) + 7);
  std::vector<double> s;
  double x = 0.0;
  for (int i = 0; i < 500; ++i) {
    x = phi * x + rng.Normal();
    s.push_back(x);
  }
  auto r = timeseries::AdfTest(s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stationary_at_5pct) << "phi=" << phi;
  // The statistic weakens monotonically in persistence, staying negative.
  EXPECT_LT(r->statistic, -3.0);
}

INSTANTIATE_TEST_SUITE_P(PersistenceGrid, AdfDecisionTest,
                         testing::Values(0.0, 0.3, 0.5, 0.7, 0.85),
                         [](const auto& info) {
                           return "phi" + std::to_string(static_cast<int>(
                                              info.param * 100));
                         });

// ---- PELT shift-size sensitivity -------------------------------------------

class PeltShiftTest : public testing::TestWithParam<double> {};

TEST_P(PeltShiftTest, ShiftLocationWithinTolerance) {
  const double shift = GetParam();
  util::Rng rng(static_cast<uint64_t>(shift * 10) + 31);
  std::vector<double> s;
  for (int i = 0; i < 150; ++i) s.push_back(rng.Normal());
  for (int i = 0; i < 150; ++i) s.push_back(shift + rng.Normal());
  auto r = timeseries::Pelt(s);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->change_points.size(), 1u) << "shift=" << shift;
  bool near = false;
  for (size_t cp : r->change_points) {
    near |= cp >= 144 && cp <= 156;
  }
  EXPECT_TRUE(near) << "shift=" << shift;
}

INSTANTIATE_TEST_SUITE_P(ShiftGrid, PeltShiftTest,
                         testing::Values(2.0, 4.0, 8.0),
                         [](const auto& info) {
                           return "d" + std::to_string(static_cast<int>(
                                            info.param * 10));
                         });

// ---- Estimator invariances --------------------------------------------------

TEST(StatsInvarianceTest, SpearmanInvariantUnderMonotoneTransforms) {
  util::Rng rng(3);
  std::vector<double> x, y, fx, gy;
  for (int i = 0; i < 3000; ++i) {
    const double a = rng.Normal();
    const double b = 0.6 * a + 0.8 * rng.Normal();
    x.push_back(a);
    y.push_back(b);
    fx.push_back(std::exp(a));               // strictly increasing
    gy.push_back(std::atan(b) * 3.0 + 1.0);  // strictly increasing
  }
  EXPECT_NEAR(stats::SpearmanCorrelation(x, y),
              stats::SpearmanCorrelation(fx, gy), 1e-12);
}

TEST(StatsInvarianceTest, AcfInvariantUnderAffineTransforms) {
  util::Rng rng(5);
  std::vector<double> s, t;
  double x = 0.0;
  for (int i = 0; i < 500; ++i) {
    x = 0.6 * x + rng.Normal();
    s.push_back(x);
    t.push_back(-3.0 * x + 17.0);
  }
  auto rs = timeseries::Autocorrelation(s, 10);
  auto rt = timeseries::Autocorrelation(t, 10);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rt.ok());
  for (int k = 0; k < 10; ++k) {
    EXPECT_NEAR((*rs)[k], (*rt)[k], 1e-10);
  }
}

TEST(StatsInvarianceTest, PeltInvariantUnderScaling) {
  util::Rng rng(7);
  std::vector<double> s;
  for (int i = 0; i < 100; ++i) s.push_back(rng.Normal());
  for (int i = 0; i < 100; ++i) s.push_back(6.0 + rng.Normal());
  std::vector<double> scaled;
  for (double v : s) scaled.push_back(2.5 * v - 40.0);
  auto r1 = timeseries::Pelt(s);
  auto r2 = timeseries::Pelt(scaled);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // The Normal cost is affine-equivariant: same change-points.
  EXPECT_EQ(r1->change_points, r2->change_points);
}

TEST(StatsInvarianceTest, GiniScaleInvariant) {
  util::Rng rng(9);
  std::vector<double> xs, scaled;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.LogNormal(0.0, 1.0);
    xs.push_back(v);
    scaled.push_back(7.0 * v);
  }
  EXPECT_NEAR(stats::Gini(xs), stats::Gini(scaled), 1e-12);
}

TEST(StatsInvarianceTest, QuantilesMonotoneInQ) {
  util::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Normal());
  double prev = stats::Quantile(xs, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = stats::Quantile(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace elitenet

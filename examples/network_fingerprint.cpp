// Network fingerprinting and reach prediction — the two applications the
// paper's conclusion proposes:
//
//  1. "The above-mentioned deviations likely constitute a unique
//     fingerprint for verified users": we measure the fingerprint of the
//     calibrated verified network and of three classic random-graph
//     families, and score each against the paper's published signature.
//
//  2. "This can further help evaluate the strength of an unverified
//     user's case for getting verified": we train a logistic model on
//     purely structural features to predict top-tier reach, and report
//     held-out AUC plus the learned feature weights.
//
//   ./build/examples/network_fingerprint [num_users]

#include <cstdio>
#include <cstdlib>

#include "core/fingerprint.h"
#include "core/reach_predictor.h"
#include "core/study.h"
#include "gen/generators.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;

  const uint32_t n =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 12000;

  core::StudyConfig cfg;
  cfg.network.num_users = n;
  core::VerifiedStudy study(cfg);
  if (const Status s = study.Generate(); !s.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const uint64_t m = study.network().graph.num_edges();

  // ---- Part 1: fingerprints -----------------------------------------------
  std::printf("== Part 1: network fingerprints vs the paper's signature "
              "==\n\n");
  const core::GraphFingerprint paper = core::PaperFingerprint();
  std::printf("paper signature: %s\n\n", paper.ToString().c_str());

  util::TextTable table({"network", "similarity", "fingerprint"});
  auto add_row = [&](const std::string& name, const graph::DiGraph& g) {
    auto fp = core::ComputeFingerprint(g);
    if (!fp.ok()) return;
    table.AddRow();
    table.AddCell(name);
    table.AddCell(core::FingerprintSimilarity(*fp, paper), 3);
    table.AddCell(fp->ToString());
  };

  add_row("verified (this library)", study.network().graph);
  util::Rng rng(11);
  if (auto er = gen::ErdosRenyi(n, m, &rng); er.ok()) {
    add_row("Erdos-Renyi (same n, m)", *er);
  }
  const uint32_t ba_fanout =
      std::max<uint32_t>(1, static_cast<uint32_t>(m / n));
  if (auto ba = gen::PreferentialAttachment(n, ba_fanout, &rng); ba.ok()) {
    add_row("preferential attachment", *ba);
  }
  if (auto ws = gen::WattsStrogatz(n, ba_fanout, 0.1, &rng); ws.ok()) {
    add_row("Watts-Strogatz", *ws);
  }
  table.Print();
  std::printf("\nreading: only the verified-style network matches the "
              "paper's signature; the generic families miss on "
              "reciprocity, clustering, or the attracting-component "
              "structure.\n");

  // ---- Part 2: reach prediction --------------------------------------------
  std::printf("\n== Part 2: predicting top-decile reach from structure "
              "alone ==\n\n");
  auto report =
      core::RunReachPrediction(study.network().graph, study.profiles());
  if (!report.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("train=%zu test=%zu positives=%.1f%%\n", report->train_n,
              report->test_n, 100.0 * report->positive_rate);
  std::printf("held-out AUC=%.3f accuracy=%.3f\n\n", report->auc,
              report->accuracy);
  std::printf("learned weights (standardized features):\n");
  for (const auto& [name, weight] : report->feature_weights) {
    std::printf("  %-22s %+.3f\n", name.c_str(), weight);
  }
  std::printf(
      "\nreading: sub-graph embedding predicts whole-Twitter reach "
      "(Section IV-F); the in-degree and PageRank weights carry the "
      "signal, matching Fig. 5's strongest panels.\n");
  return 0;
}

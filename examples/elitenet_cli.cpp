// elitenet_cli — run the library's analyses on YOUR graph. Reads a SNAP-
// style edge list ("src dst" per line, '#' comments) or an elitenet
// binary snapshot, and exposes the paper's measurement battery as
// subcommands. This is the adoption path for downstream users with their
// own follow/interaction graphs.
//
//   elitenet_cli stats <graph>         basic analysis (paper Section IV-A)
//   elitenet_cli powerlaw <graph>      out-degree CSN fit + Vuong tests
//   elitenet_cli distance <graph>      separation distribution (Fig. 3)
//   elitenet_cli fingerprint <graph>   signature + similarity to the paper
//   elitenet_cli rank <graph> [k]      top-k users by PageRank
//   elitenet_cli serve <graph> [N]     query engine on stdin/stdout (N
//                                      workers; also --metrics=<path>,
//                                      --metrics-interval=<ms>,
//                                      --flight-recorder=<K>, --slow-ms=<t>,
//                                      --sample=<N>, --no-telemetry; admin
//                                      lines #stats/#healthz/#recent/#slow/
//                                      #trace <id> answer with JSON)
//   elitenet_cli convert <in> <out>    edge list <-> binary snapshot
//                                      (.eng2 = zero-copy mmap format,
//                                       .eng = legacy ENG1, else text;
//                                       --budget-mb=N streams the .eng2
//                                       write through an N-MiB external
//                                       sort — same bytes, bounded RSS)
//   elitenet_cli warmup <graph>        build/refresh the <graph>.widx
//                                      warm-index sidecar serve uses
//   elitenet_cli mutate <graph> <trace> [--out=PATH]
//                                      replay an EMUT follow/unfollow
//                                      trace through the live delta
//                                      overlay, print apply rate +
//                                      overlay high-water marks, and
//                                      compact to a fresh ENG2 snapshot
//                                      (default PATH: <graph>.mutated.eng2)
//
// <graph> is loaded through core::LoadAnyGraph: a dataset directory
// (SaveDataset layout), a ".eng"/".eng2" binary snapshot (magic-sniffed;
// ENG2 is mmapped zero-copy), or a text edge list. `serve` and `warmup`
// key the sidecar to the graph's checksum, so a stale .widx silently
// rebuilds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "analysis/centrality.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/distance.h"
#include "analysis/reciprocity.h"
#include "core/dataset.h"
#include "core/fingerprint.h"
#include "graph/io.h"
#include "serve/delta_overlay.h"
#include "serve/server.h"
#include "serve/warm_index_cache.h"
#include "stats/distributions.h"
#include "stats/powerlaw.h"
#include "stats/vuong.h"
#include "util/rng.h"
#include "util/rss.h"
#include "util/string_utils.h"
#include "util/table.h"

namespace {

using namespace elitenet;

int CmdStats(const graph::DiGraph& g) {
  const auto deg = analysis::ComputeDegreeStats(g);
  const auto rec = analysis::ComputeReciprocity(g);
  const auto weak = analysis::WeaklyConnectedComponents(g);
  const auto scc = analysis::StronglyConnectedComponents(g);
  const auto att = analysis::FindAttractingComponents(g, scc);

  std::printf("nodes                 %s\n",
              util::FormatWithCommas(g.num_nodes()).c_str());
  std::printf("edges                 %s\n",
              util::FormatWithCommas(g.num_edges()).c_str());
  std::printf("density               %.6g\n", deg.density);
  std::printf("avg out-degree        %.2f\n", deg.avg_out_degree);
  std::printf("max out-degree        %u (node %u)\n", deg.max_out_degree,
              deg.argmax_out_degree);
  std::printf("max in-degree         %u (node %u)\n", deg.max_in_degree,
              deg.argmax_in_degree);
  std::printf("isolated nodes        %s\n",
              util::FormatWithCommas(deg.isolated_nodes).c_str());
  std::printf("reciprocity           %.4f\n", rec.rate);
  std::printf("weak components       %u (giant %.2f%%)\n",
              weak.num_components, 100.0 * weak.GiantFraction());
  std::printf("strong components     %u (giant %.2f%%)\n",
              scc.num_components, 100.0 * scc.GiantFraction());
  std::printf("attracting components %s (%s singletons)\n",
              util::FormatWithCommas(att.count).c_str(),
              util::FormatWithCommas(att.singletons).c_str());
  return 0;
}

int CmdPowerLaw(const graph::DiGraph& g) {
  std::vector<double> degrees;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > 0) {
      degrees.push_back(static_cast<double>(g.OutDegree(u)));
    }
  }
  if (degrees.empty()) {
    std::fprintf(stderr, "graph has no edges\n");
    return 1;
  }
  auto fit = stats::FitDiscrete(degrees);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }
  std::printf("discrete power-law fit (Clauset-Shalizi-Newman):\n");
  std::printf("  alpha   %.4f\n", fit->alpha);
  std::printf("  xmin    %.0f\n", fit->xmin);
  std::printf("  tail n  %llu of %zu\n",
              static_cast<unsigned long long>(fit->tail_n), degrees.size());
  std::printf("  KS      %.4f\n", fit->ks_distance);

  util::Rng rng(7);
  if (auto gof = stats::BootstrapGoodness(degrees, *fit, 30, &rng);
      gof.ok()) {
    std::printf("  bootstrap p = %.3f (p > 0.1 => power law plausible)\n",
                gof->p_value);
  }

  const auto tail = stats::TailOf(degrees, fit->xmin);
  const auto pl = stats::PointwiseLogLikelihood(tail, *fit);
  auto report = [&](const char* name, const Result<stats::AltFit>& alt) {
    if (!alt.ok()) return;
    auto v = stats::VuongTest(
        pl, stats::AltPointwiseLogLikelihood(tail, *alt));
    if (!v.ok()) return;
    std::printf("  Vuong vs %-11s LR=%+9.1f stat=%+6.2f (positive "
                "favors the power law)\n",
                name, v->log_likelihood_ratio, v->statistic);
  };
  report("log-normal", stats::FitLogNormalTail(degrees, fit->xmin, true));
  report("exponential",
         stats::FitExponentialTail(degrees, fit->xmin, true));
  report("poisson", stats::FitPoissonTail(degrees, fit->xmin));
  return 0;
}

int CmdDistance(const graph::DiGraph& g) {
  util::Rng rng(11);
  const auto d = analysis::SampleDistances(g, 64, &rng);
  if (d.reachable_pairs == 0) {
    std::fprintf(stderr, "no reachable pairs\n");
    return 1;
  }
  std::printf("mean distance       %.3f\n", d.mean_distance);
  std::printf("median              %llu\n",
              static_cast<unsigned long long>(d.median_distance));
  std::printf("effective diameter  %llu (90th percentile)\n",
              static_cast<unsigned long long>(d.effective_diameter));
  std::printf("diameter >=         %u\n", d.diameter_lower_bound);
  std::printf("\n%s", d.hops.ToAsciiChart("hops").c_str());
  return 0;
}

int CmdFingerprint(const graph::DiGraph& g) {
  auto fp = core::ComputeFingerprint(g);
  if (!fp.ok()) {
    std::fprintf(stderr, "fingerprint failed: %s\n",
                 fp.status().ToString().c_str());
    return 1;
  }
  const auto paper = core::PaperFingerprint();
  std::printf("fingerprint: %s\n", fp->ToString().c_str());
  std::printf("similarity to the ICDE'19 verified-network signature: "
              "%.3f\n",
              core::FingerprintSimilarity(*fp, paper));
  return 0;
}

int CmdRank(const graph::DiGraph& g, uint32_t k) {
  auto pr = analysis::PageRank(g);
  if (!pr.ok()) {
    std::fprintf(stderr, "pagerank failed\n");
    return 1;
  }
  util::TextTable table({"rank", "node", "pagerank", "in-deg", "out-deg"});
  const auto top = analysis::TopKByScore(pr->scores, k);
  for (size_t i = 0; i < top.size(); ++i) {
    table.AddRow();
    table.AddCell(static_cast<uint64_t>(i + 1));
    table.AddCell(static_cast<uint64_t>(top[i]));
    table.AddCell(pr->scores[top[i]], 4);
    table.AddCell(static_cast<uint64_t>(g.InDegree(top[i])));
    table.AddCell(static_cast<uint64_t>(g.OutDegree(top[i])));
  }
  table.Print();
  return 0;
}

int CmdServe(graph::DiGraph g, const std::string& graph_path, int argc,
             char** argv) {
  serve::EngineOptions opts;
  serve::ApplyServeEnv(&opts);  // env first; explicit flags override
  opts.warm_index_path = serve::WarmIndexPathFor(graph_path);
  for (int i = 0; i < argc; ++i) {
    if (serve::ParseServeFlag(argv[i], &opts)) continue;
    if (argv[i][0] != '-') {
      opts.threads = std::atoi(argv[i]);  // positional worker count
      continue;
    }
    std::fprintf(stderr, "unknown serve flag: %s\n", argv[i]);
    return 2;
  }
  auto engine = serve::QueryEngine::Create(std::move(g), opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine startup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "warm in %.2fs (%s); %d workers; protocol: ego <n> | "
               "topk <k> | dist <s> <t> [deadline_us] | neighbors <n> "
               "out|in [limit] | fingerprint | quit\n",
               (*engine)->warmup_seconds(),
               (*engine)->warm_index_from_cache() ? "restored from .widx"
                                                  : "built fresh",
               (*engine)->threads());
  const serve::ServeStats stats =
      serve::ServeLines(engine->get(), stdin, stdout);
  std::fprintf(stderr,
               "served %llu requests (%llu errors, %llu degraded, "
               "%llu admin), cache %llu hits / %llu misses\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.degraded),
               static_cast<unsigned long long>(stats.admin),
               static_cast<unsigned long long>((*engine)->cache_hits()),
               static_cast<unsigned long long>((*engine)->cache_misses()));
  std::fputs(serve::RenderSummaryText((*engine)->telemetry()).c_str(),
             stderr);
  return 0;
}

int CmdConvert(const graph::DiGraph& g, const std::string& out,
               int64_t budget_mb) {
  const char* kind = "text edge list";
  Status s;
  if (util::EndsWith(out, ".eng2")) {
    if (budget_mb >= 0) {
      // Out-of-core path: external-sort the edges under the budget and
      // stream the snapshot (byte-identical to the in-memory writer).
      graph::StreamWriteOptions opts;
      opts.sort_budget_bytes = static_cast<uint64_t>(budget_mb) << 20;
      auto stats = graph::SaveStreamedV2(g, out, opts);
      if (!stats.ok()) {
        std::fprintf(stderr, "write failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "wrote %s (ENG2, streamed: budget %lld MiB, %zu+%zu spill "
          "runs, %llu edges, peak RSS %.1f MiB)\n",
          out.c_str(), static_cast<long long>(budget_mb),
          stats->forward_spill_runs, stats->reverse_spill_runs,
          static_cast<unsigned long long>(stats->num_edges),
          static_cast<double>(util::PeakRssBytes()) / (1 << 20));
      return 0;
    }
    kind = "ENG2 zero-copy snapshot";
    s = graph::SaveBinaryV2(g, out);
  } else if (util::EndsWith(out, ".eng")) {
    kind = "ENG1 snapshot (legacy)";
    s = graph::SaveBinary(g, out);
  } else {
    s = graph::WriteEdgeListText(g, out);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%s)\n", out.c_str(), kind);
  return 0;
}

int CmdMutate(graph::DiGraph g, const std::string& graph_path,
              const std::string& trace_path, int argc, char** argv) {
  std::string out = graph_path + ".mutated.eng2";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown mutate flag: %s\n", argv[i]);
      return 2;
    }
  }
  auto trace = serve::ReadMutationLog(trace_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot read trace %s: %s\n", trace_path.c_str(),
                 trace.status().ToString().c_str());
    return 1;
  }
  auto live = serve::LiveGraph::Create(std::move(g));
  if (!live.ok()) {
    std::fprintf(stderr, "live graph startup failed: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }

  const auto t0 = std::chrono::steady_clock::now();
  uint64_t changed = 0;
  for (size_t i = 0; i < trace->size(); ++i) {
    auto outcome = (*live)->Apply((*trace)[i]);
    if (!outcome.ok()) {
      std::fprintf(stderr, "apply failed at record %zu: %s\n", i,
                   outcome.status().ToString().c_str());
      return 1;
    }
    if (outcome->changed) ++changed;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const serve::OverlayStats stats = (*live)->Stats();
  std::printf("applied %zu mutations in %.3fs (%.0f/s), %llu effective\n",
              trace->size(), seconds,
              seconds > 0.0 ? static_cast<double>(trace->size()) / seconds
                            : 0.0,
              static_cast<unsigned long long>(changed));
  std::printf("  follows %llu  unfollows %llu  noops %llu\n",
              static_cast<unsigned long long>(stats.follows),
              static_cast<unsigned long long>(stats.unfollows),
              static_cast<unsigned long long>(stats.noops));
  std::printf("  live edges %s (reciprocity %.4f)\n",
              util::FormatWithCommas(stats.live_edges).c_str(),
              (*live)->current_reciprocity());
  std::printf("  overlay high-water: %llu rows, %llu entries "
              "(now %llu tombstones, %llu adds)\n",
              static_cast<unsigned long long>(stats.hw_rows),
              static_cast<unsigned long long>(stats.hw_entries),
              static_cast<unsigned long long>(stats.tombstones),
              static_cast<unsigned long long>(stats.overlay_adds));

  auto cstats = (*live)->Compact(out);
  if (!cstats.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n",
                 cstats.status().ToString().c_str());
    return 1;
  }
  std::printf("compacted %llu edges @ version %llu -> %s (%.3fs)\n",
              static_cast<unsigned long long>(cstats->num_edges),
              static_cast<unsigned long long>(cstats->folded_version),
              out.c_str(), cstats->seconds);
  return 0;
}

int CmdWarmup(graph::DiGraph g, const std::string& graph_path) {
  serve::EngineOptions opts;
  opts.warm_index_path = serve::WarmIndexPathFor(graph_path);
  auto engine = serve::QueryEngine::Create(std::move(g), opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "warmup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const bool reused = (*engine)->warm_index_from_cache();
  std::printf("%s %s in %.2fs (dist oracle: %s)\n",
              reused ? "reused existing" : "rebuilt",
              opts.warm_index_path.c_str(), (*engine)->warmup_seconds(),
              (*engine)->distance_oracle_active() ? "built"
                                                  : "unavailable");
  auto sections = serve::DescribeWarmIndexes(opts.warm_index_path);
  if (!sections.ok()) {
    std::fprintf(stderr, "cannot inventory sidecar: %s\n",
                 sections.status().ToString().c_str());
    return 1;
  }
  uint64_t total = 0;
  for (const serve::WarmIndexSectionInfo& s : *sections) {
    std::printf("  %-18s %12llu bytes\n", s.name.c_str(),
                static_cast<unsigned long long>(s.bytes));
    total += s.bytes;
  }
  std::printf("  %-18s %12llu bytes (%zu sections)\n", "total",
              static_cast<unsigned long long>(total), sections->size());
  return 0;
}

void Usage() {
  std::fputs(
      "usage: elitenet_cli <stats|powerlaw|distance|fingerprint|rank|"
      "serve|convert|warmup|mutate> <graph> [args]\n"
      "  graph: text edge list, .eng/.eng2 binary snapshot, or dataset "
      "dir\n"
      "  convert <in> <out> [--budget-mb=N]: out ending .eng2 writes the\n"
      "    zero-copy mmap snapshot, .eng the legacy ENG1 format, anything\n"
      "    else a text edge list; --budget-mb streams the .eng2 write\n"
      "    through an N-MiB external sort (same bytes, bounded memory)\n"
      "  warmup <graph>: precompute the <graph>.widx warm-index sidecar\n"
      "  mutate <graph> <trace> [--out=PATH]: replay an EMUT\n"
      "    follow/unfollow trace through the live delta overlay and\n"
      "    compact the result to a fresh ENG2 snapshot\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  core::GraphLoadInfo load_info;
  auto g = core::LoadAnyGraph(argv[2], &load_info);
  if (!g.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                 g.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %u nodes, %llu edges (%s, %.3fs)\n",
               g->num_nodes(),
               static_cast<unsigned long long>(g->num_edges()),
               load_info.format.c_str(), load_info.seconds);

  if (command == "stats") return CmdStats(*g);
  if (command == "powerlaw") return CmdPowerLaw(*g);
  if (command == "distance") return CmdDistance(*g);
  if (command == "fingerprint") return CmdFingerprint(*g);
  if (command == "rank") {
    const uint32_t k =
        argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 10;
    return CmdRank(*g, k);
  }
  if (command == "serve") {
    return CmdServe(std::move(*g), argv[2], argc - 3, argv + 3);
  }
  if (command == "convert") {
    if (argc < 4) {
      Usage();
      return 2;
    }
    int64_t budget_mb = -1;  // -1 = in-memory writer
    for (int i = 4; i < argc; ++i) {
      if (std::strncmp(argv[i], "--budget-mb=", 12) == 0) {
        budget_mb = std::atoll(argv[i] + 12);
      } else {
        std::fprintf(stderr, "unknown convert flag: %s\n", argv[i]);
        return 2;
      }
    }
    return CmdConvert(*g, argv[3], budget_mb);
  }
  if (command == "warmup") return CmdWarmup(std::move(*g), argv[2]);
  if (command == "mutate") {
    if (argc < 4) {
      Usage();
      return 2;
    }
    return CmdMutate(std::move(*g), argv[2], argv[3], argc - 4, argv + 4);
  }
  Usage();
  return 2;
}

// Activity monitoring — the Section V toolkit as an operational monitor:
// given a daily activity series, render the calendar, test for
// autocorrelation structure and stationarity, and surface regime changes
// with their calendar dates and stability support. Runs on the synthetic
// cohort series by default; point it at a CSV of "date,value" rows to
// analyze your own series.
//
//   ./build/examples/activity_monitor [csv_path]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/activity.h"
#include "timeseries/acf.h"
#include "timeseries/adf.h"
#include "timeseries/calendar.h"
#include "timeseries/pelt.h"
#include "util/string_utils.h"

namespace {

using namespace elitenet;

// Loads "YYYY-MM-DD,value" rows; returns false on any parse problem.
bool LoadCsv(const std::string& path, timeseries::Date* start,
             std::vector<double>* values) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    const auto trimmed = util::StripAsciiWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = util::Split(trimmed, ',');
    if (fields.size() != 2) continue;  // tolerate headers
    const auto date_parts = util::Split(fields[0], '-');
    uint64_t y, m, d;
    double v;
    if (date_parts.size() != 3 ||
        !util::ParseUint64(date_parts[0], &y) ||
        !util::ParseUint64(date_parts[1], &m) ||
        !util::ParseUint64(date_parts[2], &d) ||
        !util::ParseDouble(fields[1], &v)) {
      continue;
    }
    if (first) {
      *start = {static_cast<int>(y), static_cast<int>(m),
                static_cast<int>(d)};
      first = false;
    }
    values->push_back(v);
  }
  return !values->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elitenet;

  timeseries::Date start;
  std::vector<double> series;
  if (argc > 1) {
    if (!LoadCsv(argv[1], &start, &series)) {
      std::fprintf(stderr, "could not read series from %s\n", argv[1]);
      return 1;
    }
    std::printf("loaded %zu days from %s starting %s\n\n", series.size(),
                argv[1], timeseries::FormatDate(start).c_str());
  } else {
    auto generated = gen::GenerateActivity();
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    start = generated->start;
    series = generated->daily_tweets;
    std::printf("analyzing the synthetic cohort series (%zu days from "
                "%s)\n\n",
                series.size(), timeseries::FormatDate(start).c_str());
  }

  // Calendar view.
  if (auto heatmap = timeseries::RenderCalendarHeatmap(start, series);
      heatmap.ok()) {
    std::fputs(heatmap->c_str(), stdout);
    std::printf("legend: . - + * # (quintiles)\n\n");
  }

  // Autocorrelation structure.
  const int max_lag =
      std::min<int>(185, static_cast<int>(series.size()) - 2);
  if (auto lb = timeseries::LjungBoxTest(series, max_lag); lb.ok()) {
    std::printf("Ljung-Box (lags 1..%d): max p=%.3g -> %s\n", max_lag,
                lb->max_p_value,
                lb->max_p_value < 0.05
                    ? "autocorrelation structure present"
                    : "consistent with white noise");
  }

  // Stationarity.
  if (auto adf = timeseries::AdfTest(series); adf.ok()) {
    std::printf("ADF (constant+trend): stat=%.3f crit(5%%)=%.3f -> %s "
                "(auto-lag %d)\n",
                adf->statistic, adf->crit_5pct,
                adf->stationary_at_5pct ? "stationary"
                                        : "unit root not rejected",
                adf->used_lag);
  }

  // Regime changes.
  if (auto sweep = timeseries::PeltPenaltySweep(series); sweep.ok()) {
    if (sweep->stable.empty()) {
      std::printf("PELT sweep: no stable change-points (%d runs)\n",
                  sweep->runs);
    } else {
      std::printf("PELT sweep: %zu stable change-point(s) across %d "
                  "runs:\n",
                  sweep->stable.size(), sweep->runs);
      for (const auto& cp : sweep->stable) {
        const auto date =
            timeseries::AddDays(start, static_cast<int64_t>(cp.index));
        // Mean levels on both sides give the operator the direction.
        double before = 0.0, after = 0.0;
        size_t nb = 0, na = 0;
        for (size_t i = 0; i < series.size(); ++i) {
          if (i < cp.index && cp.index - i <= 28) {
            before += series[i];
            ++nb;
          } else if (i >= cp.index && i - cp.index < 28) {
            after += series[i];
            ++na;
          }
        }
        before /= static_cast<double>(nb ? nb : 1);
        after /= static_cast<double>(na ? na : 1);
        std::printf("  %s  support=%.0f%%  level %+.1f%% (28-day "
                    "windows)\n",
                    timeseries::FormatDate(date).c_str(),
                    100.0 * cp.support, 100.0 * (after / before - 1.0));
      }
    }
  }
  return 0;
}

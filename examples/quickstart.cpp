// Quickstart: generate a verified-user network at laptop scale, run the
// paper's entire measurement pipeline, and print the report with
// paper-vs-measured comparisons.
//
//   ./build/examples/quickstart [num_users] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/study.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace elitenet;

  core::StudyConfig config;
  config.network.num_users = argc > 1
                                 ? static_cast<uint32_t>(std::atoi(argv[1]))
                                 : 20000;
  if (argc > 2) {
    config.network.seed = static_cast<uint64_t>(std::atoll(argv[2]));
  }
  // Quickstart favors speed; the bench binaries use deeper settings.
  config.bootstrap_replicates = 10;
  config.distance_sources = 32;
  config.betweenness_pivots = 128;
  config.clustering_samples = 6000;
  config.eigenvalue_k = 120;

  util::SpanTimer total;
  core::VerifiedStudy study(config);

  util::SpanTimer phase("quickstart.generate");
  const Status gen_status = study.Generate();
  if (!gen_status.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 gen_status.ToString().c_str());
    return 1;
  }
  std::printf("generated %u users, %llu edges in %.1fs\n",
              study.network().graph.num_nodes(),
              static_cast<unsigned long long>(study.network().graph.num_edges()),
              phase.Seconds());

  phase.Reset("quickstart.analysis");
  const Result<core::StudyReport> report = study.RunAll();
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("analysis finished in %.1fs\n\n", phase.Seconds());
  std::fputs(
      core::RenderReport(*report, study.network().graph.num_nodes()).c_str(),
      stdout);
  std::printf("\ntotal: %.1fs\n", total.Seconds());
  return 0;
}

// Full paper reproduction in one binary: generates the synthetic
// verified-user dataset at the requested scale and runs every analysis
// of Sections IV and V with bench-grade settings, printing the complete
// paper-vs-measured report.
//
//   ./build/examples/verified_study [--scale=N|full] [--seed=S]
//                                   [--save=DIR] [--trace=FILE]
//                                   [--metrics=FILE] [--progress]
//
// At --scale=full (231,246 users, ~79M edges) expect several GB of RAM
// and tens of minutes; the default 40,000-user run finishes in under two
// minutes on a laptop. --save writes the generated dataset (graph, user
// records, bios, activity) to a directory in the library's published
// format (core/dataset.h).
//
// Observability: --trace=run.json writes a Chrome trace-event file (open
// in chrome://tracing or ui.perfetto.dev), --metrics=run_metrics.json
// dumps the counter/histogram snapshot, and --progress streams stage
// names as the pipeline advances. ELITENET_TRACE / ELITENET_METRICS do
// the same process-wide without flags.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dataset.h"
#include "core/study.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace elitenet;

  uint32_t num_users = 40000;
  uint64_t seed = 2018;
  std::string save_dir;
  std::string trace_path;
  std::string metrics_path;
  bool progress = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      const char* v = argv[i] + 8;
      num_users = std::strcmp(v, "full") == 0
                      ? 231246u
                      : static_cast<uint32_t>(std::atoi(v));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--save=", 7) == 0) {
      save_dir = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress = true;
    }
  }

  core::StudyConfig config;
  config.network.num_users = num_users;
  config.network.seed = seed;
  config.bootstrap_replicates = 30;
  config.distance_sources = 64;
  config.betweenness_pivots = 256;
  config.clustering_samples = 12000;
  config.eigenvalue_k = 250;
  config.trace_path = trace_path;
  config.metrics_path = metrics_path;
  if (progress) {
    config.progress = [](const std::string& stage) {
      std::printf("  [stage] %s\n", stage.c_str());
      std::fflush(stdout);
    };
  }

  core::VerifiedStudy study(config);
  util::SpanTimer total;

  std::printf("generating synthetic verified-user dataset (n=%u, seed "
              "%llu)...\n",
              num_users, static_cast<unsigned long long>(seed));
  util::SpanTimer phase;
  if (const Status s = study.Generate(); !s.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  %u users, %llu follow edges, %zu bios, %zu-day activity "
              "series  [%.1fs]\n",
              study.network().graph.num_nodes(),
              static_cast<unsigned long long>(
                  study.network().graph.num_edges()),
              study.bios().bios.size(),
              study.activity().daily_tweets.size(), phase.Seconds());

  phase.Reset();
  std::printf("running the full Section IV + V analysis battery...\n");
  const Result<core::StudyReport> report = study.RunAll();
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("  done in %.1fs\n\n", phase.Seconds());

  std::fputs(core::RenderReport(*report, num_users).c_str(), stdout);

  if (!save_dir.empty()) {
    core::StudyDataset dataset;
    dataset.network = study.network();
    dataset.profiles = study.profiles();
    dataset.bios = study.bios();
    dataset.activity = study.activity();
    if (const Status s = core::SaveDataset(dataset, save_dir); s.ok()) {
      std::printf("\nsaved dataset to %s\n", save_dir.c_str());
    } else {
      std::fprintf(stderr, "\ndataset save failed: %s\n",
                   s.ToString().c_str());
    }
  }
  std::printf("\ntotal wall clock: %.1fs\n", total.Seconds());
  return 0;
}

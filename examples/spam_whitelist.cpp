// Spam white-listing by degrees of separation — the application from the
// related work the paper highlights (Hentschel et al., ICWSM 2014): most
// legitimate users sit within a few hops of a verified account, while
// spam handles live 7-10 hops out. This example embeds the verified
// network in a larger population of unverified accounts, computes each
// account's distance to the verified core, and prints the white-list
// coverage per hop radius.
//
//   ./build/examples/spam_whitelist [verified_users] [unverified_users]

#include <cstdio>
#include <cstdlib>

#include "analysis/distance.h"
#include "gen/verified_network.h"
#include "graph/builder.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;

  const uint32_t n_verified =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 8000;
  const uint32_t n_unverified =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 40000;

  // Verified core.
  gen::VerifiedNetworkConfig vcfg;
  vcfg.num_users = n_verified;
  auto verified = gen::GenerateVerifiedNetwork(vcfg);
  if (!verified.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  // Embed in a larger population: unverified accounts follow a mix of
  // verified and unverified handles; a "spam ring" at the end follows
  // only itself plus a thin chain into the periphery.
  const uint32_t n_total = n_verified + n_unverified;
  const uint32_t spam_ring = n_unverified / 50;
  graph::GraphBuilder builder(n_total);
  for (graph::NodeId u = 0; u < n_verified; ++u) {
    for (graph::NodeId v : verified->graph.OutNeighbors(u)) {
      if (!builder.AddEdge(u, v).ok()) return 1;
    }
  }
  util::Rng rng(7);
  const uint32_t spam_begin = n_total - spam_ring;
  for (graph::NodeId u = n_verified; u < spam_begin; ++u) {
    // Regular unverified account: follows 2-20 handles, ~30% verified.
    const uint32_t fanout = 2 + static_cast<uint32_t>(rng.UniformU64(19));
    for (uint32_t j = 0; j < fanout; ++j) {
      graph::NodeId v;
      if (rng.Bernoulli(0.3)) {
        v = static_cast<graph::NodeId>(rng.UniformU64(n_verified));
      } else {
        v = static_cast<graph::NodeId>(
            n_verified + rng.UniformU64(spam_begin - n_verified));
      }
      if (v != u && !builder.AddEdge(u, v).ok()) return 1;
    }
    // ~60% are followed back by someone, making distance-to-user finite.
    if (rng.Bernoulli(0.6)) {
      const graph::NodeId follower = static_cast<graph::NodeId>(
          n_verified + rng.UniformU64(spam_begin - n_verified));
      if (follower != u && !builder.AddEdge(follower, u).ok()) return 1;
    }
  }
  // Spam ring: a long chain hanging off one peripheral account.
  graph::NodeId prev = spam_begin > 0 ? spam_begin - 1 : 0;
  for (graph::NodeId u = spam_begin; u < n_total; ++u) {
    if (!builder.AddEdge(prev, u).ok()) return 1;  // chain inward
    prev = u;
  }
  auto g = builder.Build();
  if (!g.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }

  // Distance from the verified core: multi-source BFS implemented by
  // measuring, for each account, hops along *follower* edges from any
  // verified user (reverse BFS from a virtual source = BFS over in-edges
  // from all verified nodes). We approximate multi-source BFS by running
  // a frontier initialized with all verified nodes.
  std::vector<uint32_t> dist(g->num_nodes(), analysis::kUnreachable);
  std::vector<graph::NodeId> frontier, next;
  for (graph::NodeId u = 0; u < n_verified; ++u) {
    dist[u] = 0;
    frontier.push_back(u);
  }
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (graph::NodeId u : frontier) {
      // Treat edges as undirected for "separation", as in Milgram-style
      // analyses.
      for (graph::NodeId v : g->OutNeighbors(u)) {
        if (dist[v] == analysis::kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
      for (graph::NodeId v : g->InNeighbors(u)) {
        if (dist[v] == analysis::kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }

  // Coverage per hop radius.
  std::printf("white-list coverage of %u unverified accounts by distance "
              "to the verified core:\n\n",
              n_unverified);
  util::TextTable table({"radius", "covered", "cumulative %",
                         "spam-ring accounts inside"});
  uint64_t covered = 0;
  for (uint32_t r = 1; r <= 12; ++r) {
    uint64_t at_r = 0, spam_inside = 0;
    for (graph::NodeId u = n_verified; u < n_total; ++u) {
      if (dist[u] == r) {
        ++at_r;
        if (u >= spam_begin) ++spam_inside;
      }
    }
    covered += at_r;
    uint64_t spam_cum = 0;
    for (graph::NodeId u = spam_begin; u < n_total; ++u) {
      if (dist[u] != analysis::kUnreachable && dist[u] <= r) ++spam_cum;
    }
    table.AddRow();
    table.AddCell(static_cast<uint64_t>(r));
    table.AddCell(at_r);
    table.AddCell(100.0 * static_cast<double>(covered) / n_unverified, 4);
    table.AddCell(spam_cum);
  }
  table.Print();

  uint64_t unreachable = 0;
  for (graph::NodeId u = n_verified; u < n_total; ++u) {
    if (dist[u] == analysis::kUnreachable) ++unreachable;
  }
  std::printf("\nunreachable from the core: %llu accounts\n",
              static_cast<unsigned long long>(unreachable));
  std::printf(
      "\nreading (Hentschel et al.): legitimate accounts white-list "
      "within ~7 hops;\nspam-ring accounts only enter at large radii — "
      "a hop-distance cutoff separates them.\n");
  return 0;
}

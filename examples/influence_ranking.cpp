// Influence ranking — the application the paper's conclusion motivates:
// "how strongly a user is embedded in the Twitter verified user network
// is highly predictive of their reach in the generic Twittersphere", so
// sub-graph centrality can "evaluate the strength of an unverified
// user's case for getting verified".
//
// This example ranks users by PageRank and betweenness inside the
// verified sub-graph, shows how the rankings agree with whole-Twitter
// reach (followers / list memberships), and flags "rising" users whose
// centrality outruns their current audience — verification candidates.
//
//   ./build/examples/influence_ranking [num_users]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analysis/centrality.h"
#include "analysis/hits.h"
#include "analysis/kcore.h"
#include "core/study.h"
#include "stats/correlation.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;

  core::StudyConfig config;
  config.network.num_users =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 20000;
  core::VerifiedStudy study(config);
  if (const Status s = study.Generate(); !s.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto& g = study.network().graph;
  const auto& profiles = study.profiles();

  auto pagerank = analysis::PageRank(g);
  if (!pagerank.ok()) {
    std::fprintf(stderr, "pagerank failed\n");
    return 1;
  }
  analysis::BetweennessOptions bw_opts;
  bw_opts.pivots = 256;
  auto betweenness = analysis::Betweenness(g, bw_opts);
  if (!betweenness.ok()) {
    std::fprintf(stderr, "betweenness failed\n");
    return 1;
  }

  const analysis::KCoreResult kcore =
      analysis::KCoreDecomposition(g);
  auto hits = analysis::Hits(g);
  if (!hits.ok()) {
    std::fprintf(stderr, "hits failed\n");
    return 1;
  }

  // ---- Top influencers by PageRank ---------------------------------------
  std::printf("Top 15 verified users by sub-graph PageRank:\n\n");
  util::TextTable table({"rank", "user", "pagerank", "in-degree", "core",
                         "authority", "followers", "lists", "role"});
  const auto top = analysis::TopKByScore(pagerank->scores, 15);
  for (size_t i = 0; i < top.size(); ++i) {
    const graph::NodeId u = top[i];
    table.AddRow();
    table.AddCell(static_cast<uint64_t>(i + 1));
    table.AddCell("user" + std::to_string(u));
    table.AddCell(pagerank->scores[u] * 1e4, 3);
    table.AddCell(static_cast<uint64_t>(g.InDegree(u)));
    table.AddCell(static_cast<uint64_t>(kcore.coreness[u]));
    table.AddCell(hits->authority[u], 3);
    table.AddCell(util::FormatWithCommas(profiles[u].followers));
    table.AddCell(profiles[u].listed);
    table.AddCell(study.network().roles[u] == gen::UserRole::kSink
                      ? "celebrity sink"
                      : "core");
  }
  table.Print();
  std::printf("\ninnermost core: k=%u with %llu members\n", kcore.max_core,
              static_cast<unsigned long long>(kcore.innermost_size));

  // ---- Ranking agreement with whole-Twitter reach -------------------------
  const auto followers = gen::FollowersColumn(profiles);
  const auto listed = gen::ListedColumn(profiles);
  std::printf("\nrank agreement with whole-Twitter reach (Spearman):\n");
  std::printf("  pagerank    vs followers: %+.3f\n",
              stats::SpearmanCorrelation(pagerank->scores, followers));
  std::printf("  pagerank    vs lists:     %+.3f\n",
              stats::SpearmanCorrelation(pagerank->scores, listed));
  std::printf("  betweenness vs followers: %+.3f\n",
              stats::SpearmanCorrelation(*betweenness, followers));
  std::vector<double> coreness(kcore.coreness.begin(),
                               kcore.coreness.end());
  std::printf("  coreness    vs followers: %+.3f\n",
              stats::SpearmanCorrelation(coreness, followers));
  std::printf("  authority   vs followers: %+.3f\n",
              stats::SpearmanCorrelation(hits->authority, followers));

  // ---- Topic-sensitive ranking (TwitterRank-style) ------------------------
  // Teleport onto users of one occupational archetype: the resulting
  // PageRank ranks influence *within that topic's community*.
  std::printf("\ntopic-sensitive PageRank (teleport restricted to one bio "
              "archetype):\n");
  for (const gen::BioRole role :
       {gen::BioRole::kJournalist, gen::BioRole::kMusician,
        gen::BioRole::kAthleteRugby}) {
    std::vector<double> teleport(g.num_nodes(), 0.0);
    size_t members = 0;
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (study.bios().roles[u] == role) {
        teleport[u] = 1.0;
        ++members;
      }
    }
    if (members == 0) continue;
    analysis::PageRankOptions topical_opts;
    topical_opts.damping = 0.5;  // short walks keep rank near the topic
    auto topical = analysis::PersonalizedPageRank(g, teleport, topical_opts);
    if (!topical.ok()) continue;
    // Rank within the archetype: who does this community itself elevate?
    std::vector<std::pair<double, graph::NodeId>> ranked;
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (study.bios().roles[u] == role) {
        ranked.emplace_back(topical->scores[u], u);
      }
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("  %-16s (%5zu users): top by topical rank: ",
                gen::BioRoleName(role), members);
    for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      std::printf("user%u ", ranked[i].second);
    }
    std::printf("\n");
  }

  // ---- Verification candidates --------------------------------------------
  // Users whose sub-graph embedding (PageRank percentile) far exceeds
  // their audience percentile: structurally central, publicly
  // under-recognized.
  const auto pr_rank = stats::FractionalRanks(pagerank->scores);
  const auto fol_rank = stats::FractionalRanks(followers);
  struct Candidate {
    graph::NodeId user;
    double gap;
  };
  std::vector<Candidate> candidates;
  const double n = static_cast<double>(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const double gap = (pr_rank[u] - fol_rank[u]) / n;
    if (gap > 0.0) candidates.push_back({u, gap});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.gap > b.gap;
            });
  std::printf("\nmost under-recognized users (centrality percentile far "
              "above audience percentile):\n\n");
  util::TextTable under({"user", "percentile gap", "pagerank pctl",
                         "followers"});
  for (size_t i = 0; i < 10 && i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    under.AddRow();
    under.AddCell("user" + std::to_string(c.user));
    under.AddCell(c.gap, 3);
    under.AddCell(pr_rank[c.user] / n, 3);
    under.AddCell(util::FormatWithCommas(profiles[c.user].followers));
  }
  under.Print();
  return 0;
}

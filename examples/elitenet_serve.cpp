// elitenet_serve — the serving layer as a standalone front-end: load a
// graph once, build warm indexes, then answer newline-delimited requests
// on stdin with one JSON object per line on stdout until EOF or "quit".
//
//   elitenet_serve <graph|dataset-dir> [--threads=N] [--cache=N]
//                  [--no-widx] [--metrics=<path>] [--metrics-interval=<ms>]
//                  [--flight-recorder=<K>] [--slow-ms=<t>] [--sample=<N>]
//                  [--no-telemetry]
//
// Telemetry: every request gets a deterministic trace id; the last K
// requests live in an in-memory flight recorder introspectable over the
// same line protocol (#stats, #healthz, #recent [n], #slow [n],
// #trace <id>). --metrics=<path> starts a background exporter writing
// JSON (and <path>.prom Prometheus text) snapshots every interval.
// Env fallbacks (flags win): ELITENET_METRICS,
// ELITENET_METRICS_INTERVAL_MS, ELITENET_FLIGHT_RECORDER,
// ELITENET_SLOW_MS.
//
// Warm indexes persist to a `<graph>.widx` sidecar keyed by the graph's
// checksum: the first start builds and writes it, subsequent starts
// restore it and skip the PageRank/components/fingerprint recompute
// entirely. `--no-widx` disables the sidecar (always build fresh, write
// nothing).
//
//   $ elitenet_serve follows.eng <<'EOF'
//   ego 42
//   topk 5
//   dist 3 1007 2000
//   EOF
//
// Responses are pure functions of the graph and the request (no
// timestamps, no cache/thread artifacts), so piping the same request file
// through twice diffs clean. Diagnostics go to stderr only.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "core/dataset.h"
#include "serve/server.h"
#include "serve/warm_index_cache.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  if (argc < 2) {
    std::fputs(
        "usage: elitenet_serve <graph|dataset-dir> [--threads=N] "
        "[--cache=N] [--no-widx]\n",
        stderr);
    return 2;
  }
  serve::EngineOptions opts;
  serve::ApplyServeEnv(&opts);  // env first; explicit flags override
  bool use_widx = true;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opts.threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      opts.cache_capacity =
          static_cast<size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-widx") == 0) {
      use_widx = false;
    } else if (serve::ParseServeFlag(argv[i], &opts)) {
      // telemetry/metrics flag, handled
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (use_widx) opts.warm_index_path = serve::WarmIndexPathFor(argv[1]);

  core::GraphLoadInfo load_info;
  auto g = core::LoadAnyGraph(argv[1], &load_info);
  if (!g.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                 g.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "loaded %u nodes, %llu edges (%s, %.3fs); warming "
               "indexes...\n",
               g->num_nodes(),
               static_cast<unsigned long long>(g->num_edges()),
               load_info.format.c_str(), load_info.seconds);

  auto engine = serve::QueryEngine::Create(std::move(*g), opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine startup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "ready in %.2fs (%s, %d workers)\n",
               (*engine)->warmup_seconds(),
               (*engine)->warm_index_from_cache() ? "warm indexes restored"
                                                  : "warm indexes built",
               (*engine)->threads());

  const serve::ServeStats stats =
      serve::ServeLines(engine->get(), stdin, stdout);
  std::fprintf(stderr,
               "served %llu requests (%llu errors, %llu degraded, "
               "%llu admin), cache %llu hits / %llu misses\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.degraded),
               static_cast<unsigned long long>(stats.admin),
               static_cast<unsigned long long>((*engine)->cache_hits()),
               static_cast<unsigned long long>((*engine)->cache_misses()));
  std::fputs(serve::RenderSummaryText((*engine)->telemetry()).c_str(),
             stderr);
  return 0;
}

# Empty dependencies file for influence_ranking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/influence_ranking.dir/influence_ranking.cpp.o"
  "CMakeFiles/influence_ranking.dir/influence_ranking.cpp.o.d"
  "influence_ranking"
  "influence_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influence_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

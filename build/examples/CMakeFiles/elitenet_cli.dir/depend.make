# Empty dependencies file for elitenet_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_cli.dir/elitenet_cli.cpp.o"
  "CMakeFiles/elitenet_cli.dir/elitenet_cli.cpp.o.d"
  "elitenet_cli"
  "elitenet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for network_fingerprint.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/network_fingerprint.dir/network_fingerprint.cpp.o"
  "CMakeFiles/network_fingerprint.dir/network_fingerprint.cpp.o.d"
  "network_fingerprint"
  "network_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/spam_whitelist.dir/spam_whitelist.cpp.o"
  "CMakeFiles/spam_whitelist.dir/spam_whitelist.cpp.o.d"
  "spam_whitelist"
  "spam_whitelist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_whitelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

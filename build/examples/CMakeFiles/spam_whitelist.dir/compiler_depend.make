# Empty compiler generated dependencies file for spam_whitelist.
# This may be replaced when dependencies are built.

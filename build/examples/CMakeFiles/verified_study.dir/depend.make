# Empty dependencies file for verified_study.
# This may be replaced when dependencies are built.

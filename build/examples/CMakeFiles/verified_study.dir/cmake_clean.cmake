file(REMOVE_RECURSE
  "CMakeFiles/verified_study.dir/verified_study.cpp.o"
  "CMakeFiles/verified_study.dir/verified_study.cpp.o.d"
  "verified_study"
  "verified_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for activity_monitor.
# This may be replaced when dependencies are built.

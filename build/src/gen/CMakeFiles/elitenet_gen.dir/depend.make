# Empty dependencies file for elitenet_gen.
# This may be replaced when dependencies are built.

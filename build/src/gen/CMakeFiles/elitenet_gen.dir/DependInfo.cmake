
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/activity.cc" "src/gen/CMakeFiles/elitenet_gen.dir/activity.cc.o" "gcc" "src/gen/CMakeFiles/elitenet_gen.dir/activity.cc.o.d"
  "/root/repo/src/gen/bios.cc" "src/gen/CMakeFiles/elitenet_gen.dir/bios.cc.o" "gcc" "src/gen/CMakeFiles/elitenet_gen.dir/bios.cc.o.d"
  "/root/repo/src/gen/generators.cc" "src/gen/CMakeFiles/elitenet_gen.dir/generators.cc.o" "gcc" "src/gen/CMakeFiles/elitenet_gen.dir/generators.cc.o.d"
  "/root/repo/src/gen/profiles.cc" "src/gen/CMakeFiles/elitenet_gen.dir/profiles.cc.o" "gcc" "src/gen/CMakeFiles/elitenet_gen.dir/profiles.cc.o.d"
  "/root/repo/src/gen/verified_network.cc" "src/gen/CMakeFiles/elitenet_gen.dir/verified_network.cc.o" "gcc" "src/gen/CMakeFiles/elitenet_gen.dir/verified_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/elitenet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/elitenet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elitenet_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elitenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_gen.dir/activity.cc.o"
  "CMakeFiles/elitenet_gen.dir/activity.cc.o.d"
  "CMakeFiles/elitenet_gen.dir/bios.cc.o"
  "CMakeFiles/elitenet_gen.dir/bios.cc.o.d"
  "CMakeFiles/elitenet_gen.dir/generators.cc.o"
  "CMakeFiles/elitenet_gen.dir/generators.cc.o.d"
  "CMakeFiles/elitenet_gen.dir/profiles.cc.o"
  "CMakeFiles/elitenet_gen.dir/profiles.cc.o.d"
  "CMakeFiles/elitenet_gen.dir/verified_network.cc.o"
  "CMakeFiles/elitenet_gen.dir/verified_network.cc.o.d"
  "libelitenet_gen.a"
  "libelitenet_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libelitenet_gen.a"
)

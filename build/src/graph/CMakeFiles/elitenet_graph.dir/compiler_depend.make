# Empty compiler generated dependencies file for elitenet_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_graph.dir/builder.cc.o"
  "CMakeFiles/elitenet_graph.dir/builder.cc.o.d"
  "CMakeFiles/elitenet_graph.dir/digraph.cc.o"
  "CMakeFiles/elitenet_graph.dir/digraph.cc.o.d"
  "CMakeFiles/elitenet_graph.dir/io.cc.o"
  "CMakeFiles/elitenet_graph.dir/io.cc.o.d"
  "CMakeFiles/elitenet_graph.dir/subgraph.cc.o"
  "CMakeFiles/elitenet_graph.dir/subgraph.cc.o.d"
  "libelitenet_graph.a"
  "libelitenet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

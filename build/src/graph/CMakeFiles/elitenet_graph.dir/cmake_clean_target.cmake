file(REMOVE_RECURSE
  "libelitenet_graph.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_text.dir/ngram.cc.o"
  "CMakeFiles/elitenet_text.dir/ngram.cc.o.d"
  "CMakeFiles/elitenet_text.dir/tokenizer.cc.o"
  "CMakeFiles/elitenet_text.dir/tokenizer.cc.o.d"
  "libelitenet_text.a"
  "libelitenet_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

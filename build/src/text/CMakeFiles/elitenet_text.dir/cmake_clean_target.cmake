file(REMOVE_RECURSE
  "libelitenet_text.a"
)

# Empty compiler generated dependencies file for elitenet_text.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_util.dir/csv.cc.o"
  "CMakeFiles/elitenet_util.dir/csv.cc.o.d"
  "CMakeFiles/elitenet_util.dir/histogram.cc.o"
  "CMakeFiles/elitenet_util.dir/histogram.cc.o.d"
  "CMakeFiles/elitenet_util.dir/rng.cc.o"
  "CMakeFiles/elitenet_util.dir/rng.cc.o.d"
  "CMakeFiles/elitenet_util.dir/status.cc.o"
  "CMakeFiles/elitenet_util.dir/status.cc.o.d"
  "CMakeFiles/elitenet_util.dir/string_utils.cc.o"
  "CMakeFiles/elitenet_util.dir/string_utils.cc.o.d"
  "CMakeFiles/elitenet_util.dir/table.cc.o"
  "CMakeFiles/elitenet_util.dir/table.cc.o.d"
  "libelitenet_util.a"
  "libelitenet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

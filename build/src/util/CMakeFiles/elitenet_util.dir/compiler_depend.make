# Empty compiler generated dependencies file for elitenet_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libelitenet_util.a"
)

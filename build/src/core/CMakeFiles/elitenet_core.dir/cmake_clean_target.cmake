file(REMOVE_RECURSE
  "libelitenet_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_core.dir/dataset.cc.o"
  "CMakeFiles/elitenet_core.dir/dataset.cc.o.d"
  "CMakeFiles/elitenet_core.dir/fingerprint.cc.o"
  "CMakeFiles/elitenet_core.dir/fingerprint.cc.o.d"
  "CMakeFiles/elitenet_core.dir/reach_predictor.cc.o"
  "CMakeFiles/elitenet_core.dir/reach_predictor.cc.o.d"
  "CMakeFiles/elitenet_core.dir/study.cc.o"
  "CMakeFiles/elitenet_core.dir/study.cc.o.d"
  "libelitenet_core.a"
  "libelitenet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset.cc" "src/core/CMakeFiles/elitenet_core.dir/dataset.cc.o" "gcc" "src/core/CMakeFiles/elitenet_core.dir/dataset.cc.o.d"
  "/root/repo/src/core/fingerprint.cc" "src/core/CMakeFiles/elitenet_core.dir/fingerprint.cc.o" "gcc" "src/core/CMakeFiles/elitenet_core.dir/fingerprint.cc.o.d"
  "/root/repo/src/core/reach_predictor.cc" "src/core/CMakeFiles/elitenet_core.dir/reach_predictor.cc.o" "gcc" "src/core/CMakeFiles/elitenet_core.dir/reach_predictor.cc.o.d"
  "/root/repo/src/core/study.cc" "src/core/CMakeFiles/elitenet_core.dir/study.cc.o" "gcc" "src/core/CMakeFiles/elitenet_core.dir/study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/elitenet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/elitenet_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/elitenet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/elitenet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/elitenet_text.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elitenet_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elitenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for elitenet_core.
# This may be replaced when dependencies are built.

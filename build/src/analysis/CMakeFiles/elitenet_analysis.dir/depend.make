# Empty dependencies file for elitenet_analysis.
# This may be replaced when dependencies are built.

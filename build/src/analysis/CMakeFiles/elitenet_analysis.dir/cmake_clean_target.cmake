file(REMOVE_RECURSE
  "libelitenet_analysis.a"
)

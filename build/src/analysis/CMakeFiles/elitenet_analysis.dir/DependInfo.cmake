
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/assortativity.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/assortativity.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/assortativity.cc.o.d"
  "/root/repo/src/analysis/bidirectional.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/bidirectional.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/bidirectional.cc.o.d"
  "/root/repo/src/analysis/centrality.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/centrality.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/centrality.cc.o.d"
  "/root/repo/src/analysis/clustering.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/clustering.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/clustering.cc.o.d"
  "/root/repo/src/analysis/components.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/components.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/components.cc.o.d"
  "/root/repo/src/analysis/degree.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/degree.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/degree.cc.o.d"
  "/root/repo/src/analysis/distance.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/distance.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/distance.cc.o.d"
  "/root/repo/src/analysis/hits.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/hits.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/hits.cc.o.d"
  "/root/repo/src/analysis/kcore.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/kcore.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/kcore.cc.o.d"
  "/root/repo/src/analysis/reciprocity.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/reciprocity.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/reciprocity.cc.o.d"
  "/root/repo/src/analysis/spectral.cc" "src/analysis/CMakeFiles/elitenet_analysis.dir/spectral.cc.o" "gcc" "src/analysis/CMakeFiles/elitenet_analysis.dir/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/elitenet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elitenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

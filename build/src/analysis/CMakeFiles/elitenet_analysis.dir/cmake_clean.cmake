file(REMOVE_RECURSE
  "CMakeFiles/elitenet_analysis.dir/assortativity.cc.o"
  "CMakeFiles/elitenet_analysis.dir/assortativity.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/bidirectional.cc.o"
  "CMakeFiles/elitenet_analysis.dir/bidirectional.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/centrality.cc.o"
  "CMakeFiles/elitenet_analysis.dir/centrality.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/clustering.cc.o"
  "CMakeFiles/elitenet_analysis.dir/clustering.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/components.cc.o"
  "CMakeFiles/elitenet_analysis.dir/components.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/degree.cc.o"
  "CMakeFiles/elitenet_analysis.dir/degree.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/distance.cc.o"
  "CMakeFiles/elitenet_analysis.dir/distance.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/hits.cc.o"
  "CMakeFiles/elitenet_analysis.dir/hits.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/kcore.cc.o"
  "CMakeFiles/elitenet_analysis.dir/kcore.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/reciprocity.cc.o"
  "CMakeFiles/elitenet_analysis.dir/reciprocity.cc.o.d"
  "CMakeFiles/elitenet_analysis.dir/spectral.cc.o"
  "CMakeFiles/elitenet_analysis.dir/spectral.cc.o.d"
  "libelitenet_analysis.a"
  "libelitenet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

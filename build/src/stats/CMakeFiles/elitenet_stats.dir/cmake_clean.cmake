file(REMOVE_RECURSE
  "CMakeFiles/elitenet_stats.dir/correlation.cc.o"
  "CMakeFiles/elitenet_stats.dir/correlation.cc.o.d"
  "CMakeFiles/elitenet_stats.dir/descriptive.cc.o"
  "CMakeFiles/elitenet_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/elitenet_stats.dir/distributions.cc.o"
  "CMakeFiles/elitenet_stats.dir/distributions.cc.o.d"
  "CMakeFiles/elitenet_stats.dir/optimize.cc.o"
  "CMakeFiles/elitenet_stats.dir/optimize.cc.o.d"
  "CMakeFiles/elitenet_stats.dir/powerlaw.cc.o"
  "CMakeFiles/elitenet_stats.dir/powerlaw.cc.o.d"
  "CMakeFiles/elitenet_stats.dir/smoother.cc.o"
  "CMakeFiles/elitenet_stats.dir/smoother.cc.o.d"
  "CMakeFiles/elitenet_stats.dir/special.cc.o"
  "CMakeFiles/elitenet_stats.dir/special.cc.o.d"
  "CMakeFiles/elitenet_stats.dir/vuong.cc.o"
  "CMakeFiles/elitenet_stats.dir/vuong.cc.o.d"
  "libelitenet_stats.a"
  "libelitenet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for elitenet_stats.
# This may be replaced when dependencies are built.

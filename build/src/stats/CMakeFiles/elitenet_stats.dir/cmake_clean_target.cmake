file(REMOVE_RECURSE
  "libelitenet_stats.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/elitenet_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/elitenet_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/elitenet_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/optimize.cc" "src/stats/CMakeFiles/elitenet_stats.dir/optimize.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/optimize.cc.o.d"
  "/root/repo/src/stats/powerlaw.cc" "src/stats/CMakeFiles/elitenet_stats.dir/powerlaw.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/powerlaw.cc.o.d"
  "/root/repo/src/stats/smoother.cc" "src/stats/CMakeFiles/elitenet_stats.dir/smoother.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/smoother.cc.o.d"
  "/root/repo/src/stats/special.cc" "src/stats/CMakeFiles/elitenet_stats.dir/special.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/special.cc.o.d"
  "/root/repo/src/stats/vuong.cc" "src/stats/CMakeFiles/elitenet_stats.dir/vuong.cc.o" "gcc" "src/stats/CMakeFiles/elitenet_stats.dir/vuong.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/elitenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

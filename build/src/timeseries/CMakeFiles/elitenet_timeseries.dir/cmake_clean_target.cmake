file(REMOVE_RECURSE
  "libelitenet_timeseries.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_timeseries.dir/acf.cc.o"
  "CMakeFiles/elitenet_timeseries.dir/acf.cc.o.d"
  "CMakeFiles/elitenet_timeseries.dir/adf.cc.o"
  "CMakeFiles/elitenet_timeseries.dir/adf.cc.o.d"
  "CMakeFiles/elitenet_timeseries.dir/calendar.cc.o"
  "CMakeFiles/elitenet_timeseries.dir/calendar.cc.o.d"
  "CMakeFiles/elitenet_timeseries.dir/linalg.cc.o"
  "CMakeFiles/elitenet_timeseries.dir/linalg.cc.o.d"
  "CMakeFiles/elitenet_timeseries.dir/ols.cc.o"
  "CMakeFiles/elitenet_timeseries.dir/ols.cc.o.d"
  "CMakeFiles/elitenet_timeseries.dir/pelt.cc.o"
  "CMakeFiles/elitenet_timeseries.dir/pelt.cc.o.d"
  "libelitenet_timeseries.a"
  "libelitenet_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

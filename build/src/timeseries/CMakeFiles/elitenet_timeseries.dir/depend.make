# Empty dependencies file for elitenet_timeseries.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/acf.cc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/acf.cc.o" "gcc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/acf.cc.o.d"
  "/root/repo/src/timeseries/adf.cc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/adf.cc.o" "gcc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/adf.cc.o.d"
  "/root/repo/src/timeseries/calendar.cc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/calendar.cc.o" "gcc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/calendar.cc.o.d"
  "/root/repo/src/timeseries/linalg.cc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/linalg.cc.o" "gcc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/linalg.cc.o.d"
  "/root/repo/src/timeseries/ols.cc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/ols.cc.o" "gcc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/ols.cc.o.d"
  "/root/repo/src/timeseries/pelt.cc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/pelt.cc.o" "gcc" "src/timeseries/CMakeFiles/elitenet_timeseries.dir/pelt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/elitenet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elitenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

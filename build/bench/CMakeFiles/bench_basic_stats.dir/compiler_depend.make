# Empty compiler generated dependencies file for bench_basic_stats.
# This may be replaced when dependencies are built.

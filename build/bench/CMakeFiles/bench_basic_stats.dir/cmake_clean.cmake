file(REMOVE_RECURSE
  "CMakeFiles/bench_basic_stats.dir/bench_basic_stats.cc.o"
  "CMakeFiles/bench_basic_stats.dir/bench_basic_stats.cc.o.d"
  "bench_basic_stats"
  "bench_basic_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_basic_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_calendar.dir/bench_fig6_calendar.cc.o"
  "CMakeFiles/bench_fig6_calendar.dir/bench_fig6_calendar.cc.o.d"
  "bench_fig6_calendar"
  "bench_fig6_calendar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_calendar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

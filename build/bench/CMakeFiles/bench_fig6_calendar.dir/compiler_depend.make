# Empty compiler generated dependencies file for bench_fig6_calendar.
# This may be replaced when dependencies are built.

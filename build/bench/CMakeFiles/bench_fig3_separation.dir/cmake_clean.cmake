file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_separation.dir/bench_fig3_separation.cc.o"
  "CMakeFiles/bench_fig3_separation.dir/bench_fig3_separation.cc.o.d"
  "bench_fig3_separation"
  "bench_fig3_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_stats.dir/bench_perf_stats.cc.o"
  "CMakeFiles/bench_perf_stats.dir/bench_perf_stats.cc.o.d"
  "bench_perf_stats"
  "bench_perf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

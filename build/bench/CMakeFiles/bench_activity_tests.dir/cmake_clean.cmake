file(REMOVE_RECURSE
  "CMakeFiles/bench_activity_tests.dir/bench_activity_tests.cc.o"
  "CMakeFiles/bench_activity_tests.dir/bench_activity_tests.cc.o.d"
  "bench_activity_tests"
  "bench_activity_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activity_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_activity_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_bigrams.dir/bench_table1_bigrams.cc.o"
  "CMakeFiles/bench_table1_bigrams.dir/bench_table1_bigrams.cc.o.d"
  "bench_table1_bigrams"
  "bench_table1_bigrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bigrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

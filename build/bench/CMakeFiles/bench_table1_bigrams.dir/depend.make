# Empty dependencies file for bench_table1_bigrams.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_reciprocity.dir/bench_reciprocity.cc.o"
  "CMakeFiles/bench_reciprocity.dir/bench_reciprocity.cc.o.d"
  "bench_reciprocity"
  "bench_reciprocity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reciprocity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

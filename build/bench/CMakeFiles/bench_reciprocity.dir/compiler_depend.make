# Empty compiler generated dependencies file for bench_reciprocity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_eigen_powerlaw.dir/bench_eigen_powerlaw.cc.o"
  "CMakeFiles/bench_eigen_powerlaw.dir/bench_eigen_powerlaw.cc.o.d"
  "bench_eigen_powerlaw"
  "bench_eigen_powerlaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eigen_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

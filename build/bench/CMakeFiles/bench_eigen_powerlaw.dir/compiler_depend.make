# Empty compiler generated dependencies file for bench_eigen_powerlaw.
# This may be replaced when dependencies are built.

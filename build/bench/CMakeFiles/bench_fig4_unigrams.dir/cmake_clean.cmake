file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_unigrams.dir/bench_fig4_unigrams.cc.o"
  "CMakeFiles/bench_fig4_unigrams.dir/bench_fig4_unigrams.cc.o.d"
  "bench_fig4_unigrams"
  "bench_fig4_unigrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_unigrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

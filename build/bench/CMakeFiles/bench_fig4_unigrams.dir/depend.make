# Empty dependencies file for bench_fig4_unigrams.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_perf_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_graph.dir/bench_perf_graph.cc.o"
  "CMakeFiles/bench_perf_graph.dir/bench_perf_graph.cc.o.d"
  "bench_perf_graph"
  "bench_perf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

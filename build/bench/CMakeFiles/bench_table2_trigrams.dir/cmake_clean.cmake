file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_trigrams.dir/bench_table2_trigrams.cc.o"
  "CMakeFiles/bench_table2_trigrams.dir/bench_table2_trigrams.cc.o.d"
  "bench_table2_trigrams"
  "bench_table2_trigrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_trigrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/elitenet_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/elitenet_bench_common.dir/bench_common.cc.o.d"
  "libelitenet_bench_common.a"
  "libelitenet_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elitenet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

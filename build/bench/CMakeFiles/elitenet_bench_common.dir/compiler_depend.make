# Empty compiler generated dependencies file for elitenet_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libelitenet_bench_common.a"
)

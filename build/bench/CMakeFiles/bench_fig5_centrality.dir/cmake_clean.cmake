file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_centrality.dir/bench_fig5_centrality.cc.o"
  "CMakeFiles/bench_fig5_centrality.dir/bench_fig5_centrality.cc.o.d"
  "bench_fig5_centrality"
  "bench_fig5_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

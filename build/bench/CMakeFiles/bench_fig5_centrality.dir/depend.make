# Empty dependencies file for bench_fig5_centrality.
# This may be replaced when dependencies are built.

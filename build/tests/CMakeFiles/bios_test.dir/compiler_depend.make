# Empty compiler generated dependencies file for bios_test.
# This may be replaced when dependencies are built.

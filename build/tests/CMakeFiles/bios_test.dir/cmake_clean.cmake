file(REMOVE_RECURSE
  "CMakeFiles/bios_test.dir/bios_test.cc.o"
  "CMakeFiles/bios_test.dir/bios_test.cc.o.d"
  "bios_test"
  "bios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

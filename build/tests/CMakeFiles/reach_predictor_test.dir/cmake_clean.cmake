file(REMOVE_RECURSE
  "CMakeFiles/reach_predictor_test.dir/reach_predictor_test.cc.o"
  "CMakeFiles/reach_predictor_test.dir/reach_predictor_test.cc.o.d"
  "reach_predictor_test"
  "reach_predictor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

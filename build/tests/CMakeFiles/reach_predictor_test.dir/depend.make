# Empty dependencies file for reach_predictor_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for calibration_robustness_test.
# This may be replaced when dependencies are built.

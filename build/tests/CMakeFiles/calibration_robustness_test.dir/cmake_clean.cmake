file(REMOVE_RECURSE
  "CMakeFiles/calibration_robustness_test.dir/calibration_robustness_test.cc.o"
  "CMakeFiles/calibration_robustness_test.dir/calibration_robustness_test.cc.o.d"
  "calibration_robustness_test"
  "calibration_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

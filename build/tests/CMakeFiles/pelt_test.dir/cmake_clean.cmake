file(REMOVE_RECURSE
  "CMakeFiles/pelt_test.dir/pelt_test.cc.o"
  "CMakeFiles/pelt_test.dir/pelt_test.cc.o.d"
  "pelt_test"
  "pelt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

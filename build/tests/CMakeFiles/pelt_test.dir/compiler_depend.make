# Empty compiler generated dependencies file for pelt_test.
# This may be replaced when dependencies are built.

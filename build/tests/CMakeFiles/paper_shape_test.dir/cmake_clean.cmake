file(REMOVE_RECURSE
  "CMakeFiles/paper_shape_test.dir/paper_shape_test.cc.o"
  "CMakeFiles/paper_shape_test.dir/paper_shape_test.cc.o.d"
  "paper_shape_test"
  "paper_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for personalized_pagerank_test.
# This may be replaced when dependencies are built.

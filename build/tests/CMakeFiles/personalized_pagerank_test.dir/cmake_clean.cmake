file(REMOVE_RECURSE
  "CMakeFiles/personalized_pagerank_test.dir/personalized_pagerank_test.cc.o"
  "CMakeFiles/personalized_pagerank_test.dir/personalized_pagerank_test.cc.o.d"
  "personalized_pagerank_test"
  "personalized_pagerank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_pagerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for smoother_test.
# This may be replaced when dependencies are built.

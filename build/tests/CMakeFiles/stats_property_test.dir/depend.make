# Empty dependencies file for stats_property_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/status_test.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/status_test.dir/status_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elitenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/elitenet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/elitenet_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/elitenet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/elitenet_text.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/elitenet_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/elitenet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elitenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

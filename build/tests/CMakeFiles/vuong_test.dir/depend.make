# Empty dependencies file for vuong_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vuong_test.dir/vuong_test.cc.o"
  "CMakeFiles/vuong_test.dir/vuong_test.cc.o.d"
  "vuong_test"
  "vuong_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vuong_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

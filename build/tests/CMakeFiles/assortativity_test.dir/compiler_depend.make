# Empty compiler generated dependencies file for assortativity_test.
# This may be replaced when dependencies are built.

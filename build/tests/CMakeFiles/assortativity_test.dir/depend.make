# Empty dependencies file for assortativity_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/assortativity_test.dir/assortativity_test.cc.o"
  "CMakeFiles/assortativity_test.dir/assortativity_test.cc.o.d"
  "assortativity_test"
  "assortativity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assortativity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

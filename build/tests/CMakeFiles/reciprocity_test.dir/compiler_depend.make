# Empty compiler generated dependencies file for reciprocity_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/reciprocity_test.dir/reciprocity_test.cc.o"
  "CMakeFiles/reciprocity_test.dir/reciprocity_test.cc.o.d"
  "reciprocity_test"
  "reciprocity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reciprocity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for powerlaw_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for verified_network_test.
# This may be replaced when dependencies are built.

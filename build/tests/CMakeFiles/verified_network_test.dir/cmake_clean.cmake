file(REMOVE_RECURSE
  "CMakeFiles/verified_network_test.dir/verified_network_test.cc.o"
  "CMakeFiles/verified_network_test.dir/verified_network_test.cc.o.d"
  "verified_network_test"
  "verified_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Section IV-C reproduction: link reciprocity of the verified network
// (paper: 33.7%) against the published comparison points — 22.1% for the
// whole Twitter graph (Kwak et al. 2010) and 68% for Flickr — plus
// baseline generators to show the verified level is a planted social
// property, not a byproduct of density.

#include <cstdio>

#include "analysis/reciprocity.h"
#include "bench_common.h"
#include "core/paper_reference.h"
#include "gen/generators.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Section IV-C: reciprocity");
  core::VerifiedStudy study = bench::MakeStudy(args);

  const auto rec = analysis::ComputeReciprocity(study.network().graph);
  std::printf("\n");
  bench::Compare("verified-network reciprocity", paper::kReciprocity,
                 rec.rate, 0.1);
  std::printf("  mutual pairs=%llu of %llu edges\n",
              static_cast<unsigned long long>(rec.mutual_pairs),
              static_cast<unsigned long long>(rec.total_edges));

  // Baseline: an Erdős–Rényi graph of identical size/density has
  // essentially zero reciprocity — the verified level is social.
  util::Rng rng(7);
  auto er = gen::ErdosRenyi(study.network().graph.num_nodes(),
                            study.network().graph.num_edges(), &rng);
  double er_rate = 0.0;
  if (er.ok()) {
    er_rate = analysis::ComputeReciprocity(*er).rate;
  }

  util::TextTable table({"network", "reciprocity", "source"});
  table.AddRowCells({"verified users (measured)",
                     util::FormatNumber(rec.rate, 4), "this run"});
  table.AddRowCells({"verified users (paper)",
                     util::FormatNumber(paper::kReciprocity, 4),
                     "Paul et al. 2019"});
  table.AddRowCells({"whole Twitter",
                     util::FormatNumber(paper::kReciprocityWholeTwitter, 4),
                     "Kwak et al. 2010"});
  table.AddRowCells({"Flickr",
                     util::FormatNumber(paper::kReciprocityFlickr, 4),
                     "Chun et al. 2008"});
  table.AddRowCells({"Erdos-Renyi (same n, m)",
                     util::FormatNumber(er_rate, 4), "baseline"});
  std::printf("\n");
  table.Print();

  std::printf("\nOrdering check (paper's qualitative claim): "
              "ER << whole Twitter < verified < Flickr : %s\n",
              (er_rate < paper::kReciprocityWholeTwitter &&
               paper::kReciprocityWholeTwitter < rec.rate &&
               rec.rate < paper::kReciprocityFlickr)
                  ? "OK"
                  : "DEVIATES");

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "reciprocity.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"network", "reciprocity"}).ok();
    csv.WriteRow({"verified_measured", util::FormatNumber(rec.rate, 6)}).ok();
    csv.WriteRow({"verified_paper", "0.337"}).ok();
    csv.WriteRow({"whole_twitter", "0.221"}).ok();
    csv.WriteRow({"flickr", "0.68"}).ok();
    csv.WriteRow({"erdos_renyi", util::FormatNumber(er_rate, 6)}).ok();
    csv.Close().ok();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

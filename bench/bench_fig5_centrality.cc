// Fig. 5 reproduction: the six log-log scatter panels relating sub-graph
// centrality (betweenness, PageRank) and profile features to whole-
// Twitter reach. The paper overlays GAM regression splines with 95% CI
// bands; we print binned-mean trend curves with CIs plus rank
// correlations, and verify the paper's qualitative ordering claims.

#include <cstdio>

#include "bench_common.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Fig. 5: centrality vs reach");
  core::VerifiedStudy study = bench::MakeStudy(args);

  std::printf("\nPageRank + sampled Brandes betweenness (%u pivots)...\n",
              study.config().betweenness_pivots);
  const auto relations = study.RunCentralityRelations();
  if (!relations.ok()) {
    std::fprintf(stderr, "centrality analysis failed: %s\n",
                 relations.status().ToString().c_str());
    return 1;
  }

  const char* panel_names[] = {"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"};
  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "fig5_centrality.csv");
  const bool csv_ok = csv.Open(path).ok();
  if (csv_ok) {
    csv.WriteRow({"panel", "x", "y", "log_x_center", "mean_log_y",
                  "ci_low", "ci_high", "n"})
        .ok();
  }

  for (size_t i = 0; i < relations->size(); ++i) {
    const auto& rel = (*relations)[i];
    std::printf("\n-- Fig. 5%s: %s vs %s --\n", panel_names[i],
                rel.x_name.c_str(), rel.y_name.c_str());
    std::printf("  Spearman rho=%+.3f  log-log Pearson=%+.3f  OLS "
                "slope=%+.3f\n",
                rel.curve.spearman, rel.curve.log_log_pearson,
                rel.curve.ols_slope);
    std::fputs(
        rel.curve.ToAsciiChart(rel.x_name, rel.y_name).c_str(), stdout);
    if (csv_ok) {
      for (const auto& p : rel.curve.points) {
        csv.WriteRow({panel_names[i], rel.x_name, rel.y_name,
                      util::FormatNumber(p.log_x_center, 6),
                      util::FormatNumber(p.mean_log_y, 6),
                      util::FormatNumber(p.ci_low, 6),
                      util::FormatNumber(p.ci_high, 6),
                      std::to_string(p.n)})
            .ok();
      }
    }
  }
  if (csv_ok) csv.Close().ok();

  // Qualitative claims of Section IV-F.
  const auto& r = *relations;
  std::printf("\nPaper claims:\n");
  auto check = [](const char* claim, bool ok) {
    std::printf("  %-64s [%s]\n", claim, ok ? "OK" : "DEVIATES");
  };
  bool all_positive = true;
  for (const auto& rel : r) all_positive &= rel.curve.spearman > 0.0;
  check("all six relationships trend upward", all_positive);
  check("PageRank-followers stronger than betweenness-followers",
        r[3].curve.spearman > r[1].curve.spearman);
  check("PageRank-lists stronger than betweenness-lists",
        r[2].curve.spearman > r[0].curve.spearman);
  check("lists-followers is the strongest panel",
        r[5].curve.spearman >= r[0].curve.spearman &&
            r[5].curve.spearman >= r[1].curve.spearman &&
            r[5].curve.spearman >= r[4].curve.spearman);
  check("statuses-followers is weak but positive (trend at extremes)",
        r[4].curve.spearman > 0.0 && r[4].curve.spearman < 0.5);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

// google-benchmark micro-benchmarks for the statistics / time-series
// machinery: zeta sampling, power-law fitting, bootstrap replicates,
// Vuong tests, portmanteau tests, ADF, and PELT.

#include <benchmark/benchmark.h>

#include "gen/activity.h"
#include "stats/distributions.h"
#include "stats/powerlaw.h"
#include "stats/special.h"
#include "stats/vuong.h"
#include "timeseries/acf.h"
#include "timeseries/adf.h"
#include "timeseries/pelt.h"
#include "util/rng.h"

namespace {

using namespace elitenet;

const std::vector<double>& ZetaData() {
  static const std::vector<double>* data = [] {
    util::Rng rng(3);
    auto* d = new std::vector<double>();
    for (int i = 0; i < 30000; ++i) {
      d->push_back(static_cast<double>(stats::SampleZeta(3.24, 50, &rng)));
    }
    return d;
  }();
  return *data;
}

const std::vector<double>& ActivityData() {
  static const std::vector<double>* data = [] {
    auto s = gen::GenerateActivity();
    if (!s.ok()) std::abort();
    return new std::vector<double>(s->daily_tweets);
  }();
  return *data;
}

void BM_HurwitzZeta(benchmark::State& state) {
  double q = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::HurwitzZeta(3.24, q));
    q = q < 1e6 ? q + 1.0 : 1.0;
  }
}
BENCHMARK(BM_HurwitzZeta);

void BM_SampleZeta(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SampleZeta(3.24, 229, &rng));
  }
}
BENCHMARK(BM_SampleZeta);

void BM_FitDiscreteAlphaFixedXmin(benchmark::State& state) {
  const auto& data = ZetaData();
  for (auto _ : state) {
    auto fit = stats::FitDiscreteAlpha(data, 50.0);
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FitDiscreteAlphaFixedXmin);

void BM_FitDiscreteWithXminScan(benchmark::State& state) {
  const auto& data = ZetaData();
  for (auto _ : state) {
    auto fit = stats::FitDiscrete(data);
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FitDiscreteWithXminScan);

void BM_BootstrapReplicate(benchmark::State& state) {
  const auto& data = ZetaData();
  auto fit = stats::FitDiscrete(data);
  if (!fit.ok()) std::abort();
  util::Rng rng(7);
  for (auto _ : state) {
    auto gof = stats::BootstrapGoodness(data, *fit, 1, &rng);
    benchmark::DoNotOptimize(gof);
  }
}
BENCHMARK(BM_BootstrapReplicate);

void BM_VuongVsLogNormal(benchmark::State& state) {
  // Fit at a deep xmin so the tail is a few hundred points — the size
  // the Section IV-B pipeline actually hands to the Vuong stage.
  const auto& data = ZetaData();
  auto fit = stats::FitDiscreteAlpha(data, 300.0);
  if (!fit.ok()) std::abort();
  const auto tail = stats::TailOf(data, 300.0);
  const auto pl_ll = stats::PointwiseLogLikelihood(tail, *fit);
  for (auto _ : state) {
    auto ln = stats::FitLogNormalTail(data, 300.0, /*discrete=*/true);
    if (!ln.ok()) std::abort();
    auto v = stats::VuongTest(
        pl_ll, stats::AltPointwiseLogLikelihood(tail, *ln));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_VuongVsLogNormal);

void BM_LjungBox185(benchmark::State& state) {
  const auto& series = ActivityData();
  for (auto _ : state) {
    auto r = timeseries::LjungBoxTest(series, 185);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LjungBox185);

void BM_AdfAutoLag(benchmark::State& state) {
  const auto& series = ActivityData();
  for (auto _ : state) {
    auto r = timeseries::AdfTest(series);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AdfAutoLag);

void BM_PeltSingleRun(benchmark::State& state) {
  const auto& series = ActivityData();
  for (auto _ : state) {
    auto r = timeseries::Pelt(series);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_PeltSingleRun);

void BM_PeltPenaltySweep(benchmark::State& state) {
  const auto& series = ActivityData();
  for (auto _ : state) {
    auto r = timeseries::PeltPenaltySweep(series);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PeltPenaltySweep);

}  // namespace

BENCHMARK_MAIN();

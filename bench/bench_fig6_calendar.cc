// Fig. 6 reproduction: calendar heat maps of daily verified-user tweet
// activity over the one-year collection window. The paper's figure shows
// weekday banding (Sundays reliably lighter) and the holiday dip; we
// render the same calendar as ASCII intensity cells and verify both
// patterns numerically.

#include <cstdio>

#include "bench_common.h"
#include "timeseries/calendar.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Fig. 6: calendar heat map of tweet activity");
  core::VerifiedStudy study = bench::MakeStudy(args);
  const auto& activity = study.activity();

  const auto heatmap = timeseries::RenderCalendarHeatmap(
      activity.start, activity.daily_tweets);
  if (!heatmap.ok()) {
    std::fprintf(stderr, "render failed: %s\n",
                 heatmap.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", heatmap->c_str());
  std::printf("legend: . - + * #  (quintiles, low to high)\n");

  // Weekday banding statistics (the visible pattern in Fig. 6).
  double day_sum[7] = {0};
  int day_n[7] = {0};
  for (size_t i = 0; i < activity.daily_tweets.size(); ++i) {
    const int dow = timeseries::DayOfWeek(activity.DateAt(i));
    day_sum[dow] += activity.daily_tweets[i];
    ++day_n[dow];
  }
  const char* dow_names[] = {"Sun", "Mon", "Tue", "Wed", "Thu", "Fri",
                             "Sat"};
  std::printf("\nmean tweets by weekday:\n");
  double weekday_mean = 0.0;
  for (int d = 1; d <= 5; ++d) weekday_mean += day_sum[d] / day_n[d];
  weekday_mean /= 5.0;
  for (int d = 0; d < 7; ++d) {
    const double mean = day_sum[d] / day_n[d];
    std::printf("  %s %12.0f (%.1f%% of weekday mean)\n", dow_names[d],
                mean, 100.0 * mean / weekday_mean);
  }
  const double sunday_ratio = (day_sum[0] / day_n[0]) / weekday_mean;
  std::printf("\nSundays reliably lower than weekdays: %s "
              "(ratio %.3f)\n",
              sunday_ratio < 0.99 ? "OK" : "DEVIATES", sunday_ratio);

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "fig6_calendar.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"date", "tweets"}).ok();
    for (size_t i = 0; i < activity.daily_tweets.size(); ++i) {
      csv.WriteRow({timeseries::FormatDate(activity.DateAt(i)),
                    util::FormatNumber(activity.daily_tweets[i], 10)})
          .ok();
    }
    csv.Close().ok();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

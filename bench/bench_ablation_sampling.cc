// Ablation: accuracy/cost trade-offs of the sampled estimators used by
// the benches — BFS source count for the distance distribution (Fig. 3),
// betweenness pivot count (Fig. 5), clustering sample size, and bootstrap
// replicate count for the power-law p-value. Exact values are computed on
// a reduced graph so the error of each sampling level is measurable.

#include <cmath>
#include <cstdio>

#include "analysis/centrality.h"
#include "analysis/clustering.h"
#include "analysis/distance.h"
#include "bench_common.h"
#include "gen/verified_network.h"
#include "stats/correlation.h"
#include "stats/powerlaw.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  if (args.num_users == 40000) args.num_users = 8000;  // exact pass feasible
  util::PrintBanner("Ablation: sampling fidelity vs cost");

  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = args.num_users;
  cfg.seed = args.seed;
  auto net = gen::GenerateVerifiedNetwork(cfg);
  if (!net.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const auto& g = net->graph;
  std::printf("n=%u m=%llu\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // ---- Distance sources ---------------------------------------------------
  {
    util::Rng rng(11);
    util::SpanTimer sw;
    const auto exact = analysis::SampleDistances(g, g.num_nodes(), &rng);
    const double exact_time = sw.Seconds();
    std::printf("\n-- Fig. 3 distance estimate vs BFS source count "
                "(exact mean=%.4f, %.1fs) --\n",
                exact.mean_distance, exact_time);
    util::TextTable table({"sources", "mean_dist", "rel_err", "seconds"});
    for (uint32_t sources : {4u, 8u, 16u, 32u, 64u, 128u}) {
      util::Rng r2(100 + sources);
      sw.Reset();
      const auto est = analysis::SampleDistances(g, sources, &r2);
      table.AddRow();
      table.AddCell(static_cast<uint64_t>(sources));
      table.AddCell(est.mean_distance, 5);
      table.AddCell(bench::RelDev(est.mean_distance, exact.mean_distance),
                    3);
      table.AddCell(sw.Seconds(), 3);
    }
    table.Print();
  }

  // ---- Betweenness pivots -------------------------------------------------
  {
    util::SpanTimer sw;
    const auto exact = analysis::Betweenness(g);
    const double exact_time = sw.Seconds();
    if (exact.ok()) {
      std::printf("\n-- Fig. 5 betweenness estimate vs pivot count "
                  "(exact in %.1fs) --\n",
                  exact_time);
      util::TextTable table({"pivots", "spearman_vs_exact", "seconds"});
      for (uint32_t pivots : {16u, 64u, 256u, 1024u}) {
        analysis::BetweennessOptions opts;
        opts.pivots = pivots;
        opts.seed = 13;
        sw.Reset();
        const auto est = analysis::Betweenness(g, opts);
        if (!est.ok()) continue;
        table.AddRow();
        table.AddCell(static_cast<uint64_t>(pivots));
        table.AddCell(stats::SpearmanCorrelation(*exact, *est), 4);
        table.AddCell(sw.Seconds(), 3);
      }
      table.Print();
    }
  }

  // ---- Clustering samples --------------------------------------------------
  {
    util::SpanTimer sw;
    const auto exact = analysis::ComputeClustering(g);
    const double exact_time = sw.Seconds();
    std::printf("\n-- clustering coefficient vs sample size (exact=%.4f, "
                "%.1fs) --\n",
                exact.average_local, exact_time);
    util::TextTable table({"samples", "clustering", "rel_err", "seconds"});
    for (uint32_t samples : {250u, 1000u, 4000u, 16000u}) {
      util::Rng rng(17 + samples);
      sw.Reset();
      const auto est = analysis::ComputeClusteringSampled(g, samples, &rng);
      table.AddRow();
      table.AddCell(static_cast<uint64_t>(samples));
      table.AddCell(est.average_local, 4);
      table.AddCell(bench::RelDev(est.average_local, exact.average_local),
                    3);
      table.AddCell(sw.Seconds(), 3);
    }
    table.Print();
  }

  // ---- Bootstrap replicates -------------------------------------------------
  {
    std::vector<double> degrees;
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (g.OutDegree(u) > 0) {
        degrees.push_back(static_cast<double>(g.OutDegree(u)));
      }
    }
    const auto fit = stats::FitDiscrete(degrees);
    if (fit.ok()) {
      std::printf("\n-- power-law bootstrap p vs replicate count "
                  "(alpha=%.3f) --\n",
                  fit->alpha);
      util::TextTable table({"replicates", "p_value", "seconds"});
      for (int reps : {10, 30, 100}) {
        util::Rng rng(19 + static_cast<uint64_t>(reps));
        util::SpanTimer sw;
        const auto gof =
            stats::BootstrapGoodness(degrees, *fit, reps, &rng);
        if (!gof.ok()) continue;
        table.AddRow();
        table.AddCell(static_cast<int64_t>(reps));
        table.AddCell(gof->p_value, 3);
        table.AddCell(sw.Seconds(), 3);
      }
      table.Print();
    }
  }
  return 0;
}

// google-benchmark micro-benchmarks for the graph algorithm core:
// generation, BFS, PageRank, SCC, reciprocity, clustering, betweenness,
// and Laplacian matvec throughput on a fixed mid-size verified network.

#include <benchmark/benchmark.h>

#include "analysis/centrality.h"
#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/distance.h"
#include "analysis/reciprocity.h"
#include "analysis/spectral.h"
#include "gen/verified_network.h"
#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace {

using namespace elitenet;

const gen::VerifiedNetwork& FixtureNetwork() {
  static const gen::VerifiedNetwork* net = [] {
    gen::VerifiedNetworkConfig cfg;
    cfg.num_users = 20000;
    auto r = gen::GenerateVerifiedNetwork(cfg);
    if (!r.ok()) std::abort();
    return new gen::VerifiedNetwork(std::move(r).value());
  }();
  return *net;
}

void BM_GenerateVerifiedNetwork(benchmark::State& state) {
  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = gen::GenerateVerifiedNetwork(cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_users);
}
BENCHMARK(BM_GenerateVerifiedNetwork)->Arg(5000)->Arg(20000);

void BM_Bfs(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  util::Rng rng(3);
  for (auto _ : state) {
    const auto dist = analysis::Bfs(
        g, static_cast<graph::NodeId>(rng.UniformU64(g.num_nodes())));
    benchmark::DoNotOptimize(dist);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs);

// BFS kernel modes head-to-head on the same source set: classic top-down
// vs direction-optimizing (Arg 0/1).
void BM_BfsKernel(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  graph::ScratchArena arena(g.num_nodes());
  graph::BfsOptions opts;
  opts.mode = state.range(0) == 0 ? graph::BfsMode::kClassic
                                  : graph::BfsMode::kDirectionOptimizing;
  util::Rng rng(3);
  for (auto _ : state) {
    const auto stats = graph::Bfs(
        g, static_cast<graph::NodeId>(rng.UniformU64(g.num_nodes())), &arena,
        opts);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BfsKernel)->Arg(0)->Arg(1);

// Membership probes against real power-law rows: most rows are shorter
// than kHasEdgeLinearThreshold (linear scan), hubs take the binary-search
// path — the adaptive split this measures.
void BM_HasEdge(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  util::Rng rng(11);
  const graph::NodeId n = g.num_nodes();
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.UniformU64(n));
    const auto v = static_cast<graph::NodeId>(rng.UniformU64(n));
    benchmark::DoNotOptimize(g.HasEdge(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HasEdge);

void BM_PageRank(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  for (auto _ : state) {
    auto pr = analysis::PageRank(g);
    benchmark::DoNotOptimize(pr);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_PageRank);

void BM_Scc(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  for (auto _ : state) {
    auto scc = analysis::StronglyConnectedComponents(g);
    benchmark::DoNotOptimize(scc);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Scc);

void BM_WeakComponents(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  for (auto _ : state) {
    auto weak = analysis::WeaklyConnectedComponents(g);
    benchmark::DoNotOptimize(weak);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_WeakComponents);

void BM_Reciprocity(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  for (auto _ : state) {
    auto rec = analysis::ComputeReciprocity(g);
    benchmark::DoNotOptimize(rec);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Reciprocity);

void BM_ClusteringSampled(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  util::Rng rng(5);
  for (auto _ : state) {
    auto c = analysis::ComputeClusteringSampled(
        g, static_cast<uint32_t>(state.range(0)), &rng);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClusteringSampled)->Arg(500)->Arg(2000);

void BM_BetweennessPivots(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  analysis::BetweennessOptions opts;
  opts.pivots = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto bc = analysis::Betweenness(g, opts);
    benchmark::DoNotOptimize(bc);
  }
  state.SetItemsProcessed(state.iterations() * opts.pivots *
                          g.num_edges());
}
BENCHMARK(BM_BetweennessPivots)->Arg(8)->Arg(32);

void BM_LaplacianMatvec(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  const analysis::LaplacianOperator op(g);
  std::vector<double> x(op.dimension(), 1.0), y(op.dimension());
  for (auto _ : state) {
    op.Apply(x, &y);
    benchmark::DoNotOptimize(y);
    std::swap(x, y);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_LaplacianMatvec);

void BM_SampledDistances(benchmark::State& state) {
  const auto& g = FixtureNetwork().graph;
  util::Rng rng(7);
  for (auto _ : state) {
    auto d = analysis::SampleDistances(
        g, static_cast<uint32_t>(state.range(0)), &rng);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_SampledDistances)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();

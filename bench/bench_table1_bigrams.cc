// Table I reproduction: most popular bigrams in verified-user bios, with
// occurrence counts compared against the paper's (scaled by cohort size).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/paper_reference.h"
#include "text/ngram.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Table I: most popular bigrams in bios");
  core::VerifiedStudy study = bench::MakeStudy(args);

  text::NGramCounter bigrams(2), trigrams(3);
  for (const std::string& bio : study.bios().bios) {
    const auto clauses = text::TokenizeClauses(bio);
    bigrams.AddClauses(clauses);
    trigrams.AddClauses(clauses);
  }
  const auto top = text::FilterSubsumed(bigrams.TopK(60), trigrams);
  const double scale = static_cast<double>(args.num_users) /
                       static_cast<double>(paper::kUsersEnglish);

  util::TextTable table(
      {"rank", "bigram", "measured", "paper(scaled)", "paper@231k"});
  const size_t rows = std::min<size_t>(15, top.size());
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow();
    table.AddCell(static_cast<uint64_t>(i + 1));
    table.AddCell(text::TitleCase(top[i].ngram));
    table.AddCell(top[i].count);
    // Match against the paper row for this phrase, if listed.
    double paper_count = 0.0;
    for (const auto& named : paper::kTopBigrams) {
      if (top[i].ngram == named.phrase) {
        paper_count = named.count;
        break;
      }
    }
    table.AddCell(paper_count > 0 ? util::FormatNumber(paper_count * scale, 4)
                                  : std::string("-"));
    table.AddCell(paper_count > 0
                      ? util::FormatWithCommas(
                            static_cast<uint64_t>(paper_count))
                      : std::string("-"));
  }
  std::printf("\n");
  table.Print();

  // Coverage: how many of the paper's 15 appear in our top 20?
  int covered = 0;
  for (const auto& named : paper::kTopBigrams) {
    for (size_t i = 0; i < std::min<size_t>(20, top.size()); ++i) {
      if (top[i].ngram == named.phrase) {
        ++covered;
        break;
      }
    }
  }
  std::printf("\npaper coverage: %d/15 of Table I's bigrams in our top 20 "
              "[shape: %s]\n",
              covered, covered >= 13 ? "OK" : "DEVIATES");
  std::printf("head phrase check: '%s' ranked first [%s]\n",
              text::TitleCase(top.empty() ? "" : top[0].ngram).c_str(),
              !top.empty() && top[0].ngram == "official twitter"
                  ? "OK"
                  : "DEVIATES");

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "table1_bigrams.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"rank", "bigram", "count"}).ok();
    for (size_t i = 0; i < rows; ++i) {
      csv.WriteRow({std::to_string(i + 1), top[i].ngram,
                    std::to_string(top[i].count)})
          .ok();
    }
    csv.Close().ok();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

// Fig. 1 reproduction: log-scaled distributions of friends, followers,
// public list memberships and status counts across the verified cohort.
// The paper plots four histograms; we print log-binned ASCII histograms
// and dump the binned series as CSV.

#include <cstdio>

#include "bench_common.h"
#include "gen/profiles.h"
#include "util/csv.h"
#include "util/histogram.h"
#include "util/table.h"

namespace {

using namespace elitenet;

void Panel(const bench::BenchArgs& args, const char* name,
           const std::vector<double>& values, util::CsvWriter* csv) {
  util::LogHistogram hist(1.0, 2.0, 40);
  double max_v = 0.0;
  for (double v : values) {
    hist.Add(v);
    if (v > max_v) max_v = v;
  }
  std::printf("\n-- %s (max %.3g) --\n", name, max_v);
  std::fputs(hist.ToAsciiChart(name).c_str(), stdout);
  for (const util::HistogramBin& b : hist.bins()) {
    if (b.count == 0) continue;
    csv->WriteRow({name, util::FormatNumber(b.lo, 8),
                   util::FormatNumber(b.hi, 8), std::to_string(b.count)})
        .ok();
  }
  (void)args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner(
      "Fig. 1: distributions of friends / followers / lists / statuses");
  core::VerifiedStudy study = bench::MakeStudy(args);
  const auto& profiles = study.profiles();

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "fig1_distributions.csv");
  if (!csv.Open(path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  csv.WriteRow({"panel", "bin_lo", "bin_hi", "count"}).ok();

  Panel(args, "friends", gen::FriendsColumn(profiles), &csv);
  Panel(args, "followers", gen::FollowersColumn(profiles), &csv);
  Panel(args, "list memberships", gen::ListedColumn(profiles), &csv);
  Panel(args, "statuses", gen::StatusesColumn(profiles), &csv);
  csv.Close().ok();

  std::printf(
      "\nShape check (paper: all four are heavy-tailed, spanning many "
      "decades on log axes):\n");
  for (const auto& [name, column] :
       {std::pair<const char*, std::vector<double>>{
            "followers", gen::FollowersColumn(profiles)},
        {"friends", gen::FriendsColumn(profiles)},
        {"lists", gen::ListedColumn(profiles)},
        {"statuses", gen::StatusesColumn(profiles)}}) {
    double mean = 0.0, max = 0.0;
    for (double v : column) {
      mean += v;
      if (v > max) max = v;
    }
    mean /= static_cast<double>(column.size());
    std::printf("  %-12s mean=%.3g max=%.3g max/mean=%.1f [heavy tail: "
                "%s]\n",
                name, mean, max, max / mean, max > 20 * mean ? "OK" : "NO");
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

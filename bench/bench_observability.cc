// Overhead of the observability layer (util/trace.h, util/metrics.h) on a
// hot parallel kernel, proving the "near-zero cost when disabled" claim:
// an instrumented sqrt-sum ParallelReduce (per-chunk span + counter, the
// same density parallel.cc deploys) is timed against a macro-free twin
// with instrumentation disabled, enabled with metrics only, and enabled
// with tracing too. Also measures the raw per-call cost of a disabled
// ELITENET_COUNT. Emits BENCH_observability.json; exits nonzero if the
// disabled overhead exceeds 1% or instrumentation changes the result.
//
// Usage: bench_observability [--elements=N] [--repeats=R] [--json=PATH]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The uninstrumented twin: sqrt-sum over [0, n) via ParallelReduce.
double PlainKernel(const std::vector<double>& data) {
  return util::ParallelReduce(
      0, data.size(), 0, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += std::sqrt(data[i]);
        return s;
      },
      [](double a, double b) { return a + b; });
}

// Identical computation with the per-chunk instrumentation the library's
// own kernels carry: one span and one counter add per chunk.
double InstrumentedKernel(const std::vector<double>& data) {
  return util::ParallelReduce(
      0, data.size(), 0, 0.0,
      [&](size_t lo, size_t hi) {
        ELITENET_SPAN("bench.observability.chunk");
        ELITENET_COUNT("bench.observability.items", hi - lo);
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += std::sqrt(data[i]);
        return s;
      },
      [](double a, double b) { return a + b; });
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;

  size_t elements = size_t{1} << 22;
  int repeats = 9;
  std::string json_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--elements=", 11) == 0) {
      elements = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  if (elements == 0 || repeats < 1) {
    std::fprintf(stderr, "bad --elements/--repeats\n");
    return 1;
  }

  std::vector<double> data(elements);
  for (size_t i = 0; i < elements; ++i) {
    data[i] = static_cast<double>((i * 2654435761u) % 1000003u);
  }

  util::SetTracingEnabled(false);
  util::SetMetricsEnabled(false);

  // Warm up (page in the data, build the pool) and pin the reference sum.
  const double reference = bench::PlainKernel(data);
  double instrumented_sum = bench::InstrumentedKernel(data);
  bool sums_match = instrumented_sum == reference;

  // Interleave the variants so drift (thermal, scheduler) hits all alike.
  std::vector<double> plain_s, disabled_s, metrics_s, full_s;
  for (int r = 0; r < repeats; ++r) {
    double t = bench::NowSeconds();
    const double p = bench::PlainKernel(data);
    plain_s.push_back(bench::NowSeconds() - t);
    sums_match = sums_match && p == reference;

    t = bench::NowSeconds();
    double x = bench::InstrumentedKernel(data);
    disabled_s.push_back(bench::NowSeconds() - t);
    sums_match = sums_match && x == reference;

    util::SetMetricsEnabled(true);
    t = bench::NowSeconds();
    x = bench::InstrumentedKernel(data);
    metrics_s.push_back(bench::NowSeconds() - t);
    sums_match = sums_match && x == reference;

    util::SetTracingEnabled(true);
    t = bench::NowSeconds();
    x = bench::InstrumentedKernel(data);
    full_s.push_back(bench::NowSeconds() - t);
    sums_match = sums_match && x == reference;
    util::SetTracingEnabled(false);
    util::SetMetricsEnabled(false);
    util::TraceRecorder::Global().Clear();
  }

  const double plain = bench::Median(plain_s);
  const double disabled = bench::Median(disabled_s);
  const double metrics_on = bench::Median(metrics_s);
  const double full_on = bench::Median(full_s);
  const double disabled_pct = (disabled / plain - 1.0) * 100.0;
  const double metrics_pct = (metrics_on / plain - 1.0) * 100.0;
  const double full_pct = (full_on / plain - 1.0) * 100.0;

  // Raw per-call floor of a disabled macro: the load + branch, nothing
  // else. calls >> elements so the loop body dominates the timer reads.
  constexpr size_t kCalls = size_t{1} << 24;
  const double t0 = bench::NowSeconds();
  for (size_t i = 0; i < kCalls; ++i) {
    ELITENET_COUNT("bench.observability.disabled_probe", 1);
  }
  const double disabled_ns_per_call =
      (bench::NowSeconds() - t0) / static_cast<double>(kCalls) * 1e9;

  const bool under_1pct = disabled_pct < 1.0;
  std::printf("sqrt-sum over %zu elements, %d repeats (median):\n", elements,
              repeats);
  std::printf("  plain kernel              %8.4fs\n", plain);
  std::printf("  instrumented, disabled    %8.4fs  (%+.3f%%)\n", disabled,
              disabled_pct);
  std::printf("  instrumented, metrics on  %8.4fs  (%+.3f%%)\n", metrics_on,
              metrics_pct);
  std::printf("  instrumented, trace+metrics %6.4fs  (%+.3f%%)\n", full_on,
              full_pct);
  std::printf("  disabled ELITENET_COUNT   %8.3f ns/call\n",
              disabled_ns_per_call);
  std::printf("disabled overhead < 1%%: %s; sums identical: %s\n",
              under_1pct ? "yes" : "NO", sums_match ? "yes" : "NO");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"elements\": %zu,\n", elements);
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  bench::WriteEnvironmentJson(f);
  std::fprintf(f, "  \"plain_seconds\": %.6f,\n", plain);
  std::fprintf(f, "  \"disabled_seconds\": %.6f,\n", disabled);
  std::fprintf(f, "  \"metrics_on_seconds\": %.6f,\n", metrics_on);
  std::fprintf(f, "  \"trace_metrics_on_seconds\": %.6f,\n", full_on);
  std::fprintf(f, "  \"disabled_overhead_pct\": %.4f,\n", disabled_pct);
  std::fprintf(f, "  \"metrics_on_overhead_pct\": %.4f,\n", metrics_pct);
  std::fprintf(f, "  \"trace_metrics_on_overhead_pct\": %.4f,\n", full_pct);
  std::fprintf(f, "  \"disabled_count_ns_per_call\": %.4f,\n",
               disabled_ns_per_call);
  std::fprintf(f, "  \"disabled_under_1pct\": %s,\n",
               under_1pct ? "true" : "false");
  std::fprintf(f, "  \"sums_identical\": %s\n", sums_match ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return under_1pct && sums_match ? 0 : 2;
}

// Overhead of the observability layer, in two modes.
//
// Kernel mode (the PR-2 claim): an instrumented sqrt-sum ParallelReduce
// (per-chunk span + counter, the same density parallel.cc deploys) is
// timed against a macro-free twin with instrumentation disabled, enabled
// with metrics only, and enabled with tracing too. Also measures the raw
// per-call cost of a disabled ELITENET_COUNT. Fails if the disabled
// overhead exceeds 1% or instrumentation changes the result.
//
// Serving mode (the live-telemetry claim): replays the deterministic
// zipf request mix (bench_common) through QueryEngine::Submit with the
// telemetry plane disabled, at default 1-in-64 sampling, and at
// sample-every-request, across 1/2/4/8 workers. Asserts (a) response
// checksums are byte-identical across every telemetry setting and worker
// count — telemetry observes, never decides — and (b) the per-request
// telemetry cost (tight loop over the full producer path) divided by the
// measured per-request service time is under --serve-overhead-limit
// percent (default 1%). A one-engine wall-clock A/B (flipping the live
// telemetry switch in ABBA order) rides along in the JSON as an
// end-to-end cross-check but is not gated: its noise floor on a shared
// core is wider than the 1% claim. The default serve scale (60000 nodes,
// ~5.4M edges) keeps per-request compute near the paper-network regime
// (2.3M edges) so the overhead fraction is not inflated by toy-graph
// queries.
//
// Emits BENCH_observability.json with both sections; exits nonzero if
// any assertion fails.
//
// Usage: bench_observability [--elements=N] [--repeats=R] [--json=PATH]
//                            [--skip-kernel] [--serve-scale=N]
//                            [--serve-requests=R] [--serve-repeats=K]
//                            [--serve-overhead-limit=PCT]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gen/verified_network.h"
#include "serve/engine.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The uninstrumented twin: sqrt-sum over [0, n) via ParallelReduce.
double PlainKernel(const std::vector<double>& data) {
  return util::ParallelReduce(
      0, data.size(), 0, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += std::sqrt(data[i]);
        return s;
      },
      [](double a, double b) { return a + b; });
}

// Identical computation with the per-chunk instrumentation the library's
// own kernels carry: one span and one counter add per chunk.
double InstrumentedKernel(const std::vector<double>& data) {
  return util::ParallelReduce(
      0, data.size(), 0, 0.0,
      [&](size_t lo, size_t hi) {
        ELITENET_SPAN("bench.observability.chunk");
        ELITENET_COUNT("bench.observability.items", hi - lo);
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) s += std::sqrt(data[i]);
        return s;
      },
      [](double a, double b) { return a + b; });
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// ---------------------------------------------------------------------------
// Serving mode.

// How the engine's telemetry plane is configured for one grid cell.
struct TelemetryMode {
  const char* name;
  bool enabled;
  uint32_t sample_every;
};

constexpr TelemetryMode kTelemetryModes[] = {
    {"off", false, 64},
    {"sampled", true, 64},  // the production default
    {"full", true, 1},
};

constexpr int kServeThreadCounts[] = {1, 2, 4, 8};

std::unique_ptr<serve::QueryEngine> MakeServeEngine(
    const graph::DiGraph& g, const TelemetryMode& mode, int threads,
    const std::string& widx_path) {
  serve::EngineOptions opts;
  opts.threads = threads;
  opts.cache_capacity = 8192;
  opts.telemetry.enabled = mode.enabled;
  opts.telemetry.sample_every = mode.sample_every;
  // Share one warm-index sidecar across the dozen engine builds the grid
  // needs: the first build writes it, the rest restore in milliseconds.
  opts.warm_index_path = widx_path;
  auto engine = serve::QueryEngine::Create(g, opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine startup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*engine);
}

// Closed-loop replay through Submit (the production path): a window of
// `threads` requests in flight, responses hashed in submission order so
// the checksum is independent of worker scheduling.
struct ReplayResult {
  double seconds = 0.0;
  uint64_t checksum = 0;
};

ReplayResult Replay(serve::QueryEngine* engine,
                    const std::vector<serve::Request>& mix, int threads) {
  std::deque<std::pair<size_t, std::future<serve::QueryResponse>>> window;
  std::vector<uint64_t> hashes(mix.size(), 0);
  const double t0 = NowSeconds();
  for (size_t i = 0; i < mix.size(); ++i) {
    if (window.size() >= static_cast<size_t>(threads)) {
      hashes[window.front().first] =
          FnvString(window.front().second.get().json);
      window.pop_front();
    }
    window.emplace_back(i, engine->Submit(mix[i]));
  }
  while (!window.empty()) {
    hashes[window.front().first] =
        FnvString(window.front().second.get().json);
    window.pop_front();
  }
  ReplayResult out;
  out.seconds = NowSeconds() - t0;
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t x : hashes) h = FnvMix(h, x);
  out.checksum = h;
  return out;
}

struct ServingResults {
  bool checksums_identical = true;
  uint64_t checksum = 0;
  double qps_off = 0.0;
  double qps_sampled = 0.0;
  /// End-to-end wall-clock A/B delta (reported, not gated: its noise
  /// floor on a shared core is wider than the claim being tested).
  double ab_overhead_pct = 0.0;
  /// Tight-loop cost of the full telemetry producer path, per request.
  double telemetry_ns_per_request = 0.0;
  /// telemetry_ns_per_request / measured request service time — the
  /// enforced overhead bound.
  double overhead_pct = 0.0;
  bool under_limit = true;
  // One row per (mode, threads) grid cell, mode-major.
  std::vector<double> grid_qps;
};

ServingResults RunServingMode(const graph::DiGraph& g,
                              const std::vector<serve::Request>& mix,
                              int repeats, double overhead_limit_pct,
                              const std::string& widx_path) {
  ServingResults out;

  // Byte-identity grid: every telemetry mode at every worker count must
  // produce the same response bytes in submission order.
  bool first = true;
  for (const TelemetryMode& mode : kTelemetryModes) {
    for (int threads : kServeThreadCounts) {
      auto engine = MakeServeEngine(g, mode, threads, widx_path);
      const ReplayResult r = Replay(engine.get(), mix, threads);
      out.grid_qps.push_back(static_cast<double>(mix.size()) / r.seconds);
      std::printf("  telemetry=%-8s threads=%d  qps=%9.0f  "
                  "checksum=%016llx\n",
                  mode.name, threads,
                  static_cast<double>(mix.size()) / r.seconds,
                  static_cast<unsigned long long>(r.checksum));
      if (first) {
        out.checksum = r.checksum;
        first = false;
      } else if (r.checksum != out.checksum) {
        out.checksums_identical = false;
      }
    }
  }

  // Overhead: off vs default sampling at 1 worker, the result cache
  // cleared before every timed replay — the same mixed hit/miss traffic
  // a server actually sees, not an all-cache-hit loop that is really
  // just benchmarking the queue machinery. Both arms run on ONE engine,
  // flipping the telemetry plane's live switch between replays: separate
  // per-arm engines (or a fresh engine per replay) hand each arm its own
  // heap layout, and allocator/page placement luck shows up as a
  // consistent ±several-percent bias that no amount of repetition
  // removes. The verdict compares the arms' TOTAL time over many short
  // replays in ABBA order (off-on / on-off alternating): totals average
  // per-replay scheduler jitter away instead of betting on a median
  // landing well, and ABBA cancels drift that is linear over a pair.
  // Repeat 0 is a discarded warm-up lap for both arms.
  auto engine = MakeServeEngine(g, kTelemetryModes[1], 1, widx_path);
  std::vector<double> off_s, on_s;
  auto lap = [&](bool off) {
    engine->SetTelemetryEnabled(!off);
    engine->ClearResultCache();
    return Replay(engine.get(), mix, 1).seconds;
  };
  for (int r = 0; r <= repeats; ++r) {
    const bool off_first = (r % 2) == 0;
    const double first = lap(off_first);
    const double second = lap(!off_first);
    if (r == 0) continue;  // warm-up
    off_s.push_back(off_first ? first : second);
    on_s.push_back(off_first ? second : first);
  }
  double off_total = 0.0, on_total = 0.0;
  for (double s : off_s) off_total += s;
  for (double s : on_s) on_total += s;
  out.qps_off = static_cast<double>(mix.size()) * off_s.size() / off_total;
  out.qps_sampled = static_cast<double>(mix.size()) * on_s.size() / on_total;
  out.ab_overhead_pct = (on_total / off_total - 1.0) * 100.0;

  // The enforced bound composes two LOW-variance measurements instead of
  // gating on the wall-clock A/B above: on a shared single-core box the
  // A/B's noise floor is ±several percent (an off-vs-off null run swings
  // as much as the real comparison), which cannot resolve a 1% claim.
  // So: (a) the per-request telemetry cost from a tight loop over the
  // real producer path — NextSeq, TraceIdFor, the sampling decision,
  // record construction, Telemetry::Record with both rings and sketches
  // live — and (b) the per-request service time from the off arm's
  // replays. Their ratio is the overhead fraction, immune to scheduler
  // jitter. (The loop keeps telemetry state cache-hot, so it is a
  // best-case per-op cost; the A/B stays in the JSON as the
  // end-to-end cross-check.)
  {
    serve::TelemetryOptions topts;
    topts.sample_every = kTelemetryModes[1].sample_every;
    serve::Telemetry tel(topts);
    constexpr size_t kOps = 2'000'000;
    const double t0 = NowSeconds();
    for (size_t i = 0; i < kOps; ++i) {
      const uint64_t seq = tel.NextSeq();
      const uint64_t trace_id = serve::TraceIdFor(seq);
      serve::RequestRecord rec;
      rec.trace_id = trace_id;
      rec.seq = seq;
      rec.request = mix[i % mix.size()];
      rec.sampled = tel.Sampled(trace_id);
      rec.cache_hit = (i & 3) == 0;
      rec.queued = true;
      rec.latency_us = 1 + (trace_id & 1023);
      rec.queue_wait_us = trace_id & 127;
      tel.Record(std::move(rec));
    }
    out.telemetry_ns_per_request =
        (NowSeconds() - t0) * 1e9 / static_cast<double>(kOps);
  }
  const double request_ns =
      off_total / (static_cast<double>(mix.size()) * off_s.size()) * 1e9;
  out.overhead_pct = out.telemetry_ns_per_request / request_ns * 100.0;
  out.under_limit = out.overhead_pct <= overhead_limit_pct;
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;

  size_t elements = size_t{1} << 22;
  int repeats = 9;
  std::string json_path = "BENCH_observability.json";
  bool run_kernel = true;
  uint32_t serve_scale = 60000;
  size_t serve_requests = 12000;
  int serve_repeats = 11;
  double serve_limit_pct = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--elements=", 11) == 0) {
      elements = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--skip-kernel") == 0) {
      run_kernel = false;
    } else if (std::strncmp(argv[i], "--serve-scale=", 14) == 0) {
      serve_scale = static_cast<uint32_t>(std::atoi(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--serve-requests=", 17) == 0) {
      serve_requests =
          static_cast<size_t>(std::atoll(argv[i] + 17));
    } else if (std::strncmp(argv[i], "--serve-repeats=", 16) == 0) {
      serve_repeats = std::atoi(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--serve-overhead-limit=", 23) == 0) {
      serve_limit_pct = std::strtod(argv[i] + 23, nullptr);
    }
  }
  if (elements == 0 || repeats < 1 || serve_repeats < 1) {
    std::fprintf(stderr, "bad --elements/--repeats/--serve-repeats\n");
    return 1;
  }

  util::SetTracingEnabled(false);
  util::SetMetricsEnabled(false);

  // -------------------------------------------------------------------
  // Kernel mode.
  double plain = 0, disabled = 0, metrics_on = 0, full_on = 0;
  double disabled_pct = 0, metrics_pct = 0, full_pct = 0;
  double disabled_ns_per_call = 0;
  bool under_1pct = true, sums_match = true;
  if (run_kernel) {
    std::vector<double> data(elements);
    for (size_t i = 0; i < elements; ++i) {
      data[i] = static_cast<double>((i * 2654435761u) % 1000003u);
    }

    // Warm up (page in the data, build the pool), pin the reference sum.
    const double reference = bench::PlainKernel(data);
    double instrumented_sum = bench::InstrumentedKernel(data);
    sums_match = instrumented_sum == reference;

    // Interleave the variants so drift (thermal, scheduler) hits all
    // alike.
    std::vector<double> plain_s, disabled_s, metrics_s, full_s;
    for (int r = 0; r < repeats; ++r) {
      double t = bench::NowSeconds();
      const double p = bench::PlainKernel(data);
      plain_s.push_back(bench::NowSeconds() - t);
      sums_match = sums_match && p == reference;

      t = bench::NowSeconds();
      double x = bench::InstrumentedKernel(data);
      disabled_s.push_back(bench::NowSeconds() - t);
      sums_match = sums_match && x == reference;

      util::SetMetricsEnabled(true);
      t = bench::NowSeconds();
      x = bench::InstrumentedKernel(data);
      metrics_s.push_back(bench::NowSeconds() - t);
      sums_match = sums_match && x == reference;

      util::SetTracingEnabled(true);
      t = bench::NowSeconds();
      x = bench::InstrumentedKernel(data);
      full_s.push_back(bench::NowSeconds() - t);
      sums_match = sums_match && x == reference;
      util::SetTracingEnabled(false);
      util::SetMetricsEnabled(false);
      util::TraceRecorder::Global().Clear();
    }

    plain = bench::Median(plain_s);
    disabled = bench::Median(disabled_s);
    metrics_on = bench::Median(metrics_s);
    full_on = bench::Median(full_s);
    disabled_pct = (disabled / plain - 1.0) * 100.0;
    metrics_pct = (metrics_on / plain - 1.0) * 100.0;
    full_pct = (full_on / plain - 1.0) * 100.0;

    // Raw per-call floor of a disabled macro: the load + branch, nothing
    // else. calls >> elements so the loop body dominates the timer reads.
    constexpr size_t kCalls = size_t{1} << 24;
    const double t0 = bench::NowSeconds();
    for (size_t i = 0; i < kCalls; ++i) {
      ELITENET_COUNT("bench.observability.disabled_probe", 1);
    }
    disabled_ns_per_call =
        (bench::NowSeconds() - t0) / static_cast<double>(kCalls) * 1e9;

    under_1pct = disabled_pct < 1.0;
    std::printf("sqrt-sum over %zu elements, %d repeats (median):\n",
                elements, repeats);
    std::printf("  plain kernel              %8.4fs\n", plain);
    std::printf("  instrumented, disabled    %8.4fs  (%+.3f%%)\n", disabled,
                disabled_pct);
    std::printf("  instrumented, metrics on  %8.4fs  (%+.3f%%)\n",
                metrics_on, metrics_pct);
    std::printf("  instrumented, trace+metrics %6.4fs  (%+.3f%%)\n", full_on,
                full_pct);
    std::printf("  disabled ELITENET_COUNT   %8.3f ns/call\n",
                disabled_ns_per_call);
    std::printf("disabled overhead < 1%%: %s; sums identical: %s\n",
                under_1pct ? "yes" : "NO", sums_match ? "yes" : "NO");
  }

  // -------------------------------------------------------------------
  // Serving mode.
  bench::ServingResults serving;
  bool run_serving = serve_scale > 0 && serve_requests > 0;
  if (run_serving) {
    gen::VerifiedNetworkConfig gcfg;
    gcfg.num_users = serve_scale;
    gcfg.seed = 2018;
    auto net = gen::GenerateVerifiedNetwork(gcfg);
    if (!net.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   net.status().ToString().c_str());
      return 1;
    }
    const graph::DiGraph& g = net->graph;
    const std::vector<serve::Request> mix =
        bench::MakeServeRequestMix(g, serve_requests, 1.1, 2018 ^ 0x5E47E);
    std::printf("serving mode: n=%u m=%llu requests=%zu repeats=%d\n",
                g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()), mix.size(),
                serve_repeats);
    const std::string widx_path = json_path + ".widx";
    serving = bench::RunServingMode(g, mix, serve_repeats, serve_limit_pct,
                                    widx_path);
    std::remove(widx_path.c_str());
    std::printf("  telemetry cost at default sampling: %.0f ns/request "
                "= %.3f%% of service time (limit %.1f%% %s)\n",
                serving.telemetry_ns_per_request, serving.overhead_pct,
                serve_limit_pct, serving.under_limit ? "ok" : "FAIL");
    std::printf("  wall-clock A/B cross-check: %+.3f%% "
                "(qps %.0f sampled vs %.0f off; reported, not gated)\n",
                serving.ab_overhead_pct, serving.qps_sampled,
                serving.qps_off);
    if (!serving.checksums_identical) {
      std::fprintf(stderr,
                   "FAIL: responses differ across telemetry modes or "
                   "worker counts\n");
    }
    if (!serving.under_limit) {
      std::fprintf(stderr,
                   "FAIL: telemetry overhead %.3f%% exceeds %.1f%%\n",
                   serving.overhead_pct, serve_limit_pct);
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvironmentJson(f);
  if (run_kernel) {
    std::fprintf(f, "  \"elements\": %zu,\n", elements);
    std::fprintf(f, "  \"repeats\": %d,\n", repeats);
    std::fprintf(f, "  \"plain_seconds\": %.6f,\n", plain);
    std::fprintf(f, "  \"disabled_seconds\": %.6f,\n", disabled);
    std::fprintf(f, "  \"metrics_on_seconds\": %.6f,\n", metrics_on);
    std::fprintf(f, "  \"trace_metrics_on_seconds\": %.6f,\n", full_on);
    std::fprintf(f, "  \"disabled_overhead_pct\": %.4f,\n", disabled_pct);
    std::fprintf(f, "  \"metrics_on_overhead_pct\": %.4f,\n", metrics_pct);
    std::fprintf(f, "  \"trace_metrics_on_overhead_pct\": %.4f,\n",
                 full_pct);
    std::fprintf(f, "  \"disabled_count_ns_per_call\": %.4f,\n",
                 disabled_ns_per_call);
    std::fprintf(f, "  \"disabled_under_1pct\": %s,\n",
                 under_1pct ? "true" : "false");
    std::fprintf(f, "  \"sums_identical\": %s%s\n",
                 sums_match ? "true" : "false", run_serving ? "," : "");
  }
  if (run_serving) {
    std::fprintf(f, "  \"serving\": {\n");
    std::fprintf(f, "    \"scale\": %u,\n", serve_scale);
    std::fprintf(f, "    \"requests\": %zu,\n", serve_requests);
    std::fprintf(f, "    \"repeats\": %d,\n", serve_repeats);
    std::fprintf(f, "    \"grid_qps\": {");
    size_t cell = 0;
    for (size_t m = 0; m < 3; ++m) {
      for (size_t t = 0; t < 4; ++t, ++cell) {
        std::fprintf(f, "%s\"%s_t%d\": %.0f", cell == 0 ? "" : ", ",
                     bench::kTelemetryModes[m].name,
                     bench::kServeThreadCounts[t], serving.grid_qps[cell]);
      }
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "    \"checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(serving.checksum));
    std::fprintf(f, "    \"checksums_identical\": %s,\n",
                 serving.checksums_identical ? "true" : "false");
    std::fprintf(f, "    \"qps_telemetry_off\": %.1f,\n", serving.qps_off);
    std::fprintf(f, "    \"qps_default_sampling\": %.1f,\n",
                 serving.qps_sampled);
    std::fprintf(f, "    \"ab_overhead_pct\": %.4f,\n",
                 serving.ab_overhead_pct);
    std::fprintf(f, "    \"telemetry_ns_per_request\": %.2f,\n",
                 serving.telemetry_ns_per_request);
    std::fprintf(f, "    \"overhead_pct\": %.4f,\n", serving.overhead_pct);
    std::fprintf(f, "    \"overhead_limit_pct\": %.4f,\n", serve_limit_pct);
    std::fprintf(f, "    \"under_limit\": %s\n",
                 serving.under_limit ? "true" : "false");
    std::fprintf(f, "  }\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  const bool kernel_ok = !run_kernel || (under_1pct && sums_match);
  const bool serving_ok =
      !run_serving || (serving.checksums_identical && serving.under_limit);
  return kernel_ok && serving_ok ? 0 : 2;
}

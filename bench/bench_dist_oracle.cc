// Distance-oracle bench: proves the hub-label fast path turns dist from
// the one query that traverses the graph into a warm-index lookup.
//
// Generates the verified network, builds the pruned landmark labeling
// (timed), and drives two engines over the same random pair stream — one
// with the oracle (the default), one forced onto the bidirectional-BFS
// fallback — with the result cache off so every sample measures compute.
// Three hard assertions make it a correctness harness as well as a bench:
//   * oracle responses are byte-identical to the BFS fallback's for every
//     sampled pair (same graph, same request, same JSON);
//   * zero degraded oracle responses at the default dist deadline — the
//     ROADMAP open-item target (BFS at the same deadline may degrade;
//     that count is reported for contrast);
//   * p99(dist via oracle) <= --max-ratio x p99(topk), i.e. dist now
//     costs like a warm-index query, not a traversal (--max-ratio
//     defaults to 2, relaxed in the ctest smoke where tiny absolute
//     latencies make the ratio noisy).
// Any failing assertion exits non-zero (ctest label "perf").
//
// Emits BENCH_dist_oracle.json: build time, label-size stats (avg/max
// entries per node per direction, flat bytes), oracle/BFS/topk latency
// percentiles, and each assertion's outcome.
//
// Usage: bench_dist_oracle [--scale=N] [--seed=S] [--pairs=P]
//                          [--deadline-us=D] [--max-ratio=R] [--json=PATH]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/verified_network.h"
#include "graph/hub_labels.h"
#include "serve/engine.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

double Percentile(std::vector<double> micros, double q) {
  if (micros.empty()) return 0.0;
  std::sort(micros.begin(), micros.end());
  const size_t idx =
      static_cast<size_t>(std::ceil(q * static_cast<double>(micros.size())));
  return micros[std::min(micros.size() - 1, idx == 0 ? 0 : idx - 1)];
}

struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  size_t count = 0;
};

LatencySummary Summarize(const std::vector<double>& micros) {
  return {Percentile(micros, 0.50), Percentile(micros, 0.95),
          Percentile(micros, 0.99), micros.size()};
}

serve::Request DistRequest(graph::NodeId s, graph::NodeId t,
                           uint64_t deadline_us) {
  serve::Request r;
  r.type = serve::RequestType::kDistance;
  r.node = s;
  r.target = t;
  r.deadline_us = deadline_us;
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string json_path = "BENCH_dist_oracle.json";
  size_t num_pairs = 2000;
  uint64_t deadline_us = 2000;
  double max_ratio = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--pairs=", 8) == 0) {
      num_pairs = std::strtoull(argv[i] + 8, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--deadline-us=", 14) == 0) {
      deadline_us = std::strtoull(argv[i] + 14, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::strtod(argv[i] + 12, nullptr);
    }
  }
  if (args.threads > 0) util::SetThreadCount(args.threads);

  gen::VerifiedNetworkConfig gcfg;
  gcfg.num_users = args.num_users;
  gcfg.seed = args.seed;
  auto net = gen::GenerateVerifiedNetwork(gcfg);
  if (!net.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }
  const graph::DiGraph& g = net->graph;
  std::printf("dist oracle bench: n=%u m=%llu pairs=%zu deadline=%lluus\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              num_pairs, static_cast<unsigned long long>(deadline_us));

  // Standalone construction timing + label-size accounting (the engine
  // rebuilds its own copy below; this one is the measured artifact).
  util::SpanTimer build_timer("bench.dist_oracle.build");
  const graph::HubLabels labels = graph::BuildHubLabels(g);
  const double build_seconds = build_timer.Seconds();
  if (labels.empty()) {
    std::fprintf(stderr,
                 "FAIL: oracle construction exceeded its label budget on "
                 "the verified network\n");
    return 1;
  }
  const graph::HubLabelStats stats = labels.Stats();
  std::printf(
      "  built in %.2fs: avg %.1f out / %.1f in entries per node "
      "(max %u/%u), %.1f MiB flat\n",
      build_seconds, stats.avg_out_entries, stats.avg_in_entries,
      stats.max_out_entries, stats.max_in_entries,
      static_cast<double>(stats.bytes) / (1024.0 * 1024.0));

  // Two engines, cache off: every Execute measures the compute path.
  serve::EngineOptions oracle_opts;
  oracle_opts.cache_capacity = 0;
  serve::EngineOptions bfs_opts;
  bfs_opts.cache_capacity = 0;
  bfs_opts.distance_oracle = false;
  auto oracle_engine = serve::QueryEngine::Create(g, oracle_opts);
  auto bfs_engine = serve::QueryEngine::Create(g, bfs_opts);
  if (!oracle_engine.ok() || !bfs_engine.ok()) {
    std::fprintf(stderr, "engine startup failed\n");
    return 1;
  }
  if (!(*oracle_engine)->distance_oracle_active() ||
      (*bfs_engine)->distance_oracle_active()) {
    std::fprintf(stderr, "FAIL: oracle/fallback engine setup inverted\n");
    return 1;
  }

  util::Rng rng(args.seed ^ 0xD157);
  std::vector<graph::NodeId> srcs(num_pairs), dsts(num_pairs);
  for (size_t i = 0; i < num_pairs; ++i) {
    srcs[i] = static_cast<graph::NodeId>(rng.UniformU64(g.num_nodes()));
    dsts[i] = static_cast<graph::NodeId>(rng.UniformU64(g.num_nodes()));
  }

  // Byte-identity: oracle answers vs undeadlined BFS answers, pair by
  // pair. (Undeadlined so the fallback always completes; a completed dist
  // response carries no traversal artifacts, so the bytes must match.)
  size_t mismatches = 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    const serve::QueryResponse a =
        (*oracle_engine)->Execute(bench::DistRequest(srcs[i], dsts[i], 0));
    const serve::QueryResponse b =
        (*bfs_engine)->Execute(bench::DistRequest(srcs[i], dsts[i], 0));
    if (a.json != b.json) {
      if (++mismatches <= 3) {
        std::fprintf(stderr, "MISMATCH pair (%u, %u):\n  oracle: %s\n  "
                     "bfs:    %s\n", srcs[i], dsts[i], a.json.c_str(),
                     b.json.c_str());
      }
    }
  }
  const bool byte_identical = mismatches == 0;
  if (!byte_identical) {
    std::fprintf(stderr,
                 "FAIL: %zu of %zu oracle responses differ from the BFS "
                 "fallback\n",
                 mismatches, num_pairs);
  }

  // Latency sweeps at the default deadline. The oracle must never
  // degrade; the fallback's degraded count is the contrast figure.
  std::vector<double> oracle_us, bfs_us, topk_us;
  oracle_us.reserve(num_pairs);
  bfs_us.reserve(num_pairs);
  uint64_t oracle_degraded = 0, bfs_degraded = 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    const serve::Request r = bench::DistRequest(srcs[i], dsts[i], deadline_us);
    util::SpanTimer t1;
    const serve::QueryResponse a = (*oracle_engine)->Execute(r);
    oracle_us.push_back(t1.Seconds() * 1e6);
    if (a.degraded) ++oracle_degraded;
    util::SpanTimer t2;
    const serve::QueryResponse b = (*bfs_engine)->Execute(r);
    bfs_us.push_back(t2.Seconds() * 1e6);
    if (b.degraded) ++bfs_degraded;
  }
  const uint32_t ks[] = {10, 20, 50, 100};
  topk_us.reserve(num_pairs);
  for (size_t i = 0; i < num_pairs; ++i) {
    serve::Request r;
    r.type = serve::RequestType::kTopKRank;
    r.k = ks[i % 4];
    util::SpanTimer t;
    (*oracle_engine)->Execute(r);
    topk_us.push_back(t.Seconds() * 1e6);
  }

  const bench::LatencySummary oracle_lat = bench::Summarize(oracle_us);
  const bench::LatencySummary bfs_lat = bench::Summarize(bfs_us);
  const bench::LatencySummary topk_lat = bench::Summarize(topk_us);
  const double p99_ratio =
      topk_lat.p99 > 0.0 ? oracle_lat.p99 / topk_lat.p99 : 0.0;
  const bool zero_degraded = oracle_degraded == 0;
  const bool ratio_ok = p99_ratio <= max_ratio;

  std::printf("  dist via oracle: p50 %.1fus p99 %.1fus (degraded %llu)\n",
              oracle_lat.p50, oracle_lat.p99,
              static_cast<unsigned long long>(oracle_degraded));
  std::printf("  dist via BFS:    p50 %.1fus p99 %.1fus (degraded %llu)\n",
              bfs_lat.p50, bfs_lat.p99,
              static_cast<unsigned long long>(bfs_degraded));
  std::printf("  topk (no cache): p50 %.1fus p99 %.1fus\n", topk_lat.p50,
              topk_lat.p99);
  std::printf("  p99(dist)/p99(topk) = %.2f (target <= %.1f)\n", p99_ratio,
              max_ratio);
  if (!zero_degraded) {
    std::fprintf(stderr, "FAIL: %llu degraded oracle responses at the "
                 "%lluus deadline (target: zero)\n",
                 static_cast<unsigned long long>(oracle_degraded),
                 static_cast<unsigned long long>(deadline_us));
  }
  if (!ratio_ok) {
    std::fprintf(stderr, "FAIL: p99(dist) is %.2fx p99(topk), above the "
                 "%.1fx target\n", p99_ratio, max_ratio);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %u,\n", args.num_users);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  std::fprintf(f, "  \"num_edges\": %llu,\n",
               static_cast<unsigned long long>(g.num_edges()));
  std::fprintf(f, "  \"pairs\": %zu,\n", num_pairs);
  std::fprintf(f, "  \"deadline_us\": %llu,\n",
               static_cast<unsigned long long>(deadline_us));
  bench::WriteEnvironmentJson(f);
  std::fprintf(f, "  \"build_seconds\": %.4f,\n", build_seconds);
  std::fprintf(f,
               "  \"labels\": {\"avg_out_entries\": %.2f, "
               "\"avg_in_entries\": %.2f, \"max_out_entries\": %u, "
               "\"max_in_entries\": %u, \"bytes\": %llu},\n",
               stats.avg_out_entries, stats.avg_in_entries,
               stats.max_out_entries, stats.max_in_entries,
               static_cast<unsigned long long>(stats.bytes));
  std::fprintf(f,
               "  \"dist_oracle_us\": {\"count\": %zu, \"p50\": %.2f, "
               "\"p95\": %.2f, \"p99\": %.2f, \"degraded\": %llu},\n",
               oracle_lat.count, oracle_lat.p50, oracle_lat.p95,
               oracle_lat.p99,
               static_cast<unsigned long long>(oracle_degraded));
  std::fprintf(f,
               "  \"dist_bfs_us\": {\"count\": %zu, \"p50\": %.2f, "
               "\"p95\": %.2f, \"p99\": %.2f, \"degraded\": %llu},\n",
               bfs_lat.count, bfs_lat.p50, bfs_lat.p95, bfs_lat.p99,
               static_cast<unsigned long long>(bfs_degraded));
  std::fprintf(f,
               "  \"topk_us\": {\"count\": %zu, \"p50\": %.2f, "
               "\"p95\": %.2f, \"p99\": %.2f},\n",
               topk_lat.count, topk_lat.p50, topk_lat.p95, topk_lat.p99);
  std::fprintf(f, "  \"p99_ratio_vs_topk\": %.3f,\n", p99_ratio);
  std::fprintf(f, "  \"max_ratio\": %.2f,\n", max_ratio);
  std::fprintf(f,
               "  \"checks\": {\"byte_identical\": %s, "
               "\"zero_degraded\": %s, \"ratio_ok\": %s}\n",
               byte_identical ? "true" : "false",
               zero_degraded ? "true" : "false",
               ratio_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  return (byte_identical && zero_degraded && ratio_ok) ? 0 : 1;
}

// Live-mutation bench: churn replay through the LSM delta overlay
// (src/serve/delta_overlay.h) and the live QueryEngine.
//
// Pipeline:
//   1. generate the verified network and a deterministic churn trace
//      (gen::GenerateMutationTrace — densifying, reciprocity-drifting);
//   2. round-trip the trace through the EMUT log format;
//   3. replay it through a WAL-journaled LiveGraph, measuring apply rate
//      and drift checkpoints (edge count + reciprocity over the trace),
//      then re-open the WAL to prove replay determinism;
//   4. compact and require the snapshot byte-identical to a cold rebuild
//      (GraphBuilder + SaveBinaryV2) from an independently simulated
//      final edge set;
//   5. replay a zipf request mix pinned at a mid-trace version against
//      live engines at 1/2/4/8 workers WHILE a mutator thread applies
//      the second half of the trace — responses must be byte-identical
//      across worker counts (order-sensitive FNV checksum);
//   6. CompactNow on the last engine and require those bytes identical
//      to the same cold rebuild.
//
// Any gate failing exits non-zero, which is what makes the ctest smoke
// run (label "perf") CI coverage for the mutation plane. Emits
// BENCH_mutations.json.
//
// Usage: bench_mutations [--scale=N] [--seed=S] [--mutations=M]
//                        [--requests=R] [--json=PATH]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iterator>
#include <future>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "gen/churn.h"
#include "gen/verified_network.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "serve/delta_overlay.h"
#include "serve/engine.h"
#include "serve/mutation_log.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

struct DriftPoint {
  uint64_t applied = 0;
  uint64_t edges = 0;
  double reciprocity = 0.0;
};

struct GridRun {
  int workers = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  uint64_t checksum = 0;
  uint64_t pinned_version = 0;
};

uint64_t PackEdge(graph::NodeId u, graph::NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Final edge set of base + trace, simulated with plain hash sets — a
// path through none of the overlay code, so the byte-identity gate
// compares two independent derivations of the same logical graph.
Result<graph::DiGraph> SimulateFinalGraph(
    const graph::DiGraph& base, const std::vector<serve::Mutation>& trace) {
  std::unordered_set<uint64_t> removed, added;
  for (const serve::Mutation& m : trace) {
    const uint64_t key = PackEdge(m.src, m.dst);
    if (m.op == serve::MutationOp::kFollow) {
      if (base.HasEdge(m.src, m.dst)) {
        removed.erase(key);
      } else {
        added.insert(key);
      }
    } else {
      if (base.HasEdge(m.src, m.dst)) {
        removed.insert(key);
      } else {
        added.erase(key);
      }
    }
  }
  graph::GraphBuilder builder(base.num_nodes());
  builder.Reserve(base.num_edges() + added.size());
  for (graph::NodeId u = 0; u < base.num_nodes(); ++u) {
    for (graph::NodeId v : base.OutNeighbors(u)) {
      if (removed.find(PackEdge(u, v)) == removed.end()) {
        EN_RETURN_IF_ERROR(builder.AddEdge(u, v));
      }
    }
  }
  for (uint64_t key : added) {
    EN_RETURN_IF_ERROR(builder.AddEdge(static_cast<graph::NodeId>(key >> 32),
                                       static_cast<graph::NodeId>(key)));
  }
  return builder.Build();
}

Result<std::string> Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  return bytes;
}

// Closed-loop replay of `mix` (all requests pinned at one version)
// against a live engine while `tail` mutations stream in concurrently.
GridRun RunGridPoint(const graph::DiGraph& g,
                     const std::vector<serve::Mutation>& head,
                     const std::vector<serve::Mutation>& tail,
                     const std::vector<serve::Request>& mix, int workers,
                     const std::string& compact_path,
                     serve::QueryEngine** engine_out) {
  serve::EngineOptions opts;
  opts.threads = workers;
  opts.cache_capacity = 8192;
  // The grid measures mutation/query interaction, and under this much
  // churn most nodes are touched, so pinned dist requests route to the
  // overlay-aware BFS regardless — skip the hub-label build (minutes at
  // 40k x 4 grid points) instead of paying it per worker count.
  opts.distance_oracle = false;
  serve::LiveEngineOptions live;
  live.compact_path = compact_path;
  auto engine = serve::QueryEngine::CreateLive(g, live, opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "live engine startup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  for (const serve::Mutation& m : head) {
    if (!(*engine)->Apply(m).ok()) {
      std::fprintf(stderr, "head apply failed\n");
      std::exit(1);
    }
  }

  GridRun out;
  out.workers = workers;
  out.pinned_version = (*engine)->applied_version();

  // The mutator races the replay on purpose: the gate is that pinned
  // snapshot reads never see it.
  std::thread mutator([&] {
    for (const serve::Mutation& m : tail) {
      if (!(*engine)->Apply(m).ok()) {
        std::fprintf(stderr, "tail apply failed\n");
        std::exit(1);
      }
    }
  });

  std::deque<std::future<serve::QueryResponse>> window;
  std::vector<uint64_t> hashes;
  hashes.reserve(mix.size());
  util::SpanTimer wall("bench.mutations.replay");
  for (const serve::Request& r : mix) {
    if (window.size() >= static_cast<size_t>(workers)) {
      hashes.push_back(FnvString(window.front().get().json));
      window.pop_front();
    }
    window.push_back((*engine)->Submit(r));
  }
  while (!window.empty()) {
    hashes.push_back(FnvString(window.front().get().json));
    window.pop_front();
  }
  out.wall_seconds = wall.Seconds();
  out.qps = static_cast<double>(mix.size()) / out.wall_seconds;
  mutator.join();

  uint64_t checksum = 0xcbf29ce484222325ULL;
  for (uint64_t h : hashes) checksum = FnvMix(checksum, h);
  out.checksum = checksum;

  if (engine_out != nullptr) {
    *engine_out = engine->release();
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string json_path = "BENCH_mutations.json";
  uint32_t num_mutations = 60000;
  size_t num_requests = 3000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--mutations=", 12) == 0) {
      num_mutations = static_cast<uint32_t>(std::atoll(argv[i] + 12));
    }
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      num_requests = std::strtoull(argv[i] + 11, nullptr, 10);
    }
  }

  gen::VerifiedNetworkConfig gcfg;
  gcfg.num_users = args.num_users;
  gcfg.seed = args.seed;
  auto net = gen::GenerateVerifiedNetwork(gcfg);
  if (!net.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }
  const graph::DiGraph& g = net->graph;
  std::printf("mutations bench: n=%u m=%llu mutations=%u requests=%zu\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              num_mutations, num_requests);

  // ---- 1. churn trace --------------------------------------------------
  gen::MutationTraceConfig tcfg;
  tcfg.num_mutations = num_mutations;
  tcfg.seed = args.seed ^ 0xC4B2;
  auto trace = gen::GenerateMutationTrace(g, tcfg);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace generation failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  std::vector<serve::Mutation> muts;
  muts.reserve(trace->mutations.size());
  for (const gen::EdgeMutation& em : trace->mutations) {
    muts.push_back(serve::Mutation{em.follow ? serve::MutationOp::kFollow
                                             : serve::MutationOp::kUnfollow,
                                   em.src, em.dst});
  }
  std::printf("  trace: %llu follows (%llu reciprocal) / %llu unfollows "
              "(%llu base)\n",
              static_cast<unsigned long long>(trace->follows),
              static_cast<unsigned long long>(trace->reciprocal_follows),
              static_cast<unsigned long long>(trace->unfollows),
              static_cast<unsigned long long>(trace->base_unfollows));

  // ---- 2. trace file round-trip ---------------------------------------
  const std::string trace_path = bench::CsvPath(args, "churn.emut");
  bool trace_roundtrip = false;
  if (Status s = serve::WriteMutationLog(trace_path, muts); !s.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
  } else if (auto back = serve::ReadMutationLog(trace_path); !back.ok()) {
    std::fprintf(stderr, "trace read failed: %s\n",
                 back.status().ToString().c_str());
  } else {
    trace_roundtrip = *back == muts;
  }
  if (!trace_roundtrip) {
    std::fprintf(stderr, "FAIL: EMUT trace round-trip diverged\n");
  }

  // ---- 3. WAL-journaled apply + drift ----------------------------------
  const std::string wal_path = bench::CsvPath(args, "mutations.wal");
  std::remove(wal_path.c_str());
  serve::LiveGraphOptions lopt;
  lopt.log_path = wal_path;
  auto live = serve::LiveGraph::Create(g, lopt);
  if (!live.ok()) {
    std::fprintf(stderr, "live graph startup failed: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }
  std::vector<bench::DriftPoint> drift;
  auto checkpoint = [&] {
    drift.push_back({(*live)->applied_version(), (*live)->current_edges(),
                     (*live)->current_reciprocity()});
  };
  checkpoint();
  const size_t quarter = muts.size() / 4;
  util::SpanTimer apply_timer("bench.mutations.apply");
  for (size_t i = 0; i < muts.size(); ++i) {
    if (!(*live)->Apply(muts[i]).ok()) {
      std::fprintf(stderr, "apply failed at %zu\n", i);
      return 1;
    }
    if (quarter > 0 && (i + 1) % quarter == 0) checkpoint();
  }
  const double apply_seconds = apply_timer.Seconds();
  if (drift.back().applied != muts.size()) checkpoint();
  const double apply_rate =
      static_cast<double>(muts.size()) / apply_seconds;
  const serve::OverlayStats ostats = (*live)->Stats();
  std::printf("  apply: %.0f mutations/s (%.3fs, WAL on); overlay "
              "high-water %llu rows / %llu entries\n",
              apply_rate, apply_seconds,
              static_cast<unsigned long long>(ostats.hw_rows),
              static_cast<unsigned long long>(ostats.hw_entries));
  const bool densified = drift.back().edges > drift.front().edges;
  const bool recip_drifted =
      drift.back().reciprocity > drift.front().reciprocity;
  if (!densified) std::fprintf(stderr, "FAIL: trace did not densify\n");
  if (!recip_drifted) {
    std::fprintf(stderr, "FAIL: reciprocity did not drift upward\n");
  }

  // ---- 4. compaction byte-identity vs cold rebuild ---------------------
  const std::string compact_path = bench::CsvPath(args, "compacted.eng2");
  const std::string rebuild_path = bench::CsvPath(args, "rebuilt.eng2");
  auto cstats = (*live)->Compact(compact_path);
  if (!cstats.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n",
                 cstats.status().ToString().c_str());
    return 1;
  }
  bool compact_identical = false;
  {
    auto reference = bench::SimulateFinalGraph(g, muts);
    if (!reference.ok()) {
      std::fprintf(stderr, "reference rebuild failed: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    if (Status s = graph::SaveBinaryV2(*reference, rebuild_path); !s.ok()) {
      std::fprintf(stderr, "reference write failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    auto a = bench::Slurp(compact_path);
    auto b = bench::Slurp(rebuild_path);
    compact_identical = a.ok() && b.ok() && *a == *b;
    std::printf("  compaction: %llu edges in %.3fs, %s cold rebuild "
                "(%zu bytes)\n",
                static_cast<unsigned long long>(cstats->num_edges),
                cstats->seconds,
                compact_identical ? "byte-identical to" : "DIVERGES from",
                a.ok() ? a->size() : 0);
  }
  if (!compact_identical) {
    std::fprintf(stderr,
                 "FAIL: compacted snapshot != cold rebuild bytes\n");
  }

  // WAL replay determinism: destroy the live graph (flushing its WAL
  // writer), then a fresh LiveGraph over the same base + log must land
  // on the same head state. Compaction above did not touch the WAL.
  const uint64_t expect_applied = (*live)->applied_version();
  const uint64_t expect_edges = (*live)->current_edges();
  (*live).reset();
  bool wal_replay_ok = false;
  if (auto replayed = serve::LiveGraph::Create(g, lopt); replayed.ok()) {
    wal_replay_ok = (*replayed)->recovered() == muts.size() &&
                    (*replayed)->applied_version() == expect_applied &&
                    (*replayed)->current_edges() == expect_edges;
  }
  if (!wal_replay_ok) {
    std::fprintf(stderr, "FAIL: WAL replay diverged from the live state\n");
  }

  // ---- 5. concurrent QPS grid, pinned-version byte-identity ------------
  const std::vector<serve::Mutation> head(muts.begin(),
                                          muts.begin() + muts.size() / 2);
  const std::vector<serve::Mutation> tail(muts.begin() + muts.size() / 2,
                                          muts.end());
  std::vector<serve::Request> mix = bench::MakeServeRequestMix(
      g, num_requests, 1.1, args.seed ^ 0x11FE);
  for (serve::Request& r : mix) {
    r.version = head.size();  // pin every read at the mid-trace version
  }
  const std::string engine_compact_path =
      bench::CsvPath(args, "compacted_engine.eng2");
  std::vector<bench::GridRun> grid;
  serve::QueryEngine* last_engine = nullptr;
  for (size_t t = 0; t < std::size(bench::kWorkerCounts); ++t) {
    const bool last = t + 1 == std::size(bench::kWorkerCounts);
    grid.push_back(bench::RunGridPoint(g, head, tail, mix,
                                       bench::kWorkerCounts[t],
                                       engine_compact_path,
                                       last ? &last_engine : nullptr));
    const bench::GridRun& r = grid.back();
    std::printf("  workers=%d  qps=%9.0f under churn  wall=%6.3fs  "
                "checksum=%016llx (pinned @v%llu)\n",
                r.workers, r.qps, r.wall_seconds,
                static_cast<unsigned long long>(r.checksum),
                static_cast<unsigned long long>(r.pinned_version));
  }
  bool grid_identical = true;
  for (const bench::GridRun& r : grid) {
    if (r.checksum != grid[0].checksum) grid_identical = false;
  }
  if (!grid_identical) {
    std::fprintf(stderr,
                 "FAIL: pinned-version responses differ across worker "
                 "counts\n");
  }

  // ---- 6. engine-level compaction byte-identity ------------------------
  bool engine_compact_identical = false;
  if (last_engine != nullptr) {
    auto ecs = last_engine->CompactNow();
    if (!ecs.ok()) {
      std::fprintf(stderr, "engine compaction failed: %s\n",
                   ecs.status().ToString().c_str());
    } else {
      auto a = bench::Slurp(engine_compact_path);
      auto b = bench::Slurp(rebuild_path);
      engine_compact_identical = a.ok() && b.ok() && *a == *b;
    }
    delete last_engine;
  }
  if (!engine_compact_identical) {
    std::fprintf(stderr,
                 "FAIL: engine CompactNow bytes != cold rebuild\n");
  }

  // ---- JSON artifact ---------------------------------------------------
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %u,\n", args.num_users);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  std::fprintf(f, "  \"base_edges\": %llu,\n",
               static_cast<unsigned long long>(g.num_edges()));
  std::fprintf(f, "  \"mutations\": %zu,\n", muts.size());
  std::fprintf(f, "  \"requests\": %zu,\n", mix.size());
  bench::WriteEnvironmentJson(f);
  std::fprintf(f,
               "  \"trace\": {\"follows\": %llu, \"unfollows\": %llu, "
               "\"reciprocal_follows\": %llu, \"base_unfollows\": %llu, "
               "\"roundtrip_ok\": %s},\n",
               static_cast<unsigned long long>(trace->follows),
               static_cast<unsigned long long>(trace->unfollows),
               static_cast<unsigned long long>(trace->reciprocal_follows),
               static_cast<unsigned long long>(trace->base_unfollows),
               trace_roundtrip ? "true" : "false");
  std::fprintf(f,
               "  \"apply\": {\"rate_per_sec\": %.0f, \"seconds\": %.4f, "
               "\"wal\": true, \"hw_rows\": %llu, \"hw_entries\": %llu, "
               "\"tombstones\": %llu, \"overlay_adds\": %llu, "
               "\"replay_deterministic\": %s},\n",
               apply_rate, apply_seconds,
               static_cast<unsigned long long>(ostats.hw_rows),
               static_cast<unsigned long long>(ostats.hw_entries),
               static_cast<unsigned long long>(ostats.tombstones),
               static_cast<unsigned long long>(ostats.overlay_adds),
               wal_replay_ok ? "true" : "false");
  std::fprintf(f, "  \"drift\": [\n");
  for (size_t i = 0; i < drift.size(); ++i) {
    std::fprintf(f,
                 "    {\"applied\": %llu, \"edges\": %llu, "
                 "\"reciprocity\": %.6f}%s\n",
                 static_cast<unsigned long long>(drift[i].applied),
                 static_cast<unsigned long long>(drift[i].edges),
                 drift[i].reciprocity, i + 1 < drift.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"densified\": %s,\n  \"reciprocity_drifted\": %s,\n",
               densified ? "true" : "false",
               recip_drifted ? "true" : "false");
  std::fprintf(f,
               "  \"compaction\": {\"edges\": %llu, \"seconds\": %.4f, "
               "\"tail_replayed\": %llu, \"byte_identical\": %s, "
               "\"engine_byte_identical\": %s},\n",
               static_cast<unsigned long long>(cstats->num_edges),
               cstats->seconds,
               static_cast<unsigned long long>(cstats->tail_replayed),
               compact_identical ? "true" : "false",
               engine_compact_identical ? "true" : "false");
  std::fprintf(f, "  \"grid\": [\n");
  for (size_t i = 0; i < grid.size(); ++i) {
    const bench::GridRun& r = grid[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"qps\": %.1f, \"wall_seconds\": "
                 "%.4f, \"pinned_version\": %llu, \"checksum\": "
                 "\"%016llx\"}%s\n",
                 r.workers, r.qps, r.wall_seconds,
                 static_cast<unsigned long long>(r.pinned_version),
                 static_cast<unsigned long long>(r.checksum),
                 i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"checksums_identical\": %s\n",
               grid_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  const bool ok = trace_roundtrip && densified && recip_drifted &&
                  wal_replay_ok && compact_identical && grid_identical &&
                  engine_compact_identical;
  if (!ok) return 1;
  std::printf("all mutation gates passed\n");
  return 0;
}

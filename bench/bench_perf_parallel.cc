// Wall-clock scaling of the parallel kernels at 1/2/4/8 worker threads,
// with a cross-thread-count equality audit (the determinism contract says
// every kernel is bit-identical for any thread count). Emits
// BENCH_parallel.json with per-kernel seconds, speedups, and the
// scheduler's metrics snapshot (per-thread chunks claimed and busy
// fractions) for each thread count.
//
// Usage: bench_perf_parallel [--scale=N] [--seed=S] [--json=PATH]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/centrality.h"
#include "analysis/clustering.h"
#include "analysis/degree.h"
#include "analysis/distance.h"
#include "bench_common.h"
#include "gen/verified_network.h"
#include "stats/powerlaw.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr size_t kNumThreadCounts = 4;

struct KernelResult {
  std::string name;
  double seconds[kNumThreadCounts] = {0, 0, 0, 0};
  bool identical = true;  // outputs matched the 1-thread run bit for bit
};

// Scheduler metrics for one thread-count run, pulled from the registry
// snapshot after the kernels finish.
struct SchedulerMetrics {
  uint64_t for_calls = 0;
  uint64_t chunks_claimed = 0;
  std::vector<uint64_t> thread_chunks;   // indexed by pool slot
  std::vector<uint64_t> thread_busy_ns;  // indexed by pool slot
};

SchedulerMetrics CollectSchedulerMetrics(int threads) {
  const util::MetricsSnapshot snap = util::MetricsRegistry::Global().Snapshot();
  SchedulerMetrics m;
  m.for_calls = static_cast<uint64_t>(snap.CounterOr0("parallel.for_calls"));
  m.chunks_claimed =
      static_cast<uint64_t>(snap.CounterOr0("parallel.chunks_claimed"));
  for (int slot = 0; slot < threads; ++slot) {
    const std::string prefix = "parallel.thread." + std::to_string(slot);
    m.thread_chunks.push_back(
        static_cast<uint64_t>(snap.CounterOr0(prefix + ".chunks")));
    m.thread_busy_ns.push_back(
        static_cast<uint64_t>(snap.CounterOr0(prefix + ".busy_ns")));
  }
  return m;
}

// One measured run of every kernel at the current global thread count.
// Returns the per-kernel times and fills `signature` with a value-summary
// of each kernel's output for the equality audit.
std::vector<double> RunKernels(const BenchArgs& args,
                               std::vector<std::vector<double>>* signature) {
  std::vector<double> seconds;
  signature->clear();
  util::SpanTimer sw;

  // generate
  gen::VerifiedNetworkConfig gcfg;
  gcfg.num_users = args.num_users;
  gcfg.seed = args.seed;
  sw.Reset();
  auto net = gen::GenerateVerifiedNetwork(gcfg);
  seconds.push_back(sw.Seconds());
  if (!net.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 net.status().ToString().c_str());
    std::exit(1);
  }
  const graph::DiGraph& g = net->graph;
  signature->push_back({static_cast<double>(g.num_edges()),
                        static_cast<double>(g.OutDegree(0)),
                        net->popularity[1]});

  // pagerank
  sw.Reset();
  const auto pr = analysis::PageRank(g, {});
  seconds.push_back(sw.Seconds());
  signature->push_back(
      {pr.ok() ? pr->scores[0] : -1.0,
       pr.ok() ? pr->scores[g.num_nodes() / 2] : -1.0,
       pr.ok() ? static_cast<double>(pr->iterations) : -1.0});

  // betweenness
  analysis::BetweennessOptions bw;
  bw.pivots = 256;
  bw.seed = args.seed ^ 0xB37;
  sw.Reset();
  const auto bc = analysis::Betweenness(g, bw);
  seconds.push_back(sw.Seconds());
  double bc_sum = 0.0, bc_max = 0.0;
  if (bc.ok()) {
    for (double x : *bc) {
      bc_sum += x;
      if (x > bc_max) bc_max = x;
    }
  }
  signature->push_back({bc_sum, bc_max});

  // bfs distances
  sw.Reset();
  util::Rng drng(args.seed ^ 0xD157);
  const auto dist = analysis::SampleDistances(g, 64, &drng);
  seconds.push_back(sw.Seconds());
  signature->push_back({dist.mean_distance,
                        static_cast<double>(dist.reachable_pairs),
                        static_cast<double>(dist.diameter_lower_bound)});

  // clustering
  sw.Reset();
  util::Rng crng(args.seed ^ 0xC105);
  const auto clus = analysis::ComputeClusteringSampled(g, 12000, &crng);
  seconds.push_back(sw.Seconds());
  signature->push_back({clus.average_local,
                        static_cast<double>(clus.nodes_evaluated)});

  // bootstrap
  std::vector<double> degrees = analysis::OutDegreeVector(g);
  std::vector<double> positive;
  for (double d : degrees) {
    if (d > 0.0) positive.push_back(d);
  }
  const auto fit = stats::FitDiscrete(positive);
  double boot_sec = 0.0;
  std::vector<double> boot_sig = {-1.0, -1.0};
  if (fit.ok()) {
    sw.Reset();
    util::Rng brng(args.seed ^ 0xD15C0);
    const auto gof = stats::BootstrapGoodness(positive, *fit, 30, &brng);
    boot_sec = sw.Seconds();
    if (gof.ok()) {
      boot_sig = {gof->p_value, static_cast<double>(gof->replicates)};
    }
  }
  seconds.push_back(boot_sec);
  signature->push_back(boot_sig);

  return seconds;
}

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string json_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const char* names[] = {"generate", "pagerank",   "betweenness",
                         "bfs",      "clustering", "bootstrap"};
  constexpr size_t kNumKernels = 6;
  std::vector<bench::KernelResult> results(kNumKernels);
  for (size_t k = 0; k < kNumKernels; ++k) results[k].name = names[k];

  std::printf("parallel kernel scaling at n=%u (hardware_concurrency=%u)\n",
              args.num_users, std::thread::hardware_concurrency());
  std::vector<std::vector<double>> baseline_sig;
  std::vector<bench::SchedulerMetrics> sched(bench::kNumThreadCounts);
  // Metrics observe the scheduler without perturbing results — the
  // identical-output audit below doubles as a check of that claim.
  util::SetMetricsEnabled(true);
  for (size_t t = 0; t < bench::kNumThreadCounts; ++t) {
    const int threads = bench::kThreadCounts[t];
    util::SetThreadCount(threads);
    util::MetricsRegistry::Global().ResetValues();
    std::vector<std::vector<double>> sig;
    const std::vector<double> secs = bench::RunKernels(args, &sig);
    sched[t] = bench::CollectSchedulerMetrics(threads);
    if (t == 0) {
      baseline_sig = sig;
    }
    for (size_t k = 0; k < kNumKernels; ++k) {
      results[k].seconds[t] = secs[k];
      if (sig[k] != baseline_sig[k]) results[k].identical = false;
      std::printf("  threads=%d %-12s %8.3fs  speedup=%.2fx%s\n", threads,
                  names[k], secs[k],
                  secs[k] > 0.0 ? results[k].seconds[0] / secs[k] : 0.0,
                  sig[k] == baseline_sig[k] ? "" : "  MISMATCH");
    }
  }
  util::SetMetricsEnabled(false);
  util::SetThreadCount(0);

  double total_1 = 0.0, total_4 = 0.0;
  bool all_identical = true;
  for (const bench::KernelResult& r : results) {
    total_1 += r.seconds[0];
    total_4 += r.seconds[2];
    all_identical = all_identical && r.identical;
  }
  const double aggregate_speedup_4 = total_4 > 0.0 ? total_1 / total_4 : 0.0;
  std::printf("aggregate: 1-thread %.3fs, 4-thread %.3fs, speedup %.2fx; "
              "outputs identical across thread counts: %s\n",
              total_1, total_4, aggregate_speedup_4,
              all_identical ? "yes" : "NO");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %u,\n", args.num_users);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  bench::WriteEnvironmentJson(f);
  std::fprintf(f, "  \"thread_counts\": [1, 2, 4, 8],\n");
  std::fprintf(f, "  \"kernels\": {\n");
  for (size_t k = 0; k < kNumKernels; ++k) {
    const bench::KernelResult& r = results[k];
    std::fprintf(f,
                 "    \"%s\": {\"seconds\": [%.4f, %.4f, %.4f, %.4f], "
                 "\"speedup_4t\": %.3f, \"identical\": %s}%s\n",
                 r.name.c_str(), r.seconds[0], r.seconds[1], r.seconds[2],
                 r.seconds[3],
                 r.seconds[2] > 0.0 ? r.seconds[0] / r.seconds[2] : 0.0,
                 r.identical ? "true" : "false",
                 k + 1 < kNumKernels ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"scheduler\": {\n");
  for (size_t t = 0; t < bench::kNumThreadCounts; ++t) {
    const bench::SchedulerMetrics& m = sched[t];
    uint64_t busy_total = 0;
    for (uint64_t b : m.thread_busy_ns) busy_total += b;
    std::fprintf(f,
                 "    \"%d\": {\"for_calls\": %llu, \"chunks_claimed\": "
                 "%llu, \"threads\": [",
                 bench::kThreadCounts[t],
                 static_cast<unsigned long long>(m.for_calls),
                 static_cast<unsigned long long>(m.chunks_claimed));
    for (size_t s = 0; s < m.thread_chunks.size(); ++s) {
      const double busy_fraction =
          busy_total > 0
              ? static_cast<double>(m.thread_busy_ns[s]) /
                    static_cast<double>(busy_total)
              : 0.0;
      std::fprintf(f,
                   "%s{\"chunks\": %llu, \"busy_ns\": %llu, "
                   "\"busy_fraction\": %.4f}",
                   s > 0 ? ", " : "",
                   static_cast<unsigned long long>(m.thread_chunks[s]),
                   static_cast<unsigned long long>(m.thread_busy_ns[s]),
                   busy_fraction);
    }
    std::fprintf(f, "]}%s\n",
                 t + 1 < bench::kNumThreadCounts ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"aggregate_speedup_4t\": %.3f,\n", aggregate_speedup_4);
  std::fprintf(f, "  \"outputs_identical\": %s\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return all_identical ? 0 : 2;
}

// Shared plumbing for the figure/table reproduction benches: scale
// parsing, study construction, CSV output location, and the
// paper-vs-measured comparison printer.

#ifndef ELITENET_BENCH_BENCH_COMMON_H_
#define ELITENET_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/study.h"
#include "graph/digraph.h"
#include "serve/request.h"

namespace elitenet {
namespace bench {

struct BenchArgs {
  /// Number of users to generate. Default 40,000; `--scale=full` selects
  /// the paper's 231,246, `--scale=<n>` any custom size.
  uint32_t num_users = 40000;
  uint64_t seed = 2018;
  /// Where CSV artifacts are written (`--out=DIR`), default
  /// "bench_out".
  std::string out_dir = "bench_out";
  /// Worker threads for the parallel kernels (`--threads=N`). 0 = auto
  /// (ELITENET_THREADS env, else hardware_concurrency). Results are
  /// bit-identical for any value.
  int threads = 0;
  /// Chrome trace-event output (`--trace=FILE`); empty = tracing off.
  std::string trace_path;
  /// Metrics snapshot output (`--metrics=FILE`); empty = metrics off.
  std::string metrics_path;
};

/// Parses --scale= / --seed= / --out= / --threads= / --trace= / --metrics=
/// flags; ignores unknown flags so binaries stay runnable under generic
/// runners.
BenchArgs ParseArgs(int argc, char** argv);

/// Study configuration at the requested scale with bench-grade analysis
/// settings (deeper than quickstart, still minutes not hours).
core::StudyConfig MakeStudyConfig(const BenchArgs& args);

/// Generates the study, printing timing. Aborts the process with a
/// message on failure (benches have no meaningful recovery path).
core::VerifiedStudy MakeStudy(const BenchArgs& args);

/// Ensures the output directory exists; returns out_dir + "/" + name.
std::string CsvPath(const BenchArgs& args, const std::string& name);

/// Writes the execution-environment fields every BENCH_*.json carries —
/// hardware_concurrency, effective threads, peak_rss_bytes (process
/// high-water mark at write time) and resident_delta_bytes (RSS growth
/// since ParseArgs) — so a result read in isolation says what
/// parallelism *and* memory footprint produced it (a 1x speedup on a
/// single-core container is expected, not a regression; a bench whose
/// residency doubles is one even when its latency holds). Call inside an
/// open JSON object, two-space indent, comma included.
void WriteEnvironmentJson(std::FILE* f);

/// Process peak RSS (VmHWM) in bytes; 0 where unmeasurable. Thin wrapper
/// over util::PeakRssBytes so benches get the number without a util/rss.h
/// include.
uint64_t PeakRssBytes();

/// One FNV-1a step folding `x` into hash state `h` — the order-sensitive
/// combiner the serving benches use for response checksums.
uint64_t FnvMix(uint64_t h, uint64_t x);

/// FNV-1a over a byte string.
uint64_t FnvString(const std::string& s);

/// Deterministic zipf-skewed serving workload: per-user lookups (ego,
/// neighbors) concentrated on the highest-degree hubs, rarer whole-graph
/// queries (topk, dist, fingerprint) — verification-style traffic. The
/// same (graph, count, zipf_s, seed) always yields the same mix, which
/// is what makes replay checksums comparable across engines and
/// telemetry settings.
std::vector<serve::Request> MakeServeRequestMix(const graph::DiGraph& g,
                                                size_t count, double zipf_s,
                                                uint64_t seed);

/// Relative deviation |measured - paper| / |paper|.
double RelDev(double measured, double paper);

/// Prints one comparison row and returns whether the shape band holds.
bool Compare(const std::string& metric, double paper, double measured,
             double rel_tolerance);

}  // namespace bench
}  // namespace elitenet

#endif  // ELITENET_BENCH_BENCH_COMMON_H_

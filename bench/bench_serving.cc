// Closed-loop load bench for the serving layer (src/serve/).
//
// Generates the verified network, builds one QueryEngine per worker-thread
// count in {1, 2, 4, 8}, and replays the *same* deterministic zipf-skewed
// request mix against each — per-user lookups concentrated on the hubs,
// the way verification-style traffic concentrates on celebrities. The
// replay is closed-loop: at most `threads` requests are in flight, so
// latencies measure service time, not queue depth.
//
// Emits BENCH_serving.json with QPS, wall time, cache hit-rate, and
// p50/p95/p99 latency per query type at every thread count, plus a
// cache-efficacy microbench (top-k miss path vs hit path). Two hard
// assertions make it a correctness harness as well as a bench:
//   * responses are byte-identical across all thread counts (order-
//     sensitive FNV checksum over the JSON bytes, request by request);
//   * the top-k hit path is at least 5x faster than the miss path.
// Either failing exits non-zero, which is how the ctest smoke run
// (label "perf") turns load-testing into CI coverage.
//
// Usage: bench_serving [--scale=N] [--seed=S] [--requests=R]
//                      [--zipf=EXPONENT] [--json=PATH]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/verified_network.h"
#include "serve/engine.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr size_t kNumThreadCounts = 4;
constexpr size_t kNumTypes = 5;  // matches serve::RequestType values

// FnvMix / FnvString / the zipf request-mix builder live in bench_common
// so the observability serving bench replays the identical workload.

struct TypeLatencies {
  std::vector<double> micros;

  double Percentile(double q) const {
    if (micros.empty()) return 0.0;
    std::vector<double> sorted = micros;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::min(sorted.size() - 1, idx == 0 ? 0 : idx - 1)];
  }
};

struct RunResult {
  int threads = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double warmup_seconds = 0.0;
  uint64_t checksum = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t degraded = 0;
  TypeLatencies latency[kNumTypes];
};

// Replays `mix` closed-loop: a window of `threads` requests in flight,
// reaped in submission order so the checksum (and every latency sample's
// index) is independent of scheduling.
RunResult RunClosedLoop(const graph::DiGraph& g,
                        const std::vector<serve::Request>& mix, int threads) {
  serve::EngineOptions opts;
  opts.threads = threads;
  opts.cache_capacity = 8192;
  auto engine = serve::QueryEngine::Create(g, opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine startup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }

  RunResult out;
  out.threads = threads;
  out.warmup_seconds = (*engine)->warmup_seconds();

  struct InFlight {
    size_t index;
    std::chrono::steady_clock::time_point submitted;
    std::future<serve::QueryResponse> future;
  };
  std::deque<InFlight> window;
  uint64_t checksum = 0xcbf29ce484222325ULL;
  size_t next_to_hash = 0;
  std::vector<uint64_t> hashes(mix.size(), 0);

  auto reap = [&](InFlight& f) {
    const serve::QueryResponse resp = f.future.get();
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - f.submitted)
            .count();
    out.latency[static_cast<size_t>(mix[f.index].type)].micros.push_back(us);
    if (resp.degraded) ++out.degraded;
    hashes[f.index] = FnvString(resp.json);
  };

  util::SpanTimer wall("bench.serving.replay");
  for (size_t i = 0; i < mix.size(); ++i) {
    if (window.size() >= static_cast<size_t>(threads)) {
      reap(window.front());
      window.pop_front();
    }
    window.push_back(
        {i, std::chrono::steady_clock::now(), (*engine)->Submit(mix[i])});
  }
  while (!window.empty()) {
    reap(window.front());
    window.pop_front();
  }
  out.wall_seconds = wall.Seconds();
  out.qps = static_cast<double>(mix.size()) / out.wall_seconds;
  for (; next_to_hash < mix.size(); ++next_to_hash) {
    checksum = FnvMix(checksum, hashes[next_to_hash]);
  }
  out.checksum = checksum;
  out.cache_hits = (*engine)->cache_hits();
  out.cache_misses = (*engine)->cache_misses();
  return out;
}

// Cache-efficacy microbench: top-k misses (fresh k per call) vs hits
// (same k re-asked). Median over `samples` calls each.
struct CacheEfficacy {
  double miss_p50_us = 0.0;
  double hit_p50_us = 0.0;
  double speedup = 0.0;
  uint32_t k = 0;
  size_t samples = 0;
};

CacheEfficacy MeasureTopKCache(const graph::DiGraph& g, size_t samples) {
  serve::EngineOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 8192;
  auto engine = serve::QueryEngine::Create(g, opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine startup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }

  CacheEfficacy out;
  out.samples = samples;
  // Big enough that the miss path formats hundreds of rows; still below
  // any graph the bench generates.
  const uint32_t k_base = std::min<uint32_t>(200, g.num_nodes() / 2 + 1);
  out.k = k_base;

  auto timed = [&](const serve::Request& r) {
    util::SpanTimer t;
    const serve::QueryResponse resp = (*engine)->Execute(r);
    const double us = t.Seconds() * 1e6;
    if (!resp.ok) {
      std::fprintf(stderr, "topk failed: %s\n", resp.json.c_str());
      std::exit(1);
    }
    return us;
  };

  std::vector<double> miss, hit;
  for (size_t i = 0; i < samples; ++i) {
    serve::Request r;
    r.type = serve::RequestType::kTopKRank;
    r.k = k_base + static_cast<uint32_t>(i);  // distinct key: always a miss
    miss.push_back(timed(r));
  }
  serve::Request hot;
  hot.type = serve::RequestType::kTopKRank;
  hot.k = k_base;
  (void)timed(hot);  // ensure resident
  for (size_t i = 0; i < samples; ++i) hit.push_back(timed(hot));

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  out.miss_p50_us = median(std::move(miss));
  out.hit_p50_us = median(std::move(hit));
  out.speedup = out.hit_p50_us > 0.0 ? out.miss_p50_us / out.hit_p50_us : 0.0;
  return out;
}

const char* kTypeNames[kNumTypes] = {"ego", "topk", "dist", "neighbors",
                                     "fingerprint"};

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string json_path = "BENCH_serving.json";
  size_t num_requests = 12000;
  double zipf_s = 1.1;
  size_t cache_samples = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      num_requests = std::strtoull(argv[i] + 11, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--zipf=", 7) == 0) {
      zipf_s = std::strtod(argv[i] + 7, nullptr);
    }
  }

  gen::VerifiedNetworkConfig gcfg;
  gcfg.num_users = args.num_users;
  gcfg.seed = args.seed;
  auto net = gen::GenerateVerifiedNetwork(gcfg);
  if (!net.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }
  const graph::DiGraph& g = net->graph;
  std::printf("serving bench: n=%u m=%llu requests=%zu zipf=%.2f "
              "(hardware_concurrency=%u)\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              num_requests, zipf_s, std::thread::hardware_concurrency());

  const std::vector<serve::Request> mix =
      bench::MakeServeRequestMix(g, num_requests, zipf_s, args.seed ^ 0x5E47E);

  std::vector<bench::RunResult> runs;
  for (size_t t = 0; t < bench::kNumThreadCounts; ++t) {
    runs.push_back(bench::RunClosedLoop(g, mix, bench::kThreadCounts[t]));
    const bench::RunResult& r = runs.back();
    const double hit_rate =
        r.cache_hits + r.cache_misses > 0
            ? static_cast<double>(r.cache_hits) /
                  static_cast<double>(r.cache_hits + r.cache_misses)
            : 0.0;
    std::printf("  threads=%d  qps=%9.0f  wall=%6.3fs  hit_rate=%.3f  "
                "checksum=%016llx\n",
                r.threads, r.qps, r.wall_seconds, hit_rate,
                static_cast<unsigned long long>(r.checksum));
  }

  bool checksums_identical = true;
  for (const bench::RunResult& r : runs) {
    if (r.checksum != runs[0].checksum) checksums_identical = false;
  }
  if (!checksums_identical) {
    std::fprintf(stderr,
                 "FAIL: responses are not byte-identical across thread "
                 "counts\n");
  }

  const bench::CacheEfficacy cache =
      bench::MeasureTopKCache(g, cache_samples);
  std::printf("  topk cache: miss p50 %.1fus, hit p50 %.1fus, %.1fx\n",
              cache.miss_p50_us, cache.hit_p50_us, cache.speedup);
  const bool cache_fast_enough = cache.speedup >= 5.0;
  if (!cache_fast_enough) {
    std::fprintf(stderr,
                 "FAIL: top-k cache hit path only %.1fx faster than the "
                 "miss path (need >= 5x)\n",
                 cache.speedup);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %u,\n", args.num_users);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  std::fprintf(f, "  \"num_edges\": %llu,\n",
               static_cast<unsigned long long>(g.num_edges()));
  std::fprintf(f, "  \"requests\": %zu,\n", mix.size());
  std::fprintf(f, "  \"zipf_exponent\": %.3f,\n", zipf_s);
  bench::WriteEnvironmentJson(f);
  std::fprintf(f, "  \"grid\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const bench::RunResult& r = runs[i];
    const uint64_t lookups = r.cache_hits + r.cache_misses;
    std::fprintf(f, "    {\"threads\": %d, \"qps\": %.1f, "
                 "\"wall_seconds\": %.4f, \"warmup_seconds\": %.3f,\n",
                 r.threads, r.qps, r.wall_seconds, r.warmup_seconds);
    std::fprintf(f, "     \"cache_hits\": %llu, \"cache_misses\": %llu, "
                 "\"cache_hit_rate\": %.4f, \"degraded\": %llu,\n",
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses),
                 lookups > 0 ? static_cast<double>(r.cache_hits) /
                                   static_cast<double>(lookups)
                             : 0.0,
                 static_cast<unsigned long long>(r.degraded));
    std::fprintf(f, "     \"checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(r.checksum));
    std::fprintf(f, "     \"latency_us\": {");
    for (size_t t = 0; t < bench::kNumTypes; ++t) {
      const bench::TypeLatencies& lat = r.latency[t];
      std::fprintf(f,
                   "%s\"%s\": {\"count\": %zu, \"p50\": %.1f, "
                   "\"p95\": %.1f, \"p99\": %.1f}",
                   t == 0 ? "" : ", ", bench::kTypeNames[t],
                   lat.micros.size(), lat.Percentile(0.50),
                   lat.Percentile(0.95), lat.Percentile(0.99));
    }
    std::fprintf(f, "}}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"checksums_identical\": %s,\n",
               checksums_identical ? "true" : "false");
  std::fprintf(f,
               "  \"topk_cache\": {\"k\": %u, \"samples\": %zu, "
               "\"miss_p50_us\": %.2f, \"hit_p50_us\": %.2f, "
               "\"speedup\": %.2f, \"meets_5x\": %s}\n",
               cache.k, cache.samples, cache.miss_p50_us, cache.hit_p50_us,
               cache.speedup, cache_fast_enough ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  return (checksums_identical && cache_fast_enough) ? 0 : 1;
}

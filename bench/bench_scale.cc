// Out-of-core scale bench: generate -> convert -> serve at sizes whose
// edge list does not fit the memory the in-memory pipeline would need,
// with the residency *asserted*, not eyeballed. Three phases, each with
// its own peak-RSS attribution (util::ResetPeakRss between phases):
//
//   verify    at a CI-sized N, the streamed pipeline's snapshot is
//             byte-compared against SaveBinaryV2 of the in-memory
//             generator — the identity the out-of-core path promises;
//   generate  GenerateVerifiedNetworkToSnapshot at --scale under
//             --budget-mb, peak RSS asserted below a ceiling derived
//             from O(n) state + 2 sort budgets — far below the
//             in-memory pipeline's edge-dominated footprint;
//   serve     the snapshot is mmapped and a QueryEngine replays a zipf
//             request mix against it (mapped pages are file-backed, so
//             this phase's ceiling adds the snapshot size).
//
// The 10M-node run uses a sparser config than the paper's density
// (mean degree ~8, modest superfollower) so the *edge volume* is what
// scales; the default --scale smoke keeps the same proportions.
// Emits BENCH_scale.json.
//
//   ./build/bench/bench_scale [--scale=N] [--budget-mb=N]
//       [--rss-limit-mb=N] [--verify-scale=N] [--requests=N] [--json=PATH]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dataset.h"
#include "gen/verified_network.h"
#include "graph/io.h"
#include "serve/engine.h"
#include "util/parallel.h"
#include "util/rss.h"
#include "util/table.h"
#include "util/trace.h"

namespace {

using namespace elitenet;

// Sparse-at-scale network config: the paper's density is quadratic in n,
// so at 10M nodes it would mean ~150G edges. Scale runs hold mean degree
// ~16 instead (edge volume linear in n — 160M edges at 10M nodes, an
// edge list alone bigger than the whole asserted RSS ceiling) and shrink
// the superfollower to 2% of the network — still a 200k-out-degree
// outlier at 10M.
gen::VerifiedNetworkConfig ScaleConfig(uint32_t n, uint64_t seed) {
  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = n;
  cfg.seed = seed;
  cfg.density = 16.0 / static_cast<double>(n);
  cfg.superfollower_fraction = 0.02;
  cfg.xmin_over_mean = 3.0;
  return cfg;
}

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f.good() ? static_cast<uint64_t>(f.tellg()) : 0;
}

double Mib(uint64_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  uint64_t budget_mb = 64;
  uint64_t rss_limit_mb = 0;  // 0 = derive from scale + budget
  uint32_t verify_scale = 6000;
  size_t requests = 2000;
  std::string json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budget-mb=", 12) == 0) {
      budget_mb = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--rss-limit-mb=", 15) == 0) {
      rss_limit_mb = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--verify-scale=", 15) == 0) {
      verify_scale = static_cast<uint32_t>(std::atoi(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  if (args.threads > 0) util::SetThreadCount(args.threads);
  const std::string out_dir = args.out_dir;
  const std::string snapshot = bench::CsvPath(args, "scale_graph.eng2");
  const uint64_t budget_bytes = budget_mb << 20;

  // ---- Phase 0: byte-identity at CI size --------------------------------
  // Streamed pipeline vs in-memory generator + SaveBinaryV2, at a budget
  // tiny enough to force spill runs. This is the correctness gate that
  // makes the RSS numbers below meaningful: bounded memory is only
  // interesting if the bytes are the same ones.
  bool identical = true;
  uint64_t verify_edges = 0;
  size_t verify_runs = 0;
  if (verify_scale > 0) {
    const gen::VerifiedNetworkConfig vcfg = ScaleConfig(verify_scale, args.seed);
    const std::string mem_path = bench::CsvPath(args, "scale_verify_mem.eng2");
    const std::string str_path = bench::CsvPath(args, "scale_verify_str.eng2");
    auto mem = gen::GenerateVerifiedNetwork(vcfg);
    if (!mem.ok()) {
      std::fprintf(stderr, "verify generate failed: %s\n",
                   mem.status().ToString().c_str());
      return 1;
    }
    if (const Status s = graph::SaveBinaryV2(mem->graph, mem_path); !s.ok()) {
      std::fprintf(stderr, "verify save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    gen::StreamedGenerateOptions vopt;
    vopt.sort_budget_bytes = 128 << 10;  // 16k-record runs: forces spills
    vopt.window_sources = 512;
    auto streamed = gen::GenerateVerifiedNetworkToSnapshot(vcfg, str_path, vopt);
    if (!streamed.ok()) {
      std::fprintf(stderr, "verify streamed failed: %s\n",
                   streamed.status().ToString().c_str());
      return 1;
    }
    verify_edges = streamed->write.num_edges;
    verify_runs = streamed->write.forward_spill_runs;
    const std::string a = Slurp(mem_path), b = Slurp(str_path);
    identical = !a.empty() && a == b;
    std::printf("verify: n=%u m=%llu spill_runs=%zu streamed %s in-memory\n",
                verify_scale, static_cast<unsigned long long>(verify_edges),
                verify_runs, identical ? "==" : "DIFFERS FROM");
    std::remove(mem_path.c_str());
    std::remove(str_path.c_str());
    if (!identical) return 2;
  }

  // ---- Phase 1: streamed generate + convert at scale --------------------
  const gen::VerifiedNetworkConfig cfg = ScaleConfig(args.num_users, args.seed);
  util::ResetPeakRss();
  util::SpanTimer gen_timer("bench.scale.generate");
  gen::StreamedGenerateOptions opt;
  opt.sort_budget_bytes = budget_bytes;
  auto net = gen::GenerateVerifiedNetworkToSnapshot(cfg, snapshot, opt);
  const double generate_seconds = gen_timer.Seconds();
  if (!net.ok()) {
    std::fprintf(stderr, "streamed generation failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }
  const uint64_t generate_peak = util::PeakRssBytes();
  const uint64_t m = net->write.num_edges;
  const uint64_t snapshot_bytes = FileBytes(snapshot);

  // The ceiling: O(n) generator/writer state (roles, popularity, degree
  // sequence, alias samplers, has_in_edge, the writer's offsets array —
  // ~46 B/node measured at 1M, 56 here for headroom) plus both sorters'
  // budgets plus a fixed process baseline. Notably independent of m:
  // the in-memory pipeline's footprint is instead dominated by O(m)
  // terms — base-target rows, the builder's edge array and its
  // counting-sort copy, the materialized CSR — ~28 B/edge on top of the
  // same O(n) state, and even the bare packed edge list (8 B/edge)
  // exceeds this whole ceiling at the 10M-node scale.
  const uint64_t n64 = args.num_users;
  const uint64_t ceiling_bytes =
      rss_limit_mb > 0 ? rss_limit_mb << 20
                       : 56 * n64 + 2 * budget_bytes + (160ull << 20);
  const uint64_t in_memory_estimate = 28 * m + 56 * n64 + (64ull << 20);

  std::printf(
      "generate+convert: n=%s m=%s in %.1fs; budget %llu MiB "
      "(%zu+%zu spill runs), peak RSS %.1f MiB (ceiling %.1f MiB, "
      "in-memory pipeline would need ~%.1f MiB)\n",
      util::FormatWithCommas(args.num_users).c_str(),
      util::FormatWithCommas(m).c_str(), generate_seconds,
      static_cast<unsigned long long>(budget_mb),
      net->write.forward_spill_runs, net->write.reverse_spill_runs,
      Mib(generate_peak), Mib(ceiling_bytes), Mib(in_memory_estimate));

  const bool rss_ok = generate_peak > 0 && generate_peak <= ceiling_bytes;
  if (generate_peak == 0) {
    std::fprintf(stderr, "warning: RSS unmeasurable on this kernel; "
                 "residency assertion skipped\n");
  } else if (!rss_ok) {
    std::fprintf(stderr, "FAIL: generate+convert peak RSS %.1f MiB exceeds "
                 "ceiling %.1f MiB\n",
                 Mib(generate_peak), Mib(ceiling_bytes));
  }

  // ---- Phase 2: serve from the mapped snapshot --------------------------
  // Warm config sized for a bounded pass: no distance oracle (its labels
  // are superlinear and have their own bench), fewer PageRank sweeps.
  // Mapped CSR pages the kernels touch are file-backed but resident, so
  // this phase's ceiling legitimately includes the snapshot size.
  util::ResetPeakRss();
  util::SpanTimer serve_timer("bench.scale.serve");
  double warmup_seconds = 0.0, replay_seconds = 0.0;
  uint64_t replay_checksum = 0;
  {
    auto g = graph::MapBinary(snapshot);
    if (!g.ok()) {
      std::fprintf(stderr, "map failed: %s\n", g.status().ToString().c_str());
      return 1;
    }
    serve::EngineOptions eopts;
    eopts.distance_oracle = false;
    eopts.pagerank.max_iterations = 30;
    eopts.telemetry.enabled = false;
    auto engine = serve::QueryEngine::Create(std::move(*g), eopts);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine startup failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    warmup_seconds = (*engine)->warmup_seconds();
    const auto mix = bench::MakeServeRequestMix((*engine)->graph(), requests,
                                                1.1, args.seed);
    util::SpanTimer replay_timer("bench.scale.replay");
    for (const serve::Request& r : mix) {
      const serve::QueryResponse resp = (*engine)->Execute(r);
      replay_checksum = bench::FnvMix(replay_checksum,
                                      bench::FnvString(resp.json));
    }
    replay_seconds = replay_timer.Seconds();
  }
  const double serve_seconds = serve_timer.Seconds();
  const uint64_t serve_peak = util::PeakRssBytes();
  const uint64_t serve_ceiling = ceiling_bytes + snapshot_bytes;
  const bool serve_rss_ok = serve_peak == 0 || serve_peak <= serve_ceiling;
  std::printf(
      "serve: warm %.1fs, %zu requests in %.2fs, checksum %016llx, peak "
      "RSS %.1f MiB (ceiling %.1f MiB incl. %.1f MiB mapped snapshot)\n",
      warmup_seconds, requests, replay_seconds,
      static_cast<unsigned long long>(replay_checksum), Mib(serve_peak),
      Mib(serve_ceiling), Mib(snapshot_bytes));
  if (!serve_rss_ok) {
    std::fprintf(stderr, "FAIL: serve peak RSS %.1f MiB exceeds %.1f MiB\n",
                 Mib(serve_peak), Mib(serve_ceiling));
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %u,\n", args.num_users);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  bench::WriteEnvironmentJson(f);
  std::fprintf(f, "  \"num_edges\": %llu,\n",
               static_cast<unsigned long long>(m));
  std::fprintf(f, "  \"snapshot_bytes\": %llu,\n",
               static_cast<unsigned long long>(snapshot_bytes));
  std::fprintf(f, "  \"budget_mb\": %llu,\n",
               static_cast<unsigned long long>(budget_mb));
  std::fprintf(f,
               "  \"verify\": {\"scale\": %u, \"num_edges\": %llu, "
               "\"spill_runs\": %zu, \"byte_identical\": %s},\n",
               verify_scale, static_cast<unsigned long long>(verify_edges),
               verify_runs, identical ? "true" : "false");
  std::fprintf(f,
               "  \"generate\": {\"seconds\": %.2f, \"input_records\": "
               "%llu, \"forward_spill_runs\": %zu, \"reverse_spill_runs\": "
               "%zu, \"peak_rss_bytes\": %llu, \"ceiling_bytes\": %llu, "
               "\"in_memory_estimate_bytes\": %llu, \"rss_ok\": %s},\n",
               generate_seconds,
               static_cast<unsigned long long>(net->write.input_records),
               net->write.forward_spill_runs, net->write.reverse_spill_runs,
               static_cast<unsigned long long>(generate_peak),
               static_cast<unsigned long long>(ceiling_bytes),
               static_cast<unsigned long long>(in_memory_estimate),
               rss_ok || generate_peak == 0 ? "true" : "false");
  std::fprintf(f,
               "  \"serve\": {\"seconds\": %.2f, \"warmup_seconds\": %.2f, "
               "\"requests\": %zu, \"replay_seconds\": %.3f, "
               "\"replay_checksum\": \"%016llx\", \"peak_rss_bytes\": %llu, "
               "\"ceiling_bytes\": %llu, \"rss_ok\": %s}\n",
               serve_seconds, warmup_seconds, requests, replay_seconds,
               static_cast<unsigned long long>(replay_checksum),
               static_cast<unsigned long long>(serve_peak),
               static_cast<unsigned long long>(serve_ceiling),
               serve_rss_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  std::remove(snapshot.c_str());
  (void)out_dir;
  const bool ok = identical && (rss_ok || generate_peak == 0) && serve_rss_ok;
  return ok ? 0 : 2;
}

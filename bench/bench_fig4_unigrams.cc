// Fig. 4 reproduction: the word cloud of most frequent unigrams in
// verified-user bios. A word cloud is a frequency table rendered with
// size ~ count; we print the ranked table with proportional bars and
// check the paper's named unigram themes are all present.

#include <cstdio>

#include "bench_common.h"
#include "text/ngram.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Fig. 4: word cloud of bio unigrams");
  core::VerifiedStudy study = bench::MakeStudy(args);

  text::NGramCounter unigrams(1);
  for (const std::string& bio : study.bios().bios) {
    unigrams.AddDocument(bio);
  }
  const auto top = unigrams.TopK(30);

  std::printf("\nTop unigrams (bar length ~ count):\n");
  const double max_count =
      top.empty() ? 1.0 : static_cast<double>(top[0].count);
  for (const auto& g : top) {
    const int len = static_cast<int>(40.0 * g.count / max_count);
    std::printf("  %-16s %8llu %s\n", g.ngram.c_str(),
                static_cast<unsigned long long>(g.count),
                std::string(static_cast<size_t>(len), '#').c_str());
  }

  // The paper's themes: cross-links, personal descriptors, professional
  // descriptors, business terms, geography, journalism.
  struct Theme {
    const char* name;
    std::vector<const char*> words;
  };
  const Theme themes[] = {
      {"cross-links", {"instagram", "facebook", "snapchat"}},
      {"personal", {"husband", "father", "gay"}},
      {"professional",
       {"producer", "founder", "director", "tech", "author", "sport"}},
      {"business", {"booking", "support", "international", "official"}},
      {"geography", {"american", "london"}},
      {"journalism", {"journalist", "reporter", "editor"}},
  };
  std::printf("\nTheme coverage (all Fig. 4 themes must appear):\n");
  bool all_ok = true;
  for (const Theme& t : themes) {
    uint64_t total = 0;
    for (const char* w : t.words) total += unigrams.CountOf(w);
    const bool ok = total > 0;
    all_ok &= ok;
    std::printf("  %-14s total=%8llu [%s]\n", t.name,
                static_cast<unsigned long long>(total),
                ok ? "OK" : "MISSING");
  }
  std::printf("\nFig. 4 shape: %s\n", all_ok ? "OK" : "DEVIATES");

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "fig4_unigrams.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"unigram", "count"}).ok();
    for (const auto& g : top) {
      csv.WriteRow({g.ngram, std::to_string(g.count)}).ok();
    }
    csv.Close().ok();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

// Section V reproduction: the full activity-analysis battery —
// Ljung-Box and Box-Pierce portmanteau tests to lag 185 (paper: max p of
// 3.81e-38 / 7.57e-38), the Augmented Dickey-Fuller stationarity test
// (paper: -3.86 vs the -3.42 critical value), and the PELT penalty-sweep
// change-point vote (paper: exactly two — Dec 23-25 and ~first week of
// April).

#include <cstdio>

#include "bench_common.h"
#include "core/paper_reference.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Section V: activity analysis battery");
  core::VerifiedStudy study = bench::MakeStudy(args);

  const auto act = study.RunActivity();
  if (!act.ok()) {
    std::fprintf(stderr, "activity analysis failed: %s\n",
                 act.status().ToString().c_str());
    return 1;
  }

  std::printf("\n-- Portmanteau tests (lags 1..%d) --\n",
              act->ljung_box.max_lag);
  std::printf("  %-14s max p=%-12.3g (paper %.3g)  [tiny: %s]\n",
              "Ljung-Box", act->ljung_box.max_p_value, paper::kLjungBoxMaxP,
              act->ljung_box.max_p_value < 1e-20 ? "OK" : "DEVIATES");
  std::printf("  %-14s max p=%-12.3g (paper %.3g)  [tiny: %s]\n",
              "Box-Pierce", act->box_pierce.max_p_value,
              paper::kBoxPierceMaxP,
              act->box_pierce.max_p_value < 1e-20 ? "OK" : "DEVIATES");
  std::printf(
      "  (Statistically, tiny p-values mean the null of *no*\n"
      "   autocorrelation is rejected; the paper reads them as ruling\n"
      "   out lagged correlation. We reproduce the reported numbers.)\n");

  std::printf("\n-- Augmented Dickey-Fuller (constant + trend) --\n");
  std::printf("  statistic=%.3f  auto-lag=%d  n=%zu\n", act->adf.statistic,
              act->adf.used_lag, act->adf.n_obs);
  std::printf("  critical values: 1%%=%.3f 5%%=%.3f 10%%=%.3f\n",
              act->adf.crit_1pct, act->adf.crit_5pct, act->adf.crit_10pct);
  std::printf("  paper: %.2f vs critical %.2f => stationary\n",
              paper::kAdfStatistic, paper::kAdfCritical95);
  std::printf("  measured verdict: %s  [matches paper: %s]\n",
              act->adf.stationary_at_5pct ? "stationary" : "unit root",
              act->adf.stationary_at_5pct ? "OK" : "DEVIATES");

  std::printf("\n-- PELT change-point penalty sweep (%d runs) --\n",
              act->pelt.runs);
  for (size_t i = 0; i < act->pelt.stable.size(); ++i) {
    std::printf("  change-point at %s (support %.0f%%)\n",
                timeseries::FormatDate(act->change_dates[i]).c_str(),
                100.0 * act->pelt.stable[i].support);
  }
  const bool two_points =
      act->pelt.stable.size() == static_cast<size_t>(paper::kChangePoints);
  bool calendar_match = two_points;
  if (two_points) {
    calendar_match &= act->change_dates[0].month == 12 &&
                      act->change_dates[0].day >= 20 &&
                      act->change_dates[0].day <= 28;
    calendar_match &=
        act->change_dates[1].month == 4 && act->change_dates[1].day <= 10;
  }
  std::printf("  paper: exactly two — Dec 23-25, 2017 and ~Apr 3, 2018\n");
  std::printf("  [count: %s] [calendar windows: %s]\n",
              two_points ? "OK" : "DEVIATES",
              calendar_match ? "OK" : "DEVIATES");

  // CSV: the per-lag p-value series for both tests.
  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "activity_tests.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"lag", "ljung_box_stat", "ljung_box_p",
                  "box_pierce_stat", "box_pierce_p"})
        .ok();
    for (size_t i = 0; i < act->ljung_box.p_values.size(); ++i) {
      csv.WriteRow({std::to_string(i + 1),
                    util::FormatNumber(act->ljung_box.statistics[i], 8),
                    util::FormatNumber(act->ljung_box.p_values[i], 8),
                    util::FormatNumber(act->box_pierce.statistics[i], 8),
                    util::FormatNumber(act->box_pierce.p_values[i], 8)})
          .ok();
    }
    csv.Close().ok();
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}

// Section IV-A reproduction: density, degrees, isolated users, giant SCC,
// component counts, clustering, assortativity — the paper's "basic
// analysis" battery in one report (plus Section III dataset shape).

#include <cstdio>

#include "bench_common.h"
#include "core/paper_reference.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Section IV-A: basic analysis of the verified network");
  core::VerifiedStudy study = bench::MakeStudy(args);

  const auto basic = study.RunBasic();
  if (!basic.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 basic.status().ToString().c_str());
    return 1;
  }
  const double scale = static_cast<double>(args.num_users) /
                       static_cast<double>(paper::kUsersEnglish);

  std::printf("\nPaper values at n=231,246; size-dependent rows are "
              "scaled by n/231,246 = %.4f.\n\n", scale);
  bench::Compare("density", paper::kDensity, basic->degrees.density, 0.15);
  bench::Compare("avg out-degree (scaled)", paper::kAvgOutDegree * scale,
                 basic->degrees.avg_out_degree, 0.15);
  bench::Compare("max out-degree (scaled)", paper::kMaxOutDegree * scale,
                 basic->degrees.max_out_degree, 0.15);
  bench::Compare("isolated users (scaled)", paper::kIsolatedUsers * scale,
                 static_cast<double>(basic->degrees.isolated_nodes), 0.1);
  bench::Compare("giant SCC fraction", paper::kGiantSccFraction,
                 basic->giant_scc_fraction, 0.02);
  bench::Compare("weak components (scaled)",
                 paper::kConnectedComponents * scale,
                 static_cast<double>(basic->weak_components), 0.15);
  bench::Compare("attracting components (scaled)",
                 paper::kAttractingComponents * scale,
                 static_cast<double>(basic->attracting_components), 0.15);
  bench::Compare("avg local clustering", paper::kAvgLocalClustering,
                 basic->clustering.average_local, 0.45);
  bench::Compare("assortativity (out-in)", paper::kDegreeAssortativity,
                 basic->assortativity.out_in, 0.9);
  bench::Compare("reciprocity", paper::kReciprocity,
                 basic->reciprocity.rate, 0.1);

  std::printf("\nAll assortativity flavours (Foster et al. conventions):\n");
  std::printf("  out-in=%.4f out-out=%.4f in-in=%.4f in-out=%.4f "
              "total=%.4f\n",
              basic->assortativity.out_in, basic->assortativity.out_out,
              basic->assortativity.in_in, basic->assortativity.in_out,
              basic->assortativity.total);

  // CSV artifact.
  util::CsvWriter csv;
  if (csv.Open(bench::CsvPath(args, "basic_stats.csv")).ok()) {
    csv.WriteRow({"metric", "paper", "measured"}).ok();
    auto row = [&](const char* m, double p, double v) {
      csv.WriteRow({m, util::FormatNumber(p, 8), util::FormatNumber(v, 8)})
          .ok();
    };
    row("density", paper::kDensity, basic->degrees.density);
    row("avg_out_degree_scaled", paper::kAvgOutDegree * scale,
        basic->degrees.avg_out_degree);
    row("giant_scc_fraction", paper::kGiantSccFraction,
        basic->giant_scc_fraction);
    row("reciprocity", paper::kReciprocity, basic->reciprocity.rate);
    row("clustering", paper::kAvgLocalClustering,
        basic->clustering.average_local);
    row("assortativity_out_in", paper::kDegreeAssortativity,
        basic->assortativity.out_in);
    csv.Close().ok();
    std::printf("\nwrote %s\n",
                bench::CsvPath(args, "basic_stats.csv").c_str());
  }
  return 0;
}

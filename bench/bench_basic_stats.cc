// Section IV-A reproduction: density, degrees, isolated users, giant SCC,
// component counts, clustering, assortativity — the paper's "basic
// analysis" battery in one report (plus Section III dataset shape).
//
// --stream         compute degrees/reciprocity/assortativity with the
//                  fused windowed kernel (one CSR sweep, O(1) inter-
//                  window state) instead of the seven standalone passes.
// --verify-stream  run both paths at several window sizes and require
//                  bit-identical results before reporting.

#include <cstdio>
#include <cstring>

#include "analysis/streamed_stats.h"
#include "bench_common.h"
#include "core/paper_reference.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

// Exact comparison on purpose: the streamed kernel's contract is
// bit-identity, not tolerance.
bool SameStreamedStats(const elitenet::core::BasicReport& ref,
                       const elitenet::analysis::StreamedBasicStats& s) {
  const auto& d = ref.degrees;
  const auto& sd = s.degrees;
  return d.min_out_degree == sd.min_out_degree &&
         d.max_out_degree == sd.max_out_degree &&
         d.argmax_out_degree == sd.argmax_out_degree &&
         d.avg_out_degree == sd.avg_out_degree &&
         d.min_in_degree == sd.min_in_degree &&
         d.max_in_degree == sd.max_in_degree &&
         d.argmax_in_degree == sd.argmax_in_degree &&
         d.avg_in_degree == sd.avg_in_degree &&
         d.isolated_nodes == sd.isolated_nodes &&
         d.sink_nodes == sd.sink_nodes &&
         d.source_nodes == sd.source_nodes && d.density == sd.density &&
         ref.reciprocity.total_edges == s.reciprocity.total_edges &&
         ref.reciprocity.reciprocated_edges ==
             s.reciprocity.reciprocated_edges &&
         ref.reciprocity.mutual_pairs == s.reciprocity.mutual_pairs &&
         ref.reciprocity.rate == s.reciprocity.rate &&
         ref.assortativity.out_in == s.assortativity.out_in &&
         ref.assortativity.out_out == s.assortativity.out_out &&
         ref.assortativity.in_in == s.assortativity.in_in &&
         ref.assortativity.in_out == s.assortativity.in_out &&
         ref.assortativity.total == s.assortativity.total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bool stream = false, verify_stream = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stream") == 0) stream = true;
    if (std::strcmp(argv[i], "--verify-stream") == 0) verify_stream = true;
  }
  util::PrintBanner("Section IV-A: basic analysis of the verified network");
  core::VerifiedStudy study = bench::MakeStudy(args);

  auto basic = study.RunBasic();
  if (!basic.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 basic.status().ToString().c_str());
    return 1;
  }

  if (stream || verify_stream) {
    const graph::DiGraph& g = study.network().graph;
    // A window a few cache-sized blocks of nodes wide; any value gives
    // identical results, this one exercises multi-window bookkeeping.
    const graph::NodeId window = g.num_nodes() >= 8 ? g.num_nodes() / 8 : 1;
    const analysis::StreamedBasicStats streamed =
        analysis::ComputeStreamedBasicStats(g, window);
    if (verify_stream) {
      for (graph::NodeId w : {graph::NodeId{0}, graph::NodeId{1}, window,
                              g.num_nodes() + 7}) {
        const auto probe = analysis::ComputeStreamedBasicStats(g, w);
        if (!SameStreamedStats(*basic, probe)) {
          std::fprintf(stderr,
                       "streamed stats diverged from standalone kernels at "
                       "window=%u\n",
                       w);
          return 1;
        }
      }
      std::printf("verify-stream: fused pass bit-identical to standalone "
                  "kernels at 4 window sizes\n");
    }
    // Report the fused results (bit-identical, so the CSV below is
    // unchanged; the streamed path is what a 10M-node mmapped snapshot
    // would use to avoid seven trips through the page cache).
    basic->degrees = streamed.degrees;
    basic->reciprocity = streamed.reciprocity;
    basic->assortativity = streamed.assortativity;
    std::printf("streamed basic stats: one fused CSR sweep in %llu windows\n",
                static_cast<unsigned long long>(streamed.windows));
  }
  const double scale = static_cast<double>(args.num_users) /
                       static_cast<double>(paper::kUsersEnglish);

  std::printf("\nPaper values at n=231,246; size-dependent rows are "
              "scaled by n/231,246 = %.4f.\n\n", scale);
  bench::Compare("density", paper::kDensity, basic->degrees.density, 0.15);
  bench::Compare("avg out-degree (scaled)", paper::kAvgOutDegree * scale,
                 basic->degrees.avg_out_degree, 0.15);
  bench::Compare("max out-degree (scaled)", paper::kMaxOutDegree * scale,
                 basic->degrees.max_out_degree, 0.15);
  bench::Compare("isolated users (scaled)", paper::kIsolatedUsers * scale,
                 static_cast<double>(basic->degrees.isolated_nodes), 0.1);
  bench::Compare("giant SCC fraction", paper::kGiantSccFraction,
                 basic->giant_scc_fraction, 0.02);
  bench::Compare("weak components (scaled)",
                 paper::kConnectedComponents * scale,
                 static_cast<double>(basic->weak_components), 0.15);
  bench::Compare("attracting components (scaled)",
                 paper::kAttractingComponents * scale,
                 static_cast<double>(basic->attracting_components), 0.15);
  bench::Compare("avg local clustering", paper::kAvgLocalClustering,
                 basic->clustering.average_local, 0.45);
  bench::Compare("assortativity (out-in)", paper::kDegreeAssortativity,
                 basic->assortativity.out_in, 0.9);
  bench::Compare("reciprocity", paper::kReciprocity,
                 basic->reciprocity.rate, 0.1);

  std::printf("\nAll assortativity flavours (Foster et al. conventions):\n");
  std::printf("  out-in=%.4f out-out=%.4f in-in=%.4f in-out=%.4f "
              "total=%.4f\n",
              basic->assortativity.out_in, basic->assortativity.out_out,
              basic->assortativity.in_in, basic->assortativity.in_out,
              basic->assortativity.total);

  // CSV artifact.
  util::CsvWriter csv;
  if (csv.Open(bench::CsvPath(args, "basic_stats.csv")).ok()) {
    csv.WriteRow({"metric", "paper", "measured"}).ok();
    auto row = [&](const char* m, double p, double v) {
      csv.WriteRow({m, util::FormatNumber(p, 8), util::FormatNumber(v, 8)})
          .ok();
    };
    row("density", paper::kDensity, basic->degrees.density);
    row("avg_out_degree_scaled", paper::kAvgOutDegree * scale,
        basic->degrees.avg_out_degree);
    row("giant_scc_fraction", paper::kGiantSccFraction,
        basic->giant_scc_fraction);
    row("reciprocity", paper::kReciprocity, basic->reciprocity.rate);
    row("clustering", paper::kAvgLocalClustering,
        basic->clustering.average_local);
    row("assortativity_out_in", paper::kDegreeAssortativity,
        basic->assortativity.out_in);
    csv.Close().ok();
    std::printf("\nwrote %s\n",
                bench::CsvPath(args, "basic_stats.csv").c_str());
  }
  return 0;
}

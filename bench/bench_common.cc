#include "bench_common.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/parallel.h"
#include "util/table.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      const char* value = arg + 8;
      if (std::strcmp(value, "full") == 0) {
        args.num_users = 231246;
      } else {
        args.num_users = static_cast<uint32_t>(std::atoi(value));
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      args.out_dir = arg + 6;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      args.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      args.metrics_path = arg + 10;
    }
  }
  return args;
}

core::StudyConfig MakeStudyConfig(const BenchArgs& args) {
  core::StudyConfig cfg;
  cfg.network.num_users = args.num_users;
  cfg.network.seed = args.seed;
  cfg.bootstrap_replicates = 30;
  cfg.distance_sources = 64;
  cfg.betweenness_pivots = 256;
  cfg.clustering_samples = 12000;
  cfg.eigenvalue_k = 250;
  cfg.threads = args.threads;
  cfg.trace_path = args.trace_path;
  cfg.metrics_path = args.metrics_path;
  return cfg;
}

core::VerifiedStudy MakeStudy(const BenchArgs& args) {
  core::VerifiedStudy study(MakeStudyConfig(args));
  if (args.threads > 0) util::SetThreadCount(args.threads);
  util::SpanTimer sw("bench.generate");
  const Status s = study.Generate();
  if (!s.ok()) {
    std::fprintf(stderr, "study generation failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  std::printf(
      "generated n=%s users, m=%s edges in %.1fs (seed %llu, %d threads)\n",
      util::FormatWithCommas(study.network().graph.num_nodes()).c_str(),
      util::FormatWithCommas(study.network().graph.num_edges()).c_str(),
      sw.Seconds(), static_cast<unsigned long long>(args.seed),
      util::ThreadCount());
  return study;
}

std::string CsvPath(const BenchArgs& args, const std::string& name) {
  ::mkdir(args.out_dir.c_str(), 0755);  // best-effort; Open reports errors
  return args.out_dir + "/" + name;
}

void WriteEnvironmentJson(std::FILE* f) {
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n  \"threads\": %d,\n",
               std::thread::hardware_concurrency(), util::ThreadCount());
}

double RelDev(double measured, double paper) {
  if (paper == 0.0) return std::fabs(measured);
  return std::fabs(measured - paper) / std::fabs(paper);
}

bool Compare(const std::string& metric, double paper, double measured,
             double rel_tolerance) {
  const bool ok = RelDev(measured, paper) <= rel_tolerance;
  util::PrintComparison(metric, util::FormatNumber(paper, 5),
                        util::FormatNumber(measured, 5), ok);
  return ok;
}

}  // namespace bench
}  // namespace elitenet

#include "bench_common.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/parallel.h"
#include "util/rng.h"
#include "util/rss.h"
#include "util/table.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {

namespace {
// RSS at ParseArgs time — the "before any work" baseline that
// resident_delta_bytes is measured against.
uint64_t g_baseline_rss = 0;
}  // namespace

BenchArgs ParseArgs(int argc, char** argv) {
  if (g_baseline_rss == 0) g_baseline_rss = util::CurrentRssBytes();
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      const char* value = arg + 8;
      if (std::strcmp(value, "full") == 0) {
        args.num_users = 231246;
      } else {
        args.num_users = static_cast<uint32_t>(std::atoi(value));
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      args.out_dir = arg + 6;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      args.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      args.metrics_path = arg + 10;
    }
  }
  return args;
}

core::StudyConfig MakeStudyConfig(const BenchArgs& args) {
  core::StudyConfig cfg;
  cfg.network.num_users = args.num_users;
  cfg.network.seed = args.seed;
  cfg.bootstrap_replicates = 30;
  cfg.distance_sources = 64;
  cfg.betweenness_pivots = 256;
  cfg.clustering_samples = 12000;
  cfg.eigenvalue_k = 250;
  cfg.threads = args.threads;
  cfg.trace_path = args.trace_path;
  cfg.metrics_path = args.metrics_path;
  return cfg;
}

core::VerifiedStudy MakeStudy(const BenchArgs& args) {
  core::VerifiedStudy study(MakeStudyConfig(args));
  if (args.threads > 0) util::SetThreadCount(args.threads);
  util::SpanTimer sw("bench.generate");
  const Status s = study.Generate();
  if (!s.ok()) {
    std::fprintf(stderr, "study generation failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  std::printf(
      "generated n=%s users, m=%s edges in %.1fs (seed %llu, %d threads)\n",
      util::FormatWithCommas(study.network().graph.num_nodes()).c_str(),
      util::FormatWithCommas(study.network().graph.num_edges()).c_str(),
      sw.Seconds(), static_cast<unsigned long long>(args.seed),
      util::ThreadCount());
  return study;
}

std::string CsvPath(const BenchArgs& args, const std::string& name) {
  ::mkdir(args.out_dir.c_str(), 0755);  // best-effort; Open reports errors
  return args.out_dir + "/" + name;
}

void WriteEnvironmentJson(std::FILE* f) {
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n  \"threads\": %d,\n",
               std::thread::hardware_concurrency(), util::ThreadCount());
  const uint64_t current = util::CurrentRssBytes();
  const uint64_t delta =
      current > g_baseline_rss ? current - g_baseline_rss : 0;
  std::fprintf(f,
               "  \"peak_rss_bytes\": %llu,\n"
               "  \"resident_delta_bytes\": %llu,\n",
               static_cast<unsigned long long>(util::PeakRssBytes()),
               static_cast<unsigned long long>(delta));
}

uint64_t PeakRssBytes() { return util::PeakRssBytes(); }

uint64_t FnvMix(uint64_t h, uint64_t x) {
  h ^= x;
  return h * 0x100000001b3ULL;
}

uint64_t FnvString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Draws ranks with P(r) ~ 1/(r+1)^s over [0, n) by inverse CDF on the
// precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cumulative_(n) {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cumulative_[r] = total;
    }
  }

  size_t Sample(util::Rng* rng) const {
    const double u = rng->UniformDouble() * cumulative_.back();
    return static_cast<size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

std::vector<serve::Request> MakeServeRequestMix(const graph::DiGraph& g,
                                                size_t count, double zipf_s,
                                                uint64_t seed) {
  // Hot set = nodes by descending total degree: zipf rank 0 is the
  // biggest hub, exactly where real per-user traffic lands.
  std::vector<graph::NodeId> by_degree(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) by_degree[u] = u;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     const uint64_t da = g.OutDegree(a) + g.InDegree(a);
                     const uint64_t db = g.OutDegree(b) + g.InDegree(b);
                     if (da != db) return da > db;
                     return a < b;
                   });
  ZipfSampler zipf(by_degree.size(), zipf_s);
  util::Rng rng(seed);
  const uint32_t ks[] = {10, 20, 50, 100};
  const uint32_t limits[] = {16, 32, 64};

  std::vector<serve::Request> mix;
  mix.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    serve::Request r;
    const double t = rng.UniformDouble();
    if (t < 0.35) {
      r.type = serve::RequestType::kEgoSummary;
      r.node = by_degree[zipf.Sample(&rng)];
    } else if (t < 0.60) {
      r.type = serve::RequestType::kNeighbors;
      r.node = by_degree[zipf.Sample(&rng)];
      r.direction = rng.Bernoulli(0.5) ? serve::NeighborDirection::kOut
                                       : serve::NeighborDirection::kIn;
      r.limit = limits[rng.UniformU64(3)];
    } else if (t < 0.80) {
      r.type = serve::RequestType::kTopKRank;
      r.k = ks[rng.UniformU64(4)];
    } else if (t < 0.95) {
      r.type = serve::RequestType::kDistance;
      r.node = by_degree[zipf.Sample(&rng)];
      r.target = by_degree[zipf.Sample(&rng)];
    } else {
      r.type = serve::RequestType::kFingerprint;
    }
    mix.push_back(r);
  }
  return mix;
}

double RelDev(double measured, double paper) {
  if (paper == 0.0) return std::fabs(measured);
  return std::fabs(measured - paper) / std::fabs(paper);
}

bool Compare(const std::string& metric, double paper, double measured,
             double rel_tolerance) {
  const bool ok = RelDev(measured, paper) <= rel_tolerance;
  util::PrintComparison(metric, util::FormatNumber(paper, 5),
                        util::FormatNumber(measured, 5), ok);
  return ok;
}

}  // namespace bench
}  // namespace elitenet

// Table II reproduction: most popular trigrams in verified-user bios,
// with occurrence counts compared against the paper's (scaled).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/paper_reference.h"
#include "text/ngram.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Table II: most popular trigrams in bios");
  core::VerifiedStudy study = bench::MakeStudy(args);

  text::NGramCounter trigrams(3), fourgrams(4);
  for (const std::string& bio : study.bios().bios) {
    const auto clauses = text::TokenizeClauses(bio);
    trigrams.AddClauses(clauses);
    fourgrams.AddClauses(clauses);
  }
  const auto top = text::FilterSubsumed(trigrams.TopK(60), fourgrams);
  const double scale = static_cast<double>(args.num_users) /
                       static_cast<double>(paper::kUsersEnglish);

  util::TextTable table(
      {"rank", "trigram", "measured", "paper(scaled)", "paper@231k"});
  const size_t rows = std::min<size_t>(15, top.size());
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow();
    table.AddCell(static_cast<uint64_t>(i + 1));
    table.AddCell(text::TitleCase(top[i].ngram));
    table.AddCell(top[i].count);
    double paper_count = 0.0;
    for (const auto& named : paper::kTopTrigrams) {
      if (top[i].ngram == named.phrase) {
        paper_count = named.count;
        break;
      }
    }
    table.AddCell(paper_count > 0 ? util::FormatNumber(paper_count * scale, 4)
                                  : std::string("-"));
    table.AddCell(paper_count > 0
                      ? util::FormatWithCommas(
                            static_cast<uint64_t>(paper_count))
                      : std::string("-"));
  }
  std::printf("\n");
  table.Print();

  int covered = 0;
  for (const auto& named : paper::kTopTrigrams) {
    for (size_t i = 0; i < std::min<size_t>(25, top.size()); ++i) {
      if (top[i].ngram == named.phrase) {
        ++covered;
        break;
      }
    }
  }
  std::printf("\npaper coverage: %d/15 of Table II's trigrams in our top "
              "25 [shape: %s]\n",
              covered, covered >= 13 ? "OK" : "DEVIATES");
  std::printf("head order check: account > page > weather alerts [%s]\n",
              top.size() >= 3 && top[0].ngram == "official twitter account" &&
                      top[1].ngram == "official twitter page"
                  ? "OK"
                  : "DEVIATES");

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "table2_trigrams.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"rank", "trigram", "count"}).ok();
    for (size_t i = 0; i < rows; ++i) {
      csv.WriteRow({std::to_string(i + 1), top[i].ngram,
                    std::to_string(top[i].count)})
          .ok();
    }
    csv.Close().ok();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

// Section IV-B (spectral half): power law in the largest Laplacian
// eigenvalues. Paper: continuous MLE alpha 3.18, xmin 9377.26, p 0.3,
// using the top 10,000 eigenvalues at n = 231,246. We extract the top-k
// spectrum with Lanczos and run the same continuous CSN pipeline.

#include <cstdio>

#include "analysis/spectral.h"
#include "bench_common.h"
#include "core/paper_reference.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Section IV-B: Laplacian eigenvalue power law");
  core::VerifiedStudy study = bench::MakeStudy(args);

  util::SpanTimer sw;
  std::printf("\nLanczos: extracting top %u eigenvalues...\n",
              study.config().eigenvalue_k);
  const auto fit = study.RunEigenvalueFit(/*with_bootstrap=*/true);
  if (!fit.ok()) {
    std::fprintf(stderr, "spectral analysis failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }
  std::printf("spectral fit finished in %.1fs\n\n", sw.Seconds());

  bench::Compare("alpha", paper::kEigenAlpha, fit->fit.alpha, 0.15);
  std::printf("  %-36s paper=%-16.1f measured=%-16.1f (xmin scales with "
              "degree)\n",
              "xmin", paper::kEigenXmin, fit->fit.xmin);
  std::printf("  %-36s tail_n=%llu  KS=%.4f\n", "tail",
              static_cast<unsigned long long>(fit->fit.tail_n),
              fit->fit.ks_distance);
  if (fit->gof) {
    const bool plausible = fit->gof->p_value > 0.1;
    std::printf("  %-36s paper=%-16.2f measured=%-16.3f [shape: %s]\n",
                "bootstrap p", paper::kEigenPValue, fit->gof->p_value,
                plausible ? "OK" : "DEVIATES");
  }
  if (fit->vs_lognormal) {
    std::printf("  Vuong vs log-normal: LR=%.1f stat=%.2f\n",
                fit->vs_lognormal->log_likelihood_ratio,
                fit->vs_lognormal->statistic);
  }
  if (fit->vs_exponential) {
    std::printf("  Vuong vs exponential: LR=%.1f stat=%.2f\n",
                fit->vs_exponential->log_likelihood_ratio,
                fit->vs_exponential->statistic);
  }

  // Dump the spectrum tail for replotting.
  analysis::LanczosOptions lopts;
  lopts.k = study.config().eigenvalue_k;
  const auto spectrum =
      analysis::TopLaplacianEigenvalues(study.network().graph, lopts);
  if (spectrum.ok()) {
    util::CsvWriter csv;
    const std::string path = bench::CsvPath(args, "eigen_spectrum.csv");
    if (csv.Open(path).ok()) {
      csv.WriteRow({"rank", "eigenvalue"}).ok();
      for (size_t i = 0; i < spectrum->eigenvalues.size(); ++i) {
        csv.WriteRow({std::to_string(i + 1),
                      util::FormatNumber(spectrum->eigenvalues[i], 10)})
            .ok();
      }
      csv.Close().ok();
      std::printf("\nwrote %s (top eigenvalue %.1f)\n", path.c_str(),
                  spectrum->eigenvalues.empty()
                      ? 0.0
                      : spectrum->eigenvalues.front());
    }
  }
  return 0;
}

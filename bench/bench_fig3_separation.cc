// Fig. 3 + Section IV-D reproduction: distribution of pairwise node
// distances (log-scaled counts per hop), mean degree of separation
// (paper: 2.74 vs 4.12 sampled / 3.43 optimal for whole Twitter), median
// and effective diameter.

#include <cstdio>

#include "analysis/bidirectional.h"
#include "bench_common.h"
#include "core/paper_reference.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Fig. 3 / Section IV-D: degrees of separation");
  core::VerifiedStudy study = bench::MakeStudy(args);

  std::printf("\nBFS from %u sampled sources (isolated users omitted, as "
              "in the paper)...\n",
              study.config().distance_sources);
  const auto dist = study.RunDistances();
  if (!dist.ok()) {
    std::fprintf(stderr, "distance analysis failed: %s\n",
                 dist.status().ToString().c_str());
    return 1;
  }

  std::printf("\nHop-count distribution (Fig. 3 series):\n");
  std::fputs(dist->hops.ToAsciiChart("hops").c_str(), stdout);

  std::printf("\n");
  bench::Compare("mean distance", paper::kMeanDistance,
                 dist->mean_distance, 0.12);
  std::printf("  %-36s measured=%llu\n", "median separation",
              static_cast<unsigned long long>(dist->median_distance));
  std::printf("  %-36s measured=%llu\n", "effective diameter (90th pct)",
              static_cast<unsigned long long>(dist->effective_diameter));
  std::printf("  %-36s measured=%u\n", "diameter lower bound",
              dist->diameter_lower_bound);
  std::printf("  reachable pairs=%llu unreachable=%llu\n",
              static_cast<unsigned long long>(dist->reachable_pairs),
              static_cast<unsigned long long>(dist->unreachable_pairs));

  std::printf("\nComparison points:\n");
  std::printf("  whole Twitter, sampled (Kwak et al.):    %.2f\n",
              paper::kMeanDistanceWholeTwitterSampled);
  std::printf("  whole Twitter, optimal (Bakhshandeh et al.): %.2f\n",
              paper::kMeanDistanceWholeTwitterOptimal);
  std::printf("  verified sub-graph is denser => shorter paths: %s\n",
              dist->mean_distance < paper::kMeanDistanceWholeTwitterOptimal
                  ? "OK"
                  : "DEVIATES");

  // Cross-check with the cited methodology: Bakhshandeh et al. measured
  // whole-Twitter separation with bounded bidirectional search over
  // sampled pairs; the same estimator on our graph must agree with the
  // BFS histogram above.
  {
    util::Rng rng(314);
    const auto pairs =
        analysis::SamplePairDistances(study.network().graph, 2000, &rng);
    std::printf("\nbidirectional pair sampling (Bakhshandeh-style, 2000 "
                "pairs):\n");
    std::printf("  mean distance=%.3f (BFS estimate %.3f) "
                "[estimators agree: %s]\n",
                pairs.mean_distance, dist->mean_distance,
                bench::RelDev(pairs.mean_distance, dist->mean_distance) <
                        0.05
                    ? "OK"
                    : "DEVIATES");
    std::printf("  mean nodes expanded per pair=%.0f of %u total\n",
                pairs.mean_expanded, study.network().graph.num_nodes());
  }

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "fig3_separation.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"hops", "pairs"}).ok();
    for (uint64_t h = 0; h <= dist->hops.max_value(); ++h) {
      csv.WriteRow({std::to_string(h),
                    std::to_string(dist->hops.CountOf(h))})
          .ok();
    }
    csv.Close().ok();
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}

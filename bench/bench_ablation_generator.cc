// Ablation: which generator mechanism produces which paper property.
// Each row disables one design choice of the calibrated generator and
// re-measures the Section IV statistics — the evidence behind DESIGN.md's
// substitution claims (communities -> clustering, follow-back planting ->
// reciprocity, sink celebrities -> attracting components, zeta tail ->
// power-law alpha).

#include <cstdio>

#include "analysis/assortativity.h"
#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "bench_common.h"
#include "stats/powerlaw.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace elitenet;

struct Row {
  std::string name;
  double reciprocity = 0.0;
  double clustering = 0.0;
  double assortativity = 0.0;
  double gscc = 0.0;
  double alpha = 0.0;
  uint64_t attracting = 0;
};

Row Measure(const std::string& name, const gen::VerifiedNetworkConfig& cfg) {
  Row row;
  row.name = name;
  auto net = gen::GenerateVerifiedNetwork(cfg);
  if (!net.ok()) {
    std::fprintf(stderr, "  %s: generation failed: %s\n", name.c_str(),
                 net.status().ToString().c_str());
    return row;
  }
  const auto& g = net->graph;
  row.reciprocity = analysis::ComputeReciprocity(g).rate;
  util::Rng rng(5);
  row.clustering =
      analysis::ComputeClusteringSampled(g, 4000, &rng).average_local;
  row.assortativity =
      analysis::DegreeAssortativity(g, analysis::DegreeMode::kOutIn);
  const auto scc = analysis::StronglyConnectedComponents(g);
  row.gscc = scc.GiantFraction();
  row.attracting = analysis::FindAttractingComponents(g, scc).count;
  std::vector<double> degrees;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > 0) {
      degrees.push_back(static_cast<double>(g.OutDegree(u)));
    }
  }
  auto fit = stats::FitDiscrete(degrees);
  if (fit.ok()) row.alpha = fit->alpha;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  // Ablations regenerate the graph many times; default to a lighter size.
  if (args.num_users == 40000) args.num_users = 15000;
  util::PrintBanner("Ablation: generator design choices");
  std::printf("n=%u users per variant\n\n", args.num_users);

  gen::VerifiedNetworkConfig base;
  base.num_users = args.num_users;
  base.seed = args.seed;

  std::vector<Row> rows;
  rows.push_back(Measure("full generator", base));

  {
    auto cfg = base;
    cfg.community_fraction = 0.0;
    rows.push_back(Measure("- communities", cfg));
  }
  {
    auto cfg = base;
    cfg.triadic_closure = 0.0;
    cfg.social_circle = 0.0;
    rows.push_back(Measure("- triadic closure", cfg));
  }
  {
    auto cfg = base;
    cfg.reciprocity = 0.01;  // effectively no follow-back planting
    rows.push_back(Measure("- follow-back planting", cfg));
  }
  {
    auto cfg = base;
    cfg.tail_fraction = 0.0001;  // effectively no zeta tail
    rows.push_back(Measure("- power-law tail", cfg));
  }
  {
    auto cfg = base;
    cfg.sink_fraction = 1e-9;  // min 1 sink enforced internally
    cfg.isolated_fraction = 0.0;
    cfg.small_component_fraction = 0.0;
    rows.push_back(Measure("- periphery (sinks/isolated)", cfg));
  }
  {
    auto cfg = base;
    cfg.superfollower_fraction = 0.0;
    rows.push_back(Measure("- superfollower", cfg));
  }
  {
    auto cfg = base;
    cfg.repair_in_degree = false;
    rows.push_back(Measure("- in-degree repair", cfg));
  }

  util::TextTable table({"variant", "recip", "clust", "assort", "gscc",
                         "alpha", "attracting"});
  for (const Row& r : rows) {
    table.AddRow();
    table.AddCell(r.name);
    table.AddCell(r.reciprocity, 3);
    table.AddCell(r.clustering, 3);
    table.AddCell(r.assortativity, 3);
    table.AddCell(r.gscc, 4);
    table.AddCell(r.alpha, 4);
    table.AddCell(r.attracting);
  }
  table.Print();

  std::printf(
      "\npaper targets: recip 0.337, clust 0.158, assort -0.04, gscc "
      "0.9724, alpha 3.24, attracting ~%.0f (scaled)\n",
      6091.0 * args.num_users / 231246.0);
  std::printf(
      "reading: each removed mechanism should visibly degrade exactly the "
      "properties it was introduced for.\n");
  return 0;
}

// Ablation: sampled-subgraph effects. Section IV-B motivates the verified
// network's power law with Schoenebeck (2013): "emergent properties
// observed in sampled sub-graphs and not seen in the graph as a whole."
// We test the stability direction on our side: random induced subgraphs
// of the verified network keep its power-law exponent, while induced
// subgraphs of an Erdős–Rényi graph of identical size never acquire one —
// the signature is a property of the network's style, not of sampling.

#include <cstdio>

#include "bench_common.h"
#include "gen/generators.h"
#include "gen/verified_network.h"
#include "graph/subgraph.h"
#include "stats/powerlaw.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace elitenet;

struct FitRow {
  double fraction;
  double alpha = 0.0;
  double xmin = 0.0;
  double p_value = -1.0;
};

FitRow FitInducedSubgraph(const graph::DiGraph& g, double fraction,
                          util::Rng* rng, bool with_bootstrap) {
  FitRow row;
  row.fraction = fraction;
  std::vector<bool> mask(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    mask[u] = rng->Bernoulli(fraction);
  }
  auto sub = graph::InduceByMask(g, mask);
  if (!sub.ok()) return row;

  std::vector<double> degrees;
  for (graph::NodeId u = 0; u < sub->graph.num_nodes(); ++u) {
    if (sub->graph.OutDegree(u) > 0) {
      degrees.push_back(static_cast<double>(sub->graph.OutDegree(u)));
    }
  }
  auto fit = stats::FitDiscrete(degrees);
  if (!fit.ok()) return row;
  row.alpha = fit->alpha;
  row.xmin = fit->xmin;
  if (with_bootstrap) {
    util::Rng boot_rng(rng->Next());
    auto gof = stats::BootstrapGoodness(degrees, *fit, 15, &boot_rng);
    if (gof.ok()) row.p_value = gof->p_value;
  }
  return row;
}

void Sweep(const char* name, const graph::DiGraph& g, uint64_t seed) {
  std::printf("\n-- %s (n=%u, m=%llu) --\n", name, g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  util::TextTable table({"node fraction", "alpha", "xmin", "bootstrap p"});
  util::Rng rng(seed);
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const FitRow row = FitInducedSubgraph(g, fraction, &rng, true);
    table.AddRow();
    table.AddCell(row.fraction, 3);
    table.AddCell(row.alpha, 4);
    table.AddCell(row.xmin, 4);
    table.AddCell(row.p_value >= 0.0 ? util::FormatNumber(row.p_value, 3)
                                     : std::string("-"));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  if (args.num_users == 40000) args.num_users = 15000;
  util::PrintBanner("Ablation: power law under subgraph sampling");

  gen::VerifiedNetworkConfig cfg;
  cfg.num_users = args.num_users;
  cfg.seed = args.seed;
  auto verified = gen::GenerateVerifiedNetwork(cfg);
  if (!verified.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  Sweep("verified network", verified->graph, 101);

  util::Rng rng(5);
  auto er = gen::ErdosRenyi(args.num_users, verified->graph.num_edges(),
                            &rng);
  if (er.ok()) {
    Sweep("erdos-renyi (same n, m)", *er, 102);
  }

  std::printf(
      "\nreading: from half sampling upward the verified network keeps its "
      "exponent (~3.2-3.4) with plausible fits; at 25%% the tail thins "
      "below fit-ability (small-sample collapse, not a regime change). "
      "The ER graph's Poisson degrees are rejected (tiny p, alpha pinned "
      "at the search cap) at every level: the power law is a property of "
      "the network style, not an artifact of sampling.\n");
  return 0;
}

// Traversal-kernel benchmark: classic top-down BFS vs the
// direction-optimizing kernel, on the original and the degree-relabeled
// verified network, at 1/2/4/8 worker threads — every cell of the grid
// must produce the same relabel-invariant checksum (per-source reached
// counts, distance sums, eccentricities), or the process exits non-zero.
// Also times the rewired WCC and k-core kernels against bench-local copies
// of their pre-kernel implementations (union-find, per-node heap vectors)
// with full output equality checks. Emits BENCH_graph_kernels.json.
//
// MTEPS follows the GAP convention: sources * m / seconds / 1e6 regardless
// of edges actually probed, so the direction-optimizing kernel's
// short-circuiting shows up as higher TEPS, not a smaller numerator.
//
// Usage: bench_graph_kernels [--scale=N] [--seed=S] [--sources=K]
//                            [--json=PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/kcore.h"
#include "bench_common.h"
#include "gen/verified_network.h"
#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr size_t kNumThreadCounts = 4;

// Relabel-invariant summary of one BFS: counts and hop sums survive any
// node renumbering, unlike raw distance vectors.
struct SourceTally {
  uint64_t reached = 0;
  uint64_t dist_sum = 0;
  uint32_t max_dist = 0;
};

uint64_t FnvMix(uint64_t h, uint64_t x) {
  h ^= x;
  return h * 0x100000001b3ULL;
}

uint64_t ChecksumTallies(const std::vector<SourceTally>& tallies) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const SourceTally& t : tallies) {
    h = FnvMix(h, t.reached);
    h = FnvMix(h, t.dist_sum);
    h = FnvMix(h, t.max_dist);
  }
  return h;
}

// One timed sweep: BFS from every source with per-block arenas (the same
// parallel shape analysis::SampleDistances uses). Tallies land at the
// source's index, so the output is identical for any thread count by
// construction; the checksum's real job is comparing kernel modes and
// node orderings.
struct SweepResult {
  double seconds = 0.0;
  uint64_t edges_scanned = 0;
  uint64_t bottom_up_levels = 0;
  uint64_t checksum = 0;
};

SweepResult RunSweep(const graph::DiGraph& g,
                     const std::vector<graph::NodeId>& sources,
                     graph::BfsMode mode) {
  std::vector<SourceTally> tallies(sources.size());
  const size_t grain = util::EffectiveGrain(sources.size(), 0);
  const size_t num_blocks = (sources.size() + grain - 1) / grain;
  std::vector<uint64_t> block_edges(num_blocks, 0);
  std::vector<uint64_t> block_bottom_up(num_blocks, 0);
  util::SpanTimer sw;
  util::ParallelFor(0, sources.size(), grain, [&](size_t lo, size_t hi) {
    graph::ScratchArena arena(g.num_nodes());
    graph::BfsOptions opts;
    opts.mode = mode;
    for (size_t i = lo; i < hi; ++i) {
      const graph::BfsStats stats = graph::Bfs(g, sources[i], &arena, opts);
      block_edges[lo / grain] += stats.edges_scanned;
      block_bottom_up[lo / grain] += stats.bottom_up_levels;
      SourceTally& t = tallies[i];
      t.reached = stats.nodes_visited;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        const uint32_t d = arena.DistanceOr(v, 0);
        t.dist_sum += d;
        t.max_dist = std::max(t.max_dist, d);
      }
    }
  });
  SweepResult out;
  out.seconds = sw.Seconds();
  for (uint64_t e : block_edges) out.edges_scanned += e;
  for (uint64_t b : block_bottom_up) out.bottom_up_levels += b;
  out.checksum = ChecksumTallies(tallies);
  return out;
}

// -- Pre-kernel reference implementations, kept verbatim for honest
// -- speedup numbers and output equality checks.

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), graph::NodeId{0});
  }
  graph::NodeId Find(graph::NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(graph::NodeId a, graph::NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<graph::NodeId> parent_;
  std::vector<uint64_t> size_;
};

analysis::ComponentLabeling ClassicWcc(const graph::DiGraph& g) {
  const graph::NodeId n = g.num_nodes();
  UnionFind uf(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v : g.OutNeighbors(u)) uf.Union(u, v);
  }
  analysis::ComponentLabeling out;
  out.label.assign(n, 0);
  std::vector<uint32_t> root_to_id(n, UINT32_MAX);
  for (graph::NodeId u = 0; u < n; ++u) {
    const graph::NodeId root = uf.Find(u);
    if (root_to_id[root] == UINT32_MAX) {
      root_to_id[root] = out.num_components++;
      out.sizes.push_back(0);
    }
    out.label[u] = root_to_id[root];
    ++out.sizes[root_to_id[root]];
  }
  return out;
}

analysis::KCoreResult ClassicKCore(const graph::DiGraph& g) {
  const graph::NodeId n = g.num_nodes();
  analysis::KCoreResult out;
  out.coreness.assign(n, 0);
  if (n == 0) return out;
  std::vector<std::vector<graph::NodeId>> adj(n);
  std::vector<uint32_t> degree(n, 0);
  uint32_t max_degree = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    adj[u] = analysis::UndirectedNeighbors(g, u);
    degree[u] = static_cast<uint32_t>(adj[u].size());
    max_degree = std::max(max_degree, degree[u]);
  }
  std::vector<uint64_t> bin(max_degree + 2, 0);
  for (graph::NodeId u = 0; u < n; ++u) ++bin[degree[u]];
  uint64_t start = 0;
  for (uint32_t d = 0; d <= max_degree; ++d) {
    const uint64_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<graph::NodeId> order(n);
  std::vector<uint64_t> pos(n);
  {
    std::vector<uint64_t> cursor(bin.begin(), bin.end() - 1);
    for (graph::NodeId u = 0; u < n; ++u) {
      pos[u] = cursor[degree[u]]++;
      order[pos[u]] = u;
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    const graph::NodeId u = order[i];
    out.coreness[u] = degree[u];
    for (graph::NodeId v : adj[u]) {
      if (degree[v] > degree[u]) {
        const uint32_t dv = degree[v];
        const uint64_t pv = pos[v];
        const uint64_t pw = bin[dv];
        const graph::NodeId w = order[pw];
        if (v != w) {
          std::swap(order[pv], order[pw]);
          pos[v] = pw;
          pos[w] = pv;
        }
        ++bin[dv];
        --degree[v];
      }
    }
  }
  for (uint32_t c : out.coreness) out.max_core = std::max(out.max_core, c);
  for (uint32_t c : out.coreness) {
    if (c == out.max_core) ++out.innermost_size;
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string json_path = "BENCH_graph_kernels.json";
  uint32_t num_sources = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--sources=", 10) == 0) {
      num_sources = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }

  gen::VerifiedNetworkConfig gcfg;
  gcfg.num_users = args.num_users;
  gcfg.seed = args.seed;
  auto net = gen::GenerateVerifiedNetwork(gcfg);
  if (!net.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }
  const graph::DiGraph& g = net->graph;
  const double m = static_cast<double>(g.num_edges());
  std::printf("graph kernels at n=%u m=%llu sources=%u "
              "(hardware_concurrency=%u)\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              num_sources, std::thread::hardware_concurrency());

  // Degree-descending relabeling: same graph up to isomorphism, hub rows
  // first — the layout the bottom-up probes like best.
  util::SpanTimer sw;
  const graph::DegreeRelabeling relabeled = g.RelabelByDegree();
  const double relabel_seconds = sw.Seconds();

  // Sources: non-isolated nodes sampled once; the relabeled sweep starts
  // from the same nodes under their new ids, so tallies stay comparable.
  std::vector<graph::NodeId> candidates;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) + g.InDegree(u) > 0) candidates.push_back(u);
  }
  if (candidates.empty()) {
    std::fprintf(stderr, "graph has no edges; nothing to traverse\n");
    return 1;
  }
  util::Rng rng(args.seed ^ 0x7EB5);
  std::vector<graph::NodeId> sources;
  if (candidates.size() <= num_sources) {
    sources = candidates;
  } else {
    for (uint32_t p : rng.SampleWithoutReplacement(
             static_cast<uint32_t>(candidates.size()), num_sources)) {
      sources.push_back(candidates[p]);
    }
  }
  std::vector<graph::NodeId> relabeled_sources;
  for (graph::NodeId s : sources) {
    relabeled_sources.push_back(relabeled.old_to_new[s]);
  }

  // The full grid: {classic, diropt} x {1,2,4,8 threads} x {orig, relab}.
  struct Cell {
    bench::SweepResult r;
    const char* mode;
    int threads;
    const char* layout;
  };
  std::vector<Cell> cells;
  const graph::BfsMode modes[] = {graph::BfsMode::kClassic,
                                  graph::BfsMode::kDirectionOptimizing};
  const char* mode_names[] = {"classic", "diropt"};
  for (size_t mi = 0; mi < 2; ++mi) {
    for (size_t ti = 0; ti < bench::kNumThreadCounts; ++ti) {
      util::SetThreadCount(bench::kThreadCounts[ti]);
      cells.push_back({bench::RunSweep(g, sources, modes[mi]), mode_names[mi],
                       bench::kThreadCounts[ti], "original"});
      cells.push_back({bench::RunSweep(relabeled.graph, relabeled_sources,
                                       modes[mi]),
                       mode_names[mi], bench::kThreadCounts[ti], "relabeled"});
    }
  }
  util::SetThreadCount(0);

  bool checksums_identical = true;
  for (const Cell& c : cells) {
    if (c.r.checksum != cells[0].r.checksum) checksums_identical = false;
  }
  const double k = static_cast<double>(sources.size());
  for (const Cell& c : cells) {
    const double mteps = c.r.seconds > 0.0 ? k * m / c.r.seconds / 1e6 : 0.0;
    std::printf("  %-7s threads=%d %-9s %8.3fs  %8.1f MTEPS  "
                "edges_scanned=%llu%s\n",
                c.mode, c.threads, c.layout, c.r.seconds, mteps,
                static_cast<unsigned long long>(c.r.edges_scanned),
                c.r.checksum == cells[0].r.checksum ? "" : "  MISMATCH");
  }

  // Headline speedup: single-thread original-layout diropt vs classic —
  // thread count cannot flatter it, only the algorithm can.
  double classic_1t = 0.0, diropt_1t = 0.0;
  uint64_t classic_edges = 0, diropt_edges = 0, diropt_bottom_up = 0;
  for (const Cell& c : cells) {
    if (c.threads != 1 || std::strcmp(c.layout, "original") != 0) continue;
    if (std::strcmp(c.mode, "classic") == 0) {
      classic_1t = c.r.seconds;
      classic_edges = c.r.edges_scanned;
    } else {
      diropt_1t = c.r.seconds;
      diropt_edges = c.r.edges_scanned;
      diropt_bottom_up = c.r.bottom_up_levels;
    }
  }
  const double bfs_speedup = diropt_1t > 0.0 ? classic_1t / diropt_1t : 0.0;

  // WCC and k-core: rewired kernels vs their pre-kernel implementations.
  util::SetThreadCount(1);
  sw.Reset();
  const auto wcc_classic = bench::ClassicWcc(g);
  const double wcc_classic_sec = sw.Seconds();
  sw.Reset();
  const auto wcc_opt = analysis::WeaklyConnectedComponents(g);
  const double wcc_opt_sec = sw.Seconds();
  const bool wcc_equal = wcc_classic.label == wcc_opt.label &&
                         wcc_classic.sizes == wcc_opt.sizes &&
                         wcc_classic.num_components == wcc_opt.num_components;
  sw.Reset();
  const auto kcore_classic = bench::ClassicKCore(g);
  const double kcore_classic_sec = sw.Seconds();
  sw.Reset();
  const auto kcore_opt = analysis::KCoreDecomposition(g);
  const double kcore_opt_sec = sw.Seconds();
  const bool kcore_equal = kcore_classic.coreness == kcore_opt.coreness &&
                           kcore_classic.max_core == kcore_opt.max_core &&
                           kcore_classic.innermost_size ==
                               kcore_opt.innermost_size;
  util::SetThreadCount(0);

  std::printf("bfs: diropt %.2fx classic (1 thread, original layout); "
              "edges scanned %llu -> %llu; bottom-up levels %llu\n",
              bfs_speedup, static_cast<unsigned long long>(classic_edges),
              static_cast<unsigned long long>(diropt_edges),
              static_cast<unsigned long long>(diropt_bottom_up));
  std::printf("wcc: union-find %.4fs -> bfs %.4fs (%.2fx), outputs %s\n",
              wcc_classic_sec, wcc_opt_sec,
              wcc_opt_sec > 0.0 ? wcc_classic_sec / wcc_opt_sec : 0.0,
              wcc_equal ? "equal" : "DIFFER");
  std::printf("kcore: heap-vectors %.4fs -> flat-csr %.4fs (%.2fx), "
              "outputs %s\n",
              kcore_classic_sec, kcore_opt_sec,
              kcore_opt_sec > 0.0 ? kcore_classic_sec / kcore_opt_sec : 0.0,
              kcore_equal ? "equal" : "DIFFER");
  std::printf("relabel: %.4fs; checksums identical across grid: %s\n",
              relabel_seconds, checksums_identical ? "yes" : "NO");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %u,\n", args.num_users);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  std::fprintf(f, "  \"num_edges\": %llu,\n",
               static_cast<unsigned long long>(g.num_edges()));
  std::fprintf(f, "  \"sources\": %zu,\n", sources.size());
  bench::WriteEnvironmentJson(f);
  std::fprintf(f, "  \"bfs_grid\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const double mteps = c.r.seconds > 0.0 ? k * m / c.r.seconds / 1e6 : 0.0;
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %d, \"layout\": "
                 "\"%s\", \"seconds\": %.5f, \"mteps\": %.2f, "
                 "\"edges_scanned\": %llu, \"bottom_up_levels\": %llu, "
                 "\"checksum\": \"%016llx\"}%s\n",
                 c.mode, c.threads, c.layout, c.r.seconds, mteps,
                 static_cast<unsigned long long>(c.r.edges_scanned),
                 static_cast<unsigned long long>(c.r.bottom_up_levels),
                 static_cast<unsigned long long>(c.r.checksum),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"bfs_diropt_speedup_1t\": %.3f,\n", bfs_speedup);
  std::fprintf(f, "  \"wcc\": {\"classic_seconds\": %.5f, "
               "\"optimized_seconds\": %.5f, \"speedup\": %.3f, "
               "\"outputs_equal\": %s},\n",
               wcc_classic_sec, wcc_opt_sec,
               wcc_opt_sec > 0.0 ? wcc_classic_sec / wcc_opt_sec : 0.0,
               wcc_equal ? "true" : "false");
  std::fprintf(f, "  \"kcore\": {\"classic_seconds\": %.5f, "
               "\"optimized_seconds\": %.5f, \"speedup\": %.3f, "
               "\"outputs_equal\": %s},\n",
               kcore_classic_sec, kcore_opt_sec,
               kcore_opt_sec > 0.0 ? kcore_classic_sec / kcore_opt_sec : 0.0,
               kcore_equal ? "true" : "false");
  std::fprintf(f, "  \"relabel_seconds\": %.5f,\n", relabel_seconds);
  std::fprintf(f, "  \"checksums_identical\": %s\n",
               checksums_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  const bool ok = checksums_identical && wcc_equal && kcore_equal;
  return ok ? 0 : 2;
}

// Cold-start bench: time-to-first-query (TTFQ) across the four graph
// load paths the tools support, over the same underlying graph:
//
//   edge-list   text parse, then full warm-index build
//   eng1        legacy binary deserialize into heap vectors, full build
//   eng2        zero-copy mmap snapshot, full warm-index build
//   eng2+widx   zero-copy mmap + persisted warm indexes (.widx sidecar)
//
// TTFQ = LoadAnyGraph + QueryEngine::Create + the first query answered —
// the metric a restarting server actually feels. Each path also reports
// the load/warmup split and the VmRSS delta (mmapped paths only fault in
// pages the queries touch).
//
// Two hard assertions make the bench a correctness harness:
//   * all four paths produce byte-identical responses to the same probe
//     request stream (order-sensitive FNV over the JSON bytes) — the
//     snapshot and sidecar formats may change *where* bytes come from,
//     never *what* is served;
//   * eng2+widx TTFQ is at least `--min-speedup=` (default 10) times
//     faster than the eng1 rebuild path.
// Either failing exits non-zero; the ctest smoke run (label "perf")
// turns that into CI coverage.
//
// Usage: bench_cold_start [--scale=N] [--seed=S] [--json=PATH]
//                         [--probes=N] [--min-speedup=X]

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/dataset.h"
#include "gen/verified_network.h"
#include "graph/io.h"
#include "serve/engine.h"
#include "serve/warm_index_cache.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace bench {
namespace {

uint64_t FnvString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t FnvMix(uint64_t h, uint64_t x) {
  h ^= x;
  return h * 0x100000001b3ULL;
}

// Resident set size from /proc/self/status, in KiB; 0 when unavailable
// (non-Linux), in which case the rss_delta column reads 0 everywhere.
int64_t RssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtoll(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Deterministic probe stream touching every query type, spread across the
// id space so component/rank/degree lookups exercise varied nodes.
std::vector<serve::Request> MakeProbes(graph::NodeId n, size_t count,
                                       uint64_t seed) {
  util::Rng rng(seed);
  std::vector<serve::Request> probes;
  probes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    serve::Request r;
    switch (i % 5) {
      case 0:
        r.type = serve::RequestType::kEgoSummary;
        r.node = static_cast<graph::NodeId>(rng.UniformU64(n));
        break;
      case 1:
        r.type = serve::RequestType::kTopKRank;
        r.k = 10 + static_cast<uint32_t>(rng.UniformU64(90));
        break;
      case 2:
        r.type = serve::RequestType::kDistance;
        r.node = static_cast<graph::NodeId>(rng.UniformU64(n));
        r.target = static_cast<graph::NodeId>(rng.UniformU64(n));
        break;
      case 3:
        r.type = serve::RequestType::kNeighbors;
        r.node = static_cast<graph::NodeId>(rng.UniformU64(n));
        r.direction = rng.Bernoulli(0.5) ? serve::NeighborDirection::kOut
                                         : serve::NeighborDirection::kIn;
        r.limit = 32;
        break;
      default:
        r.type = serve::RequestType::kFingerprint;
        break;
    }
    probes.push_back(r);
  }
  return probes;
}

struct ColdStartResult {
  std::string name;
  double load_seconds = 0.0;
  double warmup_seconds = 0.0;
  double ttfq_seconds = 0.0;
  double total_seconds = 0.0;  // load + warmup + all probes
  int64_t rss_delta_kb = 0;
  uint64_t checksum = 0;
  std::string load_format;  // what LoadAnyGraph detected
  bool from_widx = false;
};

// One full cold start: load `path` through the public dispatch, stand up
// the engine (optionally against a .widx sidecar), answer every probe.
ColdStartResult RunColdStart(const std::string& name, const std::string& path,
                             const std::string& widx_path,
                             const std::vector<serve::Request>& probes) {
  ColdStartResult out;
  out.name = name;
  const int64_t rss_before = RssKb();
  util::SpanTimer total;

  core::GraphLoadInfo info;
  auto g = core::LoadAnyGraph(path, &info);
  if (!g.ok()) {
    std::fprintf(stderr, "[%s] load failed: %s\n", name.c_str(),
                 g.status().ToString().c_str());
    std::exit(1);
  }
  out.load_seconds = info.seconds;
  out.load_format = info.format;

  serve::EngineOptions opts;
  opts.warm_index_path = widx_path;
  auto engine = serve::QueryEngine::Create(std::move(*g), opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "[%s] engine startup failed: %s\n", name.c_str(),
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  out.warmup_seconds = (*engine)->warmup_seconds();
  out.from_widx = (*engine)->warm_index_from_cache();

  uint64_t checksum = 0xcbf29ce484222325ULL;
  bool first = true;
  for (const serve::Request& r : probes) {
    const serve::QueryResponse resp = (*engine)->Execute(r);
    if (first) {
      out.ttfq_seconds = total.Seconds();
      first = false;
    }
    checksum = FnvMix(checksum, FnvString(resp.json));
  }
  out.checksum = checksum;
  out.total_seconds = total.Seconds();
  out.rss_delta_kb = RssKb() - rss_before;
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace elitenet

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string json_path = "BENCH_cold_start.json";
  size_t num_probes = 200;
  double min_speedup = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--probes=", 9) == 0) {
      num_probes = std::strtoull(argv[i] + 9, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    }
  }

  gen::VerifiedNetworkConfig gcfg;
  gcfg.num_users = args.num_users;
  gcfg.seed = args.seed;
  auto net = gen::GenerateVerifiedNetwork(gcfg);
  if (!net.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 net.status().ToString().c_str());
    return 1;
  }

  // Artifacts. The canonical graph is the *edge-list roundtrip* of the
  // generated one (text is the lossiest format: it cannot represent
  // trailing isolated nodes), so every path serves exactly the same graph.
  const std::string edges_path = bench::CsvPath(args, "cold_start.edges");
  const std::string eng1_path = bench::CsvPath(args, "cold_start.eng");
  const std::string eng2_path = bench::CsvPath(args, "cold_start.eng2");
  const std::string widx_path = serve::WarmIndexPathFor(eng2_path);
  if (Status s = graph::WriteEdgeListText(net->graph, edges_path); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto canonical = graph::ReadEdgeListText(edges_path);
  if (!canonical.ok()) {
    std::fprintf(stderr, "roundtrip failed: %s\n",
                 canonical.status().ToString().c_str());
    return 1;
  }
  if (Status s = graph::SaveBinary(*canonical, eng1_path); !s.ok()) {
    std::fprintf(stderr, "eng1 write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = graph::SaveBinaryV2(*canonical, eng2_path); !s.ok()) {
    std::fprintf(stderr, "eng2 write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::remove(widx_path.c_str());  // the widx run below must write it fresh

  const graph::NodeId n = canonical->num_nodes();
  std::printf("cold-start bench: n=%u m=%llu probes=%zu\n", n,
              static_cast<unsigned long long>(canonical->num_edges()),
              num_probes);
  canonical = graph::DiGraph();  // benched paths reload from disk

  const std::vector<serve::Request> probes =
      bench::MakeProbes(n, num_probes, args.seed ^ 0xC01D);

  // Seed the sidecar: one throwaway cold start against the eng2 snapshot
  // with the widx path configured builds the indexes and persists them.
  {
    const bench::ColdStartResult seed_run = bench::RunColdStart(
        "widx-seed", eng2_path, widx_path, {probes.front()});
    if (seed_run.from_widx) {
      std::fprintf(stderr, "FAIL: seed run unexpectedly found a sidecar\n");
      return 1;
    }
  }

  std::vector<bench::ColdStartResult> runs;
  runs.push_back(bench::RunColdStart("edge-list", edges_path, "", probes));
  runs.push_back(bench::RunColdStart("eng1", eng1_path, "", probes));
  runs.push_back(bench::RunColdStart("eng2", eng2_path, "", probes));
  runs.push_back(
      bench::RunColdStart("eng2+widx", eng2_path, widx_path, probes));
  for (const bench::ColdStartResult& r : runs) {
    std::printf("  %-10s load=%8.4fs warm=%8.4fs ttfq=%8.4fs rss=%+7lld KB "
                "checksum=%016llx%s\n",
                r.name.c_str(), r.load_seconds, r.warmup_seconds,
                r.ttfq_seconds, static_cast<long long>(r.rss_delta_kb),
                static_cast<unsigned long long>(r.checksum),
                r.from_widx ? " (widx hit)" : "");
  }

  bool ok = true;
  bool identical = true;
  if (!runs.back().from_widx) {
    std::fprintf(stderr, "FAIL: eng2+widx run did not restore the sidecar\n");
    ok = false;
  }
  for (const bench::ColdStartResult& r : runs) {
    if (r.checksum != runs[0].checksum) {
      std::fprintf(stderr,
                   "FAIL: %s responses differ from the edge-list path\n",
                   r.name.c_str());
      identical = false;
      ok = false;
    }
  }
  const double speedup = runs[3].ttfq_seconds > 0.0
                             ? runs[1].ttfq_seconds / runs[3].ttfq_seconds
                             : 0.0;
  std::printf("  TTFQ speedup eng2+widx over eng1: %.1fx (need >= %.1fx)\n",
              speedup, min_speedup);
  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: cold-start speedup %.1fx below %.1fx\n",
                 speedup, min_speedup);
    ok = false;
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %u,\n", args.num_users);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(args.seed));
  std::fprintf(f, "  \"num_nodes\": %u,\n", n);
  std::fprintf(f, "  \"probes\": %zu,\n", num_probes);
  bench::WriteEnvironmentJson(f);
  std::fprintf(f, "  \"paths\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const bench::ColdStartResult& r = runs[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"format\": \"%s\", "
                 "\"load_seconds\": %.6f, \"warmup_seconds\": %.6f, "
                 "\"ttfq_seconds\": %.6f, \"total_seconds\": %.6f, "
                 "\"rss_delta_kb\": %lld, \"from_widx\": %s, "
                 "\"checksum\": \"%016llx\"}%s\n",
                 r.name.c_str(), r.load_format.c_str(), r.load_seconds,
                 r.warmup_seconds, r.ttfq_seconds, r.total_seconds,
                 static_cast<long long>(r.rss_delta_kb),
                 r.from_widx ? "true" : "false",
                 static_cast<unsigned long long>(r.checksum),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"responses_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"ttfq_speedup_widx_over_eng1\": %.2f,\n", speedup);
  std::fprintf(f, "  \"min_speedup_required\": %.2f,\n", min_speedup);
  std::fprintf(f, "  \"pass\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}

// Conclusion-section reproduction: the "unique fingerprint" claim. The
// verified-network signature (reciprocity, clustering, dissortativity,
// GSCC, mean distance, power-law alpha, attracting fraction) should
// discriminate the calibrated network from generic random-graph families
// of the same size — and the structural-feature model should predict
// top-tier reach well above chance.

#include <cstdio>

#include "bench_common.h"
#include "core/fingerprint.h"
#include "core/reach_predictor.h"
#include "gen/generators.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  if (args.num_users == 40000) args.num_users = 15000;  // several graphs
  util::PrintBanner("Conclusion: verified-user fingerprint");
  core::VerifiedStudy study = bench::MakeStudy(args);
  const uint32_t n = study.network().graph.num_nodes();
  const uint64_t m = study.network().graph.num_edges();

  const core::GraphFingerprint paper = core::PaperFingerprint();
  struct Entry {
    std::string name;
    double similarity;
    std::string fingerprint;
  };
  std::vector<Entry> entries;
  auto measure = [&](const std::string& name, const graph::DiGraph& g) {
    auto fp = core::ComputeFingerprint(g);
    if (fp.ok()) {
      entries.push_back({name, core::FingerprintSimilarity(*fp, paper),
                         fp->ToString()});
    }
  };

  measure("verified (calibrated)", study.network().graph);
  util::Rng rng(19);
  if (auto g = gen::ErdosRenyi(n, m, &rng); g.ok()) {
    measure("erdos-renyi", *g);
  }
  const uint32_t fanout = std::max<uint32_t>(1, static_cast<uint32_t>(m / n));
  if (auto g = gen::PreferentialAttachment(n, fanout, &rng); g.ok()) {
    measure("preferential-attachment", *g);
  }
  if (auto g = gen::WattsStrogatz(n, fanout, 0.1, &rng); g.ok()) {
    measure("watts-strogatz", *g);
  }

  util::TextTable table({"network", "similarity to paper", "fingerprint"});
  for (const Entry& e : entries) {
    table.AddRow();
    table.AddCell(e.name);
    table.AddCell(e.similarity, 3);
    table.AddCell(e.fingerprint);
  }
  std::printf("\n");
  table.Print();

  bool discriminates = entries.size() >= 2;
  for (size_t i = 1; i < entries.size(); ++i) {
    discriminates &= entries[0].similarity > entries[i].similarity + 0.05;
  }
  std::printf("\nfingerprint discriminates verified-style from generic "
              "networks: %s\n",
              discriminates ? "OK" : "DEVIATES");

  // Reach prediction (the verification-worthiness screen).
  auto report =
      core::RunReachPrediction(study.network().graph, study.profiles());
  if (report.ok()) {
    std::printf("\nreach prediction from structure only: AUC=%.3f "
                "accuracy=%.3f (chance AUC=0.5)  [predictive: %s]\n",
                report->auc, report->accuracy,
                report->auc > 0.75 ? "OK" : "DEVIATES");
  }

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "fingerprint.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"network", "similarity"}).ok();
    for (const Entry& e : entries) {
      csv.WriteRow({e.name, util::FormatNumber(e.similarity, 6)}).ok();
    }
    csv.Close().ok();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

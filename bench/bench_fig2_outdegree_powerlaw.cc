// Fig. 2 + Section IV-B reproduction: the out-degree distribution on
// log-log axes, the Clauset-Shalizi-Newman discrete MLE fit (paper:
// alpha 3.24, xmin 1334, bootstrap p 0.13), and the Vuong tests against
// log-normal / exponential / Poisson alternatives.

#include <cstdio>

#include "analysis/degree.h"
#include "bench_common.h"
#include "core/paper_reference.h"
#include "util/csv.h"
#include "util/histogram.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace elitenet;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  util::PrintBanner("Fig. 2 / Section IV-B: out-degree power law");
  core::VerifiedStudy study = bench::MakeStudy(args);

  // Log-log distribution of proportion of users vs out-degree (Fig. 2).
  const auto degrees = analysis::OutDegreeVector(study.network().graph);
  util::LogHistogram hist(1.0, 1.5, 40);
  for (double d : degrees) hist.Add(d);
  std::printf("\nLog-binned out-degree distribution:\n");
  std::fputs(hist.ToAsciiChart("out-degree").c_str(), stdout);

  util::CsvWriter csv;
  const std::string path = bench::CsvPath(args, "fig2_outdegree.csv");
  if (csv.Open(path).ok()) {
    csv.WriteRow({"bin_lo", "bin_hi", "count", "fraction"}).ok();
    for (const auto& b : hist.bins()) {
      if (b.count == 0) continue;
      csv.WriteRow({util::FormatNumber(b.lo, 8), util::FormatNumber(b.hi, 8),
                    std::to_string(b.count),
                    util::FormatNumber(b.fraction, 8)})
          .ok();
    }
    csv.Close().ok();
  }

  // CSN fit with bootstrap + Vuong (the expensive part).
  std::printf("\nFitting discrete power law (CSN xmin scan + %d bootstrap "
              "replicates)...\n",
              study.config().bootstrap_replicates);
  const auto fit = study.RunOutDegreeFit(/*with_bootstrap=*/true);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }

  const double scale = static_cast<double>(args.num_users) /
                       static_cast<double>(paper::kUsersEnglish);
  std::printf("\n");
  bench::Compare("alpha", paper::kOutDegreeAlpha, fit->fit.alpha, 0.12);
  bench::Compare("xmin (scaled)", paper::kOutDegreeXmin * scale,
                 fit->fit.xmin, 0.5);
  std::printf("  %-36s tail_n=%llu  KS=%.4f\n", "tail",
              static_cast<unsigned long long>(fit->fit.tail_n),
              fit->fit.ks_distance);
  if (fit->gof) {
    const bool plausible = fit->gof->p_value > 0.1;
    std::printf("  %-36s paper=%-16.2f measured=%-16.3f [shape: %s]\n",
                "bootstrap p (p>0.1 => plausible)", paper::kOutDegreePValue,
                fit->gof->p_value, plausible ? "OK" : "DEVIATES");
  }

  std::printf("\nVuong likelihood-ratio tests (positive favors the power "
              "law; paper reports 2-3 digit LRs):\n");
  auto print_vuong = [](const char* name,
                        const std::optional<stats::VuongResult>& v) {
    if (!v) {
      std::printf("  vs %-12s (fit unavailable)\n", name);
      return;
    }
    std::printf("  vs %-12s LR=%-10.1f stat=%-8.2f p(two-sided)=%.3g\n",
                name, v->log_likelihood_ratio, v->statistic,
                v->p_two_sided);
  };
  print_vuong("log-normal", fit->vs_lognormal);
  print_vuong("exponential", fit->vs_exponential);
  print_vuong("poisson", fit->vs_poisson);
  std::printf(
      "\nNote: with an exactly power-law tail the fitted log-normal is\n"
      "asymptotically indistinguishable (LR ~ 0); the paper's large LR\n"
      "values reflect real-data deviations from log-normality. Shape\n"
      "criterion here: log-normal must not win decisively (stat > -2).\n");
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

// Reach prediction — Section IV-F's claim turned into a model: "how
// strongly a user is embedded in the Twitter verified user network is
// highly predictive of their reach in the generic Twittersphere." The
// predictor extracts purely structural per-user features from the
// sub-graph (degrees, reciprocal ties, PageRank, coreness, HITS) and
// fits a from-scratch logistic regression (IRLS) to predict whether a
// user's whole-Twitter reach lands in the top tier. The paper's
// verification-worthiness use case is the same model with the decision
// threshold as the knob.

#ifndef ELITENET_CORE_REACH_PREDICTOR_H_
#define ELITENET_CORE_REACH_PREDICTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gen/profiles.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace core {

/// Structural (graph-only) features for one user. Heavy-tailed counts
/// enter in log1p form so the linear model sees comparable scales.
struct NodeFeatures {
  static constexpr int kCount = 7;
  double log_in_degree = 0.0;
  double log_out_degree = 0.0;
  /// Fraction of the user's ties that are mutual.
  double reciprocal_fraction = 0.0;
  double log_pagerank = 0.0;
  double coreness = 0.0;
  double hub = 0.0;
  double authority = 0.0;

  std::vector<double> ToVector() const;
  static const char* Name(int index);
};

/// Extracts features for every node (PageRank/k-core/HITS computed once).
Result<std::vector<NodeFeatures>> ExtractNodeFeatures(
    const graph::DiGraph& g);

/// L2-regularized logistic regression fitted by iteratively reweighted
/// least squares; features are standardized internally.
class LogisticModel {
 public:
  struct Options {
    double l2 = 1e-4;
    int max_iterations = 50;
    double tolerance = 1e-8;
  };

  /// X: one row per example; y: 0/1 labels. Requires >= 10 examples and
  /// both classes present.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, const Options& options);
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y) {
    return Fit(x, y, Options());
  }

  /// P(y = 1 | x). Requires Fit() succeeded.
  double PredictProba(const std::vector<double>& x) const;

  bool fitted() const { return fitted_; }
  /// Weights on standardized features (index 0 = intercept).
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;  // intercept + per-feature
  std::vector<double> mean_, stddev_;
  bool fitted_ = false;
};

/// Area under the ROC curve via the rank statistic; ties get midranks.
/// Returns 0.5 when either class is empty.
double AucScore(const std::vector<double>& scores,
                const std::vector<int>& labels);

struct ReachPredictionReport {
  double auc = 0.0;
  double accuracy = 0.0;           ///< at the 0.5 threshold
  double positive_rate = 0.0;      ///< label prevalence in the test split
  size_t train_n = 0;
  size_t test_n = 0;
  /// Standardized-feature weights, for interpretability.
  std::vector<std::pair<std::string, double>> feature_weights;
};

/// End-to-end experiment: label = followers in the top `top_fraction`,
/// stratified split, train on structure only, evaluate on held-out
/// users.
Result<ReachPredictionReport> RunReachPrediction(
    const graph::DiGraph& g, const std::vector<gen::UserProfile>& profiles,
    double top_fraction = 0.1, double test_fraction = 0.3,
    uint64_t seed = 7);

}  // namespace core
}  // namespace elitenet

#endif  // ELITENET_CORE_REACH_PREDICTOR_H_

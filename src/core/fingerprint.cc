#include "core/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/assortativity.h"
#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/distance.h"
#include "analysis/reciprocity.h"
#include "core/paper_reference.h"
#include "stats/powerlaw.h"
#include "util/rng.h"

namespace elitenet {
namespace core {

std::string GraphFingerprint::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "density=%.5f recip=%.3f clust=%.3f assort=%+.3f "
                "gscc=%.3f dist=%.2f alpha=%.2f attract=%.4f",
                density, reciprocity, clustering, assortativity,
                giant_scc_fraction, mean_distance, powerlaw_alpha,
                attracting_fraction);
  return buf;
}

Result<GraphFingerprint> ComputeFingerprint(
    const graph::DiGraph& g, const FingerprintOptions& options) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  GraphFingerprint fp;
  fp.density = g.Density();
  fp.reciprocity = analysis::ComputeReciprocity(g).rate;

  util::Rng rng(options.seed);
  fp.clustering =
      analysis::ComputeClusteringSampled(g, options.clustering_samples, &rng)
          .average_local;
  fp.assortativity =
      analysis::DegreeAssortativity(g, analysis::DegreeMode::kOutIn);

  const auto scc = analysis::StronglyConnectedComponents(g);
  fp.giant_scc_fraction = scc.GiantFraction();
  fp.attracting_fraction =
      static_cast<double>(analysis::FindAttractingComponents(g, scc).count) /
      static_cast<double>(g.num_nodes());

  fp.mean_distance =
      analysis::SampleDistances(g, options.distance_sources, &rng)
          .mean_distance;

  std::vector<double> degrees;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > 0) {
      degrees.push_back(static_cast<double>(g.OutDegree(u)));
    }
  }
  const auto fit = stats::FitDiscrete(degrees);
  fp.powerlaw_alpha = fit.ok() ? fit->alpha : 6.0;
  return fp;
}

GraphFingerprint PaperFingerprint() {
  GraphFingerprint fp;
  fp.density = paper::kDensity;
  fp.reciprocity = paper::kReciprocity;
  fp.clustering = paper::kAvgLocalClustering;
  fp.assortativity = paper::kDegreeAssortativity;
  fp.giant_scc_fraction = paper::kGiantSccFraction;
  fp.mean_distance = paper::kMeanDistance;
  fp.powerlaw_alpha = paper::kOutDegreeAlpha;
  fp.attracting_fraction = static_cast<double>(paper::kAttractingComponents) /
                           static_cast<double>(paper::kUsersEnglish);
  return fp;
}

namespace {

double ComponentDeviation(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-9});
  return std::min(1.0, std::fabs(a - b) / scale);
}

}  // namespace

double FingerprintSimilarity(const GraphFingerprint& a,
                             const GraphFingerprint& b) {
  double dev = 0.0;
  int k = 0;
  // Density is scale-dependent and deliberately excluded: a fingerprint
  // should recognize the *style* of a network at any size.
  dev += ComponentDeviation(a.reciprocity, b.reciprocity);
  ++k;
  dev += ComponentDeviation(a.clustering, b.clustering);
  ++k;
  // Assortativity is near zero for both; compare on an absolute 0.5 band.
  dev += std::min(1.0, std::fabs(a.assortativity - b.assortativity) / 0.5);
  ++k;
  dev += ComponentDeviation(a.giant_scc_fraction, b.giant_scc_fraction);
  ++k;
  dev += ComponentDeviation(a.mean_distance, b.mean_distance);
  ++k;
  dev += ComponentDeviation(a.powerlaw_alpha, b.powerlaw_alpha);
  ++k;
  dev += ComponentDeviation(a.attracting_fraction, b.attracting_fraction);
  ++k;
  return 1.0 - dev / static_cast<double>(k);
}

}  // namespace core
}  // namespace elitenet

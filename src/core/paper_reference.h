// Every number the paper reports, as named constants, so benches and
// EXPERIMENTS.md compare measured values against a single source of
// truth. Section references are to Paul et al., ICDE 2019
// (arXiv:1812.09710v3).

#ifndef ELITENET_CORE_PAPER_REFERENCE_H_
#define ELITENET_CORE_PAPER_REFERENCE_H_

#include <cstdint>

namespace elitenet {
namespace paper {

// ---- Section III (dataset) ------------------------------------------------
inline constexpr uint32_t kUsersTotal = 297776;      ///< all verified, Jul 2018
inline constexpr uint32_t kUsersEnglish = 231246;    ///< English subset
inline constexpr uint64_t kEdges = 79213811;
inline constexpr double kDensity = 0.00148;
inline constexpr uint32_t kIsolatedUsers = 6027;
inline constexpr double kAvgOutDegree = 342.55;
inline constexpr uint32_t kMaxOutDegree = 114815;    ///< '@6BillionPeople'
inline constexpr uint32_t kGiantSccSize = 224872;
inline constexpr double kGiantSccFraction = 0.9724;
inline constexpr uint32_t kConnectedComponents = 6251;

// ---- Section IV-A (basic analysis) ---------------------------------------
inline constexpr double kAvgLocalClustering = 0.1583;
inline constexpr double kDegreeAssortativity = -0.04;
inline constexpr uint32_t kAttractingComponents = 6091;

// ---- Section IV-B (degree / eigenvalue power laws) ------------------------
inline constexpr double kOutDegreeAlpha = 3.24;
inline constexpr double kOutDegreeXmin = 1334.0;
inline constexpr double kOutDegreePValue = 0.13;
inline constexpr double kEigenAlpha = 3.18;
inline constexpr double kEigenXmin = 9377.26;
inline constexpr double kEigenPValue = 0.3;
inline constexpr uint32_t kEigenvaluesComputed = 10000;
/// "2-3 digit likelihood-ratio values" against every alternative.
inline constexpr double kVuongMinLogLikelihoodRatio = 10.0;

// ---- Section IV-C (reciprocity) -------------------------------------------
inline constexpr double kReciprocity = 0.337;
inline constexpr double kReciprocityWholeTwitter = 0.221;  ///< Kwak et al.
inline constexpr double kReciprocityFlickr = 0.68;

// ---- Section IV-D (degrees of separation) ---------------------------------
inline constexpr double kMeanDistance = 2.74;
inline constexpr double kMeanDistanceWholeTwitterSampled = 4.12;
inline constexpr double kMeanDistanceWholeTwitterOptimal = 3.43;

// ---- Section IV-E (bios, Tables I-II): counts at 231,246 users -------------
struct NamedCount {
  const char* phrase;
  uint32_t count;
};
inline constexpr NamedCount kTopBigrams[] = {
    {"official twitter", 12166}, {"official account", 2788},
    {"award winning", 2270},     {"follow us", 2268},
    {"co founder", 1581},        {"husband father", 1540},
    {"opinions own", 1222},      {"new album", 1088},
    {"singer songwriter", 1043}, {"co host", 933},
    {"latest news", 904},        {"breaking news", 898},
    {"anchor reporter", 855},    {"rugby player", 799},
    {"managing editor", 769},
};
inline constexpr NamedCount kTopTrigrams[] = {
    {"official twitter account", 5457},
    {"official twitter page", 1774},
    {"weather alerts en", 847},
    {"emmy award winning", 475},
    {"new york times", 464},
    {"editor in chief", 461},
    {"best selling author", 296},
    {"professional rugby player", 253},
    {"wall street journal", 252},
    {"professional baseball player", 241},
    {"report crime here", 238},
    {"award winning journalist", 223},
    {"for customer service", 174},
    {"olympic gold medalist", 174},
    {"monday to friday", 174},
};

// ---- Section V (activity analysis) ----------------------------------------
inline constexpr int kPortmanteauMaxLag = 185;
inline constexpr double kLjungBoxMaxP = 3.81e-38;
inline constexpr double kBoxPierceMaxP = 7.57e-38;
inline constexpr double kAdfStatistic = -3.86;
inline constexpr double kAdfCritical95 = -3.42;
inline constexpr int kActivityObservations = 366;
/// PELT recovers two change-points: Dec 23-25, 2017 and ~first week of
/// April 2018.
inline constexpr int kChangePoints = 2;

}  // namespace paper
}  // namespace elitenet

#endif  // ELITENET_CORE_PAPER_REFERENCE_H_

#include "core/reach_predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/centrality.h"
#include "analysis/hits.h"
#include "analysis/kcore.h"
#include "stats/correlation.h"
#include "timeseries/linalg.h"
#include "util/rng.h"

namespace elitenet {
namespace core {

std::vector<double> NodeFeatures::ToVector() const {
  return {log_in_degree, log_out_degree, reciprocal_fraction,
          log_pagerank,  coreness,       hub,
          authority};
}

const char* NodeFeatures::Name(int index) {
  static const char* kNames[NodeFeatures::kCount] = {
      "log(in-degree)",  "log(out-degree)", "reciprocal fraction",
      "log(pagerank)",   "coreness",        "hub score",
      "authority score"};
  if (index < 0 || index >= kCount) return "?";
  return kNames[index];
}

Result<std::vector<NodeFeatures>> ExtractNodeFeatures(
    const graph::DiGraph& g) {
  const graph::NodeId n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");

  EN_ASSIGN_OR_RETURN(const analysis::PageRankResult pr,
                      analysis::PageRank(g));
  const analysis::KCoreResult kcore = analysis::KCoreDecomposition(g);
  EN_ASSIGN_OR_RETURN(const analysis::HitsResult hits, analysis::Hits(g));

  std::vector<NodeFeatures> out(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    NodeFeatures& f = out[u];
    const double in_deg = g.InDegree(u);
    const double out_deg = g.OutDegree(u);
    f.log_in_degree = std::log1p(in_deg);
    f.log_out_degree = std::log1p(out_deg);

    // Mutual ties among all ties.
    const auto outs = g.OutNeighbors(u);
    const auto ins = g.InNeighbors(u);
    uint64_t mutual = 0;
    size_t i = 0, j = 0;
    while (i < outs.size() && j < ins.size()) {
      if (outs[i] < ins[j]) {
        ++i;
      } else if (outs[i] > ins[j]) {
        ++j;
      } else {
        ++mutual;
        ++i;
        ++j;
      }
    }
    const double total_ties = in_deg + out_deg;
    f.reciprocal_fraction =
        total_ties > 0.0 ? 2.0 * static_cast<double>(mutual) / total_ties
                         : 0.0;

    f.log_pagerank = std::log(std::max(pr.scores[u], 1e-300));
    f.coreness = static_cast<double>(kcore.coreness[u]);
    f.hub = hits.hub[u];
    f.authority = hits.authority[u];
  }
  return out;
}

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticModel::Fit(const std::vector<std::vector<double>>& x,
                          const std::vector<int>& y,
                          const Options& options) {
  const size_t n = x.size();
  if (n != y.size()) return Status::InvalidArgument("x/y size mismatch");
  if (n < 10) return Status::InvalidArgument("need >= 10 examples");
  const size_t k = x[0].size();
  int positives = 0;
  for (int label : y) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    positives += label;
  }
  if (positives == 0 || positives == static_cast<int>(n)) {
    return Status::FailedPrecondition("need both classes present");
  }

  // Standardize features.
  mean_.assign(k, 0.0);
  stddev_.assign(k, 0.0);
  for (const auto& row : x) {
    if (row.size() != k) return Status::InvalidArgument("ragged rows");
    for (size_t j = 0; j < k; ++j) mean_[j] += row[j];
  }
  for (size_t j = 0; j < k; ++j) mean_[j] /= static_cast<double>(n);
  for (const auto& row : x) {
    for (size_t j = 0; j < k; ++j) {
      const double d = row[j] - mean_[j];
      stddev_[j] += d * d;
    }
  }
  for (size_t j = 0; j < k; ++j) {
    stddev_[j] = std::sqrt(stddev_[j] / static_cast<double>(n));
    if (stddev_[j] < 1e-12) stddev_[j] = 1.0;  // constant feature
  }
  auto standardized = [&](size_t i, size_t j) {
    return (x[i][j] - mean_[j]) / stddev_[j];
  };

  // IRLS: each Newton step solves the weighted least squares
  //   (Xᵀ W X + λI) Δ = Xᵀ (y - p) - λ w
  // which we express as an augmented ordinary least-squares problem on
  // sqrt(W)-scaled rows plus sqrt(λ) ridge rows.
  weights_.assign(k + 1, 0.0);
  const double lambda = options.l2 * static_cast<double>(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    timeseries::Matrix a(n + k + 1, k + 1, 0.0);
    std::vector<double> b(n + k + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double z = weights_[0];
      for (size_t j = 0; j < k; ++j) {
        z += weights_[j + 1] * standardized(i, j);
      }
      const double p = Sigmoid(z);
      const double w = std::max(p * (1.0 - p), 1e-6);
      const double sw = std::sqrt(w);
      // Working response: z + (y - p)/w, times sqrt(w).
      b[i] = sw * (z + (static_cast<double>(y[i]) - p) / w);
      a(i, 0) = sw;
      for (size_t j = 0; j < k; ++j) a(i, j + 1) = sw * standardized(i, j);
    }
    // Ridge rows (intercept unpenalized beyond a whisper for stability).
    const double sqrt_lambda = std::sqrt(lambda);
    a(n, 0) = 1e-4;
    for (size_t j = 0; j < k; ++j) a(n + 1 + j, j + 1) = sqrt_lambda;

    const auto sol = timeseries::SolveLeastSquares(a, b);
    if (!sol.ok()) return sol.status();

    double delta = 0.0;
    for (size_t j = 0; j <= k; ++j) {
      delta += std::fabs(sol->x[j] - weights_[j]);
    }
    weights_ = sol->x;
    if (delta < options.tolerance) break;
  }
  fitted_ = true;
  return Status::OK();
}

double LogisticModel::PredictProba(const std::vector<double>& x) const {
  EN_CHECK(fitted_);
  EN_CHECK(x.size() + 1 == weights_.size());
  double z = weights_[0];
  for (size_t j = 0; j < x.size(); ++j) {
    z += weights_[j + 1] * (x[j] - mean_[j]) / stddev_[j];
  }
  return Sigmoid(z);
}

double AucScore(const std::vector<double>& scores,
                const std::vector<int>& labels) {
  EN_CHECK(scores.size() == labels.size());
  uint64_t positives = 0;
  for (int label : labels) positives += label;
  const uint64_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  const std::vector<double> ranks = stats::FractionalRanks(scores);
  double rank_sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) rank_sum += ranks[i];
  }
  const double p = static_cast<double>(positives);
  return (rank_sum - p * (p + 1.0) / 2.0) /
         (p * static_cast<double>(negatives));
}

Result<ReachPredictionReport> RunReachPrediction(
    const graph::DiGraph& g, const std::vector<gen::UserProfile>& profiles,
    double top_fraction, double test_fraction, uint64_t seed) {
  if (profiles.size() != g.num_nodes()) {
    return Status::InvalidArgument("profiles size mismatch");
  }
  if (top_fraction <= 0.0 || top_fraction >= 1.0 || test_fraction <= 0.0 ||
      test_fraction >= 1.0) {
    return Status::InvalidArgument("fractions must be in (0, 1)");
  }

  EN_ASSIGN_OR_RETURN(const std::vector<NodeFeatures> features,
                      ExtractNodeFeatures(g));

  // Label: followers in the top `top_fraction`.
  std::vector<double> followers;
  followers.reserve(profiles.size());
  for (const auto& p : profiles) {
    followers.push_back(static_cast<double>(p.followers));
  }
  std::vector<double> sorted = followers;
  std::sort(sorted.begin(), sorted.end());
  const double threshold =
      sorted[static_cast<size_t>((1.0 - top_fraction) *
                                 static_cast<double>(sorted.size() - 1))];

  // Shuffled split.
  std::vector<uint32_t> order(profiles.size());
  std::iota(order.begin(), order.end(), 0u);
  util::Rng rng(seed);
  rng.Shuffle(&order);
  const size_t test_n =
      static_cast<size_t>(test_fraction * static_cast<double>(order.size()));

  std::vector<std::vector<double>> train_x;
  std::vector<int> train_y;
  std::vector<std::vector<double>> test_x;
  std::vector<int> test_y;
  for (size_t i = 0; i < order.size(); ++i) {
    const uint32_t u = order[i];
    const int label = followers[u] >= threshold ? 1 : 0;
    if (i < test_n) {
      test_x.push_back(features[u].ToVector());
      test_y.push_back(label);
    } else {
      train_x.push_back(features[u].ToVector());
      train_y.push_back(label);
    }
  }

  LogisticModel model;
  EN_RETURN_IF_ERROR(model.Fit(train_x, train_y));

  ReachPredictionReport report;
  report.train_n = train_x.size();
  report.test_n = test_x.size();
  std::vector<double> scores;
  scores.reserve(test_x.size());
  uint64_t correct = 0, positives = 0;
  for (size_t i = 0; i < test_x.size(); ++i) {
    const double p = model.PredictProba(test_x[i]);
    scores.push_back(p);
    const int predicted = p >= 0.5 ? 1 : 0;
    correct += predicted == test_y[i];
    positives += test_y[i];
  }
  report.auc = AucScore(scores, test_y);
  report.accuracy =
      static_cast<double>(correct) / static_cast<double>(test_x.size());
  report.positive_rate =
      static_cast<double>(positives) / static_cast<double>(test_x.size());
  for (int j = 0; j < NodeFeatures::kCount; ++j) {
    report.feature_weights.emplace_back(NodeFeatures::Name(j),
                                        model.weights()[j + 1]);
  }
  return report;
}

}  // namespace core
}  // namespace elitenet

#include "core/study.h"

#include <cmath>

#include "core/paper_reference.h"
#include "stats/distributions.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/trace.h"

namespace elitenet {
namespace core {

namespace {

// Honors StudyConfig::threads and the observability switches before
// entering a pipeline stage. A threads value of 0 leaves the process-wide
// setting (env override / auto) untouched; trace/metrics paths only ever
// turn instrumentation on, never off (the env vars may have enabled it
// process-wide already).
void ApplyThreadConfig(const StudyConfig& config) {
  if (config.threads > 0) util::SetThreadCount(config.threads);
  if (!config.trace_path.empty()) util::SetTracingEnabled(true);
  if (!config.metrics_path.empty()) util::SetMetricsEnabled(true);
}

// Fires the live-progress hook for a named stage.
void ReportStage(const StudyConfig& config, const char* stage) {
  if (config.progress) config.progress(stage);
}

}  // namespace

Status VerifiedStudy::Generate() {
  ApplyThreadConfig(config_);
  ELITENET_SPAN("study.generate");
  ReportStage(config_, "generate/network");
  EN_ASSIGN_OR_RETURN(gen::VerifiedNetwork net,
                      gen::GenerateVerifiedNetwork(config_.network));
  network_ = std::move(net);
  ReportStage(config_, "generate/profiles");
  EN_ASSIGN_OR_RETURN(std::vector<gen::UserProfile> profiles,
                      gen::GenerateProfiles(*network_, config_.profiles));
  profiles_ = std::move(profiles);
  ReportStage(config_, "generate/bios");
  EN_ASSIGN_OR_RETURN(gen::BioCorpus bios,
                      gen::GenerateBios(*network_, config_.bios));
  bios_ = std::move(bios);
  ReportStage(config_, "generate/activity");
  EN_ASSIGN_OR_RETURN(gen::ActivitySeries activity,
                      gen::GenerateActivity(config_.activity));
  activity_ = std::move(activity);
  return Status::OK();
}

Status VerifiedStudy::AdoptDataset(gen::VerifiedNetwork network,
                                   std::vector<gen::UserProfile> profiles,
                                   gen::BioCorpus bios,
                                   gen::ActivitySeries activity) {
  const uint64_t n = network.graph.num_nodes();
  if (network.roles.size() != n || profiles.size() != n ||
      bios.bios.size() != n) {
    return Status::InvalidArgument("dataset components disagree in size");
  }
  if (activity.daily_tweets.empty()) {
    return Status::InvalidArgument("empty activity series");
  }
  network_ = std::move(network);
  profiles_ = std::move(profiles);
  bios_ = std::move(bios);
  activity_ = std::move(activity);
  return Status::OK();
}

namespace {

Status RequireGenerated(bool generated) {
  if (!generated) {
    return Status::FailedPrecondition("call Generate() first");
  }
  return Status::OK();
}

}  // namespace

Result<BasicReport> VerifiedStudy::RunBasic() const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ApplyThreadConfig(config_);
  ELITENET_SPAN("study.basic");
  ReportStage(config_, "basic");
  const graph::DiGraph& g = network_->graph;

  BasicReport r;
  r.degrees = analysis::ComputeDegreeStats(g);
  r.reciprocity = analysis::ComputeReciprocity(g);
  util::Rng rng(config_.analysis_seed);
  r.clustering =
      analysis::ComputeClusteringSampled(g, config_.clustering_samples, &rng);
  r.assortativity = analysis::ComputeAssortativity(g);

  const analysis::ComponentLabeling weak =
      analysis::WeaklyConnectedComponents(g);
  r.weak_components = weak.num_components;
  r.giant_weak_size = weak.GiantSize();

  const analysis::ComponentLabeling scc =
      analysis::StronglyConnectedComponents(g);
  r.strong_components = scc.num_components;
  r.giant_scc_size = scc.GiantSize();
  r.giant_scc_fraction = scc.GiantFraction();

  const analysis::AttractingComponents attracting =
      analysis::FindAttractingComponents(g, scc);
  r.attracting_components = attracting.count;
  r.attracting_singletons = attracting.singletons;
  return r;
}

namespace {

// Shared §IV-B pipeline: CSN fit + bootstrap + the three Vuong tests.
Result<PowerLawReport> AnalyzeDistribution(const std::vector<double>& data,
                                           bool discrete, int replicates,
                                           bool with_bootstrap,
                                           uint64_t seed) {
  PowerLawReport report;
  if (discrete) {
    EN_ASSIGN_OR_RETURN(report.fit, stats::FitDiscrete(data));
  } else {
    EN_ASSIGN_OR_RETURN(report.fit, stats::FitContinuous(data));
  }

  if (with_bootstrap && replicates > 0) {
    util::Rng rng(seed);
    EN_ASSIGN_OR_RETURN(
        stats::GoodnessOfFit gof,
        stats::BootstrapGoodness(data, report.fit, replicates, &rng));
    report.gof = gof;
  }

  const std::vector<double> tail = stats::TailOf(data, report.fit.xmin);
  const std::vector<double> pl_ll =
      stats::PointwiseLogLikelihood(tail, report.fit);

  auto vuong_against = [&](const Result<stats::AltFit>& alt)
      -> std::optional<stats::VuongResult> {
    if (!alt.ok()) return std::nullopt;
    const std::vector<double> alt_ll =
        stats::AltPointwiseLogLikelihood(tail, *alt);
    const Result<stats::VuongResult> v = stats::VuongTest(pl_ll, alt_ll);
    if (!v.ok()) return std::nullopt;
    return *v;
  };
  report.vs_lognormal = vuong_against(
      stats::FitLogNormalTail(data, report.fit.xmin, discrete));
  report.vs_exponential = vuong_against(
      stats::FitExponentialTail(data, report.fit.xmin, discrete));
  if (discrete) {
    report.vs_poisson =
        vuong_against(stats::FitPoissonTail(data, report.fit.xmin));
  }
  return report;
}

}  // namespace

Result<PowerLawReport> VerifiedStudy::RunOutDegreeFit(
    bool with_bootstrap) const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ApplyThreadConfig(config_);
  ELITENET_SPAN("study.outdegree_fit");
  ReportStage(config_, "outdegree_fit");
  std::vector<double> degrees = analysis::OutDegreeVector(network_->graph);
  // The fitters require positive data; zero out-degrees (sinks, isolated)
  // are outside any power-law support, as in the paper's Fig. 2 which
  // plots out-degree >= 1.
  std::vector<double> positive;
  positive.reserve(degrees.size());
  for (double d : degrees) {
    if (d > 0.0) positive.push_back(d);
  }
  return AnalyzeDistribution(positive, /*discrete=*/true,
                             config_.bootstrap_replicates, with_bootstrap,
                             config_.analysis_seed ^ 0xD15C0);
}

Result<PowerLawReport> VerifiedStudy::RunEigenvalueFit(
    bool with_bootstrap) const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ApplyThreadConfig(config_);
  ELITENET_SPAN("study.eigenvalue_fit");
  ReportStage(config_, "eigenvalue_fit");
  analysis::LanczosOptions opts;
  opts.k = config_.eigenvalue_k;
  opts.seed = config_.analysis_seed ^ 0xE16E;
  EN_ASSIGN_OR_RETURN(analysis::LanczosResult lanczos,
                      analysis::TopLaplacianEigenvalues(network_->graph,
                                                        opts));
  // Drop near-zero eigenvalues, mirroring the paper ("we discarded most
  // of the smaller eigenvalues as ... close to zero").
  std::vector<double> evals;
  for (double ev : lanczos.eigenvalues) {
    if (ev > 1e-6) evals.push_back(ev);
  }
  if (evals.size() < 25) {
    return Status::FailedPrecondition("too few nonzero eigenvalues");
  }
  return AnalyzeDistribution(evals, /*discrete=*/false,
                             config_.bootstrap_replicates, with_bootstrap,
                             config_.analysis_seed ^ 0xE16E1);
}

Result<analysis::DistanceDistribution> VerifiedStudy::RunDistances() const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ApplyThreadConfig(config_);
  ELITENET_SPAN("study.distances");
  ReportStage(config_, "distances");
  util::Rng rng(config_.analysis_seed ^ 0xD157);
  return analysis::SampleDistances(network_->graph,
                                   config_.distance_sources, &rng);
}

Result<std::vector<RelationReport>> VerifiedStudy::RunCentralityRelations()
    const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ApplyThreadConfig(config_);
  ELITENET_SPAN("study.centrality_relations");
  ReportStage(config_, "centrality_relations");
  const graph::DiGraph& g = network_->graph;

  analysis::PageRankOptions pr_opts;
  EN_ASSIGN_OR_RETURN(analysis::PageRankResult pr,
                      analysis::PageRank(g, pr_opts));

  analysis::BetweennessOptions bw_opts;
  bw_opts.pivots = config_.betweenness_pivots;
  bw_opts.seed = config_.analysis_seed ^ 0xB37;
  EN_ASSIGN_OR_RETURN(std::vector<double> betweenness,
                      analysis::Betweenness(g, bw_opts));

  const std::vector<double> followers = gen::FollowersColumn(*profiles_);
  const std::vector<double> listed = gen::ListedColumn(*profiles_);
  const std::vector<double> statuses = gen::StatusesColumn(*profiles_);

  // The six panels of Fig. 5, in paper order.
  struct Panel {
    const char* x;
    const char* y;
    const std::vector<double>* xs;
    const std::vector<double>* ys;
  };
  const Panel panels[] = {
      {"betweenness", "list memberships", &betweenness, &listed},
      {"betweenness", "followers", &betweenness, &followers},
      {"pagerank", "list memberships", &pr.scores, &listed},
      {"pagerank", "followers", &pr.scores, &followers},
      {"statuses", "followers", &statuses, &followers},
      {"list memberships", "followers", &listed, &followers},
  };

  std::vector<RelationReport> out;
  for (const Panel& p : panels) {
    RelationReport rel;
    rel.x_name = p.x;
    rel.y_name = p.y;
    EN_ASSIGN_OR_RETURN(rel.curve, stats::SmoothLogLog(*p.xs, *p.ys));
    out.push_back(std::move(rel));
  }
  return out;
}

Result<TextReport> VerifiedStudy::RunText(size_t top_k) const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ELITENET_SPAN("study.text");
  ReportStage(config_, "text");
  text::NGramCounter unigrams(1), bigrams(2), trigrams(3), fourgrams(4);
  for (const std::string& bio : bios_->bios) {
    const auto clauses = text::TokenizeClauses(bio);
    unigrams.AddClauses(clauses);
    bigrams.AddClauses(clauses);
    trigrams.AddClauses(clauses);
    fourgrams.AddClauses(clauses);
  }
  TextReport report;
  report.top_unigrams = unigrams.TopK(top_k * 2);
  // Tables I-II are curated: phrases fully subsumed by a longer phrase
  // are reported once, at the longest length (see FilterSubsumed docs).
  report.top_bigrams =
      text::FilterSubsumed(bigrams.TopK(top_k * 4), trigrams);
  report.top_bigrams.resize(
      std::min(report.top_bigrams.size(), top_k));
  report.top_trigrams =
      text::FilterSubsumed(trigrams.TopK(top_k * 4), fourgrams);
  report.top_trigrams.resize(
      std::min(report.top_trigrams.size(), top_k));
  return report;
}

Result<ActivityReport> VerifiedStudy::RunActivity() const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ELITENET_SPAN("study.activity");
  ReportStage(config_, "activity");
  const std::vector<double>& series = activity_->daily_tweets;
  const int max_lag = std::min<int>(config_.portmanteau_max_lag,
                                    static_cast<int>(series.size()) - 2);

  ActivityReport report;
  EN_ASSIGN_OR_RETURN(report.ljung_box,
                      timeseries::LjungBoxTest(series, max_lag));
  EN_ASSIGN_OR_RETURN(report.box_pierce,
                      timeseries::BoxPierceTest(series, max_lag));

  timeseries::AdfOptions adf_opts;
  adf_opts.regression = timeseries::AdfRegression::kConstantTrend;
  EN_ASSIGN_OR_RETURN(report.adf, timeseries::AdfTest(series, adf_opts));

  timeseries::PenaltySweepOptions pelt_opts;
  EN_ASSIGN_OR_RETURN(report.pelt,
                      timeseries::PeltPenaltySweep(series, pelt_opts));
  for (const timeseries::StableChangePoint& cp : report.pelt.stable) {
    report.change_dates.push_back(
        timeseries::AddDays(activity_->start,
                            static_cast<int64_t>(cp.index)));
  }
  return report;
}

Result<StudyReport> VerifiedStudy::RunAll() const {
  EN_RETURN_IF_ERROR(RequireGenerated(generated()));
  ApplyThreadConfig(config_);
  StudyReport report;
  {
    ELITENET_SPAN("study.run_all");
    EN_ASSIGN_OR_RETURN(report.basic, RunBasic());
    EN_ASSIGN_OR_RETURN(report.out_degree, RunOutDegreeFit());
    const Result<PowerLawReport> eigen = RunEigenvalueFit();
    if (eigen.ok()) report.eigenvalues = *eigen;
    EN_ASSIGN_OR_RETURN(report.distances, RunDistances());
    EN_ASSIGN_OR_RETURN(report.relations, RunCentralityRelations());
    EN_ASSIGN_OR_RETURN(report.text, RunText());
    EN_ASSIGN_OR_RETURN(report.activity, RunActivity());
  }
  // The run_all span is closed above so the exported trace includes it.
  if (!config_.trace_path.empty()) {
    EN_RETURN_IF_ERROR(
        util::TraceRecorder::Global().WriteChromeJson(config_.trace_path));
  }
  if (!config_.metrics_path.empty()) {
    EN_RETURN_IF_ERROR(util::MetricsRegistry::Global().Snapshot().WriteJson(
        config_.metrics_path));
  }
  return report;
}

std::string RenderReport(const StudyReport& r, uint32_t num_users) {
  std::string out;
  char line[512];
  auto add = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  const double scale =
      static_cast<double>(num_users) / static_cast<double>(paper::kUsersEnglish);

  add("== Verified-network study (n=%u users; paper n=%u) ==\n", num_users,
      paper::kUsersEnglish);
  add("\n-- Section IV-A: basic analysis --\n");
  add("  %-28s measured=%-12.6f paper=%.5f\n", "density",
      r.basic.degrees.density, paper::kDensity);
  add("  %-28s measured=%-12.2f paper=%.2f (at full scale)\n",
      "avg out-degree", r.basic.degrees.avg_out_degree,
      paper::kAvgOutDegree);
  add("  %-28s measured=%-12llu paper~%.0f (scaled)\n", "isolated users",
      static_cast<unsigned long long>(r.basic.degrees.isolated_nodes),
      paper::kIsolatedUsers * scale);
  add("  %-28s measured=%-12.4f paper=%.4f\n", "giant SCC fraction",
      r.basic.giant_scc_fraction, paper::kGiantSccFraction);
  add("  %-28s measured=%-12u paper~%.0f (scaled)\n", "weak components",
      r.basic.weak_components, paper::kConnectedComponents * scale);
  add("  %-28s measured=%-12llu paper~%.0f (scaled)\n",
      "attracting components",
      static_cast<unsigned long long>(r.basic.attracting_components),
      paper::kAttractingComponents * scale);
  add("  %-28s measured=%-12.4f paper=%.4f\n", "avg local clustering",
      r.basic.clustering.average_local, paper::kAvgLocalClustering);
  add("  %-28s measured=%-12.4f paper=%.2f\n", "assortativity (out-in)",
      r.basic.assortativity.out_in, paper::kDegreeAssortativity);
  add("  %-28s measured=%-12.4f paper=%.3f\n", "reciprocity",
      r.basic.reciprocity.rate, paper::kReciprocity);

  add("\n-- Section IV-B: out-degree power law --\n");
  add("  alpha=%.3f (paper %.2f)  xmin=%.0f  tail_n=%llu  KS=%.4f\n",
      r.out_degree.fit.alpha, paper::kOutDegreeAlpha, r.out_degree.fit.xmin,
      static_cast<unsigned long long>(r.out_degree.fit.tail_n),
      r.out_degree.fit.ks_distance);
  if (r.out_degree.gof) {
    add("  bootstrap p=%.3f (paper %.2f; p>0.1 supports the power law)\n",
        r.out_degree.gof->p_value, paper::kOutDegreePValue);
  }
  auto add_vuong = [&](const char* name,
                       const std::optional<stats::VuongResult>& v) {
    if (v) {
      add("  Vuong vs %-12s LR=%-10.1f stat=%-8.2f (positive favors "
          "power law)\n",
          name, v->log_likelihood_ratio, v->statistic);
    }
  };
  add_vuong("log-normal", r.out_degree.vs_lognormal);
  add_vuong("exponential", r.out_degree.vs_exponential);
  add_vuong("poisson", r.out_degree.vs_poisson);

  if (r.eigenvalues) {
    add("\n-- Section IV-B: Laplacian eigenvalue power law --\n");
    add("  alpha=%.3f (paper %.2f)  xmin=%.1f  tail_n=%llu\n",
        r.eigenvalues->fit.alpha, paper::kEigenAlpha,
        r.eigenvalues->fit.xmin,
        static_cast<unsigned long long>(r.eigenvalues->fit.tail_n));
    if (r.eigenvalues->gof) {
      add("  bootstrap p=%.3f (paper %.2f)\n", r.eigenvalues->gof->p_value,
          paper::kEigenPValue);
    }
  }

  add("\n-- Section IV-D: degrees of separation --\n");
  add("  mean distance=%.3f (paper %.2f; whole Twitter %.2f)\n",
      r.distances.mean_distance, paper::kMeanDistance,
      paper::kMeanDistanceWholeTwitterSampled);
  add("  median=%llu  effective diameter (90th pct)=%llu\n",
      static_cast<unsigned long long>(r.distances.median_distance),
      static_cast<unsigned long long>(r.distances.effective_diameter));

  add("\n-- Fig. 5: centrality vs reach (Spearman rank correlations) --\n");
  for (const RelationReport& rel : r.relations) {
    add("  %-18s vs %-18s rho=%+.3f  log-log slope=%+.3f\n",
        rel.x_name.c_str(), rel.y_name.c_str(), rel.curve.spearman,
        rel.curve.ols_slope);
  }

  add("\n-- Section IV-E: top bio phrases --\n");
  add("  bigrams:\n");
  for (size_t i = 0; i < r.text.top_bigrams.size() && i < 15; ++i) {
    add("    %-28s %8llu\n",
        text::TitleCase(r.text.top_bigrams[i].ngram).c_str(),
        static_cast<unsigned long long>(r.text.top_bigrams[i].count));
  }
  add("  trigrams:\n");
  for (size_t i = 0; i < r.text.top_trigrams.size() && i < 15; ++i) {
    add("    %-28s %8llu\n",
        text::TitleCase(r.text.top_trigrams[i].ngram).c_str(),
        static_cast<unsigned long long>(r.text.top_trigrams[i].count));
  }

  add("\n-- Section V: activity analysis --\n");
  add("  Ljung-Box  max p=%.3g (paper %.3g)\n",
      r.activity.ljung_box.max_p_value, paper::kLjungBoxMaxP);
  add("  Box-Pierce max p=%.3g (paper %.3g)\n",
      r.activity.box_pierce.max_p_value, paper::kBoxPierceMaxP);
  add("  ADF stat=%.3f crit(5%%)=%.3f -> %s (paper: %.2f vs %.2f, "
      "stationary)\n",
      r.activity.adf.statistic, r.activity.adf.crit_5pct,
      r.activity.adf.stationary_at_5pct ? "stationary" : "unit root",
      paper::kAdfStatistic, paper::kAdfCritical95);
  add("  PELT stable change-points (paper: Dec 23-25 and ~first week of "
      "April):\n");
  for (size_t i = 0; i < r.activity.change_dates.size(); ++i) {
    add("    %s (support %.0f%%)\n",
        timeseries::FormatDate(r.activity.change_dates[i]).c_str(),
        100.0 * r.activity.pelt.stable[i].support);
  }
  return out;
}

}  // namespace core
}  // namespace elitenet

// Network fingerprinting — the paper's concluding proposal: "the
// above-mentioned deviations likely constitute a unique fingerprint for
// verified users", usable to tell a verified-style network from generic
// ones and to drive "realistic synthetic network generation".
//
// A GraphFingerprint is the vector of the paper's headline statistics;
// Similarity() compares two fingerprints component-wise so a generated
// graph can be scored against the paper's published values.

#ifndef ELITENET_CORE_FINGERPRINT_H_
#define ELITENET_CORE_FINGERPRINT_H_

#include <string>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace core {

struct GraphFingerprint {
  double density = 0.0;
  double reciprocity = 0.0;
  double clustering = 0.0;
  double assortativity = 0.0;
  double giant_scc_fraction = 0.0;
  double mean_distance = 0.0;
  /// Out-degree power-law exponent (6.0 cap when no meaningful tail).
  double powerlaw_alpha = 0.0;
  /// Attracting components per node.
  double attracting_fraction = 0.0;

  std::string ToString() const;
};

struct FingerprintOptions {
  /// Sampling depths (fingerprints favor speed over precision).
  uint32_t distance_sources = 24;
  uint32_t clustering_samples = 4000;
  uint64_t seed = 99;
};

/// Measures the fingerprint of an arbitrary directed graph.
Result<GraphFingerprint> ComputeFingerprint(
    const graph::DiGraph& g, const FingerprintOptions& options = {});

/// The fingerprint the paper reports for the English verified network.
GraphFingerprint PaperFingerprint();

/// Similarity in [0, 1]: 1 - mean relative deviation over components
/// (clamped per-component at 1). Verified-like graphs score high against
/// PaperFingerprint(); ER/BA/WS graphs score visibly lower.
double FingerprintSimilarity(const GraphFingerprint& a,
                             const GraphFingerprint& b);

}  // namespace core
}  // namespace elitenet

#endif  // ELITENET_CORE_FINGERPRINT_H_

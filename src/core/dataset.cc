#include "core/dataset.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "graph/io.h"
#include "timeseries/calendar.h"
#include "util/metrics.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace elitenet {
namespace core {

namespace {

constexpr char kUsersMagic[8] = {'E', 'N', 'U', 'S', 'E', 'R', 'S', '1'};
constexpr char kManifestHeader[] = "elitenet-dataset v1";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
Status WritePod(std::FILE* f, const T& value) {
  if (std::fwrite(&value, sizeof(T), 1, f) != 1) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

template <typename T>
Status ReadPod(std::FILE* f, T* value) {
  if (std::fread(value, sizeof(T), 1, f) != 1) {
    return Status::Corruption("truncated record");
  }
  return Status::OK();
}

Status WriteUsersFile(const StudyDataset& d, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open " + path);
  if (std::fwrite(kUsersMagic, 1, 8, f.get()) != 8) {
    return Status::IoError("magic write failed");
  }
  const uint64_t n = d.network.roles.size();
  EN_RETURN_IF_ERROR(WritePod(f.get(), n));
  for (uint64_t i = 0; i < n; ++i) {
    EN_RETURN_IF_ERROR(
        WritePod(f.get(), static_cast<uint8_t>(d.network.roles[i])));
    EN_RETURN_IF_ERROR(WritePod(f.get(), d.network.popularity[i]));
    const gen::UserProfile& p = d.profiles[i];
    EN_RETURN_IF_ERROR(WritePod(f.get(), p.followers));
    EN_RETURN_IF_ERROR(WritePod(f.get(), p.friends));
    EN_RETURN_IF_ERROR(WritePod(f.get(), p.listed));
    EN_RETURN_IF_ERROR(WritePod(f.get(), p.statuses));
    EN_RETURN_IF_ERROR(
        WritePod(f.get(), static_cast<uint8_t>(d.bios.roles[i])));
  }
  return Status::OK();
}

Status ReadUsersFile(const std::string& path, uint64_t expected_n,
                     StudyDataset* d) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open " + path);
  char magic[8];
  if (std::fread(magic, 1, 8, f.get()) != 8 ||
      std::memcmp(magic, kUsersMagic, 8) != 0) {
    return Status::Corruption("bad users magic: " + path);
  }
  uint64_t n = 0;
  EN_RETURN_IF_ERROR(ReadPod(f.get(), &n));
  if (n != expected_n) {
    return Status::Corruption("users count disagrees with graph");
  }
  d->network.roles.resize(n);
  d->network.popularity.resize(n);
  d->profiles.resize(n);
  d->bios.roles.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t role = 0, bio_role = 0;
    EN_RETURN_IF_ERROR(ReadPod(f.get(), &role));
    if (role > static_cast<uint8_t>(gen::UserRole::kIsolated)) {
      return Status::Corruption("invalid user role");
    }
    d->network.roles[i] = static_cast<gen::UserRole>(role);
    EN_RETURN_IF_ERROR(ReadPod(f.get(), &d->network.popularity[i]));
    gen::UserProfile& p = d->profiles[i];
    EN_RETURN_IF_ERROR(ReadPod(f.get(), &p.followers));
    EN_RETURN_IF_ERROR(ReadPod(f.get(), &p.friends));
    EN_RETURN_IF_ERROR(ReadPod(f.get(), &p.listed));
    EN_RETURN_IF_ERROR(ReadPod(f.get(), &p.statuses));
    EN_RETURN_IF_ERROR(ReadPod(f.get(), &bio_role));
    if (bio_role >= static_cast<uint8_t>(gen::BioRole::kNumRoles)) {
      return Status::Corruption("invalid bio role");
    }
    d->bios.roles[i] = static_cast<gen::BioRole>(bio_role);
  }
  return Status::OK();
}

Status WriteBios(const StudyDataset& d, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open " + path);
  for (const std::string& bio : d.bios.bios) {
    // Bios are single-line by construction; enforce it defensively.
    for (char c : bio) {
      if (c == '\n') return Status::InvalidArgument("bio contains newline");
    }
    if (std::fprintf(f.get(), "%s\n", bio.c_str()) < 0) {
      return Status::IoError("bio write failed");
    }
  }
  return Status::OK();
}

Status ReadBios(const std::string& path, uint64_t expected_n,
                StudyDataset* d) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open " + path);
  d->bios.bios.clear();
  d->bios.bios.reserve(expected_n);
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    line = buf;
    if (!line.empty() && line.back() == '\n') line.pop_back();
    d->bios.bios.push_back(line);
  }
  if (d->bios.bios.size() != expected_n) {
    return Status::Corruption("bio count disagrees with graph");
  }
  return Status::OK();
}

Status WriteActivity(const StudyDataset& d, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open " + path);
  for (size_t i = 0; i < d.activity.daily_tweets.size(); ++i) {
    const timeseries::Date date = d.activity.DateAt(i);
    if (std::fprintf(f.get(), "%s,%.17g\n",
                     timeseries::FormatDate(date).c_str(),
                     d.activity.daily_tweets[i]) < 0) {
      return Status::IoError("activity write failed");
    }
  }
  return Status::OK();
}

Status ReadActivity(const std::string& path, StudyDataset* d) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open " + path);
  d->activity.daily_tweets.clear();
  char buf[256];
  bool first = true;
  while (std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    const auto line = util::StripAsciiWhitespace(buf);
    if (line.empty()) continue;
    const auto fields = util::Split(line, ',');
    if (fields.size() != 2) return Status::Corruption("bad activity row");
    const auto ymd = util::Split(fields[0], '-');
    uint64_t y, m, day;
    double value;
    if (ymd.size() != 3 || !util::ParseUint64(ymd[0], &y) ||
        !util::ParseUint64(ymd[1], &m) || !util::ParseUint64(ymd[2], &day) ||
        !util::ParseDouble(fields[1], &value)) {
      return Status::Corruption("bad activity row: " + std::string(line));
    }
    if (first) {
      d->activity.start = {static_cast<int>(y), static_cast<int>(m),
                           static_cast<int>(day)};
      if (!timeseries::IsValidDate(d->activity.start)) {
        return Status::Corruption("invalid activity start date");
      }
      first = false;
    }
    d->activity.daily_tweets.push_back(value);
  }
  if (d->activity.daily_tweets.empty()) {
    return Status::Corruption("empty activity series");
  }
  return Status::OK();
}

Status WriteManifest(const StudyDataset& d, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open " + path);
  std::fprintf(f.get(), "%s\n", kManifestHeader);
  std::fprintf(f.get(), "users %u\n", d.network.graph.num_nodes());
  std::fprintf(f.get(), "edges %llu\n",
               static_cast<unsigned long long>(d.network.graph.num_edges()));
  std::fprintf(f.get(), "days %zu\n", d.activity.daily_tweets.size());
  return Status::OK();
}

Result<std::pair<uint64_t, uint64_t>> ReadManifest(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open " + path);
  char buf[256];
  if (std::fgets(buf, sizeof(buf), f.get()) == nullptr ||
      util::StripAsciiWhitespace(buf) != kManifestHeader) {
    return Status::Corruption("unrecognized manifest header");
  }
  uint64_t users = 0, edges = 0;
  while (std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    const auto toks = util::SplitWhitespace(buf);
    if (toks.size() != 2) continue;
    uint64_t value = 0;
    if (!util::ParseUint64(toks[1], &value)) continue;
    if (toks[0] == "users") users = value;
    if (toks[0] == "edges") edges = value;
  }
  if (users == 0) return Status::Corruption("manifest missing user count");
  return std::make_pair(users, edges);
}

}  // namespace

Status SaveDataset(const StudyDataset& d, const std::string& dir) {
  const uint64_t n = d.network.graph.num_nodes();
  if (d.network.roles.size() != n || d.profiles.size() != n ||
      d.bios.bios.size() != n || d.bios.roles.size() != n) {
    return Status::InvalidArgument("dataset components disagree in size");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create directory " + dir);
  }
  EN_RETURN_IF_ERROR(graph::SaveBinary(d.network.graph, dir + "/graph.eng"));
  EN_RETURN_IF_ERROR(WriteUsersFile(d, dir + "/users.bin"));
  EN_RETURN_IF_ERROR(WriteBios(d, dir + "/bios.txt"));
  EN_RETURN_IF_ERROR(WriteActivity(d, dir + "/activity.csv"));
  EN_RETURN_IF_ERROR(WriteManifest(d, dir + "/MANIFEST"));
  return Status::OK();
}

namespace {

uint64_t FileSizeOr0(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

// The dispatch behind LoadAnyGraph; `format` is filled with what the
// bytes turned out to be, independent of the extension.
Result<graph::DiGraph> LoadAnyGraphImpl(const std::string& path,
                                        std::string* format,
                                        uint64_t* bytes) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    ELITENET_SPAN("serve.load.dataset_dir");
    *format = "dataset-dir";
    *bytes = FileSizeOr0(path + "/graph.eng");
    EN_ASSIGN_OR_RETURN(StudyDataset d, LoadDataset(path));
    return std::move(d.network.graph);
  }
  *bytes = FileSizeOr0(path);
  if (util::EndsWith(path, ".eng") || util::EndsWith(path, ".eng2")) {
    EN_ASSIGN_OR_RETURN(const graph::SnapshotFormat snap,
                        graph::SniffSnapshot(path));
    switch (snap) {
      case graph::SnapshotFormat::kV1: {
        ELITENET_SPAN("serve.load.eng1");
        *format = "eng1";
        return graph::LoadBinary(path);
      }
      case graph::SnapshotFormat::kV2: {
        ELITENET_SPAN("serve.load.eng2_mmap");
        *format = "eng2-mmap";
        return graph::MapBinary(path);
      }
      case graph::SnapshotFormat::kNotSnapshot:
        return Status::Corruption(
            "snapshot extension but no ENG1/ENG2 magic: " + path);
    }
  }
  ELITENET_SPAN("serve.load.edge_list");
  *format = "edge-list";
  return graph::ReadEdgeListText(path);
}

}  // namespace

Result<graph::DiGraph> LoadAnyGraph(const std::string& path,
                                    GraphLoadInfo* info) {
  util::SpanTimer timer("serve.load");
  std::string format = "unknown";
  uint64_t bytes = 0;
  auto g = LoadAnyGraphImpl(path, &format, &bytes);
  const double seconds = timer.Seconds();
  ELITENET_GAUGE_SET("serve.load_bytes", bytes);
  ELITENET_GAUGE_SET("serve.load_micros",
                     static_cast<int64_t>(seconds * 1e6));
  if (info != nullptr) {
    info->format = format;
    info->bytes = bytes;
    info->seconds = seconds;
  }
  return g;
}

Result<StudyDataset> LoadDataset(const std::string& dir) {
  EN_ASSIGN_OR_RETURN(const auto manifest, ReadManifest(dir + "/MANIFEST"));
  StudyDataset d;
  EN_ASSIGN_OR_RETURN(d.network.graph,
                      graph::LoadBinary(dir + "/graph.eng"));
  if (d.network.graph.num_nodes() != manifest.first ||
      d.network.graph.num_edges() != manifest.second) {
    return Status::Corruption("graph disagrees with manifest");
  }
  const uint64_t n = d.network.graph.num_nodes();
  EN_RETURN_IF_ERROR(ReadUsersFile(dir + "/users.bin", n, &d));
  EN_RETURN_IF_ERROR(ReadBios(dir + "/bios.txt", n, &d));
  EN_RETURN_IF_ERROR(ReadActivity(dir + "/activity.csv", &d));
  d.network.config.num_users = static_cast<uint32_t>(n);
  return d;
}

}  // namespace core
}  // namespace elitenet

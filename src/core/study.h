// Public façade: VerifiedStudy runs the paper's full measurement pipeline
// over the synthetic substrate — generate the network / profiles / bios /
// activity, then reproduce every analysis of Sections IV and V. Examples
// and benches compose these stages; quickstart calls RunAll().

#ifndef ELITENET_CORE_STUDY_H_
#define ELITENET_CORE_STUDY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/assortativity.h"
#include "analysis/centrality.h"
#include "analysis/clustering.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/distance.h"
#include "analysis/reciprocity.h"
#include "analysis/spectral.h"
#include "gen/activity.h"
#include "gen/bios.h"
#include "gen/profiles.h"
#include "gen/verified_network.h"
#include "stats/powerlaw.h"
#include "stats/smoother.h"
#include "stats/vuong.h"
#include "text/ngram.h"
#include "timeseries/acf.h"
#include "timeseries/adf.h"
#include "timeseries/pelt.h"
#include "util/status.h"

namespace elitenet {
namespace core {

struct StudyConfig {
  gen::VerifiedNetworkConfig network;
  gen::ProfileConfig profiles;
  gen::BioConfig bios;
  gen::ActivityConfig activity;

  /// BFS sources for the distance distribution (Fig. 3).
  uint32_t distance_sources = 48;
  /// Betweenness pivot sample size (0 = exact; exact is infeasible above
  /// a few thousand nodes).
  uint32_t betweenness_pivots = 192;
  /// Nodes sampled for the clustering coefficient.
  uint32_t clustering_samples = 12000;
  /// Largest Laplacian eigenvalues extracted (the paper used 10,000 at
  /// full scale; a few hundred suffice for the tail fit).
  uint32_t eigenvalue_k = 250;
  /// Parametric bootstrap replicates for the power-law p-values (the CSN
  /// recommendation is 100-1000; benches trade some precision for time).
  int bootstrap_replicates = 30;
  int portmanteau_max_lag = 185;
  uint64_t analysis_seed = 1234;
  /// Worker threads for the parallel kernels (generation, BFS sampling,
  /// centrality sweeps, clustering, bootstrap). 0 = automatic: the
  /// ELITENET_THREADS environment variable if set, else
  /// hardware_concurrency. Results are bit-identical for any value.
  int threads = 0;

  // ---- Observability (util/trace.h, util/metrics.h) ---------------------
  // Instrumentation observes, it never decides: results are bit-identical
  // with these on or off (tests/parallel_determinism_test.cc).

  /// When nonempty, enables span tracing for this study's stages and
  /// writes the Chrome trace-event JSON (chrome://tracing / Perfetto)
  /// here when RunAll() finishes. Process-wide alternative:
  /// ELITENET_TRACE=<path>, which dumps at exit instead.
  std::string trace_path;

  /// When nonempty, enables the metrics registry (stage counters plus the
  /// parallel-scheduler instrumentation) and writes the JSON snapshot
  /// here when RunAll() finishes. Process-wide alternative:
  /// ELITENET_METRICS=<path>.
  std::string metrics_path;

  /// Live progress hook: invoked at the start of every pipeline stage
  /// with a short stage name ("generate/network", "basic", "distances",
  /// ...). Called from the thread running the study; keep it cheap and
  /// never let it influence computation.
  std::function<void(const std::string& stage)> progress;
};

/// §IV-A numbers.
struct BasicReport {
  analysis::DegreeStats degrees;
  analysis::ReciprocityStats reciprocity;
  analysis::ClusteringStats clustering;
  analysis::AssortativityReport assortativity;
  uint32_t weak_components = 0;
  uint64_t giant_weak_size = 0;
  uint32_t strong_components = 0;
  uint64_t giant_scc_size = 0;
  double giant_scc_fraction = 0.0;
  uint64_t attracting_components = 0;
  uint64_t attracting_singletons = 0;
};

/// §IV-B: one distribution's power-law analysis.
struct PowerLawReport {
  stats::PowerLawFit fit;
  std::optional<stats::GoodnessOfFit> gof;
  /// Vuong LR tests: positive ratio favors the power law.
  std::optional<stats::VuongResult> vs_lognormal;
  std::optional<stats::VuongResult> vs_exponential;
  std::optional<stats::VuongResult> vs_poisson;
};

/// Fig. 5: one panel's relationship summary.
struct RelationReport {
  std::string x_name;
  std::string y_name;
  stats::SmoothedCurve curve;
};

/// §IV-E top-k phrase tables.
struct TextReport {
  std::vector<text::NGramCount> top_unigrams;
  std::vector<text::NGramCount> top_bigrams;
  std::vector<text::NGramCount> top_trigrams;
};

/// §V activity battery.
struct ActivityReport {
  timeseries::PortmanteauResult ljung_box;
  timeseries::PortmanteauResult box_pierce;
  timeseries::AdfResult adf;
  timeseries::PenaltySweepResult pelt;
  /// Change-point dates resolved against the series start.
  std::vector<timeseries::Date> change_dates;
};

struct StudyReport {
  BasicReport basic;
  PowerLawReport out_degree;
  std::optional<PowerLawReport> eigenvalues;
  analysis::DistanceDistribution distances;
  std::vector<RelationReport> relations;  ///< Fig. 5 panels (a)-(f)
  TextReport text;
  ActivityReport activity;
};

class VerifiedStudy {
 public:
  explicit VerifiedStudy(StudyConfig config) : config_(std::move(config)) {}

  /// Generates all four synthetic datasets. Must run before any analysis.
  Status Generate();

  /// Adopts an already-materialized dataset (e.g. loaded from disk via
  /// core/dataset.h) instead of generating one; analysis settings come
  /// from `config`. The study is immediately ready for Run*().
  Status AdoptDataset(gen::VerifiedNetwork network,
                      std::vector<gen::UserProfile> profiles,
                      gen::BioCorpus bios, gen::ActivitySeries activity);

  bool generated() const { return network_.has_value(); }
  const StudyConfig& config() const { return config_; }
  const gen::VerifiedNetwork& network() const { return *network_; }
  const std::vector<gen::UserProfile>& profiles() const { return *profiles_; }
  const gen::BioCorpus& bios() const { return *bios_; }
  const gen::ActivitySeries& activity() const { return *activity_; }

  // ---- Individual analyses (each requires Generate()) -------------------
  Result<BasicReport> RunBasic() const;
  Result<PowerLawReport> RunOutDegreeFit(bool with_bootstrap = true) const;
  Result<PowerLawReport> RunEigenvalueFit(bool with_bootstrap = true) const;
  Result<analysis::DistanceDistribution> RunDistances() const;
  Result<std::vector<RelationReport>> RunCentralityRelations() const;
  Result<TextReport> RunText(size_t top_k = 15) const;
  Result<ActivityReport> RunActivity() const;

  /// The whole paper in one call.
  Result<StudyReport> RunAll() const;

 private:
  StudyConfig config_;
  std::optional<gen::VerifiedNetwork> network_;
  std::optional<std::vector<gen::UserProfile>> profiles_;
  std::optional<gen::BioCorpus> bios_;
  std::optional<gen::ActivitySeries> activity_;
};

/// Renders the full report as the text the quickstart example prints,
/// with paper-vs-measured comparison lines.
std::string RenderReport(const StudyReport& report, uint32_t num_users);

}  // namespace core
}  // namespace elitenet

#endif  // ELITENET_CORE_STUDY_H_

// Dataset persistence: saves a generated study (graph + roles +
// popularity + profiles + bios + activity) to a directory of versioned
// binary/text files, and loads it back. Benches and examples use this to
// reuse a paper-scale generation run instead of regenerating; the layout
// is also the publishable form of the synthetic dataset (the paper
// intended to release its crawl "once we have pursued all our inquiries").
//
// Layout:
//   <dir>/graph.eng        binary CSR snapshot (graph/io.h format)
//   <dir>/users.bin        versioned binary: roles, popularity, profiles
//   <dir>/bios.txt         one bio per line, in node-id order
//   <dir>/activity.csv     date,value rows
//   <dir>/MANIFEST         "elitenet-dataset v1", counts and checksums

#ifndef ELITENET_CORE_DATASET_H_
#define ELITENET_CORE_DATASET_H_

#include <string>

#include "gen/activity.h"
#include "gen/bios.h"
#include "gen/profiles.h"
#include "gen/verified_network.h"
#include "util/status.h"

namespace elitenet {
namespace core {

struct StudyDataset {
  gen::VerifiedNetwork network;
  std::vector<gen::UserProfile> profiles;
  gen::BioCorpus bios;
  gen::ActivitySeries activity;
};

/// Writes every dataset component under `dir` (created if missing).
Status SaveDataset(const StudyDataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset; validates the
/// manifest, per-file magic numbers, and cross-file size consistency.
Result<StudyDataset> LoadDataset(const std::string& dir);

/// Loads a graph from any source the tools accept, with one dispatch
/// rule shared by `elitenet_cli` and the serving front-ends:
///   * a directory  -> SaveDataset layout; returns its graph,
///   * "*.eng"      -> binary CSR snapshot (graph/io.h),
///   * anything else -> SNAP-style text edge list.
/// Corrupt inputs surface as a clean Status (Corruption/IoError) with no
/// partial graph.
Result<graph::DiGraph> LoadAnyGraph(const std::string& path);

}  // namespace core
}  // namespace elitenet

#endif  // ELITENET_CORE_DATASET_H_

// Dataset persistence: saves a generated study (graph + roles +
// popularity + profiles + bios + activity) to a directory of versioned
// binary/text files, and loads it back. Benches and examples use this to
// reuse a paper-scale generation run instead of regenerating; the layout
// is also the publishable form of the synthetic dataset (the paper
// intended to release its crawl "once we have pursued all our inquiries").
//
// Layout:
//   <dir>/graph.eng        binary CSR snapshot (graph/io.h format)
//   <dir>/users.bin        versioned binary: roles, popularity, profiles
//   <dir>/bios.txt         one bio per line, in node-id order
//   <dir>/activity.csv     date,value rows
//   <dir>/MANIFEST         "elitenet-dataset v1", counts and checksums

#ifndef ELITENET_CORE_DATASET_H_
#define ELITENET_CORE_DATASET_H_

#include <string>

#include "gen/activity.h"
#include "gen/bios.h"
#include "gen/profiles.h"
#include "gen/verified_network.h"
#include "util/status.h"

namespace elitenet {
namespace core {

struct StudyDataset {
  gen::VerifiedNetwork network;
  std::vector<gen::UserProfile> profiles;
  gen::BioCorpus bios;
  gen::ActivitySeries activity;
};

/// Writes every dataset component under `dir` (created if missing).
Status SaveDataset(const StudyDataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset; validates the
/// manifest, per-file magic numbers, and cross-file size consistency.
Result<StudyDataset> LoadDataset(const std::string& dir);

/// What LoadAnyGraph actually did — the detected format, how many bytes
/// were read or mapped, and how long the load took. The same numbers are
/// recorded under the "serve.load" trace span and the serve.load_bytes /
/// serve.load_micros gauges, so cold-start cost is visible to the
/// observability layer.
struct GraphLoadInfo {
  /// "dataset-dir", "eng1", "eng2-mmap", or "edge-list".
  std::string format;
  /// Size of the loaded file (for a dataset dir: its graph.eng).
  uint64_t bytes = 0;
  double seconds = 0.0;
};

/// Loads a graph from any source the tools accept, with one dispatch
/// rule shared by `elitenet_cli` and the serving front-ends:
///   * a directory         -> SaveDataset layout; returns its graph,
///   * "*.eng" / "*.eng2"  -> snapshot; the magic is sniffed, so an ENG1
///                            file deserializes (graph/io.h LoadBinary)
///                            and an ENG2 file is mmapped zero-copy
///                            (MapBinary) regardless of extension,
///   * anything else       -> SNAP-style text edge list.
/// Corrupt inputs surface as a clean Status (Corruption/IoError) with no
/// partial graph. `info`, when non-null, receives what was detected.
Result<graph::DiGraph> LoadAnyGraph(const std::string& path,
                                    GraphLoadInfo* info = nullptr);

}  // namespace core
}  // namespace elitenet

#endif  // ELITENET_CORE_DATASET_H_

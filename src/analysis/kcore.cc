#include "analysis/kcore.h"

#include <algorithm>

#include "graph/traversal.h"
#include "util/trace.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

KCoreResult KCoreDecomposition(const DiGraph& g) {
  ELITENET_SPAN("analysis.kcore");
  const NodeId n = g.num_nodes();
  KCoreResult out;
  out.coreness.assign(n, 0);
  if (n == 0) return out;

  // Flat undirected CSR (built once, in parallel; peeling needs repeated
  // neighbor scans and a contiguous target array beats n heap vectors).
  const graph::UndirectedCsr adj = graph::BuildUndirectedCsr(g);
  std::vector<uint32_t> degree(n, 0);
  uint32_t max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = adj.Degree(u);
    max_degree = std::max(max_degree, degree[u]);
  }

  // Bucket sort by degree (Batagelj–Zaveršnik bin layout).
  std::vector<uint64_t> bin(max_degree + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bin[degree[u]];
  uint64_t start = 0;
  for (uint32_t d = 0; d <= max_degree; ++d) {
    const uint64_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> order(n);   // nodes sorted by current degree
  std::vector<uint64_t> pos(n);   // node -> index in order
  {
    std::vector<uint64_t> cursor(bin.begin(), bin.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      pos[u] = cursor[degree[u]]++;
      order[pos[u]] = u;
    }
  }

  // Peel in nondecreasing degree order; each removal may demote
  // neighbors by one degree, which is a constant-time bucket swap.
  for (uint64_t i = 0; i < n; ++i) {
    const NodeId u = order[i];
    out.coreness[u] = degree[u];
    for (NodeId v : adj.Neighbors(u)) {
      if (degree[v] > degree[u]) {
        // Swap v with the first node of its degree bucket, then shrink
        // the bucket boundary and decrement.
        const uint32_t dv = degree[v];
        const uint64_t pv = pos[v];
        const uint64_t pw = bin[dv];
        const NodeId w = order[pw];
        if (v != w) {
          std::swap(order[pv], order[pw]);
          pos[v] = pw;
          pos[w] = pv;
        }
        ++bin[dv];
        --degree[v];
      }
    }
  }

  for (uint32_t c : out.coreness) out.max_core = std::max(out.max_core, c);
  for (uint32_t c : out.coreness) {
    if (c == out.max_core) ++out.innermost_size;
  }
  return out;
}

}  // namespace analysis
}  // namespace elitenet

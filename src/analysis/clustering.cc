#include "analysis/clustering.h"

#include <algorithm>

#include "util/check.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

std::vector<NodeId> UndirectedNeighbors(const DiGraph& g, NodeId u) {
  const auto outs = g.OutNeighbors(u);
  const auto ins = g.InNeighbors(u);
  std::vector<NodeId> merged;
  merged.reserve(outs.size() + ins.size());
  std::set_union(outs.begin(), outs.end(), ins.begin(), ins.end(),
                 std::back_inserter(merged));
  return merged;
}

namespace {

// Number of elements common to two sorted ranges.
uint64_t SortedIntersectionSize(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

struct NodeClustering {
  double coefficient = 0.0;
  uint64_t closed_pairs = 0;  // ordered neighbor pairs that are linked
  uint64_t degree = 0;
  bool eligible = false;  // undirected degree >= 2
};

NodeClustering LocalClustering(
    const DiGraph& g, NodeId u,
    const std::vector<std::vector<NodeId>>* cache) {
  NodeClustering out;
  const std::vector<NodeId> nu =
      cache != nullptr ? (*cache)[u] : UndirectedNeighbors(g, u);
  out.degree = nu.size();
  if (nu.size() < 2) return out;
  out.eligible = true;

  uint64_t linked = 0;  // ordered pairs (v, w) in N(u) x N(u) with v~w
  for (NodeId v : nu) {
    const std::vector<NodeId> nv =
        cache != nullptr ? (*cache)[v] : UndirectedNeighbors(g, v);
    linked += SortedIntersectionSize(nu, nv);
  }
  // Each unordered linked neighbor pair was counted twice (once from each
  // endpoint); u itself is never in nu so no self-correction is needed.
  out.closed_pairs = linked;
  const double possible =
      static_cast<double>(nu.size()) * static_cast<double>(nu.size() - 1);
  out.coefficient = static_cast<double>(linked) / possible;
  return out;
}

}  // namespace

ClusteringStats ComputeClustering(const DiGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId u = 0; u < n; ++u) adj[u] = UndirectedNeighbors(g, u);

  ClusteringStats s;
  double coeff_sum = 0.0;
  uint64_t closed = 0;
  uint64_t open_pairs = 0;
  for (NodeId u = 0; u < n; ++u) {
    const NodeClustering c = LocalClustering(g, u, &adj);
    if (!c.eligible) continue;
    ++s.nodes_evaluated;
    coeff_sum += c.coefficient;
    closed += c.closed_pairs;
    open_pairs += c.degree * (c.degree - 1);
  }
  if (s.nodes_evaluated > 0) {
    s.average_local = coeff_sum / static_cast<double>(s.nodes_evaluated);
  }
  // closed counts every triangle 6 times (3 apexes x 2 orientations);
  // open_pairs counts every connected triple twice.
  s.triangles = closed / 6;
  if (open_pairs > 0) {
    s.transitivity = static_cast<double>(closed) /
                     static_cast<double>(open_pairs);
  }
  return s;
}

ClusteringStats ComputeClusteringSampled(const DiGraph& g, uint32_t samples,
                                         util::Rng* rng) {
  EN_CHECK(rng != nullptr);
  const NodeId n = g.num_nodes();
  std::vector<NodeId> eligible;
  for (NodeId u = 0; u < n; ++u) {
    if (g.OutDegree(u) + g.InDegree(u) >= 2) eligible.push_back(u);
  }
  if (eligible.size() <= samples) return ComputeClustering(g);

  rng->Shuffle(&eligible);
  ClusteringStats s;
  double coeff_sum = 0.0;
  uint64_t closed = 0, open_pairs = 0;
  for (uint32_t i = 0; i < samples; ++i) {
    const NodeClustering c = LocalClustering(g, eligible[i], nullptr);
    if (!c.eligible) continue;  // out+in >= 2 can still collapse to deg 1
    ++s.nodes_evaluated;
    coeff_sum += c.coefficient;
    closed += c.closed_pairs;
    open_pairs += c.degree * (c.degree - 1);
  }
  if (s.nodes_evaluated > 0) {
    s.average_local = coeff_sum / static_cast<double>(s.nodes_evaluated);
  }
  s.triangles = closed / 6;
  if (open_pairs > 0) {
    s.transitivity = static_cast<double>(closed) /
                     static_cast<double>(open_pairs);
  }
  return s;
}

}  // namespace analysis
}  // namespace elitenet

#include "analysis/clustering.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

std::vector<NodeId> UndirectedNeighbors(const DiGraph& g, NodeId u) {
  const auto outs = g.OutNeighbors(u);
  const auto ins = g.InNeighbors(u);
  std::vector<NodeId> merged;
  merged.reserve(outs.size() + ins.size());
  std::set_union(outs.begin(), outs.end(), ins.begin(), ins.end(),
                 std::back_inserter(merged));
  return merged;
}

namespace {

// Number of elements common to two sorted ranges.
uint64_t SortedIntersectionSize(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

struct NodeClustering {
  double coefficient = 0.0;
  uint64_t closed_pairs = 0;  // ordered neighbor pairs that are linked
  uint64_t degree = 0;
  bool eligible = false;  // undirected degree >= 2
};

NodeClustering LocalClustering(
    const DiGraph& g, NodeId u,
    const std::vector<std::vector<NodeId>>* cache) {
  NodeClustering out;
  const std::vector<NodeId> nu =
      cache != nullptr ? (*cache)[u] : UndirectedNeighbors(g, u);
  out.degree = nu.size();
  if (nu.size() < 2) return out;
  out.eligible = true;

  uint64_t linked = 0;  // ordered pairs (v, w) in N(u) x N(u) with v~w
  for (NodeId v : nu) {
    const std::vector<NodeId> nv =
        cache != nullptr ? (*cache)[v] : UndirectedNeighbors(g, v);
    linked += SortedIntersectionSize(nu, nv);
  }
  // Each unordered linked neighbor pair was counted twice (once from each
  // endpoint); u itself is never in nu so no self-correction is needed.
  out.closed_pairs = linked;
  const double possible =
      static_cast<double>(nu.size()) * static_cast<double>(nu.size() - 1);
  out.coefficient = static_cast<double>(linked) / possible;
  return out;
}

// Per-chunk tallies of the clustering sweep. coeff_sum is the only
// floating-point member; folding partials in chunk order keeps the average
// bit-identical for any thread count (the integer members are exact under
// any merge order).
struct ClusteringPartial {
  double coeff_sum = 0.0;
  uint64_t nodes_evaluated = 0;
  uint64_t closed = 0;
  uint64_t open_pairs = 0;
};

// Shared finalization + sweep driver: evaluates LocalClustering over
// `nodes[lo, hi)` chunks in parallel and folds the partials in chunk order.
ClusteringStats SweepClustering(const DiGraph& g,
                                const std::vector<NodeId>& nodes,
                                const std::vector<std::vector<NodeId>>* cache) {
  ELITENET_COUNT("analysis.clustering.nodes_swept", nodes.size());
  const ClusteringPartial total = util::ParallelReduce(
      0, nodes.size(), 0, ClusteringPartial{},
      [&](size_t lo, size_t hi) {
        ClusteringPartial p;
        for (size_t i = lo; i < hi; ++i) {
          const NodeClustering c = LocalClustering(g, nodes[i], cache);
          if (!c.eligible) continue;  // can collapse below degree 2
          ++p.nodes_evaluated;
          p.coeff_sum += c.coefficient;
          p.closed += c.closed_pairs;
          p.open_pairs += c.degree * (c.degree - 1);
        }
        return p;
      },
      [](ClusteringPartial a, ClusteringPartial b) {
        a.coeff_sum += b.coeff_sum;
        a.nodes_evaluated += b.nodes_evaluated;
        a.closed += b.closed;
        a.open_pairs += b.open_pairs;
        return a;
      });

  ClusteringStats s;
  s.nodes_evaluated = total.nodes_evaluated;
  if (s.nodes_evaluated > 0) {
    s.average_local =
        total.coeff_sum / static_cast<double>(s.nodes_evaluated);
  }
  // closed counts every triangle 6 times (3 apexes x 2 orientations);
  // open_pairs counts every connected triple twice.
  s.triangles = total.closed / 6;
  if (total.open_pairs > 0) {
    s.transitivity = static_cast<double>(total.closed) /
                     static_cast<double>(total.open_pairs);
  }
  return s;
}

}  // namespace

ClusteringStats ComputeClustering(const DiGraph& g) {
  ELITENET_SPAN("analysis.clustering");
  const NodeId n = g.num_nodes();
  std::vector<std::vector<NodeId>> adj(n);
  // Each entry is written by exactly one chunk: safe and deterministic.
  util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
    for (size_t u = lo; u < hi; ++u) {
      adj[u] = UndirectedNeighbors(g, static_cast<NodeId>(u));
    }
  });

  std::vector<NodeId> nodes(n);
  for (NodeId u = 0; u < n; ++u) nodes[u] = u;
  return SweepClustering(g, nodes, &adj);
}

ClusteringStats ComputeClusteringSampled(const DiGraph& g, uint32_t samples,
                                         util::Rng* rng) {
  ELITENET_SPAN("analysis.clustering_sampled");
  EN_CHECK(rng != nullptr);
  const NodeId n = g.num_nodes();
  std::vector<NodeId> eligible;
  for (NodeId u = 0; u < n; ++u) {
    if (g.OutDegree(u) + g.InDegree(u) >= 2) eligible.push_back(u);
  }
  if (eligible.size() <= samples) return ComputeClustering(g);

  rng->Shuffle(&eligible);
  eligible.resize(samples);
  return SweepClustering(g, eligible, nullptr);
}

}  // namespace analysis
}  // namespace elitenet

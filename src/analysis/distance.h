// Pairwise-distance structure (Section IV-D / Fig. 3): hop-count
// histogram, mean shortest-path length (paper: 2.74 after omitting
// isolated nodes), median separation, and effective diameter (90th
// percentile, per Leskovec & Horvitz).

#ifndef ELITENET_ANALYSIS_DISTANCE_H_
#define ELITENET_ANALYSIS_DISTANCE_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {

/// Distances are directed shortest paths (BFS over out-edges).
inline constexpr uint32_t kUnreachable = UINT32_MAX;

/// Single-source BFS; dist[v] == kUnreachable when v is not reachable.
std::vector<uint32_t> Bfs(const graph::DiGraph& g, graph::NodeId source);

/// BFS over in-edges (distances *to* `target`).
std::vector<uint32_t> ReverseBfs(const graph::DiGraph& g,
                                 graph::NodeId target);

struct DistanceDistribution {
  /// Histogram of finite pairwise distances (>=1) among sampled pairs.
  util::IntHistogram hops;
  double mean_distance = 0.0;
  uint64_t median_distance = 0;
  /// 90th-percentile distance — the "effective diameter".
  uint64_t effective_diameter = 0;
  /// Largest finite distance seen (lower bound on the true diameter when
  /// sampling).
  uint32_t diameter_lower_bound = 0;
  /// Ordered (source, target) pairs evaluated, reachable pairs only.
  uint64_t reachable_pairs = 0;
  uint64_t unreachable_pairs = 0;
  uint32_t sources_used = 0;
};

/// Estimates the pairwise-distance distribution by full BFS from
/// `num_sources` random non-isolated sources (all n-1 targets each). With
/// num_sources >= n the computation is exact. Isolated nodes are excluded
/// as in the paper.
DistanceDistribution SampleDistances(const graph::DiGraph& g,
                                     uint32_t num_sources, util::Rng* rng);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_DISTANCE_H_

#include "analysis/components.h"

#include <algorithm>

#include "graph/builder.h"
#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/check.h"
#include "util/trace.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

uint32_t ComponentLabeling::GiantId() const {
  EN_CHECK(num_components > 0);
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_components; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  return best;
}

uint64_t ComponentLabeling::GiantSize() const {
  return num_components == 0 ? 0 : sizes[GiantId()];
}

double ComponentLabeling::GiantFraction() const {
  if (label.empty()) return 0.0;
  return static_cast<double>(GiantSize()) / static_cast<double>(label.size());
}

std::vector<NodeId> ComponentLabeling::Members(uint32_t id) const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < label.size(); ++u) {
    if (label[u] == id) out.push_back(u);
  }
  return out;
}

ComponentLabeling WeaklyConnectedComponents(const DiGraph& g) {
  ELITENET_SPAN("analysis.wcc");
  const NodeId n = g.num_nodes();
  ComponentLabeling out;
  out.label.assign(n, 0);
  if (n == 0) return out;

  // Multi-root direction-optimizing BFS over the undirected view. All
  // roots share one arena epoch (fresh_epoch = false), so earlier
  // components act as walls, and one running remaining-degree total, so
  // the switch heuristic stays O(1) per root. Scanning roots in ascending
  // id assigns component ids in order of each component's smallest member
  // — the same numbering the old union-find pass produced.
  graph::ScratchArena arena(n);
  arena.BeginEpoch();
  uint64_t remaining_degree = 2 * g.num_edges();
  graph::BfsOptions options;
  options.direction = graph::TraversalDirection::kUndirected;
  options.fresh_epoch = false;
  options.remaining_degree = &remaining_degree;
  std::vector<NodeId> members;
  options.visit_order = &members;
  for (NodeId root = 0; root < n; ++root) {
    if (arena.Visited(root)) continue;
    members.clear();
    const graph::BfsStats stats = graph::Bfs(g, root, &arena, options);
    const uint32_t comp = out.num_components++;
    out.sizes.push_back(stats.nodes_visited);
    for (NodeId v : members) out.label[v] = comp;
  }
  return out;
}

ComponentLabeling StronglyConnectedComponents(const DiGraph& g) {
  const NodeId n = g.num_nodes();
  ComponentLabeling out;
  out.label.assign(n, UINT32_MAX);
  if (n == 0) return out;

  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> scc_stack;
  uint32_t next_index = 0;

  // Explicit DFS frames: node + position within its neighbor list.
  struct Frame {
    NodeId node;
    uint32_t edge_pos;
  };
  std::vector<Frame> dfs;

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    dfs.push_back({start, 0});
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const NodeId u = f.node;
      if (f.edge_pos == 0) {
        index[u] = lowlink[u] = next_index++;
        scc_stack.push_back(u);
        on_stack[u] = true;
      }
      const auto nbrs = g.OutNeighbors(u);
      bool descended = false;
      while (f.edge_pos < nbrs.size()) {
        const NodeId v = nbrs[f.edge_pos++];
        if (index[v] == kUnvisited) {
          dfs.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      }
      if (descended) continue;

      // All neighbors processed: maybe emit an SCC, then retreat.
      if (lowlink[u] == index[u]) {
        const uint32_t comp = out.num_components++;
        out.sizes.push_back(0);
        NodeId w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          out.label[w] = comp;
          ++out.sizes[comp];
        } while (w != u);
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const NodeId parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  return out;
}

DiGraph Condensation(const DiGraph& g, const ComponentLabeling& scc) {
  EN_CHECK(scc.label.size() == g.num_nodes());
  graph::GraphBuilder builder(scc.num_components);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint32_t cu = scc.label[u];
    for (NodeId v : g.OutNeighbors(u)) {
      const uint32_t cv = scc.label[v];
      if (cu != cv) {
        EN_CHECK(builder.AddEdge(cu, cv).ok());
      }
    }
  }
  auto result = builder.Build();
  EN_CHECK(result.ok());
  return std::move(result).value();
}

AttractingComponents FindAttractingComponents(const DiGraph& g,
                                              const ComponentLabeling& scc) {
  EN_CHECK(scc.label.size() == g.num_nodes());
  std::vector<bool> has_out_edge(scc.num_components, false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint32_t cu = scc.label[u];
    if (has_out_edge[cu]) continue;
    for (NodeId v : g.OutNeighbors(u)) {
      if (scc.label[v] != cu) {
        has_out_edge[cu] = true;
        break;
      }
    }
  }
  AttractingComponents out;
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    if (!has_out_edge[c]) {
      out.ids.push_back(c);
      ++out.count;
      if (scc.sizes[c] == 1) ++out.singletons;
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace elitenet

#include "analysis/spectral.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/trace.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

LaplacianOperator::LaplacianOperator(const DiGraph& g) : g_(g) {
  const NodeId n = g.num_nodes();
  degree_.assign(n, 0.0);
  recip_offsets_.assign(n + 1, 0);

  // First pass: count reciprocal neighbors per node.
  std::vector<uint32_t> recip_count(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    const auto outs = g.OutNeighbors(u);
    const auto ins = g.InNeighbors(u);
    size_t i = 0, j = 0;
    while (i < outs.size() && j < ins.size()) {
      if (outs[i] < ins[j]) {
        ++i;
      } else if (outs[i] > ins[j]) {
        ++j;
      } else {
        ++recip_count[u];
        ++i;
        ++j;
      }
    }
    degree_[u] = static_cast<double>(outs.size()) +
                 static_cast<double>(ins.size()) -
                 static_cast<double>(recip_count[u]);
  }
  for (NodeId u = 0; u < n; ++u) {
    recip_offsets_[u + 1] = recip_offsets_[u] + recip_count[u];
  }
  recip_targets_.resize(recip_offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    const auto outs = g.OutNeighbors(u);
    const auto ins = g.InNeighbors(u);
    size_t i = 0, j = 0;
    uint64_t w = recip_offsets_[u];
    while (i < outs.size() && j < ins.size()) {
      if (outs[i] < ins[j]) {
        ++i;
      } else if (outs[i] > ins[j]) {
        ++j;
      } else {
        recip_targets_[w++] = outs[i];
        ++i;
        ++j;
      }
    }
  }
}

void LaplacianOperator::Apply(const std::vector<double>& x,
                              std::vector<double>* y) const {
  const NodeId n = dimension();
  EN_CHECK(x.size() == n);
  EN_CHECK(y->size() == n);
  for (NodeId u = 0; u < n; ++u) {
    double acc = degree_[u] * x[u];
    for (NodeId v : g_.OutNeighbors(u)) acc -= x[v];
    for (NodeId v : g_.InNeighbors(u)) acc -= x[v];
    for (uint64_t e = recip_offsets_[u]; e < recip_offsets_[u + 1]; ++e) {
      acc += x[recip_targets_[e]];  // undo the double subtraction
    }
    (*y)[u] = acc;
  }
}

Result<std::vector<double>> SymmetricTridiagonalEigenvalues(
    std::vector<double> diag, std::vector<double> offdiag) {
  const size_t n = diag.size();
  if (n == 0) return Status::InvalidArgument("empty matrix");
  if (offdiag.size() + 1 != n) {
    return Status::InvalidArgument("offdiag must have n-1 entries");
  }
  if (n == 1) return std::vector<double>{diag[0]};

  // Implicit-shift QL (tql1-style). e is padded to length n.
  std::vector<double>& d = diag;
  std::vector<double> e(offdiag.begin(), offdiag.end());
  e.push_back(0.0);

  for (size_t l = 0; l < n; ++l) {
    int iter = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iter == 50) {
          return Status::Internal("tridiagonal QL failed to converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        for (size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  std::sort(d.begin(), d.end());
  return d;
}

Result<LanczosResult> TopLaplacianEigenvalues(const DiGraph& g,
                                              const LanczosOptions& options) {
  ELITENET_SPAN("analysis.lanczos");
  const NodeId n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (options.k == 0) return Status::InvalidArgument("k must be positive");

  const LaplacianOperator op(g);
  uint32_t m = options.subspace != 0 ? options.subspace : options.k + 40;
  m = std::min<uint32_t>(m, n);
  m = std::max<uint32_t>(m, std::min<uint32_t>(options.k, n));

  util::Rng rng(options.seed);
  std::vector<std::vector<double>> basis;  // Lanczos vectors v_1..v_j
  basis.reserve(m);
  std::vector<double> alpha, beta;  // T diagonal / off-diagonal

  // Initial random unit vector.
  std::vector<double> v(n), w(n);
  double norm = 0.0;
  for (double& x : v) {
    x = rng.Normal();
  }
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  for (double& x : v) x /= norm;
  basis.push_back(v);

  for (uint32_t j = 0; j < m; ++j) {
    op.Apply(basis[j], &w);
    double a = 0.0;
    for (NodeId i = 0; i < n; ++i) a += w[i] * basis[j][i];
    alpha.push_back(a);

    // w -= a * v_j + beta_{j-1} * v_{j-1}
    for (NodeId i = 0; i < n; ++i) w[i] -= a * basis[j][i];
    if (j > 0) {
      const double b = beta[j - 1];
      for (NodeId i = 0; i < n; ++i) w[i] -= b * basis[j - 1][i];
    }
    // Full reorthogonalization (two passes of classical Gram-Schmidt).
    for (int pass = 0; pass < 2; ++pass) {
      for (const std::vector<double>& q : basis) {
        double dot = 0.0;
        for (NodeId i = 0; i < n; ++i) dot += w[i] * q[i];
        for (NodeId i = 0; i < n; ++i) w[i] -= dot * q[i];
      }
    }

    double b = 0.0;
    for (double x : w) b += x * x;
    b = std::sqrt(b);
    if (j + 1 == m) break;  // T is complete
    if (b < 1e-12) {
      // Invariant subspace found: the Krylov space is exhausted. The
      // eigenvalues of the current T are exact; stop early.
      break;
    }
    beta.push_back(b);
    for (double& x : w) x /= b;
    basis.push_back(w);
  }

  EN_ASSIGN_OR_RETURN(std::vector<double> evals,
                      SymmetricTridiagonalEigenvalues(alpha, beta));
  std::sort(evals.begin(), evals.end(), std::greater<double>());
  // The Laplacian is PSD; clamp tiny negative round-off.
  for (double& ev : evals) {
    if (ev < 0.0 && ev > -1e-9) ev = 0.0;
  }
  LanczosResult out;
  const size_t take = std::min<size_t>(options.k, evals.size());
  out.eigenvalues.assign(evals.begin(), evals.begin() + take);
  out.iterations = static_cast<uint32_t>(alpha.size());
  return out;
}

Result<double> PowerIterationLargest(const LaplacianOperator& op,
                                     int max_iterations, double tolerance,
                                     uint64_t seed) {
  const uint32_t n = op.dimension();
  if (n == 0) return Status::InvalidArgument("empty operator");
  util::Rng rng(seed);
  std::vector<double> v(n), w(n);
  for (double& x : v) x = rng.Normal();

  double lambda = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    op.Apply(v, &w);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;  // zero operator (edgeless graph)
    double rayleigh = 0.0;
    for (uint32_t i = 0; i < n; ++i) rayleigh += w[i] * v[i];
    for (uint32_t i = 0; i < n; ++i) v[i] = w[i] / norm;
    if (std::fabs(rayleigh - lambda) <=
        tolerance * std::max(1.0, std::fabs(rayleigh))) {
      return rayleigh;
    }
    lambda = rayleigh;
  }
  return lambda;
}

}  // namespace analysis
}  // namespace elitenet

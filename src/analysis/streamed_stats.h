// Fused, windowed basic statistics over the CSR — one sweep instead of
// seven.
//
// ComputeDegreeStats, ComputeReciprocity, and ComputeAssortativity are
// each already sequential CSR scans, but running them separately walks
// the edge arrays seven times (assortativity alone makes five passes,
// one per degree-mode flavour). On an mmapped 10M-node snapshot that is
// seven trips through the page cache for one report. This kernel fuses
// all of them into a single windowed pass: nodes are processed in blocks
// of `window_nodes`, each CSR row is read exactly once, and the only
// state between windows is O(1) accumulators — no O(n) or O(m) scratch.
//
// Bit-identity contract: the fused pass accumulates every statistic in
// exactly the order the standalone kernels do — nodes ascending, out-
// edges in CSR order, and each assortativity mode's floating-point sums
// updated per edge in that same sequence. Identical addition order means
// identical rounding, so the results equal the standalone kernels' to
// the last bit, at any window size (asserted by streamed_stats_test and
// bench_basic_stats --verify-stream).

#ifndef ELITENET_ANALYSIS_STREAMED_STATS_H_
#define ELITENET_ANALYSIS_STREAMED_STATS_H_

#include <cstdint>

#include "analysis/assortativity.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace analysis {

struct StreamedBasicStats {
  DegreeStats degrees;
  ReciprocityStats reciprocity;
  AssortativityReport assortativity;
  /// Windows the pass was split into (diagnostic).
  uint64_t windows = 0;
};

/// One fused pass over `g` in node windows of `window_nodes` (0 selects
/// the whole graph as a single window). Results are bit-identical to
/// ComputeDegreeStats + ComputeReciprocity + ComputeAssortativity for
/// every window size.
StreamedBasicStats ComputeStreamedBasicStats(const graph::DiGraph& g,
                                             graph::NodeId window_nodes = 0);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_STREAMED_STATS_H_

#include "analysis/bidirectional.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

PairDistance BidirectionalDistance(const DiGraph& g, NodeId source,
                                   NodeId target) {
  EN_CHECK(source < g.num_nodes());
  EN_CHECK(target < g.num_nodes());
  PairDistance out;
  if (source == target) {
    out.distance = 0;
    return out;
  }

  constexpr uint32_t kUnset = UINT32_MAX;
  std::vector<uint32_t> fwd(g.num_nodes(), kUnset);
  std::vector<uint32_t> bwd(g.num_nodes(), kUnset);
  std::vector<NodeId> fwd_frontier{source}, bwd_frontier{target}, next;
  fwd[source] = 0;
  bwd[target] = 0;
  uint32_t fwd_depth = 0, bwd_depth = 0;

  while (!fwd_frontier.empty() && !bwd_frontier.empty()) {
    // Advance the cheaper side (fewer frontier nodes). A meeting found
    // mid-level may not be minimal (another node in the same level can
    // carry a smaller opposite-side label), so the level is completed
    // and the best meeting taken; BFS level-exactness makes that the
    // global optimum.
    const bool advance_forward = fwd_frontier.size() <= bwd_frontier.size();
    uint32_t best = kUnset;
    next.clear();
    if (advance_forward) {
      ++fwd_depth;
      for (NodeId u : fwd_frontier) {
        ++out.expanded;
        for (NodeId v : g.OutNeighbors(u)) {
          if (fwd[v] != kUnset) continue;
          fwd[v] = fwd_depth;
          if (bwd[v] != kUnset) {
            best = std::min(best, fwd_depth + bwd[v]);
          }
          next.push_back(v);
        }
      }
      fwd_frontier.swap(next);
    } else {
      ++bwd_depth;
      for (NodeId u : bwd_frontier) {
        ++out.expanded;
        for (NodeId v : g.InNeighbors(u)) {
          if (bwd[v] != kUnset) continue;
          bwd[v] = bwd_depth;
          if (fwd[v] != kUnset) {
            best = std::min(best, bwd_depth + fwd[v]);
          }
          next.push_back(v);
        }
      }
      bwd_frontier.swap(next);
    }
    if (best != kUnset) {
      out.distance = best;
      return out;
    }
  }
  return out;  // unreachable
}

PairSampleResult SamplePairDistances(const DiGraph& g, uint32_t pairs,
                                     util::Rng* rng) {
  EN_CHECK(rng != nullptr);
  PairSampleResult out;
  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) + g.InDegree(u) > 0) candidates.push_back(u);
  }
  if (candidates.size() < 2) return out;

  double dist_sum = 0.0, expanded_sum = 0.0;
  for (uint32_t i = 0; i < pairs; ++i) {
    const NodeId s = candidates[rng->UniformU64(candidates.size())];
    NodeId t;
    do {
      t = candidates[rng->UniformU64(candidates.size())];
    } while (t == s);
    const PairDistance d = BidirectionalDistance(g, s, t);
    expanded_sum += static_cast<double>(d.expanded);
    if (d.distance == UINT32_MAX) {
      ++out.unreachable_pairs;
    } else {
      ++out.reachable_pairs;
      dist_sum += d.distance;
    }
  }
  if (out.reachable_pairs > 0) {
    out.mean_distance = dist_sum / static_cast<double>(out.reachable_pairs);
  }
  if (pairs > 0) {
    out.mean_expanded = expanded_sum / static_cast<double>(pairs);
  }
  return out;
}

}  // namespace analysis
}  // namespace elitenet

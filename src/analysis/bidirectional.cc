#include "analysis/bidirectional.h"

#include <algorithm>
#include <vector>

#include "graph/traversal.h"
#include "util/check.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

PairDistance BidirectionalDistance(const DiGraph& g, NodeId source,
                                   NodeId target,
                                   graph::ScratchArena* fwd,
                                   graph::ScratchArena* bwd) {
  EN_CHECK(source < g.num_nodes());
  EN_CHECK(target < g.num_nodes());
  EN_CHECK(fwd != nullptr && bwd != nullptr);
  EN_CHECK(fwd->num_nodes() == g.num_nodes());
  EN_CHECK(bwd->num_nodes() == g.num_nodes());
  PairDistance out;
  if (source == target) {
    out.distance = 0;
    return out;
  }

  constexpr uint32_t kUnset = UINT32_MAX;
  fwd->BeginEpoch();
  bwd->BeginEpoch();
  std::vector<NodeId>& fwd_frontier = fwd->frontier();
  std::vector<NodeId>& bwd_frontier = bwd->frontier();
  fwd_frontier.assign(1, source);
  bwd_frontier.assign(1, target);
  fwd->Visit(source, 0, graph::kNoParent);
  bwd->Visit(target, 0, graph::kNoParent);
  uint32_t fwd_depth = 0, bwd_depth = 0;

  while (!fwd_frontier.empty() && !bwd_frontier.empty()) {
    // Advance the cheaper side (fewer frontier nodes). A meeting found
    // mid-level may not be minimal (another node in the same level can
    // carry a smaller opposite-side label), so the level is completed
    // and the best meeting taken; BFS level-exactness makes that the
    // global optimum.
    const bool advance_forward = fwd_frontier.size() <= bwd_frontier.size();
    uint32_t best = kUnset;
    if (advance_forward) {
      std::vector<NodeId>& next = fwd->next();
      next.clear();
      ++fwd_depth;
      for (NodeId u : fwd_frontier) {
        ++out.expanded;
        for (NodeId v : g.OutNeighbors(u)) {
          if (fwd->Visited(v)) continue;
          fwd->Visit(v, fwd_depth, u);
          if (bwd->Visited(v)) {
            best = std::min(best, fwd_depth + bwd->Distance(v));
          }
          next.push_back(v);
        }
      }
      fwd_frontier.swap(next);
    } else {
      std::vector<NodeId>& next = bwd->next();
      next.clear();
      ++bwd_depth;
      for (NodeId u : bwd_frontier) {
        ++out.expanded;
        for (NodeId v : g.InNeighbors(u)) {
          if (bwd->Visited(v)) continue;
          bwd->Visit(v, bwd_depth, u);
          if (fwd->Visited(v)) {
            best = std::min(best, bwd_depth + fwd->Distance(v));
          }
          next.push_back(v);
        }
      }
      bwd_frontier.swap(next);
    }
    if (best != kUnset) {
      out.distance = best;
      return out;
    }
  }
  return out;  // unreachable
}

PairDistance BidirectionalDistance(const DiGraph& g, NodeId source,
                                   NodeId target) {
  graph::ScratchArena fwd(g.num_nodes());
  graph::ScratchArena bwd(g.num_nodes());
  return BidirectionalDistance(g, source, target, &fwd, &bwd);
}

PairSampleResult SamplePairDistances(const DiGraph& g, uint32_t pairs,
                                     util::Rng* rng) {
  EN_CHECK(rng != nullptr);
  PairSampleResult out;
  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) + g.InDegree(u) > 0) candidates.push_back(u);
  }
  if (candidates.size() < 2) return out;

  // Two arenas for the whole sweep: each pair recycles the stamped
  // buffers with an O(1) epoch bump instead of two O(n) allocations.
  graph::ScratchArena fwd(g.num_nodes());
  graph::ScratchArena bwd(g.num_nodes());
  double dist_sum = 0.0, expanded_sum = 0.0;
  for (uint32_t i = 0; i < pairs; ++i) {
    const NodeId s = candidates[rng->UniformU64(candidates.size())];
    NodeId t;
    do {
      t = candidates[rng->UniformU64(candidates.size())];
    } while (t == s);
    const PairDistance d = BidirectionalDistance(g, s, t, &fwd, &bwd);
    expanded_sum += static_cast<double>(d.expanded);
    if (d.distance == UINT32_MAX) {
      ++out.unreachable_pairs;
    } else {
      ++out.reachable_pairs;
      dist_sum += d.distance;
    }
  }
  if (out.reachable_pairs > 0) {
    out.mean_distance = dist_sum / static_cast<double>(out.reachable_pairs);
  }
  if (pairs > 0) {
    out.mean_expanded = expanded_sum / static_cast<double>(pairs);
  }
  return out;
}

}  // namespace analysis
}  // namespace elitenet

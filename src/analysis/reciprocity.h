// Link reciprocity (Section IV-C): fraction of directed edges whose
// reverse edge also exists. Paper: 33.7% for verified users vs 22.1% for
// the whole Twitter graph (Kwak et al.) and 68% for Flickr.

#ifndef ELITENET_ANALYSIS_RECIPROCITY_H_
#define ELITENET_ANALYSIS_RECIPROCITY_H_

#include <cstdint>

#include "graph/digraph.h"

namespace elitenet {
namespace analysis {

struct ReciprocityStats {
  uint64_t total_edges = 0;
  /// Edges u->v for which v->u also exists (each direction counted).
  uint64_t reciprocated_edges = 0;
  /// Unordered node pairs with edges both ways.
  uint64_t mutual_pairs = 0;
  /// reciprocated_edges / total_edges; 0 for empty graphs.
  double rate = 0.0;
};

/// O(m log d) scan using sorted-adjacency binary search.
ReciprocityStats ComputeReciprocity(const graph::DiGraph& g);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_RECIPROCITY_H_

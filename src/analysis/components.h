// Connectivity structure: weakly connected components, strongly connected
// components (iterative Tarjan), the condensation DAG, and attracting
// components — the paper reports 6,251 weak components, a giant SCC of
// 97.24% of nodes, and 6,091 attracting components (terminal SCCs a
// random walk can enter but never leave).

#ifndef ELITENET_ANALYSIS_COMPONENTS_H_
#define ELITENET_ANALYSIS_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace elitenet {
namespace analysis {

/// A labeling of nodes into components 0..num_components-1.
struct ComponentLabeling {
  std::vector<uint32_t> label;      ///< node -> component id
  std::vector<uint64_t> sizes;      ///< component id -> node count
  uint32_t num_components = 0;

  /// Id of a largest component.
  uint32_t GiantId() const;
  /// Size of a largest component.
  uint64_t GiantSize() const;
  /// Giant size divided by total nodes (0 for empty graphs).
  double GiantFraction() const;
  /// Members of component `id`, ascending.
  std::vector<graph::NodeId> Members(uint32_t id) const;
};

/// Weakly connected components via a multi-root direction-optimizing BFS
/// over the undirected view (edges treated undirected). Component ids are
/// assigned in order of each component's smallest member.
ComponentLabeling WeaklyConnectedComponents(const graph::DiGraph& g);

/// Strongly connected components via an iterative Tarjan traversal
/// (explicit stack — safe at paper scale where recursion would overflow).
/// Component ids are in reverse topological order of the condensation
/// (Tarjan property: a component is numbered only after all components it
/// reaches).
ComponentLabeling StronglyConnectedComponents(const graph::DiGraph& g);

/// The condensation: one meta-node per SCC, an edge C1 -> C2 iff some
/// cross-component edge exists. Built from a precomputed SCC labeling.
graph::DiGraph Condensation(const graph::DiGraph& g,
                            const ComponentLabeling& scc);

/// Attracting components: SCCs with no out-edge to another SCC. Isolated
/// nodes are trivially attracting (singleton, no edges); the paper's
/// celebrity "sinks" (out-degree 0, high in-degree) are the interesting
/// ones.
struct AttractingComponents {
  /// Ids (into the SCC labeling) of attracting components.
  std::vector<uint32_t> ids;
  uint64_t count = 0;
  /// How many of them are singleton components.
  uint64_t singletons = 0;
};
AttractingComponents FindAttractingComponents(const graph::DiGraph& g,
                                              const ComponentLabeling& scc);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_COMPONENTS_H_

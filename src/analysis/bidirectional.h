// Bidirectional BFS point-to-point shortest path — the "bounded
// bi-directional search" technique of Bakhshandeh et al. (SoCS 2011) the
// paper cites for the whole-Twitter 3.43 average separation. Expands the
// smaller frontier from each side; on small-world graphs this touches
// O(sqrt) of the nodes a one-sided BFS would.

#ifndef ELITENET_ANALYSIS_BIDIRECTIONAL_H_
#define ELITENET_ANALYSIS_BIDIRECTIONAL_H_

#include <cstdint>

#include "graph/digraph.h"
#include "graph/frontier.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {

struct PairDistance {
  /// Directed distance from source to target; UINT32_MAX if unreachable.
  uint32_t distance = UINT32_MAX;
  /// Nodes expanded across both frontiers (the cost measure).
  uint64_t expanded = 0;
};

/// Directed s->t shortest path: forward frontier over out-edges from s,
/// backward frontier over in-edges from t, always advancing the smaller
/// side.
PairDistance BidirectionalDistance(const graph::DiGraph& g,
                                   graph::NodeId source,
                                   graph::NodeId target);

/// Same search, but labels each side in a caller-owned epoch-stamped
/// arena: a sweep over many pairs reuses the O(n) buffers instead of
/// reallocating them per pair. Traversal order — and therefore `distance`
/// and `expanded` — is identical to the vector-based overload.
PairDistance BidirectionalDistance(const graph::DiGraph& g,
                                   graph::NodeId source,
                                   graph::NodeId target,
                                   graph::ScratchArena* fwd,
                                   graph::ScratchArena* bwd);

struct PairSampleResult {
  double mean_distance = 0.0;
  uint64_t reachable_pairs = 0;
  uint64_t unreachable_pairs = 0;
  /// Average nodes expanded per pair — compare against n for full BFS.
  double mean_expanded = 0.0;
};

/// Estimates mean separation from `pairs` random (source, target) pairs of
/// non-isolated distinct nodes, the way the cited work samples Twitter.
PairSampleResult SamplePairDistances(const graph::DiGraph& g,
                                     uint32_t pairs, util::Rng* rng);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_BIDIRECTIONAL_H_

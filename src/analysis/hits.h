// HITS (Kleinberg 1999): hub and authority scores. On a follow graph,
// authorities are the followed elites and hubs are the curators who
// follow them — a natural complement to PageRank for Twitter-style
// influence analysis (TwitterRank and the paper's Section IV-F lineage).

#ifndef ELITENET_ANALYSIS_HITS_H_
#define ELITENET_ANALYSIS_HITS_H_

#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace analysis {

struct HitsOptions {
  int max_iterations = 100;
  /// Convergence threshold on the L1 change of either vector.
  double tolerance = 1e-10;
};

struct HitsResult {
  std::vector<double> hub;        ///< L2-normalized
  std::vector<double> authority;  ///< L2-normalized
  int iterations = 0;
  bool converged = false;
};

/// Power iteration on AᵀA / AAᵀ. Scores are non-negative; isolated
/// nodes get zero.
Result<HitsResult> Hits(const graph::DiGraph& g,
                        const HitsOptions& options = {});

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_HITS_H_

// Centrality measures for Fig. 5: PageRank (power iteration with dangling
// mass redistribution) and betweenness centrality (Brandes 2001, exact or
// pivot-sampled per Brandes & Pich 2007).

#ifndef ELITENET_ANALYSIS_CENTRALITY_H_
#define ELITENET_ANALYSIS_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"
#include "util/status.h"

namespace elitenet {
namespace analysis {

struct PageRankOptions {
  double damping = 0.85;
  /// Convergence threshold on the L1 change per iteration.
  double tolerance = 1e-10;
  int max_iterations = 200;
};

struct PageRankResult {
  std::vector<double> scores;  ///< Sums to 1.
  int iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

/// Power iteration on the Google matrix. Dangling nodes (out-degree 0)
/// spread their mass uniformly — the standard fix, important here because
/// the verified graph's celebrity "sinks" are exactly such nodes.
Result<PageRankResult> PageRank(const graph::DiGraph& g,
                                const PageRankOptions& options = {});

/// Topic-sensitive PageRank (Haveliwala 2002; the mechanism behind
/// TwitterRank, which Section II discusses): teleportation lands on node
/// v with probability proportional to teleport_weights[v] instead of
/// uniformly, and dangling mass follows the same distribution. Weights
/// must be non-negative with a positive sum and size num_nodes.
Result<PageRankResult> PersonalizedPageRank(
    const graph::DiGraph& g, const std::vector<double>& teleport_weights,
    const PageRankOptions& options = {});

struct BetweennessOptions {
  /// 0 = exact (all sources). Otherwise the number of random pivot
  /// sources; scores are scaled by n/pivots so they estimate the exact
  /// values.
  uint32_t pivots = 0;
  uint64_t seed = 42;
};

/// Directed, unweighted betweenness centrality. Endpoints excluded, no
/// normalization (same convention as igraph's `betweenness`).
Result<std::vector<double>> Betweenness(const graph::DiGraph& g,
                                        const BetweennessOptions& options = {});

/// Top-k node ids by score, descending (ties broken by id).
std::vector<graph::NodeId> TopKByScore(const std::vector<double>& scores,
                                       uint32_t k);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_CENTRALITY_H_

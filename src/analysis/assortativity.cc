#include "analysis/assortativity.h"

#include <cmath>

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

double DegreeAssortativity(const DiGraph& g, DegreeMode mode) {
  const uint64_t m = g.num_edges();
  if (m == 0) return 0.0;

  auto src_degree = [&](NodeId u) -> double {
    switch (mode) {
      case DegreeMode::kOutIn:
      case DegreeMode::kOutOut:
        return g.OutDegree(u);
      case DegreeMode::kInIn:
      case DegreeMode::kInOut:
        return g.InDegree(u);
      case DegreeMode::kTotal:
        return static_cast<double>(g.OutDegree(u)) + g.InDegree(u);
    }
    return 0.0;
  };
  auto dst_degree = [&](NodeId v) -> double {
    switch (mode) {
      case DegreeMode::kOutIn:
      case DegreeMode::kInIn:
        return g.InDegree(v);
      case DegreeMode::kOutOut:
      case DegreeMode::kInOut:
        return g.OutDegree(v);
      case DegreeMode::kTotal:
        return static_cast<double>(g.OutDegree(v)) + g.InDegree(v);
    }
    return 0.0;
  };

  // Single numerically stable pass: accumulate raw sums with doubles
  // (values are degrees <= 2^32, m <= 2^37; products stay well inside
  // double's 2^53 integer range divided by m).
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double x = src_degree(u);
    for (NodeId v : g.OutNeighbors(u)) {
      const double y = dst_degree(v);
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
    }
  }
  const double n = static_cast<double>(m);
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

AssortativityReport ComputeAssortativity(const DiGraph& g) {
  AssortativityReport r;
  r.out_in = DegreeAssortativity(g, DegreeMode::kOutIn);
  r.out_out = DegreeAssortativity(g, DegreeMode::kOutOut);
  r.in_in = DegreeAssortativity(g, DegreeMode::kInIn);
  r.in_out = DegreeAssortativity(g, DegreeMode::kInOut);
  r.total = DegreeAssortativity(g, DegreeMode::kTotal);
  return r;
}

}  // namespace analysis
}  // namespace elitenet

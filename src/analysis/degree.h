// Degree statistics (Section IV-A of the paper: min/avg/max out-degree,
// isolated users, density) and degree vectors feeding the power-law fits.

#ifndef ELITENET_ANALYSIS_DEGREE_H_
#define ELITENET_ANALYSIS_DEGREE_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace elitenet {
namespace analysis {

struct DegreeStats {
  uint32_t min_out_degree = 0;
  uint32_t max_out_degree = 0;
  /// A node attaining the maximum out-degree (the paper's
  /// '@6BillionPeople' slot).
  graph::NodeId argmax_out_degree = 0;
  double avg_out_degree = 0.0;
  uint32_t min_in_degree = 0;
  uint32_t max_in_degree = 0;
  graph::NodeId argmax_in_degree = 0;
  double avg_in_degree = 0.0;
  uint64_t isolated_nodes = 0;
  /// Nodes with out-degree 0 but in-degree > 0: the "famous personalities
  /// who do not follow any other handle" at the core of attracting
  /// components.
  uint64_t sink_nodes = 0;
  /// Nodes with in-degree 0 but out-degree > 0.
  uint64_t source_nodes = 0;
  double density = 0.0;
};

/// Computes all degree statistics in one pass.
DegreeStats ComputeDegreeStats(const graph::DiGraph& g);

/// Out-degrees (or in-degrees) as doubles, ready for the stats:: fitters.
std::vector<double> OutDegreeVector(const graph::DiGraph& g);
std::vector<double> InDegreeVector(const graph::DiGraph& g);
/// Total (in + out) degrees, counting reciprocal pairs twice.
std::vector<double> TotalDegreeVector(const graph::DiGraph& g);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_DEGREE_H_

#include "analysis/streamed_stats.h"

#include <cmath>
#include <limits>

namespace elitenet {
namespace analysis {

namespace {

using graph::DiGraph;
using graph::NodeId;

// Raw-moment accumulator for one assortativity flavour — the same five
// sums DegreeAssortativity keeps, updated in the same per-edge order.
struct Moments {
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;

  void Add(double x, double y) {
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }

  // Mirrors DegreeAssortativity's finalization exactly, including the
  // degenerate-variance guard.
  double Pearson(uint64_t m) const {
    if (m == 0) return 0.0;
    const double n = static_cast<double>(m);
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    if (vx <= 0.0 || vy <= 0.0) return 0.0;
    return cov / std::sqrt(vx * vy);
  }
};

}  // namespace

StreamedBasicStats ComputeStreamedBasicStats(const DiGraph& g,
                                             NodeId window_nodes) {
  StreamedBasicStats s;
  const NodeId n = g.num_nodes();
  s.reciprocity.total_edges = g.num_edges();
  if (n == 0) return s;
  if (window_nodes == 0) window_nodes = n;

  s.degrees.min_out_degree = std::numeric_limits<uint32_t>::max();
  s.degrees.min_in_degree = std::numeric_limits<uint32_t>::max();
  uint64_t out_sum = 0, in_sum = 0;
  Moments out_in, out_out, in_in, in_out, total;

  for (NodeId lo = 0; lo < n; lo += window_nodes) {
    const NodeId hi = lo + window_nodes < n ? lo + window_nodes : n;
    ++s.windows;
    for (NodeId u = lo; u < hi; ++u) {
      const uint32_t od = g.OutDegree(u);
      const uint32_t id = g.InDegree(u);

      // -- degree tallies (ComputeDegreeStats' comparisons verbatim, so
      // argmax tie-breaking matches: first strict maximum wins).
      out_sum += od;
      in_sum += id;
      if (od < s.degrees.min_out_degree) s.degrees.min_out_degree = od;
      if (od > s.degrees.max_out_degree) {
        s.degrees.max_out_degree = od;
        s.degrees.argmax_out_degree = u;
      }
      if (id < s.degrees.min_in_degree) s.degrees.min_in_degree = id;
      if (id > s.degrees.max_in_degree) {
        s.degrees.max_in_degree = id;
        s.degrees.argmax_in_degree = u;
      }
      if (od == 0 && id == 0) ++s.degrees.isolated_nodes;
      if (od == 0 && id > 0) ++s.degrees.sink_nodes;
      if (id == 0 && od > 0) ++s.degrees.source_nodes;

      const auto outs = g.OutNeighbors(u);
      const auto ins = g.InNeighbors(u);

      // -- reciprocity: merge-count |out(u) ∩ in(u)|.
      {
        size_t i = 0, j = 0;
        while (i < outs.size() && j < ins.size()) {
          if (outs[i] < ins[j]) {
            ++i;
          } else if (outs[i] > ins[j]) {
            ++j;
          } else {
            ++s.reciprocity.reciprocated_edges;
            ++i;
            ++j;
          }
        }
      }

      // -- assortativity: all five flavours per edge, each flavour's
      // sums touched in the same order its standalone pass would.
      const double x_out = od;
      const double x_in = id;
      const double x_total = static_cast<double>(od) + id;
      for (NodeId v : outs) {
        const double y_out = g.OutDegree(v);
        const double y_in = g.InDegree(v);
        const double y_total = static_cast<double>(g.OutDegree(v)) +
                               g.InDegree(v);
        out_in.Add(x_out, y_in);
        out_out.Add(x_out, y_out);
        in_in.Add(x_in, y_in);
        in_out.Add(x_in, y_out);
        total.Add(x_total, y_total);
      }
    }
  }

  s.degrees.avg_out_degree =
      static_cast<double>(out_sum) / static_cast<double>(n);
  s.degrees.avg_in_degree =
      static_cast<double>(in_sum) / static_cast<double>(n);
  s.degrees.density = g.Density();

  s.reciprocity.mutual_pairs = s.reciprocity.reciprocated_edges / 2;
  if (s.reciprocity.total_edges > 0) {
    s.reciprocity.rate =
        static_cast<double>(s.reciprocity.reciprocated_edges) /
        static_cast<double>(s.reciprocity.total_edges);
  }

  const uint64_t m = g.num_edges();
  s.assortativity.out_in = out_in.Pearson(m);
  s.assortativity.out_out = out_out.Pearson(m);
  s.assortativity.in_in = in_in.Pearson(m);
  s.assortativity.in_out = in_out.Pearson(m);
  s.assortativity.total = total.Pearson(m);
  return s;
}

}  // namespace analysis
}  // namespace elitenet

// Degree assortativity (Section IV-A: the verified network shows a slight
// dissortativity of -0.04, contrasting with homophily in the full Twitter
// graph). Computed as the Pearson correlation of endpoint degrees over
// the directed edge list, in the four directed flavors of Foster et al.
// (PNAS 2010) plus an undirected total-degree variant.

#ifndef ELITENET_ANALYSIS_ASSORTATIVITY_H_
#define ELITENET_ANALYSIS_ASSORTATIVITY_H_

#include "graph/digraph.h"

namespace elitenet {
namespace analysis {

/// Which degree is read at the source / target endpoint of each edge.
enum class DegreeMode {
  kOutIn,   ///< source out-degree vs target in-degree (networkx default)
  kOutOut,  ///< source out-degree vs target out-degree
  kInIn,    ///< source in-degree vs target in-degree
  kInOut,   ///< source in-degree vs target out-degree
  kTotal,   ///< total degree at both endpoints
};

/// Pearson assortativity coefficient over edges; 0 when the graph has no
/// edges or either endpoint-degree sequence is constant.
double DegreeAssortativity(const graph::DiGraph& g,
                           DegreeMode mode = DegreeMode::kOutIn);

struct AssortativityReport {
  double out_in = 0.0;
  double out_out = 0.0;
  double in_in = 0.0;
  double in_out = 0.0;
  double total = 0.0;
};

/// All five flavors in one pass over the edge list per flavor.
AssortativityReport ComputeAssortativity(const graph::DiGraph& g);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_ASSORTATIVITY_H_

#include "analysis/distance.h"

#include <algorithm>

#include "util/check.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

namespace {

// BFS parameterized over the adjacency accessor.
template <typename NeighborFn>
std::vector<uint32_t> BfsImpl(const DiGraph& g, NodeId source,
                              NeighborFn neighbors) {
  EN_CHECK(source < g.num_nodes());
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier, next;
  dist[source] = 0;
  frontier.push_back(source);
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

}  // namespace

std::vector<uint32_t> Bfs(const DiGraph& g, NodeId source) {
  return BfsImpl(g, source, [&](NodeId u) { return g.OutNeighbors(u); });
}

std::vector<uint32_t> ReverseBfs(const DiGraph& g, NodeId target) {
  return BfsImpl(g, target, [&](NodeId u) { return g.InNeighbors(u); });
}

DistanceDistribution SampleDistances(const DiGraph& g, uint32_t num_sources,
                                     util::Rng* rng) {
  EN_CHECK(rng != nullptr);
  DistanceDistribution out;

  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) + g.InDegree(u) > 0) candidates.push_back(u);
  }
  if (candidates.empty()) return out;

  std::vector<NodeId> sources;
  if (candidates.size() <= num_sources) {
    sources = candidates;
  } else {
    const std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
        static_cast<uint32_t>(candidates.size()), num_sources);
    sources.reserve(picks.size());
    for (uint32_t p : picks) sources.push_back(candidates[p]);
  }
  out.sources_used = static_cast<uint32_t>(sources.size());

  double total_dist = 0.0;
  for (NodeId s : sources) {
    const std::vector<uint32_t> dist = Bfs(g, s);
    for (NodeId v : candidates) {
      if (v == s) continue;
      if (dist[v] == kUnreachable) {
        ++out.unreachable_pairs;
        continue;
      }
      ++out.reachable_pairs;
      total_dist += dist[v];
      out.hops.Add(dist[v]);
      out.diameter_lower_bound = std::max(out.diameter_lower_bound, dist[v]);
    }
  }
  if (out.reachable_pairs > 0) {
    out.mean_distance = total_dist / static_cast<double>(out.reachable_pairs);
    out.median_distance = out.hops.Quantile(0.5);
    out.effective_diameter = out.hops.Quantile(0.9);
  }
  return out;
}

}  // namespace analysis
}  // namespace elitenet

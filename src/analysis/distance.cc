#include "analysis/distance.h"

#include <algorithm>

#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

namespace {

// Runs one direction-optimizing BFS and materializes the distance vector
// callers of the vector-returning API expect.
std::vector<uint32_t> BfsToVector(const DiGraph& g, NodeId source,
                                  graph::TraversalDirection direction) {
  EN_CHECK(source < g.num_nodes());
  graph::ScratchArena arena(g.num_nodes());
  graph::BfsOptions options;
  options.direction = direction;
  graph::Bfs(g, source, &arena, options);
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    dist[v] = arena.DistanceOr(v, kUnreachable);
  }
  return dist;
}

}  // namespace

std::vector<uint32_t> Bfs(const DiGraph& g, NodeId source) {
  return BfsToVector(g, source, graph::TraversalDirection::kForward);
}

std::vector<uint32_t> ReverseBfs(const DiGraph& g, NodeId target) {
  return BfsToVector(g, target, graph::TraversalDirection::kReverse);
}

DistanceDistribution SampleDistances(const DiGraph& g, uint32_t num_sources,
                                     util::Rng* rng) {
  ELITENET_SPAN("analysis.sample_distances");
  EN_CHECK(rng != nullptr);
  DistanceDistribution out;

  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) + g.InDegree(u) > 0) candidates.push_back(u);
  }
  if (candidates.empty()) return out;

  std::vector<NodeId> sources;
  if (candidates.size() <= num_sources) {
    sources = candidates;
  } else {
    const std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
        static_cast<uint32_t>(candidates.size()), num_sources);
    sources.reserve(picks.size());
    for (uint32_t p : picks) sources.push_back(candidates[p]);
  }
  out.sources_used = static_cast<uint32_t>(sources.size());
  ELITENET_COUNT("analysis.distances.bfs_sources", sources.size());

  // BFS sources are independent: each task sweeps a block of sources into
  // its own partial tallies, merged in block order afterwards. All partials
  // are integers (hop counts and their sums), so the merge is exact and the
  // result matches the single-threaded sweep bit for bit.
  struct Partial {
    util::IntHistogram hops;
    uint64_t total_dist = 0;
    uint64_t reachable = 0;
    uint64_t unreachable = 0;
    uint32_t max_dist = 0;
  };
  const size_t grain = util::EffectiveGrain(sources.size(), 0);
  const size_t num_blocks = (sources.size() + grain - 1) / grain;
  std::vector<Partial> partials(num_blocks);
  util::ParallelFor(0, sources.size(), grain, [&](size_t lo, size_t hi) {
    Partial& p = partials[lo / grain];
    // One epoch-stamped arena per block: sources in the block reuse its
    // buffers instead of allocating O(n) scratch per BFS, and the
    // direction-optimizing kernel reads distances straight out of it.
    graph::ScratchArena arena(g.num_nodes());
    for (size_t i = lo; i < hi; ++i) {
      const NodeId s = sources[i];
      graph::Bfs(g, s, &arena);
      for (NodeId v : candidates) {
        if (v == s) continue;
        const uint32_t d = arena.DistanceOr(v, kUnreachable);
        if (d == kUnreachable) {
          ++p.unreachable;
          continue;
        }
        ++p.reachable;
        p.total_dist += d;
        p.hops.Add(d);
        p.max_dist = std::max(p.max_dist, d);
      }
    }
  });

  uint64_t total_dist = 0;
  for (const Partial& p : partials) {
    total_dist += p.total_dist;
    out.reachable_pairs += p.reachable;
    out.unreachable_pairs += p.unreachable;
    out.diameter_lower_bound = std::max(out.diameter_lower_bound, p.max_dist);
    const std::vector<uint64_t>& counts = p.hops.counts();
    for (size_t v = 0; v < counts.size(); ++v) {
      if (counts[v] > 0) out.hops.Add(v, counts[v]);
    }
  }
  if (out.reachable_pairs > 0) {
    out.mean_distance = static_cast<double>(total_dist) /
                        static_cast<double>(out.reachable_pairs);
    out.median_distance = out.hops.Quantile(0.5);
    out.effective_diameter = out.hops.Quantile(0.9);
  }
  return out;
}

}  // namespace analysis
}  // namespace elitenet

// Local clustering coefficients on the undirected projection of the
// follow graph (Section IV-A reports an average of 0.1583).

#ifndef ELITENET_ANALYSIS_CLUSTERING_H_
#define ELITENET_ANALYSIS_CLUSTERING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"

namespace elitenet {
namespace analysis {

struct ClusteringStats {
  /// Average of local coefficients over nodes with undirected degree >= 2.
  double average_local = 0.0;
  /// Global transitivity: 3 * triangles / connected triples.
  double transitivity = 0.0;
  uint64_t nodes_evaluated = 0;
  uint64_t triangles = 0;  ///< total closed-triple count / not deduplicated
};

/// Exact computation. O(Σ d_u²) worst case — fine up to a few hundred
/// thousand nodes at the paper's density.
ClusteringStats ComputeClustering(const graph::DiGraph& g);

/// Approximates the average local coefficient by evaluating `samples`
/// uniformly random nodes of undirected degree >= 2 (exact per node).
/// Falls back to the exact value when the graph has fewer eligible nodes.
ClusteringStats ComputeClusteringSampled(const graph::DiGraph& g,
                                         uint32_t samples, util::Rng* rng);

/// Undirected neighborhood of u (out ∪ in, deduplicated, sorted).
std::vector<graph::NodeId> UndirectedNeighbors(const graph::DiGraph& g,
                                               graph::NodeId u);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_CLUSTERING_H_

// k-core decomposition of the undirected projection. Coreness is a
// classic influence proxy (Kitsak et al. 2010: spreaders sit in the
// inner cores) and complements the paper's centrality panel: verified
// elites form an unusually deep core.

#ifndef ELITENET_ANALYSIS_KCORE_H_
#define ELITENET_ANALYSIS_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace elitenet {
namespace analysis {

struct KCoreResult {
  /// Core number per node: the largest k such that the node belongs to a
  /// subgraph where every member has undirected degree >= k.
  std::vector<uint32_t> coreness;
  uint32_t max_core = 0;
  /// Number of nodes attaining max_core (the innermost core's size).
  uint64_t innermost_size = 0;
};

/// Linear-time peeling (Batagelj–Zaveršnik) on the undirected projection.
KCoreResult KCoreDecomposition(const graph::DiGraph& g);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_KCORE_H_

#include "analysis/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

namespace {

// One pull-based power-iteration step shared by PageRank and its
// personalized variant. Per node v the new value is
//   value(v) = (1 - d) * teleport(v)
//            + d * (sum_{u -> v} rank[u] / outdeg(u) + dangling * teleport(v))
// computed over CSR row blocks in parallel. Each next[v] sums its sorted
// in-neighbors' contributions — a per-node order no scheduler can change —
// and the L1 delta folds per-block partials in block order, so the sweep
// is bit-identical for any thread count. Returns the L1 change.
//
// `teleport == nullptr` means the uniform distribution 1/n.
double PowerIterationStep(const DiGraph& g, double damping,
                          const std::vector<double>* teleport,
                          std::vector<double>* rank,
                          std::vector<double>* next,
                          std::vector<double>* contrib) {
  const NodeId n = g.num_nodes();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Pass 1: per-node out-contributions plus the dangling mass.
  const double dangling_mass = util::ParallelReduce(
      0, n, 0, 0.0,
      [&](size_t lo, size_t hi) {
        double dangling = 0.0;
        for (size_t u = lo; u < hi; ++u) {
          const uint32_t deg = g.OutDegree(static_cast<NodeId>(u));
          if (deg == 0) {
            dangling += (*rank)[u];
            (*contrib)[u] = 0.0;
          } else {
            (*contrib)[u] = (*rank)[u] / static_cast<double>(deg);
          }
        }
        return dangling;
      },
      [](double a, double b) { return a + b; });

  // Pass 2: pull sweep + L1 delta.
  const double delta = util::ParallelReduce(
      0, n, 0, 0.0,
      [&](size_t lo, size_t hi) {
        double block_delta = 0.0;
        for (size_t v = lo; v < hi; ++v) {
          double sum = 0.0;
          for (NodeId u : g.InNeighbors(static_cast<NodeId>(v))) {
            sum += (*contrib)[u];
          }
          const double tp = teleport != nullptr ? (*teleport)[v] : inv_n;
          const double value =
              (1.0 - damping) * tp + damping * (sum + dangling_mass * tp);
          block_delta += std::fabs(value - (*rank)[v]);
          (*next)[v] = value;
        }
        return block_delta;
      },
      [](double a, double b) { return a + b; });

  rank->swap(*next);
  return delta;
}

}  // namespace

Result<PageRankResult> PageRank(const DiGraph& g,
                                const PageRankOptions& options) {
  ELITENET_SPAN("analysis.pagerank");
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const NodeId n = g.num_nodes();
  PageRankResult out;
  if (n == 0) return out;

  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n), next(n, 0.0), contrib(n, 0.0);

  for (out.iterations = 1; out.iterations <= options.max_iterations;
       ++out.iterations) {
    const double delta = PowerIterationStep(g, options.damping, nullptr,
                                            &rank, &next, &contrib);
    out.final_delta = delta;
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.iterations = std::min(out.iterations, options.max_iterations);
  ELITENET_GAUGE_SET("analysis.pagerank.iterations", out.iterations);
  out.scores = std::move(rank);
  return out;
}

Result<PageRankResult> PersonalizedPageRank(
    const DiGraph& g, const std::vector<double>& teleport_weights,
    const PageRankOptions& options) {
  ELITENET_SPAN("analysis.personalized_pagerank");
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const NodeId n = g.num_nodes();
  if (teleport_weights.size() != n) {
    return Status::InvalidArgument("teleport weight size mismatch");
  }
  PageRankResult out;
  if (n == 0) return out;

  double weight_sum = 0.0;
  for (double w : teleport_weights) {
    if (w < 0.0) return Status::InvalidArgument("negative teleport weight");
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument("teleport weights sum to zero");
  }
  std::vector<double> teleport(n);
  for (NodeId u = 0; u < n; ++u) {
    teleport[u] = teleport_weights[u] / weight_sum;
  }

  std::vector<double> rank = teleport;
  std::vector<double> next(n, 0.0), contrib(n, 0.0);
  for (out.iterations = 1; out.iterations <= options.max_iterations;
       ++out.iterations) {
    const double delta = PowerIterationStep(g, options.damping, &teleport,
                                            &rank, &next, &contrib);
    out.final_delta = delta;
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.iterations = std::min(out.iterations, options.max_iterations);
  out.scores = std::move(rank);
  return out;
}

namespace {

// One Brandes source accumulation: the direction-optimizing kernel orders
// nodes by (level, id), then path counts and the dependency
// back-propagation add this source's contribution to `bc`.
//
// Sigma is *pulled*: sigma(v) sums sigma(u) over in-neighbors one level
// closer, walking the canonical visit order. Path counts are integers held
// exactly in doubles, so the pull order cannot change their values — which
// is what lets the BFS run bottom-up without disturbing determinism.
void BrandesFromSource(const DiGraph& g, NodeId s, std::vector<double>* bc,
                       graph::ScratchArena* arena,
                       std::vector<double>* sigma,
                       std::vector<double>* delta,
                       std::vector<NodeId>* order) {
  order->clear();
  graph::BfsOptions options;
  options.visit_order = order;
  graph::Bfs(g, s, arena, options);

  (*sigma)[s] = 1.0;
  (*delta)[s] = 0.0;
  for (size_t i = 1; i < order->size(); ++i) {
    const NodeId v = (*order)[i];
    const uint32_t dv = arena->Distance(v);
    double acc = 0.0;
    for (NodeId u : g.InNeighbors(v)) {
      // DistanceOr yields UINT32_MAX for unvisited u; +1 wraps to 0 and
      // can never equal dv >= 1, so no explicit visited check is needed.
      if (arena->DistanceOr(u, UINT32_MAX) + 1 == dv) acc += (*sigma)[u];
    }
    (*sigma)[v] = acc;
    (*delta)[v] = 0.0;
  }

  // Reverse canonical order = non-increasing distance; accumulate
  // dependencies.
  for (size_t i = order->size(); i-- > 1;) {  // skip the source itself
    const NodeId w = (*order)[i];
    const uint32_t dw = arena->Distance(w);
    const double coeff = (1.0 + (*delta)[w]) / (*sigma)[w];
    for (NodeId p : g.InNeighbors(w)) {
      if (arena->DistanceOr(p, UINT32_MAX) + 1 == dw) {
        (*delta)[p] += (*sigma)[p] * coeff;
      }
    }
    (*bc)[w] += (*delta)[w];
  }
}

}  // namespace

Result<std::vector<double>> Betweenness(const DiGraph& g,
                                        const BetweennessOptions& options) {
  ELITENET_SPAN("analysis.betweenness");
  const NodeId n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (n == 0) return bc;

  std::vector<NodeId> sources;
  double scale = 1.0;
  if (options.pivots == 0 || options.pivots >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), NodeId{0});
  } else {
    util::Rng rng(options.seed);
    const std::vector<uint32_t> picks =
        rng.SampleWithoutReplacement(n, options.pivots);
    sources.assign(picks.begin(), picks.end());
    scale = static_cast<double>(n) / static_cast<double>(options.pivots);
  }
  ELITENET_COUNT("analysis.betweenness.pivots", sources.size());

  // Pivot sources split into a fixed number of blocks (independent of the
  // thread count); each block accumulates into its own n-sized buffer with
  // its own BFS scratch, and the buffers merge in block order. The fixed
  // block structure keeps the floating-point accumulation order — and so
  // the scores — bit-identical for any thread count. 16 blocks bound the
  // extra memory at 16 doubles/node while leaving dynamic scheduling
  // enough slack to balance uneven BFS costs.
  constexpr size_t kMaxBlocks = 16;
  const size_t grain = (sources.size() + kMaxBlocks - 1) / kMaxBlocks;
  const size_t num_blocks = (sources.size() + grain - 1) / grain;
  std::vector<std::vector<double>> block_bc(num_blocks);
  util::ParallelFor(0, sources.size(), grain, [&](size_t lo, size_t hi) {
    std::vector<double>& local = block_bc[lo / grain];
    local.assign(n, 0.0);
    graph::ScratchArena arena(n);
    std::vector<double> sigma(n), delta(n);
    std::vector<NodeId> order;
    order.reserve(n);
    for (size_t i = lo; i < hi; ++i) {
      const NodeId s = sources[i];
      if (g.OutDegree(s) == 0) continue;  // contributes nothing
      BrandesFromSource(g, s, &local, &arena, &sigma, &delta, &order);
    }
  });
  for (const std::vector<double>& local : block_bc) {
    if (local.empty()) continue;  // block skipped (e.g. empty range)
    for (NodeId v = 0; v < n; ++v) bc[v] += local[v];
  }
  if (scale != 1.0) {
    for (double& x : bc) x *= scale;
  }
  return bc;
}

std::vector<NodeId> TopKByScore(const std::vector<double>& scores,
                                uint32_t k) {
  std::vector<NodeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  const size_t take = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + take, ids.end(),
                    [&](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

}  // namespace analysis
}  // namespace elitenet

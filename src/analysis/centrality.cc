#include "analysis/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

Result<PageRankResult> PageRank(const DiGraph& g,
                                const PageRankOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const NodeId n = g.num_nodes();
  PageRankResult out;
  if (n == 0) return out;

  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n), next(n, 0.0);

  for (out.iterations = 1; out.iterations <= options.max_iterations;
       ++out.iterations) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const auto nbrs = g.OutNeighbors(u);
      if (nbrs.empty()) {
        dangling_mass += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(nbrs.size());
      for (NodeId v : nbrs) next[v] += share;
    }
    const double base =
        (1.0 - options.damping) * inv_n +
        options.damping * dangling_mass * inv_n;
    double delta = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const double value = base + options.damping * next[u];
      delta += std::fabs(value - rank[u]);
      rank[u] = value;
    }
    out.final_delta = delta;
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.iterations = std::min(out.iterations, options.max_iterations);
  out.scores = std::move(rank);
  return out;
}

Result<PageRankResult> PersonalizedPageRank(
    const DiGraph& g, const std::vector<double>& teleport_weights,
    const PageRankOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const NodeId n = g.num_nodes();
  if (teleport_weights.size() != n) {
    return Status::InvalidArgument("teleport weight size mismatch");
  }
  PageRankResult out;
  if (n == 0) return out;

  double weight_sum = 0.0;
  for (double w : teleport_weights) {
    if (w < 0.0) return Status::InvalidArgument("negative teleport weight");
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument("teleport weights sum to zero");
  }
  std::vector<double> teleport(n);
  for (NodeId u = 0; u < n; ++u) {
    teleport[u] = teleport_weights[u] / weight_sum;
  }

  std::vector<double> rank = teleport;
  std::vector<double> next(n, 0.0);
  for (out.iterations = 1; out.iterations <= options.max_iterations;
       ++out.iterations) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const auto nbrs = g.OutNeighbors(u);
      if (nbrs.empty()) {
        dangling_mass += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(nbrs.size());
      for (NodeId v : nbrs) next[v] += share;
    }
    double delta = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const double value =
          (1.0 - options.damping) * teleport[u] +
          options.damping * (next[u] + dangling_mass * teleport[u]);
      delta += std::fabs(value - rank[u]);
      rank[u] = value;
    }
    out.final_delta = delta;
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.iterations = std::min(out.iterations, options.max_iterations);
  out.scores = std::move(rank);
  return out;
}

namespace {

// One Brandes source accumulation: BFS orders nodes by distance, then the
// dependency back-propagation adds this source's contribution to `bc`.
void BrandesFromSource(const DiGraph& g, NodeId s, std::vector<double>* bc,
                       std::vector<uint32_t>* dist,
                       std::vector<double>* sigma,
                       std::vector<double>* delta,
                       std::vector<NodeId>* order) {
  const NodeId n = g.num_nodes();
  std::fill(dist->begin(), dist->end(), UINT32_MAX);
  std::fill(sigma->begin(), sigma->end(), 0.0);
  std::fill(delta->begin(), delta->end(), 0.0);
  order->clear();

  (*dist)[s] = 0;
  (*sigma)[s] = 1.0;
  size_t head = 0;
  order->push_back(s);
  while (head < order->size()) {
    const NodeId u = (*order)[head++];
    const uint32_t du = (*dist)[u];
    for (NodeId v : g.OutNeighbors(u)) {
      if ((*dist)[v] == UINT32_MAX) {
        (*dist)[v] = du + 1;
        order->push_back(v);
      }
      if ((*dist)[v] == du + 1) {
        (*sigma)[v] += (*sigma)[u];
      }
    }
  }
  // Reverse BFS order = non-increasing distance; accumulate dependencies.
  for (size_t i = order->size(); i-- > 1;) {  // skip the source itself
    const NodeId w = (*order)[i];
    const uint32_t dw = (*dist)[w];
    const double coeff = (1.0 + (*delta)[w]) / (*sigma)[w];
    for (NodeId p : g.InNeighbors(w)) {
      if ((*dist)[p] != UINT32_MAX && (*dist)[p] + 1 == dw) {
        (*delta)[p] += (*sigma)[p] * coeff;
      }
    }
    (*bc)[w] += (*delta)[w];
  }
  (void)n;
}

}  // namespace

Result<std::vector<double>> Betweenness(const DiGraph& g,
                                        const BetweennessOptions& options) {
  const NodeId n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (n == 0) return bc;

  std::vector<NodeId> sources;
  double scale = 1.0;
  if (options.pivots == 0 || options.pivots >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), NodeId{0});
  } else {
    util::Rng rng(options.seed);
    const std::vector<uint32_t> picks =
        rng.SampleWithoutReplacement(n, options.pivots);
    sources.assign(picks.begin(), picks.end());
    scale = static_cast<double>(n) / static_cast<double>(options.pivots);
  }

  std::vector<uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId s : sources) {
    if (g.OutDegree(s) == 0) continue;  // contributes nothing
    BrandesFromSource(g, s, &bc, &dist, &sigma, &delta, &order);
  }
  if (scale != 1.0) {
    for (double& x : bc) x *= scale;
  }
  return bc;
}

std::vector<NodeId> TopKByScore(const std::vector<double>& scores,
                                uint32_t k) {
  std::vector<NodeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  const size_t take = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + take, ids.end(),
                    [&](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

}  // namespace analysis
}  // namespace elitenet

#include "analysis/reciprocity.h"

#include <algorithm>

namespace elitenet {
namespace analysis {

ReciprocityStats ComputeReciprocity(const graph::DiGraph& g) {
  ReciprocityStats s;
  s.total_edges = g.num_edges();
  // Merge-count the intersection of out(u) and in(u): v appears in both
  // exactly when u->v and v->u both exist.
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto outs = g.OutNeighbors(u);
    const auto ins = g.InNeighbors(u);
    size_t i = 0, j = 0;
    while (i < outs.size() && j < ins.size()) {
      if (outs[i] < ins[j]) {
        ++i;
      } else if (outs[i] > ins[j]) {
        ++j;
      } else {
        ++s.reciprocated_edges;
        ++i;
        ++j;
      }
    }
  }
  s.mutual_pairs = s.reciprocated_edges / 2;
  if (s.total_edges > 0) {
    s.rate = static_cast<double>(s.reciprocated_edges) /
             static_cast<double>(s.total_edges);
  }
  return s;
}

}  // namespace analysis
}  // namespace elitenet

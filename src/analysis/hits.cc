#include "analysis/hits.h"

#include <cmath>

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

Result<HitsResult> Hits(const DiGraph& g, const HitsOptions& options) {
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const NodeId n = g.num_nodes();
  HitsResult out;
  if (n == 0) return out;

  std::vector<double> hub(n, 1.0), auth(n, 1.0);

  auto normalize = [&](std::vector<double>* v) {
    double norm = 0.0;
    for (double x : *v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& x : *v) x /= norm;
    }
  };
  normalize(&hub);
  normalize(&auth);

  for (out.iterations = 1; out.iterations <= options.max_iterations;
       ++out.iterations) {
    // authority(v) = sum of hub scores of followers of v.
    std::vector<double> new_auth(n, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const double h = hub[u];
      for (NodeId v : g.OutNeighbors(u)) new_auth[v] += h;
    }
    normalize(&new_auth);
    // hub(u) = sum of authority scores of who u follows.
    std::vector<double> new_hub(n, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      double acc = 0.0;
      for (NodeId v : g.OutNeighbors(u)) acc += new_auth[v];
      new_hub[u] = acc;
    }
    normalize(&new_hub);

    double delta = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      delta += std::fabs(new_hub[u] - hub[u]) +
               std::fabs(new_auth[u] - auth[u]);
    }
    hub.swap(new_hub);
    auth.swap(new_auth);
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.iterations = std::min(out.iterations, options.max_iterations);
  out.hub = std::move(hub);
  out.authority = std::move(auth);
  return out;
}

}  // namespace analysis
}  // namespace elitenet

#include "analysis/hits.h"

#include <cmath>

#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace analysis {

using graph::DiGraph;
using graph::NodeId;

Result<HitsResult> Hits(const DiGraph& g, const HitsOptions& options) {
  ELITENET_SPAN("analysis.hits");
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const NodeId n = g.num_nodes();
  HitsResult out;
  if (n == 0) return out;

  std::vector<double> hub(n, 1.0), auth(n, 1.0);

  // Parallel sweeps follow the same determinism recipe as PageRank: each
  // node's sum runs over its sorted CSR neighbor list, and global scalars
  // (norms, deltas) fold per-chunk partials in chunk order, so results are
  // bit-identical for any thread count.
  auto sum_of_squares = [&](const std::vector<double>& v) {
    return util::ParallelReduce(
        0, n, 0, 0.0,
        [&](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) s += v[i] * v[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  auto normalize = [&](std::vector<double>* v) {
    const double norm = std::sqrt(sum_of_squares(*v));
    if (norm > 0.0) {
      util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) (*v)[i] /= norm;
      });
    }
  };
  normalize(&hub);
  normalize(&auth);

  std::vector<double> new_auth(n), new_hub(n);
  for (out.iterations = 1; out.iterations <= options.max_iterations;
       ++out.iterations) {
    // authority(v) = sum of hub scores of followers of v (pull over
    // in-neighbors).
    util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
      for (size_t v = lo; v < hi; ++v) {
        double acc = 0.0;
        for (NodeId u : g.InNeighbors(static_cast<NodeId>(v))) {
          acc += hub[u];
        }
        new_auth[v] = acc;
      }
    });
    normalize(&new_auth);
    // hub(u) = sum of authority scores of who u follows.
    util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
      for (size_t u = lo; u < hi; ++u) {
        double acc = 0.0;
        for (NodeId v : g.OutNeighbors(static_cast<NodeId>(u))) {
          acc += new_auth[v];
        }
        new_hub[u] = acc;
      }
    });
    normalize(&new_hub);

    const double delta = util::ParallelReduce(
        0, n, 0, 0.0,
        [&](size_t lo, size_t hi) {
          double d = 0.0;
          for (size_t u = lo; u < hi; ++u) {
            d += std::fabs(new_hub[u] - hub[u]) +
                 std::fabs(new_auth[u] - auth[u]);
          }
          return d;
        },
        [](double a, double b) { return a + b; });
    hub.swap(new_hub);
    auth.swap(new_auth);
    if (delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.iterations = std::min(out.iterations, options.max_iterations);
  ELITENET_GAUGE_SET("analysis.hits.iterations", out.iterations);
  out.hub = std::move(hub);
  out.authority = std::move(auth);
  return out;
}

}  // namespace analysis
}  // namespace elitenet

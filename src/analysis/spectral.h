// Spectral analysis (Section IV-B): the paper fits a power law to the
// largest eigenvalues of the graph Laplacian, "computed using the power
// iteration method in existing solvers". We implement the symmetric
// Laplacian L = D - A of the undirected projection (A_uv = 1 iff u->v or
// v->u) and extract the top-k eigenvalues with a Lanczos iteration using
// full reorthogonalization, plus a plain power-iteration for the single
// largest eigenvalue.

#ifndef ELITENET_ANALYSIS_SPECTRAL_H_
#define ELITENET_ANALYSIS_SPECTRAL_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"
#include "util/status.h"

namespace elitenet {
namespace analysis {

/// Matrix-free operator for L = D - A on the undirected projection.
///
/// Stores only the reciprocal-edge intersection lists (out ∩ in per node)
/// so the matvec runs off the original CSR without materializing union
/// adjacency: (Ax)_u = Σ_{out} x_v + Σ_{in} x_v - Σ_{recip} x_v.
class LaplacianOperator {
 public:
  explicit LaplacianOperator(const graph::DiGraph& g);

  uint32_t dimension() const { return static_cast<uint32_t>(degree_.size()); }

  /// Undirected degree of u.
  double degree(graph::NodeId u) const { return degree_[u]; }

  /// y = L x. Requires x.size() == y->size() == dimension().
  void Apply(const std::vector<double>& x, std::vector<double>* y) const;

 private:
  const graph::DiGraph& g_;
  std::vector<double> degree_;
  /// CSR of reciprocal neighbors (v in out(u) ∩ in(u)).
  std::vector<uint64_t> recip_offsets_;
  std::vector<graph::NodeId> recip_targets_;
};

struct LanczosOptions {
  /// Number of largest eigenvalues requested.
  uint32_t k = 100;
  /// Krylov subspace dimension; 0 = automatic (k + 40, capped by n).
  uint32_t subspace = 0;
  uint64_t seed = 7;
  /// Ritz-value convergence tolerance (relative residual estimate).
  double tolerance = 1e-8;
};

struct LanczosResult {
  /// Largest Ritz values, descending. The leading values converge to
  /// eigenvalues rapidly; accuracy degrades toward the k-th (interior
  /// Ritz values of a (k + margin)-dimensional Krylov space are
  /// approximations). Raise `subspace` for tighter interior accuracy.
  /// May hold fewer than k values if the Krylov space exhausted.
  std::vector<double> eigenvalues;
  uint32_t iterations = 0;
};

/// Top-k eigenvalues of the Laplacian via Lanczos with full
/// reorthogonalization. The Laplacian is PSD so all values are >= 0.
Result<LanczosResult> TopLaplacianEigenvalues(const graph::DiGraph& g,
                                              const LanczosOptions& options = {});

/// Largest eigenvalue by straightforward power iteration (reference
/// implementation used in tests to validate Lanczos, and the method the
/// paper names).
Result<double> PowerIterationLargest(const LaplacianOperator& op,
                                     int max_iterations = 1000,
                                     double tolerance = 1e-10,
                                     uint64_t seed = 7);

/// Eigenvalues of a symmetric tridiagonal matrix (diag, offdiag) by the
/// implicit QL algorithm, ascending. offdiag has diag.size()-1 entries.
/// Exposed for tests.
Result<std::vector<double>> SymmetricTridiagonalEigenvalues(
    std::vector<double> diag, std::vector<double> offdiag);

}  // namespace analysis
}  // namespace elitenet

#endif  // ELITENET_ANALYSIS_SPECTRAL_H_

#include "analysis/degree.h"

#include <limits>

namespace elitenet {
namespace analysis {

DegreeStats ComputeDegreeStats(const graph::DiGraph& g) {
  DegreeStats s;
  const graph::NodeId n = g.num_nodes();
  if (n == 0) return s;

  s.min_out_degree = std::numeric_limits<uint32_t>::max();
  s.min_in_degree = std::numeric_limits<uint32_t>::max();
  uint64_t out_sum = 0, in_sum = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    const uint32_t od = g.OutDegree(u);
    const uint32_t id = g.InDegree(u);
    out_sum += od;
    in_sum += id;
    if (od < s.min_out_degree) s.min_out_degree = od;
    if (od > s.max_out_degree) {
      s.max_out_degree = od;
      s.argmax_out_degree = u;
    }
    if (id < s.min_in_degree) s.min_in_degree = id;
    if (id > s.max_in_degree) {
      s.max_in_degree = id;
      s.argmax_in_degree = u;
    }
    if (od == 0 && id == 0) ++s.isolated_nodes;
    if (od == 0 && id > 0) ++s.sink_nodes;
    if (id == 0 && od > 0) ++s.source_nodes;
  }
  s.avg_out_degree = static_cast<double>(out_sum) / static_cast<double>(n);
  s.avg_in_degree = static_cast<double>(in_sum) / static_cast<double>(n);
  s.density = g.Density();
  return s;
}

std::vector<double> OutDegreeVector(const graph::DiGraph& g) {
  std::vector<double> out(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    out[u] = static_cast<double>(g.OutDegree(u));
  }
  return out;
}

std::vector<double> InDegreeVector(const graph::DiGraph& g) {
  std::vector<double> out(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    out[u] = static_cast<double>(g.InDegree(u));
  }
  return out;
}

std::vector<double> TotalDegreeVector(const graph::DiGraph& g) {
  std::vector<double> out(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    out[u] = static_cast<double>(g.OutDegree(u)) +
             static_cast<double>(g.InDegree(u));
  }
  return out;
}

}  // namespace analysis
}  // namespace elitenet

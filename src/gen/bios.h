// Synthetic bio corpus generator (Section IV-E substrate). Bios are
// assembled from a role-conditioned clause grammar whose phrase
// probabilities are calibrated to the paper's Tables I-II: at paper scale
// (231,246 users) the expected count of "Official Twitter" is ~12,166,
// "Official Twitter Account" ~5,457, "Weather Alerts EN" ~847, and so on
// down both tables, with clause punctuation placed so no *unlisted*
// n-gram outranks the listed ones. The dominant role is journalism, the
// paper's "running theme".

#ifndef ELITENET_GEN_BIOS_H_
#define ELITENET_GEN_BIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gen/verified_network.h"
#include "util/status.h"

namespace elitenet {
namespace gen {

/// Occupational archetype controlling which clauses a bio can draw.
enum class BioRole : uint8_t {
  kJournalist = 0,
  kNewsOutlet,
  kWeatherOutlet,
  kAthleteRugby,
  kAthleteBaseball,
  kAthleteOther,
  kMusician,
  kTvFilm,
  kAuthor,
  kBrand,
  kPolitician,
  kGeneric,
  kNumRoles,
};

struct BioConfig {
  uint64_t seed = 99;
};

struct BioCorpus {
  std::vector<std::string> bios;     ///< one per user
  std::vector<BioRole> roles;        ///< archetype per user
  uint64_t CountRole(BioRole role) const;
};

/// Generates one bio per node of `network`. Celebrity sinks skew toward
/// musician/TV/athlete archetypes; everyone else follows the global role
/// mix.
Result<BioCorpus> GenerateBios(const VerifiedNetwork& network,
                               const BioConfig& config = {});

/// Human-readable role name ("journalist").
const char* BioRoleName(BioRole role);

}  // namespace gen
}  // namespace elitenet

#endif  // ELITENET_GEN_BIOS_H_

#include "gen/profiles.h"

#include <cmath>

#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace gen {

Result<std::vector<UserProfile>> GenerateProfiles(
    const VerifiedNetwork& network, const ProfileConfig& config) {
  ELITENET_SPAN("gen.profiles");
  const graph::DiGraph& g = network.graph;
  const uint32_t n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty network");
  ELITENET_COUNT("gen.profiles.users", n);

  util::Rng rng(config.seed);
  std::vector<UserProfile> profiles(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    const double in_deg = g.InDegree(u);
    const double out_deg = g.OutDegree(u);
    UserProfile& p = profiles[u];

    // Whole-Twitter followers: even a friendless verified user has an
    // audience, hence the +1 smoothing.
    const double followers =
        config.followers_per_in_degree * (in_deg + 1.0) *
        rng.LogNormal(0.0, config.followers_noise_sigma);
    p.followers = static_cast<uint64_t>(std::llround(followers));

    const double friends = config.friends_per_out_degree * (out_deg + 1.0) *
                           rng.LogNormal(0.0, config.friends_noise_sigma);
    p.friends = static_cast<uint64_t>(std::llround(friends));

    const double listed =
        config.listed_scale *
        std::pow(static_cast<double>(p.followers) + 1.0,
                 config.listed_exponent) *
        rng.LogNormal(0.0, config.listed_noise_sigma);
    p.listed = static_cast<uint64_t>(std::llround(listed));

    const double statuses =
        rng.LogNormal(config.statuses_mu, config.statuses_sigma) *
        std::pow(static_cast<double>(p.followers) + 1.0,
                 config.statuses_coupling);
    p.statuses = static_cast<uint64_t>(std::llround(statuses));
  }
  return profiles;
}

namespace {

template <typename Getter>
std::vector<double> Column(const std::vector<UserProfile>& p, Getter get) {
  std::vector<double> out;
  out.reserve(p.size());
  for (const UserProfile& u : p) out.push_back(static_cast<double>(get(u)));
  return out;
}

}  // namespace

std::vector<double> FollowersColumn(const std::vector<UserProfile>& p) {
  return Column(p, [](const UserProfile& u) { return u.followers; });
}
std::vector<double> FriendsColumn(const std::vector<UserProfile>& p) {
  return Column(p, [](const UserProfile& u) { return u.friends; });
}
std::vector<double> ListedColumn(const std::vector<UserProfile>& p) {
  return Column(p, [](const UserProfile& u) { return u.listed; });
}
std::vector<double> StatusesColumn(const std::vector<UserProfile>& p) {
  return Column(p, [](const UserProfile& u) { return u.statuses; });
}

}  // namespace gen
}  // namespace elitenet

// Synthetic follow/unfollow churn over a generated verified network —
// the replay workload for the live-mutation serving path.
//
// The trace models the drift the Evolving-Twitter literature reports for
// follower networks between crawls (and that the paper's one-shot crawl
// cannot show): *densification* — follows outnumber unfollows, so the
// edge count grows — with rich-get-richer target choice (a new follow
// lands on an account proportionally to its in-degree), and *reciprocity
// drift* — a tunable share of new follows are follow-backs of an existing
// inbound edge, pushing edge reciprocity up from the base network's
// level.
//
// Determinism: the trace is a pure function of (base graph, config); the
// generator draws every sample from one util::Rng seeded by config.seed.
// Replaying the trace through serve::LiveGraph::Apply in order therefore
// reproduces the same graph state, version numbering, and compacted
// snapshot bytes on every run — the property bench_mutations' byte-
// identity gate leans on.
//
// gen does not depend on serve: EdgeMutation mirrors serve::Mutation
// structurally, and the callers (CLI, bench) convert when journaling a
// trace via serve/mutation_log.h.

#ifndef ELITENET_GEN_CHURN_H_
#define ELITENET_GEN_CHURN_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace gen {

/// One directed follow (creates src -> dst) or unfollow (retracts it).
struct EdgeMutation {
  bool follow = true;
  graph::NodeId src = 0;
  graph::NodeId dst = 0;

  bool operator==(const EdgeMutation&) const = default;
};

struct MutationTraceConfig {
  uint32_t num_mutations = 100000;
  uint64_t seed = 2018;

  /// Share of mutations that retract a currently present edge. Below 0.5
  /// the network densifies (the drift between successive crawls of the
  /// same network that longitudinal Twitter studies measure).
  double unfollow_fraction = 0.15;
  /// Probability a follow picks its target proportionally to base
  /// in-degree (preferential attachment); the rest target uniformly,
  /// which is what lets fresh low-degree pairs appear at all.
  double preferential = 0.7;
  /// Probability a follow is a follow-back: src picks a target among its
  /// base in-neighbors it does not follow yet. Raising this drives edge
  /// reciprocity upward over the trace.
  double reciprocation = 0.35;
  /// Share of unfollows aimed at base edges (tombstones in the overlay);
  /// the rest retract edges the trace itself added.
  double base_unfollow_share = 0.7;
};

struct MutationTrace {
  std::vector<EdgeMutation> mutations;
  /// Tallies over `mutations` (every record changes state by
  /// construction — the generator never emits a no-op).
  uint64_t follows = 0;
  uint64_t unfollows = 0;
  /// Follows that closed a reciprocal pair at emission time.
  uint64_t reciprocal_follows = 0;
  /// Unfollows that retracted a base edge (vs a trace-added one).
  uint64_t base_unfollows = 0;
};

/// Generates a churn trace against `base`. Every emitted mutation is
/// effective (follows edges absent at that point, unfollows edges
/// present), so replaying the trace changes state exactly
/// `num_mutations` times. Deterministic in config.seed. InvalidArgument
/// for an empty/edgeless base or out-of-range config fractions.
Result<MutationTrace> GenerateMutationTrace(const graph::DiGraph& base,
                                            const MutationTraceConfig& config);

}  // namespace gen
}  // namespace elitenet

#endif  // ELITENET_GEN_CHURN_H_

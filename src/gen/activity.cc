#include "gen/activity.h"

#include <cmath>

#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace gen {

using timeseries::Date;
using timeseries::DaysFromCivil;

Result<ActivitySeries> GenerateActivity(const ActivityConfig& config) {
  ELITENET_SPAN("gen.activity");
  if (config.num_days < 30) {
    return Status::InvalidArgument("need at least 30 days");
  }
  if (!timeseries::IsValidDate(config.start)) {
    return Status::InvalidArgument("invalid start date");
  }
  if (config.base_level <= 0.0) {
    return Status::InvalidArgument("base level must be positive");
  }

  util::Rng rng(config.seed);
  ActivitySeries out;
  out.start = config.start;
  out.daily_tweets.reserve(static_cast<size_t>(config.num_days));

  const int64_t xmas_lo = DaysFromCivil(config.christmas_start);
  const int64_t xmas_hi = DaysFromCivil(config.christmas_end);
  const int64_t april = DaysFromCivil(config.april_shift);

  int64_t day = DaysFromCivil(config.start);
  double ar_state = 0.0;  // persistent log-level deviation
  for (int i = 0; i < config.num_days; ++i, ++day) {
    const bool post_april = day >= april;
    const double sigma = post_april
                             ? config.noise_sigma * config.april_noise_multiplier
                             : config.noise_sigma;
    ar_state = config.ar_phi * ar_state + sigma * rng.Normal();

    double log_level = std::log(config.base_level) + ar_state;
    const int dow = static_cast<int>(((day % 7) + 11) % 7);  // 0 = Sunday
    if (dow == 0) {
      log_level += std::log(config.sunday_factor);
    } else if (dow == 6) {
      log_level += std::log(config.saturday_factor);
    }
    if (day >= xmas_lo && day <= xmas_hi) {
      log_level += std::log(config.christmas_factor);
    }
    if (post_april) log_level += std::log(config.april_factor);
    out.daily_tweets.push_back(std::exp(log_level));
  }
  return out;
}

}  // namespace gen
}  // namespace elitenet

// Classic random-graph generators. These serve two roles: baselines for
// the analysis algorithms (test oracles with known structure) and
// comparison networks for the benches (e.g. Erdős–Rényi vs the calibrated
// verified network to show which properties are distinctive).

#ifndef ELITENET_GEN_GENERATORS_H_
#define ELITENET_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"
#include "util/status.h"

namespace elitenet {
namespace gen {

/// G(n, m): exactly m distinct directed edges chosen uniformly (no self
/// loops). Requires m <= n*(n-1).
Result<graph::DiGraph> ErdosRenyi(graph::NodeId n, uint64_t m,
                                  util::Rng* rng);

/// Directed preferential attachment (Price's model): nodes arrive one at
/// a time and emit `out_per_node` edges to existing nodes chosen with
/// probability proportional to (in-degree + 1). Produces a power-law
/// in-degree tail.
Result<graph::DiGraph> PreferentialAttachment(graph::NodeId n,
                                              uint32_t out_per_node,
                                              util::Rng* rng);

/// Directed Watts–Strogatz: ring lattice where each node points to its
/// `k` clockwise successors, each edge rewired to a uniform target with
/// probability `beta`. High clustering, short paths.
Result<graph::DiGraph> WattsStrogatz(graph::NodeId n, uint32_t k,
                                     double beta, util::Rng* rng);

/// Directed configuration model: wires the exact out-degree sequence to
/// targets drawn with probability proportional to `in_weight`, rejecting
/// self loops and duplicate edges (up to a retry cap per stub, after
/// which the stub is dropped — heavy-tailed sequences make perfect
/// matchings infeasible).
Result<graph::DiGraph> ConfigurationModel(
    const std::vector<uint32_t>& out_degrees,
    const std::vector<double>& in_weights, util::Rng* rng);

}  // namespace gen
}  // namespace elitenet

#endif  // ELITENET_GEN_GENERATORS_H_

// Calibrated synthetic stand-in for the paper's crawled verified-user
// network (231,246 English verified users, 79,213,811 edges — not
// publicly crawlable). The generator plants, by construction, every
// structural property Section IV measures:
//
//   * power-law out-degree tail (target alpha 3.24, xmin ≈ 3.9x the mean
//     degree, matching 1334 vs mean 342.55 at paper scale),
//   * reciprocity (target 33.7%) via probabilistic reverse-edge planting,
//   * isolated users (2.61% — 6,027 of 231,246),
//   * celebrity "sinks" (out-degree 0, huge in-degree) that become the
//     singleton attracting components at the core of the paper's 6,091,
//   * a sprinkle of small weak components (6,251 total components),
//   * a giant SCC covering ~97% of users (dense random wiring plus an
//     in-degree floor repair),
//   * triadic closure mixing for a non-trivial clustering coefficient,
//   * heavy-tailed popularity (log-normal in-weights) giving the slight
//     degree dissortativity the paper reports.
//
// All sizes are fractions of `num_users`, so the same configuration
// reproduces shape at laptop scale (default 40k nodes) or full paper
// scale (231,246 nodes).

#ifndef ELITENET_GEN_VERIFIED_NETWORK_H_
#define ELITENET_GEN_VERIFIED_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/io.h"
#include "util/status.h"

namespace elitenet {
namespace gen {

/// Structural role a node plays in the generated network.
enum class UserRole : uint8_t {
  kCore = 0,            ///< giant-component member
  kSink = 1,            ///< celebrity: out-degree 0, high in-degree
  kSmallComponent = 2,  ///< member of a small separate weak component
  kIsolated = 3,        ///< no edges at all
};

struct VerifiedNetworkConfig {
  uint32_t num_users = 40000;
  uint64_t seed = 2018;

  /// Edge density m / (n(n-1)); the paper's crawl measures 0.00148.
  double density = 0.00148;
  /// 6,027 / 231,246.
  double isolated_fraction = 0.02606;
  /// Celebrity sinks; with isolated nodes these make up the paper's
  /// 6,091 attracting components (64 / 231,246 non-isolated ones).
  double sink_fraction = 0.00028;
  /// Nodes placed in small (2-5 node) weak components; the paper's 223
  /// non-giant non-singleton components.
  double small_component_fraction = 0.0029;

  /// Edge-level reciprocity target (paper: 0.337).
  double reciprocity = 0.337;
  /// Out-degree tail exponent (paper fit: 3.24).
  double powerlaw_alpha = 3.24;
  /// Fraction of core users whose out-degree is drawn from the power-law
  /// tail rather than the log-normal body.
  double tail_fraction = 0.06;
  /// Tail threshold as a multiple of the mean out-degree (1334 / 342.55).
  double xmin_over_mean = 3.89;
  /// Log-normal sigma of the out-degree body. Kept narrow enough that the
  /// body rarely strays above xmin — body contamination of the tail is
  /// what would let a log-normal out-fit the planted power law in the
  /// Vuong tests.
  double body_sigma = 0.85;
  /// One '@6BillionPeople': a single node following this fraction of the
  /// network (the paper's max out-degree is 114,815 of 231,246 users).
  double superfollower_fraction = 0.4965;

  /// Log-normal sigma of core in-weights (popularity spread).
  double popularity_sigma = 1.35;
  /// A fraction of core users draw popularity from a genuine Pareto tail
  /// instead. In-degree is proportional to popularity and the largest
  /// Laplacian eigenvalues track the largest (undirected) degrees, so
  /// this is what makes the spectral tail an actual power law (Section
  /// IV-B: continuous fit alpha 3.18, bootstrap p 0.3).
  double popularity_tail_fraction = 0.04;
  double popularity_tail_alpha = 3.18;
  /// Multiplier applied to sink in-weights (celebrities are followed a
  /// lot).
  double sink_popularity_boost = 40.0;

  /// Body users belong to topical communities (journalism beats, sports
  /// leagues, music scenes — the homophily the paper invokes to explain
  /// reciprocity). A body stub targets its own community with this
  /// probability; dense communities are what produce the paper's
  /// clustering coefficient of 0.1583 at realistic degrees.
  double community_fraction = 0.68;
  /// Mean community size (communities are contiguous id blocks of body
  /// users with sizes uniform in [0.5, 1.5] x mean). <= 0 selects the
  /// automatic size 1.2x the mean degree, which keeps within-community
  /// density — and therefore the clustering coefficient — invariant
  /// across scales (at a fixed size, paper-scale degrees would exhaust
  /// their community and clustering would collapse).
  double community_size_mean = 0.0;
  /// Probability that an out-stub closes a triangle (friend-of-friend
  /// target) instead of sampling by popularity.
  double triadic_closure = 0.25;
  /// Probability that a follow-back also copies one of the follower's
  /// other targets ("joining the social circle") — a second triangle-
  /// closure channel that only adds out-edges to body users.
  double social_circle = 0.25;

  /// Add one inbound edge to any core node that ends up with in-degree 0
  /// so the giant SCC engulfs the core (paper: 97.24%).
  bool repair_in_degree = true;
};

struct VerifiedNetwork {
  graph::DiGraph graph;
  std::vector<UserRole> roles;
  /// Popularity weight used for target sampling; profiles reuse it so
  /// whole-Twitter reach correlates with sub-graph in-degree.
  std::vector<double> popularity;
  VerifiedNetworkConfig config;

  uint64_t CountRole(UserRole role) const;
};

/// Generates the network. Deterministic in config.seed.
Result<VerifiedNetwork> GenerateVerifiedNetwork(
    const VerifiedNetworkConfig& config);

/// Tuning for the out-of-core generation path.
struct StreamedGenerateOptions {
  /// Memory budget for each external sorter (forward in the generator,
  /// reverse inside the snapshot writer). 0 = unbounded (no spill).
  uint64_t sort_budget_bytes = 256ull << 20;
  /// Spill directory; empty puts temp files next to the snapshot.
  std::string temp_dir;
  /// Core sources wired per bounded window: edge buffers are freed into
  /// the sorter every `window_sources` sources, so resident edge state is
  /// one window's worth, not O(m).
  uint32_t window_sources = 1 << 16;
};

/// What streamed generation produced. The graph itself lives only in the
/// snapshot file — map it with graph::MapBinary / core::LoadAnyGraph.
struct StreamedNetwork {
  std::vector<UserRole> roles;
  /// Same popularity weights the in-memory generator returns (profiles
  /// reuse them); O(n).
  std::vector<double> popularity;
  VerifiedNetworkConfig config;
  /// Records emitted into the sorter (pre-dedup).
  uint64_t edges_emitted = 0;
  graph::StreamWriteStats write;
};

/// Out-of-core generation: wires the identical network the in-memory
/// generator builds — every RNG substream, follow-back, and repair edge
/// included — but streams per-source edge blocks into a bounded-memory
/// external sorter and writes the ENG2 snapshot directly from the sorted
/// runs (graph::WriteStreamedV2). Peak residency is the O(n) role/
/// popularity/degree state plus one sort budget plus one wiring window;
/// the O(m) edge list never exists in RAM. The snapshot is byte-identical
/// to SaveBinaryV2(GenerateVerifiedNetwork(config).graph) at any memory
/// budget, window size, and thread count: the triadic-closure rewrites
/// that read other sources' base-target rows recompute those rows from
/// their per-source RNG substreams instead of loading them.
Result<StreamedNetwork> GenerateVerifiedNetworkToSnapshot(
    const VerifiedNetworkConfig& config, const std::string& snapshot_path,
    const StreamedGenerateOptions& options = {});

/// Convenience: config scaled to the paper's full 231,246 users.
VerifiedNetworkConfig PaperScaleConfig();

}  // namespace gen
}  // namespace elitenet

#endif  // ELITENET_GEN_VERIFIED_NETWORK_H_

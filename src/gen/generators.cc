#include "gen/generators.h"

#include <algorithm>
#include <unordered_set>

#include "graph/builder.h"

namespace elitenet {
namespace gen {

using graph::DiGraph;
using graph::GraphBuilder;
using graph::NodeId;

Result<DiGraph> ErdosRenyi(NodeId n, uint64_t m, util::Rng* rng) {
  if (n < 2 && m > 0) return Status::InvalidArgument("graph too small");
  const uint64_t max_edges =
      static_cast<uint64_t>(n) * (static_cast<uint64_t>(n) - 1);
  if (m > max_edges) return Status::InvalidArgument("too many edges");

  GraphBuilder builder(n);
  builder.Reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  uint64_t added = 0;
  while (added < m) {
    const NodeId u = static_cast<NodeId>(rng->UniformU64(n));
    const NodeId v = static_cast<NodeId>(rng->UniformU64(n));
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    EN_RETURN_IF_ERROR(builder.AddEdge(u, v));
    ++added;
  }
  return builder.Build();
}

Result<DiGraph> PreferentialAttachment(NodeId n, uint32_t out_per_node,
                                       util::Rng* rng) {
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (out_per_node == 0) {
    return Status::InvalidArgument("out_per_node must be positive");
  }
  GraphBuilder builder(n);
  // repeated_targets holds one entry per (in-edge + smoothing unit), so a
  // uniform draw implements the (in-degree + 1) attachment kernel.
  std::vector<NodeId> repeated_targets;
  repeated_targets.reserve(static_cast<size_t>(n) * (out_per_node + 1));
  repeated_targets.push_back(0);  // node 0's smoothing unit

  for (NodeId u = 1; u < n; ++u) {
    const uint32_t fanout = std::min<uint32_t>(out_per_node, u);
    std::unordered_set<NodeId> chosen;
    uint32_t guard = 0;
    while (chosen.size() < fanout && guard < 50 * fanout) {
      ++guard;
      const NodeId v =
          repeated_targets[rng->UniformU64(repeated_targets.size())];
      if (v == u || chosen.contains(v)) continue;
      chosen.insert(v);
    }
    for (NodeId v : chosen) {
      EN_RETURN_IF_ERROR(builder.AddEdge(u, v));
      repeated_targets.push_back(v);
    }
    repeated_targets.push_back(u);  // u's own smoothing unit
  }
  return builder.Build();
}

Result<DiGraph> WattsStrogatz(NodeId n, uint32_t k, double beta,
                              util::Rng* rng) {
  if (n < 3) return Status::InvalidArgument("graph too small");
  if (k == 0 || k >= n) return Status::InvalidArgument("bad neighbor count");
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng->Bernoulli(beta)) {
        // Rewire to a uniform non-self target; duplicate edges coalesce
        // in the builder (slightly lowering m, as in the classic model).
        do {
          v = static_cast<NodeId>(rng->UniformU64(n));
        } while (v == u);
      }
      EN_RETURN_IF_ERROR(builder.AddEdge(u, v));
    }
  }
  return builder.Build();
}

Result<DiGraph> ConfigurationModel(const std::vector<uint32_t>& out_degrees,
                                   const std::vector<double>& in_weights,
                                   util::Rng* rng) {
  if (out_degrees.size() != in_weights.size()) {
    return Status::InvalidArgument("sequence size mismatch");
  }
  const NodeId n = static_cast<NodeId>(out_degrees.size());
  if (n == 0) return Status::InvalidArgument("empty sequences");

  double weight_sum = 0.0;
  for (double w : in_weights) {
    if (w < 0.0) return Status::InvalidArgument("negative in weight");
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument("all in weights zero");
  }

  const util::AliasSampler sampler(in_weights);
  GraphBuilder builder(n);
  std::unordered_set<NodeId> chosen;
  for (NodeId u = 0; u < n; ++u) {
    chosen.clear();
    const uint32_t want = out_degrees[u];
    uint32_t guard = 0;
    const uint32_t max_tries = 30u * want + 100u;
    while (chosen.size() < want && guard < max_tries) {
      ++guard;
      const NodeId v = sampler.Sample(rng);
      if (v == u || chosen.contains(v)) continue;
      chosen.insert(v);
      EN_RETURN_IF_ERROR(builder.AddEdge(u, v));
    }
  }
  return builder.Build();
}

}  // namespace gen
}  // namespace elitenet

#include "gen/bios.h"

#include <array>
#include <cmath>

#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace gen {

namespace {

constexpr int kNumRoles = static_cast<int>(BioRole::kNumRoles);

// Global role mix (core users). Journalism-adjacent roles dominate, per
// the paper's observation.
constexpr std::array<double, kNumRoles> kRoleWeights = {
    0.16,   // journalist
    0.07,   // news outlet
    0.015,  // weather outlet
    0.035,  // rugby
    0.030,  // baseball
    0.040,  // other athlete
    0.080,  // musician
    0.085,  // tv/film
    0.055,  // author
    0.130,  // brand
    0.045,  // politician
    0.255,  // generic personality
};

// A clause the grammar can emit. `global_prob` is the expected fraction
// of *all* users whose bio contains the clause (calibrated to the paper's
// table counts / 231,246); `mult` redistributes that probability across
// roles without changing the global expectation.
struct Clause {
  const char* name;
  double global_prob;
  std::array<double, kNumRoles> mult;
};

// Role multiplier shorthand: every role listed gets `hi`, others get 1.
constexpr std::array<double, kNumRoles> Ones() {
  return {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
}

std::array<double, kNumRoles> Boost(std::initializer_list<BioRole> roles,
                                    double hi, double lo = 0.25) {
  std::array<double, kNumRoles> m;
  m.fill(lo);
  for (BioRole r : roles) m[static_cast<int>(r)] = hi;
  return m;
}

// Calibrated from Tables I-II: count / 231,246.
const double kP_OfficialTwitter = 12166.0 / 231246.0;
const double kP_AwardWinningGeneric = 1572.0 / 231246.0;
const double kP_EmmyAwardWinning = 475.0 / 231246.0;
const double kP_AwardWinningJournalist = 223.0 / 231246.0;
const double kP_FollowUs = 2268.0 / 231246.0;
const double kP_CoFounder = 1581.0 / 231246.0;
const double kP_HusbandFather = 1540.0 / 231246.0;
const double kP_OpinionsOwn = 1222.0 / 231246.0;
const double kP_NewAlbum = 1088.0 / 231246.0;
const double kP_SingerSongwriter = 1043.0 / 231246.0;
const double kP_CoHost = 933.0 / 231246.0;
const double kP_LatestNews = 904.0 / 231246.0;
const double kP_BreakingNews = 898.0 / 231246.0;
const double kP_AnchorReporter = 855.0 / 231246.0;
const double kP_RugbyClub = 546.0 / 231246.0;       // 799 - 253
const double kP_ProRugby = 253.0 / 231246.0;
const double kP_ManagingEditor = 769.0 / 231246.0;
const double kP_WeatherAlerts = 847.0 / 231246.0;
const double kP_NewYorkTimes = 464.0 / 231246.0;
const double kP_EditorInChief = 461.0 / 231246.0;
const double kP_BestSelling = 296.0 / 231246.0;
const double kP_WallStreet = 252.0 / 231246.0;
const double kP_ProBaseball = 241.0 / 231246.0;
const double kP_ReportCrime = 238.0 / 231246.0;
const double kP_CustomerService = 174.0 / 231246.0;
const double kP_Olympic = 174.0 / 231246.0;

class BioWriter {
 public:
  BioWriter(util::Rng* rng, BioRole role) : rng_(rng), role_(role) {}

  // Emits `text` with the clause's role-adjusted probability; returns
  // true if emitted.
  bool Maybe(const Clause& clause, const std::string& text) {
    double norm = 0.0;
    for (int r = 0; r < kNumRoles; ++r) {
      norm += kRoleWeights[r] * clause.mult[r];
    }
    const double p = std::min(
        1.0, clause.global_prob * clause.mult[static_cast<int>(role_)] /
                 norm);
    if (!rng_->Bernoulli(p)) return false;
    Append(text);
    return true;
  }

  void Append(const std::string& text) {
    if (!bio_.empty()) bio_ += ". ";
    bio_ += text;
  }

  std::string Finish() {
    if (!bio_.empty()) bio_ += '.';
    return std::move(bio_);
  }

  util::Rng* rng() { return rng_; }
  BioRole role() const { return role_; }

 private:
  util::Rng* rng_;
  BioRole role_;
  std::string bio_;
};

// Unique-ish proper-noun pools: a large id space keeps every synthetic
// entity name rare so it cannot intrude into the top n-gram tables.
std::string PoolName(util::Rng* rng, const char* prefix) {
  return std::string(prefix) + std::to_string(rng->UniformU64(90000) + 10000);
}

std::string Pick(util::Rng* rng, std::initializer_list<const char*> options) {
  const auto* begin = options.begin();
  return begin[rng->UniformU64(options.size())];
}

std::string GenerateBio(util::Rng* rng, BioRole role) {
  using R = BioRole;
  BioWriter w(rng, role);

  // --- "Official Twitter ..." family (brands and outlets above all).
  static const Clause official{
      "official_twitter", kP_OfficialTwitter,
      Boost({R::kBrand, R::kNewsOutlet, R::kWeatherOutlet, R::kPolitician},
            4.0, 0.45)};
  {
    double norm = 0.0;
    for (int r = 0; r < kNumRoles; ++r) {
      norm += kRoleWeights[r] * official.mult[r];
    }
    const double p = std::min(
        1.0, official.global_prob *
                 official.mult[static_cast<int>(role)] / norm);
    if (rng->Bernoulli(p)) {
      const double v = rng->UniformDouble();
      if (v < 5457.0 / 12166.0) {
        w.Append("Official Twitter account, " + PoolName(rng, "Entity"));
      } else if (v < (5457.0 + 1774.0) / 12166.0) {
        w.Append("Official Twitter page, " + PoolName(rng, "Entity"));
      } else {
        // Bare form: contributes to the "Official Twitter" bigram without
        // creating any competing trigram.
        w.Append("Official Twitter, " + PoolName(rng, "Entity"));
      }
    }
  }
  // "Official account" is its own (non-Twitter-branded) phrase in Table I.
  static const Clause official_account{
      "official_account", 2788.0 / 231246.0,
      Boost({R::kBrand, R::kPolitician, R::kNewsOutlet}, 4.0, 0.4)};
  w.Maybe(official_account, "Official account, " + PoolName(rng, "Entity"));

  // --- Journalism block.
  static const Clause anchor{"anchor_reporter", kP_AnchorReporter,
                             Boost({R::kJournalist}, 6.0, 0.0)};
  w.Maybe(anchor, "Anchor Reporter");
  static const Clause managing{"managing_editor", kP_ManagingEditor,
                               Boost({R::kJournalist}, 6.0, 0.0)};
  w.Maybe(managing, "Managing editor, " + PoolName(rng, "Daily"));
  static const Clause chief{"editor_in_chief", kP_EditorInChief,
                            Boost({R::kJournalist}, 6.0, 0.0)};
  w.Maybe(chief, "Editor in Chief, " + PoolName(rng, "Daily"));
  static const Clause nyt{"nyt", kP_NewYorkTimes,
                          Boost({R::kJournalist}, 6.0, 0.0)};
  w.Maybe(nyt, Pick(rng, {"Reporter", "Columnist", "Correspondent"}) +
                   ", New York Times");
  static const Clause wsj{"wsj", kP_WallStreet,
                          Boost({R::kJournalist}, 6.0, 0.0)};
  w.Maybe(wsj, Pick(rng, {"Reporter", "Columnist"}) +
                   ", Wall Street Journal");
  static const Clause awj{"award_winning_journalist",
                          kP_AwardWinningJournalist,
                          Boost({R::kJournalist}, 6.0, 0.0)};
  w.Maybe(awj, "Award winning journalist");
  static const Clause opinions{"opinions_own", kP_OpinionsOwn,
                               Boost({R::kJournalist, R::kPolitician}, 4.0,
                                     0.4)};
  w.Maybe(opinions, "Opinions own");

  // --- Outlet block.
  static const Clause latest{"latest_news", kP_LatestNews,
                             Boost({R::kNewsOutlet}, 8.0, 0.05)};
  w.Maybe(latest, "Latest news");
  static const Clause breaking{"breaking_news", kP_BreakingNews,
                               Boost({R::kNewsOutlet}, 8.0, 0.05)};
  w.Maybe(breaking, "Breaking news");
  static const Clause weather{"weather_alerts", kP_WeatherAlerts,
                              Boost({R::kWeatherOutlet}, 30.0, 0.0)};
  w.Maybe(weather, "Weather alerts EN, " + PoolName(rng, "Region"));
  static const Clause crime{"report_crime", kP_ReportCrime,
                            Boost({R::kBrand, R::kNewsOutlet}, 2.0, 0.2)};
  w.Maybe(crime, "Report crime here");

  // --- Brand block.
  static const Clause follow{"follow_us", kP_FollowUs,
                             Boost({R::kBrand, R::kNewsOutlet}, 4.0, 0.3)};
  w.Maybe(follow, "Follow us");
  static const Clause service{"customer_service", kP_CustomerService,
                              Boost({R::kBrand}, 6.0, 0.0)};
  if (w.Maybe(service, "For customer service")) {
    w.Append("Monday to Friday");
  }
  static const Clause founder{"co_founder", kP_CoFounder,
                              Boost({R::kBrand, R::kGeneric}, 3.0, 0.3)};
  w.Maybe(founder, "Co founder, " + PoolName(rng, "Startup"));

  // --- Entertainment block.
  static const Clause album{"new_album", kP_NewAlbum,
                            Boost({R::kMusician}, 10.0, 0.0)};
  w.Maybe(album, "New album " + PoolName(rng, "Record") + " " +
                     Pick(rng, {"out now", "available everywhere",
                                "streaming today", "drops soon",
                                "arriving friday", "live tonight"}));
  static const Clause singer{"singer_songwriter", kP_SingerSongwriter,
                             Boost({R::kMusician}, 10.0, 0.0)};
  w.Maybe(singer, "Singer songwriter");
  static const Clause cohost{"co_host", kP_CoHost,
                             Boost({R::kTvFilm, R::kJournalist}, 4.0, 0.2)};
  w.Maybe(cohost, "Co host, " + PoolName(rng, "Show"));
  static const Clause emmy{"emmy", kP_EmmyAwardWinning,
                           Boost({R::kTvFilm}, 8.0, 0.05)};
  w.Maybe(emmy, "Emmy award winning, " +
                    Pick(rng, {"producer", "writer", "director", "host"}));
  static const Clause award{"award_winning", kP_AwardWinningGeneric,
                            Boost({R::kTvFilm, R::kAuthor, R::kMusician,
                                   R::kGeneric},
                                  2.5, 0.4)};
  w.Maybe(award, "Award winning " +
                     Pick(rng, {"chef", "director", "filmmaker",
                                "photographer", "comedian", "designer",
                                "broadcaster", "producer", "writer",
                                "presenter", "actor", "composer"}));

  // --- Sports block.
  static const Clause prorugby{"pro_rugby", kP_ProRugby,
                               Boost({R::kAthleteRugby}, 30.0, 0.0)};
  w.Maybe(prorugby, "Professional rugby player");
  static const Clause rugbyclub{"rugby_club", kP_RugbyClub,
                                Boost({R::kAthleteRugby}, 30.0, 0.0)};
  w.Maybe(rugbyclub, "Rugby player, " + PoolName(rng, "Club"));
  static const Clause baseball{"pro_baseball", kP_ProBaseball,
                               Boost({R::kAthleteBaseball}, 30.0, 0.0)};
  w.Maybe(baseball, "Professional baseball player");
  static const Clause olympic{"olympic", kP_Olympic,
                              Boost({R::kAthleteOther}, 20.0, 0.0)};
  w.Maybe(olympic, "Olympic gold medalist");

  // --- Author block.
  static const Clause bestselling{"best_selling", kP_BestSelling,
                                  Boost({R::kAuthor}, 10.0, 0.05)};
  w.Maybe(bestselling, "Best selling author");

  // --- Personal descriptors / unigram enrichment.
  static const Clause husband{"husband_father", kP_HusbandFather, Ones()};
  w.Maybe(husband, "Husband Father");
  static const Clause gay{"gay", 0.004, Ones()};
  w.Maybe(gay, "Gay");
  static const Clause american{"american", 0.018, Ones()};
  w.Maybe(american, "American");
  static const Clause london{"london", 0.014, Ones()};
  w.Maybe(london, "London");
  static const Clause insta{"instagram", 0.030,
                            Boost({R::kMusician, R::kTvFilm, R::kGeneric,
                                   R::kBrand},
                                  2.0, 0.5)};
  w.Maybe(insta, "Instagram " + PoolName(rng, "handle"));
  static const Clause fb{"facebook", 0.016, Ones()};
  w.Maybe(fb, "Facebook " + PoolName(rng, "handle"));
  static const Clause snap{"snapchat", 0.012, Ones()};
  w.Maybe(snap, "Snapchat " + PoolName(rng, "handle"));
  static const Clause booking{"booking", 0.012,
                              Boost({R::kMusician, R::kGeneric}, 3.0, 0.3)};
  w.Maybe(booking, "Booking " + PoolName(rng, "mail"));
  static const Clause support{"support", 0.010, Boost({R::kBrand}, 4.0, 0.3)};
  w.Maybe(support, "Support " + PoolName(rng, "desk"));
  static const Clause intl{"international", 0.010,
                           Boost({R::kBrand, R::kPolitician}, 3.0, 0.4)};
  w.Maybe(intl, "International " +
                    Pick(rng, {"speaker", "artist", "brand", "organisation",
                               "consultant", "correspondent", "trader",
                               "keynoter"}));
  static const Clause tech{"tech", 0.012,
                           Boost({R::kBrand, R::kGeneric}, 2.0, 0.5)};
  w.Maybe(tech, "Tech " + Pick(rng, {"enthusiast", "entrepreneur", "geek",
                                     "optimist", "investor", "analyst",
                                     "tinkerer", "evangelist"}));
  static const Clause sport{"sport", 0.010,
                            Boost({R::kAthleteOther, R::kAthleteRugby,
                                   R::kAthleteBaseball, R::kNewsOutlet},
                                  3.0, 0.4)};
  w.Maybe(sport, "Sport " + Pick(rng, {"fanatic", "lover", "news",
                                       "obsessive", "historian", "junkie",
                                       "analyst", "addict"}));

  // Fallback so no bio is empty: a plain profession word (these also feed
  // the paper's word-cloud unigrams).
  std::string bio = w.Finish();
  if (bio.empty()) {
    bio = Pick(rng, {"Journalist", "Producer", "Founder", "Director",
                     "Author", "Presenter", "Entrepreneur", "Artist",
                     "Photographer", "Writer"}) +
          ".";
  }
  return bio;
}

BioRole SampleRole(util::Rng* rng, UserRole user_role) {
  if (user_role == UserRole::kSink) {
    // Celebrities: entertainment-heavy mix.
    const double v = rng->UniformDouble();
    if (v < 0.40) return BioRole::kMusician;
    if (v < 0.70) return BioRole::kTvFilm;
    if (v < 0.85) return BioRole::kAthleteOther;
    return BioRole::kGeneric;
  }
  double total = 0.0;
  for (double w : kRoleWeights) total += w;
  double v = rng->UniformDouble() * total;
  for (int r = 0; r < kNumRoles; ++r) {
    v -= kRoleWeights[r];
    if (v <= 0.0) return static_cast<BioRole>(r);
  }
  return BioRole::kGeneric;
}

}  // namespace

uint64_t BioCorpus::CountRole(BioRole role) const {
  uint64_t n = 0;
  for (BioRole r : roles) {
    if (r == role) ++n;
  }
  return n;
}

Result<BioCorpus> GenerateBios(const VerifiedNetwork& network,
                               const BioConfig& config) {
  ELITENET_SPAN("gen.bios");
  const uint32_t n = network.graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty network");
  ELITENET_COUNT("gen.bios.users", n);
  util::Rng rng(config.seed);

  BioCorpus corpus;
  corpus.bios.reserve(n);
  corpus.roles.reserve(n);
  for (uint32_t u = 0; u < n; ++u) {
    const BioRole role = SampleRole(&rng, network.roles[u]);
    corpus.roles.push_back(role);
    corpus.bios.push_back(GenerateBio(&rng, role));
  }
  return corpus;
}

const char* BioRoleName(BioRole role) {
  switch (role) {
    case BioRole::kJournalist: return "journalist";
    case BioRole::kNewsOutlet: return "news outlet";
    case BioRole::kWeatherOutlet: return "weather outlet";
    case BioRole::kAthleteRugby: return "rugby athlete";
    case BioRole::kAthleteBaseball: return "baseball athlete";
    case BioRole::kAthleteOther: return "athlete";
    case BioRole::kMusician: return "musician";
    case BioRole::kTvFilm: return "tv/film";
    case BioRole::kAuthor: return "author";
    case BioRole::kBrand: return "brand";
    case BioRole::kPolitician: return "politician";
    case BioRole::kGeneric: return "personality";
    case BioRole::kNumRoles: break;
  }
  return "unknown";
}

}  // namespace gen
}  // namespace elitenet

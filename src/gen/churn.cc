#include "gen/churn.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace elitenet {
namespace gen {

namespace {

using graph::DiGraph;
using graph::EdgeIdx;
using graph::NodeId;

uint64_t Key(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

// Row owning flat CSR position k: the dst whose in-row (or src whose
// out-row) spans k.
NodeId RowOf(std::span<const EdgeIdx> offsets, uint64_t k) {
  auto it = std::upper_bound(offsets.begin(), offsets.end(),
                             static_cast<EdgeIdx>(k));
  return static_cast<NodeId>((it - offsets.begin()) - 1);
}

// Live churn state: the base is immutable, so presence is base membership
// XOR the removed/added correction sets — the same base+delta shape the
// serving overlay uses, sized by churn, not by the graph.
struct ChurnState {
  const DiGraph& base;
  std::unordered_set<uint64_t> removed;  ///< base edges currently retracted
  std::unordered_set<uint64_t> added;    ///< non-base edges currently present
  std::vector<uint64_t> added_list;      ///< `added` as a sampleable array

  explicit ChurnState(const DiGraph& b) : base(b) {}

  bool Present(NodeId src, NodeId dst) const {
    const uint64_t key = Key(src, dst);
    if (base.HasEdge(src, dst)) return removed.find(key) == removed.end();
    return added.find(key) != added.end();
  }

  void Follow(NodeId src, NodeId dst) {
    const uint64_t key = Key(src, dst);
    if (base.HasEdge(src, dst)) {
      removed.erase(key);  // re-follow of a retracted base edge
    } else if (added.insert(key).second) {
      added_list.push_back(key);
    }
  }

  void UnfollowBase(uint64_t key) { removed.insert(key); }

  void UnfollowAdded(size_t index) {
    added.erase(added_list[index]);
    added_list[index] = added_list.back();
    added_list.pop_back();
  }
};

Status ValidateFraction(double v, const char* name) {
  if (v < 0.0 || v > 1.0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be in [0, 1], got " +
                                   std::to_string(v));
  }
  return Status::OK();
}

}  // namespace

Result<MutationTrace> GenerateMutationTrace(const DiGraph& base,
                                            const MutationTraceConfig& config) {
  if (base.num_nodes() < 2 || base.num_edges() == 0) {
    return Status::InvalidArgument(
        "churn needs a base graph with >= 2 nodes and >= 1 edge");
  }
  EN_RETURN_IF_ERROR(ValidateFraction(config.unfollow_fraction,
                                      "unfollow_fraction"));
  EN_RETURN_IF_ERROR(ValidateFraction(config.preferential, "preferential"));
  EN_RETURN_IF_ERROR(ValidateFraction(config.reciprocation, "reciprocation"));
  EN_RETURN_IF_ERROR(ValidateFraction(config.base_unfollow_share,
                                      "base_unfollow_share"));

  const NodeId n = base.num_nodes();
  const uint64_t m = base.num_edges();
  util::Rng rng(config.seed);
  ChurnState state(base);
  MutationTrace trace;
  trace.mutations.reserve(config.num_mutations);

  // Every draw below retries until it lands on an effective mutation, so
  // the emitted trace is all signal. The budget is a stall guard for
  // pathological configs (e.g. unfollowing a graph dry); real configs
  // reject a few percent of draws at most.
  uint64_t attempts = 0;
  const uint64_t budget =
      64 * (static_cast<uint64_t>(config.num_mutations) + 1);
  while (trace.mutations.size() < config.num_mutations) {
    if (++attempts > budget) {
      return Status::Internal(
          "churn generator stalled: config rejects nearly every draw");
    }

    if (rng.Bernoulli(config.unfollow_fraction)) {
      // Unfollow: retract a present edge — a base edge (an overlay
      // tombstone once replayed) or one this trace added.
      const bool want_base = state.added_list.empty() ||
                             rng.Bernoulli(config.base_unfollow_share);
      if (want_base) {
        const uint64_t k = rng.UniformU64(m);
        const NodeId src = RowOf(base.out_offsets(), k);
        const NodeId dst = base.out_targets()[k];
        const uint64_t key = Key(src, dst);
        if (state.removed.find(key) != state.removed.end()) continue;
        state.UnfollowBase(key);
        trace.mutations.push_back(EdgeMutation{false, src, dst});
        ++trace.unfollows;
        ++trace.base_unfollows;
      } else {
        const size_t idx = static_cast<size_t>(
            rng.UniformU64(state.added_list.size()));
        const uint64_t key = state.added_list[idx];
        const NodeId src = static_cast<NodeId>(key >> 32);
        const NodeId dst = static_cast<NodeId>(key & 0xFFFFFFFFu);
        state.UnfollowAdded(idx);
        trace.mutations.push_back(EdgeMutation{false, src, dst});
        ++trace.unfollows;
      }
      continue;
    }

    // Follow. Draw the branch decisions before the endpoints so a
    // rejected draw costs a bounded number of RNG steps.
    const bool want_reciprocal = rng.Bernoulli(config.reciprocation);
    const bool want_preferential = rng.Bernoulli(config.preferential);
    NodeId src = 0;
    NodeId dst = 0;
    if (want_reciprocal) {
      // Follow-back: src returns one of its inbound base edges.
      src = static_cast<NodeId>(rng.UniformU64(n));
      const std::span<const NodeId> in = base.InNeighbors(src);
      if (in.empty()) continue;
      dst = in[rng.UniformU64(in.size())];
    } else if (want_preferential) {
      // Rich-get-richer: a uniform flat position in the in-CSR lands on
      // dst with probability in_degree(dst) / m — in-degree-proportional
      // sampling without a weight table.
      src = static_cast<NodeId>(rng.UniformU64(n));
      dst = RowOf(base.in_offsets(), rng.UniformU64(m));
    } else {
      src = static_cast<NodeId>(rng.UniformU64(n));
      dst = static_cast<NodeId>(rng.UniformU64(n));
    }
    if (src == dst || state.Present(src, dst)) continue;
    state.Follow(src, dst);
    trace.mutations.push_back(EdgeMutation{true, src, dst});
    ++trace.follows;
    // Reciprocal at emission time (any branch can close a pair; the
    // follow-back branch almost always does — unless the inbound edge
    // was itself unfollowed earlier in the trace).
    if (state.Present(dst, src)) ++trace.reciprocal_follows;
  }
  return trace;
}

}  // namespace gen
}  // namespace elitenet

// Synthetic daily tweet-activity series for the cohort (Section V
// substrate, standing in for the Firehose). The series is stationary by
// construction — a fixed base level with weekday modulation and noise —
// except for the two calendar events the paper's PELT sweep recovers: a
// Christmas dip (Dec 23-25) and a small persistent level shift in the
// first week of April. Sundays run reliably lower than weekdays, which
// is what drives the portmanteau tests' astronomically small p-values.

#ifndef ELITENET_GEN_ACTIVITY_H_
#define ELITENET_GEN_ACTIVITY_H_

#include <cstdint>
#include <vector>

#include "timeseries/calendar.h"
#include "util/status.h"

namespace elitenet {
namespace gen {

struct ActivityConfig {
  /// Default chosen so the reference run reproduces all three of the
  /// paper's Section V decisions (tiny portmanteau p, ADF ~ -3.9,
  /// exactly the two calendar change-points).
  uint64_t seed = 68;
  /// First day of the collection window (the paper's is mid-2017; we use
  /// June 1 so the window spans both planted events).
  timeseries::Date start{2017, 6, 1};
  int num_days = 366;
  /// Mean total tweets per day for the cohort at baseline.
  double base_level = 1.8e6;
  /// Multiplicative weekday factors: Sundays dip hardest.
  double sunday_factor = 0.96;
  double saturday_factor = 0.98;
  /// Christmas window (inclusive) and its dip factor.
  timeseries::Date christmas_start{2017, 12, 23};
  timeseries::Date christmas_end{2017, 12, 25};
  double christmas_factor = 0.75;
  /// April regime change: a small persistent level shift plus a burst of
  /// volatility (news cycles); the combination is what PELT's Normal
  /// mean+variance cost keys on while leaving the series trend-stationary
  /// enough for the paper's ADF conclusion.
  timeseries::Date april_shift{2018, 4, 3};
  double april_factor = 1.035;
  double april_noise_multiplier = 2.0;
  /// Day-to-day persistence of the log-level (AR(1) coefficient). Real
  /// aggregate activity is sticky; this is also what keeps the ADF
  /// statistic near the paper's -3.86 instead of the iid ~-17.
  double ar_phi = 0.55;
  /// Innovation sigma of the AR(1) log-level component.
  double noise_sigma = 0.010;
};

struct ActivitySeries {
  timeseries::Date start;
  std::vector<double> daily_tweets;  ///< one entry per day

  timeseries::Date DateAt(size_t i) const {
    return timeseries::AddDays(start, static_cast<int64_t>(i));
  }
};

/// Generates the cohort activity series. Deterministic in config.seed.
Result<ActivitySeries> GenerateActivity(const ActivityConfig& config = {});

}  // namespace gen
}  // namespace elitenet

#endif  // ELITENET_GEN_ACTIVITY_H_

#include "gen/verified_network.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <span>
#include <unordered_set>
#include <utility>

#include "graph/builder.h"
#include "stats/powerlaw.h"
#include "util/ext_sort.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace gen {

using graph::GraphBuilder;
using graph::NodeId;

uint64_t VerifiedNetwork::CountRole(UserRole role) const {
  uint64_t count = 0;
  for (UserRole r : roles) {
    if (r == role) ++count;
  }
  return count;
}

VerifiedNetworkConfig PaperScaleConfig() {
  VerifiedNetworkConfig cfg;
  cfg.num_users = 231246;
  return cfg;
}

namespace {

// Everything the wiring phases read. Built once by PrepareWiring; shared
// verbatim by the in-memory and streamed generators so their RNG draw
// sequences — and therefore their graphs — are identical.
struct WiringContext {
  VerifiedNetworkConfig config;
  uint32_t n = 0;
  uint32_t n_core = 0;
  NodeId sink_begin = 0;
  NodeId small_begin = 0;
  NodeId iso_begin = 0;
  double m_total = 0.0;

  std::vector<uint32_t> out_degree;
  std::vector<bool> is_tail;
  std::vector<uint32_t> community;
  std::vector<std::pair<NodeId, NodeId>> community_range;
  std::vector<std::optional<util::AliasSampler>> community_sampler;
  std::optional<util::AliasSampler> sampler;  // global popularity sampler
  double p_plant = 0.0;
  uint64_t stub_seed = 0;
  uint64_t closure_seed = 0;
};

/// Validation, role layout, popularity weights, degree budget, community
/// construction, and the phase seeds — the entire serial prologue of
/// generation, consuming `rng` exactly as the original single-path
/// implementation did.
Status PrepareWiring(const VerifiedNetworkConfig& config, util::Rng* rng,
                     std::vector<UserRole>* roles,
                     std::vector<double>* popularity, WiringContext* ctx) {
  const uint32_t n = config.num_users;
  if (n < 1000) {
    return Status::InvalidArgument(
        "verified network needs >= 1000 users for the fractions to make "
        "sense");
  }
  if (config.density <= 0.0 || config.density >= 0.5) {
    return Status::InvalidArgument("density out of range");
  }
  if (config.reciprocity <= 0.0 || config.reciprocity >= 1.0) {
    return Status::InvalidArgument("reciprocity out of range");
  }
  if (config.powerlaw_alpha <= 2.05) {
    return Status::InvalidArgument("alpha must exceed 2 (finite mean)");
  }

  ctx->config = config;
  ctx->n = n;

  // ---- Role layout (contiguous id ranges; see header) -------------------
  const uint32_t n_iso =
      static_cast<uint32_t>(std::lround(config.isolated_fraction * n));
  const uint32_t n_sink = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(config.sink_fraction * n)));
  const uint32_t n_small = static_cast<uint32_t>(
      std::lround(config.small_component_fraction * n));
  if (n_iso + n_sink + n_small >= n / 2) {
    return Status::InvalidArgument("peripheral fractions leave no core");
  }
  const uint32_t n_core = n - n_iso - n_sink - n_small;
  ctx->n_core = n_core;
  ctx->sink_begin = n_core;
  ctx->small_begin = n_core + n_sink;
  ctx->iso_begin = ctx->small_begin + n_small;

  roles->assign(n, UserRole::kCore);
  for (NodeId u = ctx->sink_begin; u < ctx->small_begin; ++u) {
    (*roles)[u] = UserRole::kSink;
  }
  for (NodeId u = ctx->small_begin; u < ctx->iso_begin; ++u) {
    (*roles)[u] = UserRole::kSmallComponent;
  }
  for (NodeId u = ctx->iso_begin; u < n; ++u) {
    (*roles)[u] = UserRole::kIsolated;
  }

  // ---- Popularity weights ----------------------------------------------
  popularity->assign(n, 0.0);
  double total_mass = 0.0, sink_mass = 0.0;
  // The Pareto branch picks up roughly where the log-normal tail mass
  // thins out (~the (1 - tail_fraction) quantile of the log-normal).
  const double pareto_x0 = std::exp(config.popularity_sigma * 1.75);
  for (NodeId u = 0; u < n_core; ++u) {
    double w;
    if (config.popularity_tail_fraction > 0.0 &&
        rng->Bernoulli(config.popularity_tail_fraction)) {
      w = rng->Pareto(config.popularity_tail_alpha, pareto_x0);
    } else {
      w = rng->LogNormal(0.0, config.popularity_sigma);
    }
    (*popularity)[u] = w;
    total_mass += w;
  }
  for (NodeId u = ctx->sink_begin; u < ctx->small_begin; ++u) {
    const double w = rng->LogNormal(0.0, config.popularity_sigma) *
                     config.sink_popularity_boost;
    (*popularity)[u] = w;
    total_mass += w;
    sink_mass += w;
  }
  (void)sink_mass;

  // ---- Degree budget -----------------------------------------------------
  // Targets: m_total = density * n * (n-1). Reciprocity is produced by
  // additive follow-back planting: when u -> v is wired and v is a
  // *body* core user, v follows back with probability p_plant. Tail
  // (power-law out-degree) users and sinks never follow back — the
  // celebrity behaviour the paper describes — which also keeps the
  // realized tail out-degrees exactly the planted zeta sample, a
  // precondition for the Vuong tests to favour the power law.
  //
  // With rho = r / (2 - r), planting multiplies the base edge count by
  // (1 + rho) and yields edge reciprocity 2 rho / (1 + rho) = r; p_plant
  // is rho corrected for the popularity mass that never reciprocates.
  const double m_total = config.density * static_cast<double>(n) *
                         (static_cast<double>(n) - 1.0);
  ctx->m_total = m_total;
  const double mean_degree_all = m_total / static_cast<double>(n);
  const double rho = config.reciprocity / (2.0 - config.reciprocity);
  // Empirical corrections, validated by the calibration tests: planted
  // follow-backs occasionally coalesce with existing edges (triadic
  // closure makes v -> u more likely to pre-exist), and the body cap /
  // rejection losses shave a few percent off the mean degree.
  const double kPlantCorrection = 0.97;
  const double kDensityCorrection = 0.99;
  const double mean_base_core = kDensityCorrection * m_total / (1.0 + rho) /
                                static_cast<double>(n_core);

  const double xmin = std::max(2.0, config.xmin_over_mean * mean_degree_all);
  const double tail_mean = xmin * (config.powerlaw_alpha - 1.0) /
                           (config.powerlaw_alpha - 2.0);
  double body_mean =
      (mean_base_core - config.tail_fraction * tail_mean) /
      (1.0 - config.tail_fraction);
  if (body_mean < 1.0) {
    return Status::InvalidArgument(
        "density too low for the configured tail (body mean < 1); lower "
        "tail_fraction or xmin_over_mean");
  }
  const double body_mu =
      std::log(body_mean) - 0.5 * config.body_sigma * config.body_sigma;
  const uint32_t degree_cap = std::max<uint32_t>(10, (2 * n_core) / 5);

  // ---- Out-degree sequence for core users --------------------------------
  ctx->out_degree.assign(n, 0);
  ctx->is_tail.assign(n, false);
  const uint64_t body_cap =
      std::max<uint64_t>(2, static_cast<uint64_t>(0.9 * xmin));
  for (NodeId u = 0; u < n_core; ++u) {
    uint64_t d;
    if (rng->Bernoulli(config.tail_fraction)) {
      // Exact zeta sampling: the tail must be *exactly* the distribution
      // the discrete MLE fits, or the Vuong tests detect the mismatch.
      d = stats::SampleZeta(config.powerlaw_alpha,
                            static_cast<uint64_t>(std::lround(xmin)), rng);
      ctx->is_tail[u] = true;
    } else {
      // Body draws are kept below xmin so the tail stays uncontaminated.
      d = static_cast<uint64_t>(
          std::lround(rng->LogNormal(body_mu, config.body_sigma)));
      for (int tries = 0; d > body_cap && tries < 20; ++tries) {
        d = static_cast<uint64_t>(
            std::lround(rng->LogNormal(body_mu, config.body_sigma)));
      }
      d = std::min<uint64_t>(d, body_cap);
    }
    ctx->out_degree[u] =
        static_cast<uint32_t>(std::clamp<uint64_t>(d, 1, degree_cap));
  }
  // Plant the '@6BillionPeople' outlier on node 0: a single account that
  // follows roughly half the network, matching the paper's max
  // out-degree of 114,815 at n = 231,246.
  if (config.superfollower_fraction > 0.0 && n_core > 10) {
    const double want = config.superfollower_fraction * static_cast<double>(n);
    ctx->out_degree[0] = static_cast<uint32_t>(std::min<double>(
        want, static_cast<double>(n_core + n_sink) - 2.0));
    ctx->is_tail[0] = true;  // exempt from follow-back noise, like the tail
  }

  // Popularity mass share of users who *do* follow back (body core).
  double body_mass = 0.0;
  for (NodeId u = 0; u < n_core; ++u) {
    if (!ctx->is_tail[u]) body_mass += (*popularity)[u];
  }
  const double q_body = body_mass / total_mass;
  ctx->p_plant =
      std::min(1.0, kPlantCorrection * rho / std::max(q_body, 1e-6));

  // ---- Communities ---------------------------------------------------------
  // Body core users are grouped into contiguous blocks; a per-community
  // alias sampler lets stubs target their own community cheaply.
  ctx->community.assign(n, UINT32_MAX);
  const double community_size =
      config.community_size_mean > 0.0
          ? config.community_size_mean
          : std::max(40.0, 1.2 * mean_degree_all);
  if (config.community_fraction > 0.0 && community_size >= 4.0) {
    NodeId begin = 0;
    while (begin < n_core) {
      const double span = community_size * rng->UniformDouble(0.5, 1.5);
      NodeId end = begin + static_cast<NodeId>(std::max(4.0, span));
      end = std::min(end, n_core);
      if (n_core - end < 4) end = n_core;  // absorb tiny remainder
      const uint32_t cid = static_cast<uint32_t>(ctx->community_range.size());
      for (NodeId u = begin; u < end; ++u) ctx->community[u] = cid;
      ctx->community_range.emplace_back(begin, end);
      std::vector<double> cw(popularity->begin() + begin,
                             popularity->begin() + end);
      ctx->community_sampler.emplace_back(std::in_place, cw);
      begin = end;
    }
  }

  // ---- Global sampler + phase seeds --------------------------------------
  // Target choice per stub: own community (popularity-weighted) with
  // probability community_fraction, else a friend-of-friend closure, else
  // global popularity-weighted sampling over core + sink nodes.
  std::vector<double> weights(popularity->begin(),
                              popularity->begin() + ctx->small_begin);
  ctx->sampler.emplace(weights);

  ctx->stub_seed = rng->Next();
  ctx->closure_seed = rng->Next();
  return Status::OK();
}

/// Phase-1 row for one source: base targets drawn from the source's own
/// RNG substream against read-only state. A pure function of (ctx, u), so
/// the streamed generator can recompute any row on demand and see exactly
/// the bytes the materialized path stored.
void ComputeBaseTargets(const WiringContext& ctx, NodeId u,
                        std::unordered_set<NodeId>* chosen,
                        std::vector<NodeId>* out) {
  util::Rng stub_rng(util::SubstreamSeed(ctx.stub_seed, u));
  chosen->clear();
  out->clear();
  const uint32_t want = ctx.out_degree[u];
  out->reserve(want);
  uint32_t guard = 0;
  const uint32_t max_tries = 20u * want + 50u;
  // Tail users (and the superfollower) fan out too widely for a
  // single community; they sample globally.
  const bool community_eligible =
      !ctx.is_tail[u] && ctx.community[u] != UINT32_MAX;
  while (chosen->size() < want && guard < max_tries) {
    ++guard;
    NodeId v;
    if (community_eligible &&
        stub_rng.Bernoulli(ctx.config.community_fraction)) {
      const uint32_t cid = ctx.community[u];
      v = ctx.community_range[cid].first +
          ctx.community_sampler[cid]->Sample(&stub_rng);
    } else {
      v = ctx.sampler->Sample(&stub_rng);
    }
    if (v == u || chosen->contains(v)) continue;
    chosen->insert(v);
    out->push_back(v);
  }
}

/// Reusable scratch for one wiring worker.
struct WireScratch {
  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> final_targets;
  std::unordered_set<NodeId> row_chosen;  // ComputeBaseTargets workspace
  std::vector<NodeId> row;                // on-demand row buffer
};

/// Phase-2 for one source: triadic-closure rewrites of the base targets
/// plus follow-back / social-circle planting, emitting packed edges.
/// `row_of(w, scratch)` returns w's base-target row (empty span for
/// non-core sources); `base_u` is u's own row. Mirrors the original
/// serial formulation draw for draw.
template <typename RowOf, typename Emit>
void WireOneSource(const WiringContext& ctx,
                   const std::vector<UserRole>& roles, NodeId u,
                   std::span<const NodeId> base_u, RowOf&& row_of,
                   WireScratch& scratch, Emit&& emit) {
  util::Rng closure_rng(util::SubstreamSeed(ctx.closure_seed, u));
  std::vector<NodeId>& final_targets = scratch.final_targets;
  final_targets.assign(base_u.begin(), base_u.end());
  scratch.chosen.clear();
  scratch.chosen.insert(final_targets.begin(), final_targets.end());
  const bool community_eligible =
      !ctx.is_tail[u] && ctx.community[u] != UINT32_MAX;
  const double p_triadic =
      ctx.config.triadic_closure *
      (community_eligible ? 1.0 - ctx.config.community_fraction : 1.0);
  // Slot 0 never rewrites: the serial loop required earlier targets
  // before a friend-of-friend draw.
  for (size_t j = 1; j < final_targets.size(); ++j) {
    if (p_triadic <= 0.0 || !closure_rng.Bernoulli(p_triadic)) continue;
    const NodeId w =
        final_targets[closure_rng.UniformU64(final_targets.size())];
    const std::span<const NodeId> row_w = row_of(w, scratch);
    if (w >= ctx.small_begin || row_w.empty()) continue;
    const NodeId v = row_w[closure_rng.UniformU64(row_w.size())];
    if (v == u || scratch.chosen.contains(v)) continue;
    scratch.chosen.erase(final_targets[j]);
    scratch.chosen.insert(v);
    final_targets[j] = v;
  }
  for (const NodeId v : final_targets) {
    emit(u, v);
    // Follow-back planting: body core users reciprocate; tail users,
    // the superfollower, sinks, and peripheral nodes never do.
    if (roles[v] == UserRole::kCore && !ctx.is_tail[v] &&
        closure_rng.Bernoulli(ctx.p_plant)) {
      emit(v, u);
      // Social-circle closure: v sometimes also follows one of u's
      // other targets, closing the triangle u -> t, v -> t.
      if (final_targets.size() > 1 &&
          closure_rng.Bernoulli(ctx.config.social_circle)) {
        const NodeId t =
            final_targets[closure_rng.UniformU64(final_targets.size())];
        if (t != v && t != u) emit(v, t);
      }
    }
  }
}

/// Wires core sources [w_lo, w_hi) into per-block packed-edge buffers in
/// parallel (per-source RNG substreams keep the draws placement-free),
/// then drains the blocks serially in block order. Bounded memory: the
/// buffers live only for this window.
template <typename RowOf>
Status WireWindow(const WiringContext& ctx,
                  const std::vector<UserRole>& roles, NodeId w_lo,
                  NodeId w_hi, RowOf&& row_of,
                  const std::function<Status(std::span<const uint64_t>)>&
                      drain) {
  const size_t range = w_hi - w_lo;
  if (range == 0) return Status::OK();
  const size_t grain = util::EffectiveGrain(range, 0);
  const size_t blocks = (range + grain - 1) / grain;
  std::vector<std::vector<uint64_t>> block_edges(blocks);
  util::ParallelFor(w_lo, w_hi, grain, [&](size_t lo, size_t hi) {
    std::vector<uint64_t>& edges_out = block_edges[(lo - w_lo) / grain];
    WireScratch scratch;
    for (size_t ui = lo; ui < hi; ++ui) {
      const NodeId u = static_cast<NodeId>(ui);
      const std::span<const NodeId> base_u = row_of(u, scratch);
      // base_u may point into scratch.row; copy happens first inside
      // WireOneSource (final_targets.assign) before row_of reuses it.
      WireOneSource(ctx, roles, u, base_u, row_of, scratch,
                    [&](NodeId a, NodeId b) {
                      edges_out.push_back(util::PackEdge(a, b));
                    });
    }
  });
  for (std::vector<uint64_t>& block : block_edges) {
    ELITENET_COUNT("gen.network.edges_emitted", block.size());
    EN_RETURN_IF_ERROR(drain(block));
    block.clear();
    block.shrink_to_fit();
  }
  return Status::OK();
}

/// Small weak components (2-5 node directed cycles with one mutual pair)
/// plus the giant-SCC in-degree repair — the serial epilogue, emitting
/// through the same sink as the wiring phases. Consumes `rng` exactly as
/// the original implementation.
Status EmitPeriphery(const WiringContext& ctx, util::Rng* rng,
                     std::vector<bool>* has_in_edge,
                     const std::function<Status(NodeId, NodeId)>& emit) {
  // ---- Small components: 2-5 node directed cycles with one mutual pair --
  NodeId u = ctx.small_begin;
  while (u < ctx.iso_begin) {
    const uint32_t remaining = ctx.iso_begin - u;
    uint32_t size = static_cast<uint32_t>(2 + rng->UniformU64(4));  // 2..5
    size = std::min(size, remaining);
    if (size == 1) {
      // A lone leftover joins the previous component via a mutual pair.
      EN_RETURN_IF_ERROR(emit(u, u - 1));
      EN_RETURN_IF_ERROR(emit(u - 1, u));
      ++u;
      break;
    }
    for (uint32_t i = 0; i < size; ++i) {
      const NodeId a = u + i;
      const NodeId b = u + (i + 1) % size;
      EN_RETURN_IF_ERROR(emit(a, b));
    }
    EN_RETURN_IF_ERROR(emit(u + 1, u));  // one mutual pair
    u += size;
  }

  // ---- In-degree repair so the core collapses into one giant SCC ---------
  if (ctx.config.repair_in_degree) {
    for (NodeId v = 0; v < ctx.n_core; ++v) {
      if ((*has_in_edge)[v]) continue;
      NodeId donor;
      do {
        donor = static_cast<NodeId>(rng->UniformU64(ctx.n_core));
      } while (donor == v);
      EN_RETURN_IF_ERROR(emit(donor, v));
      (*has_in_edge)[v] = true;
    }
  }
  return Status::OK();
}

}  // namespace

Result<VerifiedNetwork> GenerateVerifiedNetwork(
    const VerifiedNetworkConfig& config) {
  ELITENET_SPAN("gen.network");
  util::Rng rng(config.seed);
  VerifiedNetwork out;
  out.config = config;
  WiringContext ctx;
  EN_RETURN_IF_ERROR(
      PrepareWiring(config, &rng, &out.roles, &out.popularity, &ctx));
  const uint32_t n = ctx.n;
  const uint32_t n_core = ctx.n_core;

  // Phase 1: materialize every source's base targets (community or global
  // popularity sampling) — the in-memory path trades O(m) residency for
  // never recomputing a row. The phase spans share one timer: Reset()
  // closes the previous phase's span and opens the next, so the trace
  // shows wiring_base / wiring_closure / assemble as siblings under
  // gen.network.
  util::SpanTimer phase_span("gen.network.wiring_base");
  std::vector<std::vector<NodeId>> base_targets(n);
  util::ParallelFor(0, n_core, 0, [&](size_t lo, size_t hi) {
    std::unordered_set<NodeId> chosen;
    for (size_t ui = lo; ui < hi; ++ui) {
      const NodeId u = static_cast<NodeId>(ui);
      ComputeBaseTargets(ctx, u, &chosen, &base_targets[u]);
    }
  });
  phase_span.Reset("gen.network.wiring_closure");

  // Phase 2: triadic-closure rewrites plus follow-back planting over one
  // window spanning the whole core (the streamed path uses many bounded
  // windows instead), reading rows straight from the materialized phase-1
  // arrays.
  GraphBuilder builder(n);
  builder.Reserve(static_cast<size_t>(ctx.m_total * 1.05));
  std::vector<bool> has_in_edge(n, false);

  auto add_edge = [&](NodeId a, NodeId b) -> Status {
    EN_RETURN_IF_ERROR(builder.AddEdge(a, b));
    has_in_edge[b] = true;
    return Status::OK();
  };

  bool assembling = false;
  const auto materialized_row =
      [&](NodeId w, WireScratch&) -> std::span<const NodeId> {
    return base_targets[w];
  };
  EN_RETURN_IF_ERROR(WireWindow(
      ctx, out.roles, 0, n_core, materialized_row,
      [&](std::span<const uint64_t> block) -> Status {
        if (!assembling) {
          // First drained block marks the phase-1/2 boundary for tracing.
          phase_span.Reset("gen.network.assemble");
          assembling = true;
        }
        for (const uint64_t record : block) {
          EN_RETURN_IF_ERROR(
              add_edge(util::PackedSrc(record), util::PackedDst(record)));
        }
        return Status::OK();
      }));
  if (!assembling) phase_span.Reset("gen.network.assemble");

  EN_RETURN_IF_ERROR(EmitPeriphery(ctx, &rng, &has_in_edge, add_edge));

  EN_ASSIGN_OR_RETURN(out.graph, builder.Build());
  ELITENET_COUNT("gen.network.edges_built", out.graph.num_edges());
  return out;
}

namespace {

std::string DirOfPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string BaseOfPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Result<StreamedNetwork> GenerateVerifiedNetworkToSnapshot(
    const VerifiedNetworkConfig& config, const std::string& snapshot_path,
    const StreamedGenerateOptions& options) {
  ELITENET_SPAN("gen.network_streamed");
  util::Rng rng(config.seed);
  StreamedNetwork out;
  out.config = config;
  WiringContext ctx;
  EN_RETURN_IF_ERROR(
      PrepareWiring(config, &rng, &out.roles, &out.popularity, &ctx));

  util::ExtSortOptions sort_options;
  sort_options.budget_bytes = options.sort_budget_bytes;
  sort_options.temp_dir = options.temp_dir.empty() ? DirOfPath(snapshot_path)
                                                   : options.temp_dir;
  sort_options.temp_prefix = BaseOfPath(snapshot_path) + ".fwd";
  util::ExtSorter sorter(sort_options);
  std::vector<bool> has_in_edge(ctx.n, false);

  // Wiring, windowed: every window's edge blocks drain into the sorter
  // and are freed, so resident edge state is one window plus the sort
  // buffer. Rows other sources' closures reference are recomputed from
  // their substreams instead of read from a materialized phase-1 array —
  // same draws, no O(m) residency.
  util::SpanTimer phase_span("gen.network.wiring_streamed");
  const auto on_demand_row =
      [&](NodeId w, WireScratch& scratch) -> std::span<const NodeId> {
    if (w >= ctx.n_core) return {};  // sinks and periphery have no rows
    ComputeBaseTargets(ctx, w, &scratch.row_chosen, &scratch.row);
    return scratch.row;
  };
  const uint32_t window = std::max<uint32_t>(1, options.window_sources);
  for (NodeId w_lo = 0; w_lo < ctx.n_core; w_lo += window) {
    const NodeId w_hi =
        std::min<NodeId>(w_lo + window, ctx.n_core);
    EN_RETURN_IF_ERROR(WireWindow(
        ctx, out.roles, w_lo, w_hi, on_demand_row,
        [&](std::span<const uint64_t> block) -> Status {
          out.edges_emitted += block.size();
          for (const uint64_t record : block) {
            has_in_edge[util::PackedDst(record)] = true;
          }
          return sorter.AddBatch(block);
        }));
  }

  phase_span.Reset("gen.network.periphery");
  EN_RETURN_IF_ERROR(EmitPeriphery(
      ctx, &rng, &has_in_edge, [&](NodeId a, NodeId b) -> Status {
        ++out.edges_emitted;
        has_in_edge[b] = true;
        return sorter.Add(util::PackEdge(a, b));
      }));

  phase_span.Reset("gen.network.write_snapshot");
  graph::StreamWriteOptions write_options;
  write_options.sort_budget_bytes = options.sort_budget_bytes;
  write_options.temp_dir = options.temp_dir;
  EN_ASSIGN_OR_RETURN(
      out.write,
      graph::WriteStreamedV2(&sorter, ctx.n, snapshot_path, write_options));
  ELITENET_COUNT("gen.network.edges_built", out.write.num_edges);
  return out;
}

}  // namespace gen
}  // namespace elitenet

#include "gen/verified_network.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "graph/builder.h"
#include "stats/powerlaw.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace elitenet {
namespace gen {

using graph::GraphBuilder;
using graph::NodeId;

uint64_t VerifiedNetwork::CountRole(UserRole role) const {
  uint64_t count = 0;
  for (UserRole r : roles) {
    if (r == role) ++count;
  }
  return count;
}

VerifiedNetworkConfig PaperScaleConfig() {
  VerifiedNetworkConfig cfg;
  cfg.num_users = 231246;
  return cfg;
}

Result<VerifiedNetwork> GenerateVerifiedNetwork(
    const VerifiedNetworkConfig& config) {
  ELITENET_SPAN("gen.network");
  const uint32_t n = config.num_users;
  if (n < 1000) {
    return Status::InvalidArgument(
        "verified network needs >= 1000 users for the fractions to make "
        "sense");
  }
  if (config.density <= 0.0 || config.density >= 0.5) {
    return Status::InvalidArgument("density out of range");
  }
  if (config.reciprocity <= 0.0 || config.reciprocity >= 1.0) {
    return Status::InvalidArgument("reciprocity out of range");
  }
  if (config.powerlaw_alpha <= 2.05) {
    return Status::InvalidArgument("alpha must exceed 2 (finite mean)");
  }

  util::Rng rng(config.seed);

  // ---- Role layout (contiguous id ranges; see header) -------------------
  const uint32_t n_iso =
      static_cast<uint32_t>(std::lround(config.isolated_fraction * n));
  const uint32_t n_sink = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(config.sink_fraction * n)));
  const uint32_t n_small = static_cast<uint32_t>(
      std::lround(config.small_component_fraction * n));
  if (n_iso + n_sink + n_small >= n / 2) {
    return Status::InvalidArgument("peripheral fractions leave no core");
  }
  const uint32_t n_core = n - n_iso - n_sink - n_small;
  const NodeId sink_begin = n_core;
  const NodeId small_begin = n_core + n_sink;
  const NodeId iso_begin = small_begin + n_small;

  VerifiedNetwork out;
  out.config = config;
  out.roles.assign(n, UserRole::kCore);
  for (NodeId u = sink_begin; u < small_begin; ++u) {
    out.roles[u] = UserRole::kSink;
  }
  for (NodeId u = small_begin; u < iso_begin; ++u) {
    out.roles[u] = UserRole::kSmallComponent;
  }
  for (NodeId u = iso_begin; u < n; ++u) out.roles[u] = UserRole::kIsolated;

  // ---- Popularity weights ----------------------------------------------
  out.popularity.assign(n, 0.0);
  double total_mass = 0.0, sink_mass = 0.0;
  // The Pareto branch picks up roughly where the log-normal tail mass
  // thins out (~the (1 - tail_fraction) quantile of the log-normal).
  const double pareto_x0 = std::exp(config.popularity_sigma * 1.75);
  for (NodeId u = 0; u < n_core; ++u) {
    double w;
    if (config.popularity_tail_fraction > 0.0 &&
        rng.Bernoulli(config.popularity_tail_fraction)) {
      w = rng.Pareto(config.popularity_tail_alpha, pareto_x0);
    } else {
      w = rng.LogNormal(0.0, config.popularity_sigma);
    }
    out.popularity[u] = w;
    total_mass += w;
  }
  for (NodeId u = sink_begin; u < small_begin; ++u) {
    const double w = rng.LogNormal(0.0, config.popularity_sigma) *
                     config.sink_popularity_boost;
    out.popularity[u] = w;
    total_mass += w;
    sink_mass += w;
  }

  // ---- Degree budget -----------------------------------------------------
  // Targets: m_total = density * n * (n-1). Reciprocity is produced by
  // additive follow-back planting: when u -> v is wired and v is a
  // *body* core user, v follows back with probability p_plant. Tail
  // (power-law out-degree) users and sinks never follow back — the
  // celebrity behaviour the paper describes — which also keeps the
  // realized tail out-degrees exactly the planted zeta sample, a
  // precondition for the Vuong tests to favour the power law.
  //
  // With rho = r / (2 - r), planting multiplies the base edge count by
  // (1 + rho) and yields edge reciprocity 2 rho / (1 + rho) = r; p_plant
  // is rho corrected for the popularity mass that never reciprocates.
  const double m_total = config.density * static_cast<double>(n) *
                         (static_cast<double>(n) - 1.0);
  const double mean_degree_all = m_total / static_cast<double>(n);
  const double rho = config.reciprocity / (2.0 - config.reciprocity);
  // Empirical corrections, validated by the calibration tests: planted
  // follow-backs occasionally coalesce with existing edges (triadic
  // closure makes v -> u more likely to pre-exist), and the body cap /
  // rejection losses shave a few percent off the mean degree.
  const double kPlantCorrection = 0.97;
  const double kDensityCorrection = 0.99;
  const double mean_base_core = kDensityCorrection * m_total / (1.0 + rho) /
                                static_cast<double>(n_core);

  const double xmin = std::max(2.0, config.xmin_over_mean * mean_degree_all);
  const double tail_mean = xmin * (config.powerlaw_alpha - 1.0) /
                           (config.powerlaw_alpha - 2.0);
  double body_mean =
      (mean_base_core - config.tail_fraction * tail_mean) /
      (1.0 - config.tail_fraction);
  if (body_mean < 1.0) {
    return Status::InvalidArgument(
        "density too low for the configured tail (body mean < 1); lower "
        "tail_fraction or xmin_over_mean");
  }
  const double body_mu =
      std::log(body_mean) - 0.5 * config.body_sigma * config.body_sigma;
  const uint32_t degree_cap = std::max<uint32_t>(10, (2 * n_core) / 5);

  // ---- Out-degree sequence for core users --------------------------------
  std::vector<uint32_t> out_degree(n, 0);
  std::vector<bool> is_tail(n, false);
  const uint64_t body_cap =
      std::max<uint64_t>(2, static_cast<uint64_t>(0.9 * xmin));
  for (NodeId u = 0; u < n_core; ++u) {
    uint64_t d;
    if (rng.Bernoulli(config.tail_fraction)) {
      // Exact zeta sampling: the tail must be *exactly* the distribution
      // the discrete MLE fits, or the Vuong tests detect the mismatch.
      d = stats::SampleZeta(config.powerlaw_alpha,
                            static_cast<uint64_t>(std::lround(xmin)), &rng);
      is_tail[u] = true;
    } else {
      // Body draws are kept below xmin so the tail stays uncontaminated.
      d = static_cast<uint64_t>(
          std::lround(rng.LogNormal(body_mu, config.body_sigma)));
      for (int tries = 0; d > body_cap && tries < 20; ++tries) {
        d = static_cast<uint64_t>(
            std::lround(rng.LogNormal(body_mu, config.body_sigma)));
      }
      d = std::min<uint64_t>(d, body_cap);
    }
    out_degree[u] =
        static_cast<uint32_t>(std::clamp<uint64_t>(d, 1, degree_cap));
  }
  // Plant the '@6BillionPeople' outlier on node 0: a single account that
  // follows roughly half the network, matching the paper's max
  // out-degree of 114,815 at n = 231,246.
  if (config.superfollower_fraction > 0.0 && n_core > 10) {
    const double want = config.superfollower_fraction * static_cast<double>(n);
    out_degree[0] = static_cast<uint32_t>(std::min<double>(
        want, static_cast<double>(n_core + n_sink) - 2.0));
    is_tail[0] = true;  // exempt from follow-back noise, like the tail
  }

  // Popularity mass share of users who *do* follow back (body core).
  double body_mass = 0.0;
  for (NodeId u = 0; u < n_core; ++u) {
    if (!is_tail[u]) body_mass += out.popularity[u];
  }
  const double q_body = body_mass / total_mass;
  const double p_plant =
      std::min(1.0, kPlantCorrection * rho / std::max(q_body, 1e-6));

  // ---- Communities ---------------------------------------------------------
  // Body core users are grouped into contiguous blocks; a per-community
  // alias sampler lets stubs target their own community cheaply.
  std::vector<uint32_t> community(n, UINT32_MAX);
  std::vector<std::pair<NodeId, NodeId>> community_range;  // [begin, end)
  std::vector<std::optional<util::AliasSampler>> community_sampler;
  const double community_size =
      config.community_size_mean > 0.0
          ? config.community_size_mean
          : std::max(40.0, 1.2 * mean_degree_all);
  if (config.community_fraction > 0.0 && community_size >= 4.0) {
    NodeId begin = 0;
    while (begin < n_core) {
      const double span = community_size * rng.UniformDouble(0.5, 1.5);
      NodeId end = begin + static_cast<NodeId>(std::max(4.0, span));
      end = std::min(end, n_core);
      if (n_core - end < 4) end = n_core;  // absorb tiny remainder
      const uint32_t cid = static_cast<uint32_t>(community_range.size());
      for (NodeId u = begin; u < end; ++u) community[u] = cid;
      community_range.emplace_back(begin, end);
      std::vector<double> cw(out.popularity.begin() + begin,
                             out.popularity.begin() + end);
      community_sampler.emplace_back(std::in_place, cw);
      begin = end;
    }
  }

  // ---- Wiring -------------------------------------------------------------
  // Target choice per stub: own community (popularity-weighted) with
  // probability community_fraction, else a friend-of-friend closure, else
  // global popularity-weighted sampling over core + sink nodes.
  //
  // Wiring runs as two parallel phases over the core sources. Every
  // source draws from its own RNG substream (util::SubstreamSeed keyed by
  // the node id), and per-block edge buffers merge into GraphBuilder in
  // block order, so the generated graph is bit-identical for any thread
  // count. Phase 1 draws each source's base targets from read-only state
  // (community samplers + global alias table); phase 2 — after the phase-1
  // barrier — rewrites a fraction of stubs into friend-of-friend closures
  // against the now-complete base target lists and plants the follow-back
  // / social-circle edges.
  std::vector<double> weights(out.popularity.begin(),
                              out.popularity.begin() + small_begin);
  const util::AliasSampler sampler(weights);

  const uint64_t stub_seed = rng.Next();
  const uint64_t closure_seed = rng.Next();

  // Phase 1: base targets (community or global popularity sampling).
  // The phase spans share one timer: Reset() closes the previous phase's
  // span and opens the next, so the trace shows wiring_base /
  // wiring_closure / assemble as siblings under gen.network.
  util::SpanTimer phase_span("gen.network.wiring_base");
  std::vector<std::vector<NodeId>> base_targets(n);
  util::ParallelFor(0, n_core, 0, [&](size_t lo, size_t hi) {
    std::unordered_set<NodeId> chosen;
    for (size_t ui = lo; ui < hi; ++ui) {
      const NodeId u = static_cast<NodeId>(ui);
      util::Rng stub_rng(util::SubstreamSeed(stub_seed, u));
      chosen.clear();
      const uint32_t want = out_degree[u];
      std::vector<NodeId>& mine = base_targets[u];
      mine.reserve(want);
      uint32_t guard = 0;
      const uint32_t max_tries = 20u * want + 50u;
      // Tail users (and the superfollower) fan out too widely for a
      // single community; they sample globally.
      const bool community_eligible =
          !is_tail[u] && community[u] != UINT32_MAX;
      while (chosen.size() < want && guard < max_tries) {
        ++guard;
        NodeId v;
        if (community_eligible &&
            stub_rng.Bernoulli(config.community_fraction)) {
          const uint32_t cid = community[u];
          v = community_range[cid].first +
              community_sampler[cid]->Sample(&stub_rng);
        } else {
          v = sampler.Sample(&stub_rng);
        }
        if (v == u || chosen.contains(v)) continue;
        chosen.insert(v);
        mine.push_back(v);
      }
    }
  });
  phase_span.Reset("gen.network.wiring_closure");

  // Phase 2: triadic-closure rewrites plus follow-back planting, buffered
  // per block. Rewrites target the same share of stubs as the serial
  // formulation: a non-community attempt went triadic with probability
  // triadic_closure, so community-eligible sources rewrite with
  // (1 - community_fraction) * triadic_closure and tail sources with
  // triadic_closure outright.
  const size_t wire_grain = util::EffectiveGrain(n_core, 0);
  const size_t wire_blocks =
      n_core == 0 ? 0 : (n_core + wire_grain - 1) / wire_grain;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> block_edges(
      wire_blocks);
  util::ParallelFor(0, n_core, wire_grain, [&](size_t lo, size_t hi) {
    std::vector<std::pair<NodeId, NodeId>>& edges_out =
        block_edges[lo / wire_grain];
    std::unordered_set<NodeId> chosen;
    std::vector<NodeId> final_targets;
    for (size_t ui = lo; ui < hi; ++ui) {
      const NodeId u = static_cast<NodeId>(ui);
      util::Rng closure_rng(util::SubstreamSeed(closure_seed, u));
      final_targets.assign(base_targets[u].begin(), base_targets[u].end());
      chosen.clear();
      chosen.insert(final_targets.begin(), final_targets.end());
      const bool community_eligible =
          !is_tail[u] && community[u] != UINT32_MAX;
      const double p_triadic =
          config.triadic_closure *
          (community_eligible ? 1.0 - config.community_fraction : 1.0);
      // Slot 0 never rewrites: the serial loop required earlier targets
      // before a friend-of-friend draw.
      for (size_t j = 1; j < final_targets.size(); ++j) {
        if (p_triadic <= 0.0 || !closure_rng.Bernoulli(p_triadic)) continue;
        const NodeId w =
            final_targets[closure_rng.UniformU64(final_targets.size())];
        if (w >= small_begin || base_targets[w].empty()) continue;
        const NodeId v =
            base_targets[w][closure_rng.UniformU64(base_targets[w].size())];
        if (v == u || chosen.contains(v)) continue;
        chosen.erase(final_targets[j]);
        chosen.insert(v);
        final_targets[j] = v;
      }
      for (const NodeId v : final_targets) {
        edges_out.emplace_back(u, v);
        // Follow-back planting: body core users reciprocate; tail users,
        // the superfollower, sinks, and peripheral nodes never do.
        if (out.roles[v] == UserRole::kCore && !is_tail[v] &&
            closure_rng.Bernoulli(p_plant)) {
          edges_out.emplace_back(v, u);
          // Social-circle closure: v sometimes also follows one of u's
          // other targets, closing the triangle u -> t, v -> t.
          if (final_targets.size() > 1 &&
              closure_rng.Bernoulli(config.social_circle)) {
            const NodeId t =
                final_targets[closure_rng.UniformU64(final_targets.size())];
            if (t != v && t != u) edges_out.emplace_back(v, t);
          }
        }
      }
    }
  });
  phase_span.Reset("gen.network.assemble");

  GraphBuilder builder(n);
  builder.Reserve(static_cast<size_t>(m_total * 1.05));
  std::vector<bool> has_in_edge(n, false);

  auto add_edge = [&](NodeId a, NodeId b) -> Status {
    EN_RETURN_IF_ERROR(builder.AddEdge(a, b));
    has_in_edge[b] = true;
    return Status::OK();
  };

  for (std::vector<std::pair<NodeId, NodeId>>& block : block_edges) {
    ELITENET_COUNT("gen.network.edges_emitted", block.size());
    for (const auto& [a, b] : block) {
      EN_RETURN_IF_ERROR(add_edge(a, b));
    }
    block.clear();
    block.shrink_to_fit();
  }

  // ---- Small components: 2-5 node directed cycles with one mutual pair --
  {
    NodeId u = small_begin;
    while (u < iso_begin) {
      const uint32_t remaining = iso_begin - u;
      uint32_t size = static_cast<uint32_t>(2 + rng.UniformU64(4));  // 2..5
      size = std::min(size, remaining);
      if (size == 1) {
        // A lone leftover joins the previous component via a mutual pair.
        EN_RETURN_IF_ERROR(add_edge(u, u - 1));
        EN_RETURN_IF_ERROR(add_edge(u - 1, u));
        ++u;
        break;
      }
      for (uint32_t i = 0; i < size; ++i) {
        const NodeId a = u + i;
        const NodeId b = u + (i + 1) % size;
        EN_RETURN_IF_ERROR(add_edge(a, b));
      }
      EN_RETURN_IF_ERROR(add_edge(u + 1, u));  // one mutual pair
      u += size;
    }
  }

  // ---- In-degree repair so the core collapses into one giant SCC ---------
  if (config.repair_in_degree) {
    for (NodeId v = 0; v < n_core; ++v) {
      if (has_in_edge[v]) continue;
      NodeId donor;
      do {
        donor = static_cast<NodeId>(rng.UniformU64(n_core));
      } while (donor == v);
      EN_RETURN_IF_ERROR(builder.AddEdge(donor, v));
      has_in_edge[v] = true;
    }
  }

  EN_ASSIGN_OR_RETURN(out.graph, builder.Build());
  ELITENET_COUNT("gen.network.edges_built", out.graph.num_edges());
  return out;
}

}  // namespace gen
}  // namespace elitenet

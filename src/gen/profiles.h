// Synthetic per-user profile features standing in for the commercial
// Firehose fields the paper uses: whole-Twitter followers, friends,
// public-list memberships, and lifetime status (tweet) counts.
//
// The couplings Fig. 1 and Fig. 5 rely on are planted explicitly:
//   * followers ~ sub-graph in-degree x log-normal noise (heavy tail),
//   * friends   ~ sub-graph out-degree x noise,
//   * listed    ~ followers^0.85 x noise (list membership tracks reach;
//     Sharma et al.'s who-is-who result),
//   * statuses  ~ log-normal with a mild positive coupling to followers
//     (the paper sees the trend "become more apparent at higher
//     extremes").

#ifndef ELITENET_GEN_PROFILES_H_
#define ELITENET_GEN_PROFILES_H_

#include <cstdint>
#include <vector>

#include "gen/verified_network.h"
#include "util/status.h"

namespace elitenet {
namespace gen {

struct UserProfile {
  uint64_t followers = 0;  ///< whole-Twitter followers
  uint64_t friends = 0;    ///< whole-Twitter followees
  uint64_t listed = 0;     ///< public list memberships
  uint64_t statuses = 0;   ///< lifetime tweet count
};

struct ProfileConfig {
  uint64_t seed = 77;
  /// Whole-Twitter followers per unit of sub-graph in-degree (verified
  /// users are followed by many non-verified users; the paper-scale graph
  /// has ~340 verified in-edges per user against audiences in the
  /// millions).
  double followers_per_in_degree = 900.0;
  double followers_noise_sigma = 0.9;
  double friends_per_out_degree = 6.0;
  double friends_noise_sigma = 0.7;
  /// listed ≈ listed_scale * followers^listed_exponent * noise.
  double listed_exponent = 0.85;
  double listed_scale = 0.006;
  double listed_noise_sigma = 0.6;
  /// statuses ≈ LogNormal(statuses_mu, statuses_sigma) * (1 +
  /// followers)^statuses_coupling.
  double statuses_mu = 7.2;
  double statuses_sigma = 1.3;
  double statuses_coupling = 0.14;
};

/// One profile per node of `network`, coupled to its topology.
Result<std::vector<UserProfile>> GenerateProfiles(
    const VerifiedNetwork& network, const ProfileConfig& config = {});

/// Column extractors for the stats:: fitters and smoothers.
std::vector<double> FollowersColumn(const std::vector<UserProfile>& p);
std::vector<double> FriendsColumn(const std::vector<UserProfile>& p);
std::vector<double> ListedColumn(const std::vector<UserProfile>& p);
std::vector<double> StatusesColumn(const std::vector<UserProfile>& p);

}  // namespace gen
}  // namespace elitenet

#endif  // ELITENET_GEN_PROFILES_H_

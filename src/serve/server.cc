#include "serve/server.h"

#include <cstdlib>
#include <string>

#include "util/check.h"
#include "util/string_utils.h"

namespace elitenet {
namespace serve {

ServeStats ServeLines(QueryEngine* engine, std::FILE* in, std::FILE* out) {
  EN_CHECK(engine != nullptr);
  EN_CHECK(in != nullptr);
  EN_CHECK(out != nullptr);
  ServeStats stats;
  std::string line;
  int c;
  bool eof = false;
  while (!eof) {
    line.clear();
    while ((c = std::fgetc(in)) != EOF && c != '\n') {
      line += static_cast<char>(c);
    }
    if (c == EOF) {
      eof = true;
      if (line.empty()) break;
    }
    const std::string_view stripped = util::StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    if (stripped.front() == '#') {
      // Admin channel: recognized verbs are answered (off the query fast
      // path — they only read telemetry rings and counters); anything
      // else keeps working as a comment.
      auto cmd = ParseAdminLine(stripped);
      if (cmd.ok()) {
        ++stats.admin;
        const std::string json = engine->AdminResponse(*cmd);
        std::fprintf(out, "%s\n", json.c_str());
        std::fflush(out);
      } else if (cmd.status().code() == StatusCode::kInvalidArgument) {
        ++stats.admin;
        ++stats.errors;
        std::string json = "{\"type\":\"error\",\"code\":\"";
        json += StatusCodeToString(cmd.status().code());
        json += "\",\"message\":\"";
        json += JsonEscape(cmd.status().message());
        json += "\"}";
        std::fprintf(out, "%s\n", json.c_str());
        std::fflush(out);
      }
      continue;
    }
    if (stripped == "quit") break;
    const QueryResponse resp = engine->ExecuteLine(stripped);
    ++stats.requests;
    if (!resp.ok) ++stats.errors;
    if (resp.degraded) ++stats.degraded;
    std::fprintf(out, "%s\n", resp.json.c_str());
    std::fflush(out);
  }
  return stats;
}

namespace {

// "--flag=<uint>" value parse; false on empty/non-numeric.
bool ParseUintValue(std::string_view value, uint64_t* out) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string_view::npos) {
    return false;
  }
  uint64_t v = 0;
  for (char ch : value) v = v * 10 + static_cast<uint64_t>(ch - '0');
  *out = v;
  return true;
}

}  // namespace

bool ParseServeFlag(std::string_view arg, EngineOptions* options) {
  EN_CHECK(options != nullptr);
  uint64_t v = 0;
  if (arg.rfind("--metrics=", 0) == 0) {
    options->metrics_path = std::string(arg.substr(10));
    return true;
  }
  if (arg.rfind("--metrics-interval=", 0) == 0 &&
      ParseUintValue(arg.substr(19), &v)) {
    options->metrics_interval_ms = static_cast<int>(v);
    return true;
  }
  if (arg.rfind("--flight-recorder=", 0) == 0 &&
      ParseUintValue(arg.substr(18), &v)) {
    options->telemetry.recorder_capacity = static_cast<size_t>(v);
    return true;
  }
  if (arg.rfind("--slow-ms=", 0) == 0 && ParseUintValue(arg.substr(10), &v)) {
    options->telemetry.slow_us = v * 1000;
    return true;
  }
  if (arg.rfind("--sample=", 0) == 0 && ParseUintValue(arg.substr(9), &v)) {
    options->telemetry.sample_every = static_cast<uint32_t>(v);
    return true;
  }
  if (arg == "--no-telemetry") {
    options->telemetry.enabled = false;
    return true;
  }
  return false;
}

void ApplyServeEnv(EngineOptions* options) {
  EN_CHECK(options != nullptr);
  uint64_t v = 0;
  if (const char* env = std::getenv("ELITENET_METRICS");
      env != nullptr && *env != '\0') {
    options->metrics_path = env;
  }
  if (const char* env = std::getenv("ELITENET_METRICS_INTERVAL_MS");
      env != nullptr && ParseUintValue(env, &v)) {
    options->metrics_interval_ms = static_cast<int>(v);
  }
  if (const char* env = std::getenv("ELITENET_FLIGHT_RECORDER");
      env != nullptr && ParseUintValue(env, &v)) {
    options->telemetry.recorder_capacity = static_cast<size_t>(v);
  }
  if (const char* env = std::getenv("ELITENET_SLOW_MS");
      env != nullptr && ParseUintValue(env, &v)) {
    options->telemetry.slow_us = v * 1000;
  }
}

}  // namespace serve
}  // namespace elitenet

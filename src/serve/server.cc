#include "serve/server.h"

#include <string>

#include "util/check.h"
#include "util/string_utils.h"

namespace elitenet {
namespace serve {

ServeStats ServeLines(QueryEngine* engine, std::FILE* in, std::FILE* out) {
  EN_CHECK(engine != nullptr);
  EN_CHECK(in != nullptr);
  EN_CHECK(out != nullptr);
  ServeStats stats;
  std::string line;
  int c;
  bool eof = false;
  while (!eof) {
    line.clear();
    while ((c = std::fgetc(in)) != EOF && c != '\n') {
      line += static_cast<char>(c);
    }
    if (c == EOF) {
      eof = true;
      if (line.empty()) break;
    }
    const std::string_view stripped = util::StripAsciiWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (stripped == "quit") break;
    const QueryResponse resp = engine->ExecuteLine(stripped);
    ++stats.requests;
    if (!resp.ok) ++stats.errors;
    if (resp.degraded) ++stats.degraded;
    std::fprintf(out, "%s\n", resp.json.c_str());
    std::fflush(out);
  }
  return stats;
}

}  // namespace serve
}  // namespace elitenet

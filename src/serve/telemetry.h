// Live telemetry plane for the serving layer: per-request trace ids, a
// flight recorder of recent request records, streaming latency sketches,
// SLO counters, line-protocol admin introspection, and a background
// exporter.
//
// Design constraints, in order:
//
//   1. *Determinism.* Telemetry observes, it never decides. Trace ids are
//      a pure function of the request sequence number (splitmix64), and
//      sampling is a pure function of the trace id — so a replayed
//      request stream is sampled identically, and response bytes are
//      byte-identical with telemetry on, off, or sampled, at any worker
//      count (asserted by bench_observability's serving mode).
//   2. *Hot-path cost.* Recording one request is: a handful of relaxed
//      atomic adds (SLO counters + sketches), one fetch_add to claim a
//      ring slot, and one uncontended per-slot mutex around a small
//      struct copy. No allocation unless the request was sampled (span
//      vector) — the canonical request string is rendered lazily, at
//      admin time. Budget: <1% of serving throughput at default
//      sampling (bench_observability asserts it).
//   3. *Introspection without the fast path.* Admin commands (#stats,
//      #healthz, #recent, #slow, #trace) read the rings and sketches
//      under per-slot locks only; they never touch the query queue.

#ifndef ELITENET_SERVE_TELEMETRY_H_
#define ELITENET_SERVE_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/delta_overlay.h"
#include "serve/request.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace elitenet {
namespace serve {

/// Number of RequestType values (per-type counter/sketch array size).
inline constexpr size_t kNumRequestTypes = 5;

/// Trace id for the request with sequence number `seq` (1-based).
/// splitmix64: bijective, so distinct requests get distinct ids, and
/// deterministic, so a replayed stream traces identically.
uint64_t TraceIdFor(uint64_t seq);

/// 16 lowercase hex digits, zero-padded — the wire form of a trace id.
std::string TraceIdHex(uint64_t trace_id);

/// Parses a trace id as emitted by TraceIdHex (also accepts shorter hex
/// and an optional 0x prefix). Returns false on empty/invalid input.
bool ParseTraceId(std::string_view s, uint64_t* out);

struct TelemetryOptions {
  /// Master switch: when false, requests skip recording entirely (the
  /// engine still answers identically — asserted by tests).
  bool enabled = true;
  /// Capture the full span tree for 1 in N requests (by trace id);
  /// 0 disables span capture, 1 captures every request.
  uint32_t sample_every = 64;
  /// Flight-recorder ring capacity (rounded up to a power of two).
  size_t recorder_capacity = 256;
  /// Slow-query ring capacity (rounded up to a power of two).
  size_t slow_capacity = 64;
  /// A request at or over this latency is pinned into the slow ring
  /// (deadline misses are always pinned). 0 pins everything.
  uint64_t slow_us = 50000;
};

/// Everything remembered about one completed request.
struct RequestRecord {
  uint64_t trace_id = 0;
  uint64_t seq = 0;
  Request request;
  bool ok = true;
  bool degraded = false;
  bool cache_hit = false;
  bool sampled = false;
  bool queued = false;  ///< Went through Submit (vs synchronous Execute).
  bool deadline_missed = false;
  bool oracle_fallback = false;  ///< dist answered by BFS, oracle absent.
  uint64_t latency_us = 0;
  uint64_t queue_wait_us = 0;  ///< Submit-to-drain delay (queued only).
  /// Deadline budget left at completion; UINT64_MAX = no deadline.
  uint64_t deadline_slack_us = UINT64_MAX;
  /// Span tree (sampled requests only; empty otherwise).
  std::vector<util::CapturedSpan> spans;
  bool spans_truncated = false;
};

/// Fixed-capacity overwrite-oldest ring of RequestRecords. Writers claim
/// a slot with one atomic fetch_add (no global lock, so concurrent
/// workers never serialize against each other) and copy the record under
/// that slot's own mutex; readers lock slots one at a time. Total pushes
/// ever is kept alongside, so "dropped = total - capacity" is exact.
class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two, minimum 1.
  explicit FlightRecorder(size_t capacity);

  void Push(RequestRecord record);

  /// Up to `n` most recent records, newest first.
  std::vector<RequestRecord> Recent(size_t n) const;

  /// Finds the newest resident record with this trace id.
  bool FindTrace(uint64_t trace_id, RequestRecord* out) const;

  size_t capacity() const { return capacity_; }
  /// Records ever pushed (monotonic; resident = min(total, capacity)).
  uint64_t total() const { return head_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    mutable std::mutex mutex;
    uint64_t ticket = 0;  ///< 1 + push index; 0 = never written.
    RequestRecord record;
  };

  size_t capacity_;
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
};

/// Monotonic per-request-type SLO tallies (plain struct of values — the
/// atomic originals live inside Telemetry).
struct SloCounters {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t degraded = 0;
  uint64_t deadline_miss = 0;
  uint64_t cache_hits = 0;
};

/// The serving telemetry plane: sequence numbers, sampling decisions,
/// SLO counters, per-type latency sketches, and the two rings. One
/// instance per QueryEngine; all methods are thread-safe.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options);

  const TelemetryOptions& options() const { return options_; }

  /// Live master switch, initialized from options().enabled. Runtime
  /// toggling lets an A/B measurement (bench_observability) compare
  /// on/off on one engine — same heap layout, so the delta is the code
  /// path, not allocator luck.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Next request sequence number (1-based, monotonic).
  uint64_t NextSeq() { return next_seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Deterministic 1-in-sample_every decision by trace id.
  bool Sampled(uint64_t trace_id) const {
    return options_.sample_every > 0 &&
           trace_id % options_.sample_every == 0;
  }

  /// Folds one completed request into counters, sketches, and rings.
  void Record(RequestRecord record);

  const FlightRecorder& recent() const { return recent_; }
  const FlightRecorder& slow() const { return slow_; }

  /// Counters for one request type / summed over all types.
  SloCounters type_counters(RequestType type) const;
  SloCounters totals() const;
  uint64_t oracle_fallbacks() const {
    return oracle_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Latency sketch for one request type; queue-wait sketch overall.
  const util::QuantileSketch& latency_sketch(RequestType type) const {
    return latency_[static_cast<size_t>(type)];
  }
  const util::QuantileSketch& queue_wait_sketch() const { return queue_wait_; }

 private:
  struct AtomicSlo {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> degraded{0};
    std::atomic<uint64_t> deadline_miss{0};
    std::atomic<uint64_t> cache_hits{0};
  };

  TelemetryOptions options_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_seq_{1};
  AtomicSlo per_type_[kNumRequestTypes];
  std::atomic<uint64_t> oracle_fallbacks_{0};
  util::QuantileSketch latency_[kNumRequestTypes];
  util::QuantileSketch queue_wait_;
  FlightRecorder recent_;
  FlightRecorder slow_;
};

// ---------------------------------------------------------------------------
// Admin introspection (the '#'-prefixed line-protocol commands).

struct AdminCommand {
  enum class Kind : uint8_t {
    kStats,
    kHealthz,
    kRecent,
    kSlow,
    kTrace,
    kVersion,  ///< #version — graph version / epoch / compaction facts.
    kOverlay,  ///< #overlay — live overlay row/tombstone counters.
  };
  Kind kind = Kind::kStats;
  size_t n = 16;          ///< #recent / #slow record count.
  uint64_t trace_id = 0;  ///< #trace argument.
};

/// Parses a '#'-prefixed admin line. Returns NotFound for lines that are
/// not admin commands (plain comments — callers skip them silently, which
/// keeps old request files with '#' comments working) and InvalidArgument
/// for a recognized admin verb with bad arguments (callers answer with an
/// error line).
Result<AdminCommand> ParseAdminLine(std::string_view line);

/// Engine-side facts the renderers need but Telemetry does not own.
struct EngineStatsContext {
  uint64_t nodes = 0;
  uint64_t edges = 0;
  int workers = 1;
  bool oracle_active = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double warmup_seconds = 0.0;
  bool warm_from_cache = false;
  int64_t inflight = 0;
  /// Live-engine facts (engine.cc fills them from LiveGraph::Stats).
  /// When false the #version/#overlay verbs still answer — with
  /// live:false and the static graph identity — and RenderStatsJson
  /// omits its "live" block.
  bool live = false;
  OverlayStats overlay;
};

/// All renderers emit exactly one line of JSON (no trailing newline) —
/// the admin channel shares the one-JSON-object-per-line wire contract
/// with query responses.
std::string RenderStatsJson(const Telemetry& t, const EngineStatsContext& ctx);
std::string RenderHealthzJson(const Telemetry& t,
                              const EngineStatsContext& ctx);
/// #version: graph version, epoch, base version, compaction recency.
std::string RenderVersionJson(const EngineStatsContext& ctx);
/// #overlay: overlay rows/entries/tombstones, high-water marks, churn
/// tallies, current reciprocity.
std::string RenderOverlayJson(const EngineStatsContext& ctx);
std::string RenderRecentJson(const Telemetry& t, size_t n);
std::string RenderSlowJson(const Telemetry& t, size_t n);
std::string RenderTraceJson(const Telemetry& t, uint64_t trace_id);

/// One RequestRecord as a JSON object (shared by #recent/#slow/#trace).
std::string RenderRecordJson(const RequestRecord& record);

/// Human-readable multi-line summary for clean-shutdown printing.
std::string RenderSummaryText(const Telemetry& t);

// ---------------------------------------------------------------------------
// Background exporter.

/// Periodically writes a combined JSON snapshot (engine stats + SLO
/// burn rates + the util::MetricsRegistry snapshot) to `path` and a
/// Prometheus text-format snapshot to `path + ".prom"`. Writes are
/// atomic (temp file + rename) so scrapers never see a torn file. The
/// exporter thread touches only telemetry state — never the query path.
class TelemetryExporter {
 public:
  /// `stats_fn` supplies the engine-side context per snapshot; it must
  /// stay valid until Stop()/destruction.
  TelemetryExporter(const Telemetry* telemetry, std::string path,
                    int interval_ms,
                    std::function<EngineStatsContext()> stats_fn);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Stops the thread after one final write. Idempotent.
  void Stop();

  /// Snapshots written so far (testing/diagnostics).
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void WriteOnce(double interval_seconds);

  const Telemetry* telemetry_;
  std::string path_;
  int interval_ms_;
  std::function<EngineStatsContext()> stats_fn_;
  std::atomic<uint64_t> writes_{0};
  /// Totals at the previous snapshot, for burn-rate deltas.
  SloCounters last_totals_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_TELEMETRY_H_

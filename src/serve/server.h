// Line-protocol front-end: newline-delimited requests in, one JSON object
// per line out. This is the transport the `elitenet_serve` example and the
// `elitenet_cli serve` subcommand share — they differ only in how the
// graph is loaded and which FILE*s are wired up (stdin/stdout for both
// today; a socket accept loop can hand its FILE*s straight in).

#ifndef ELITENET_SERVE_SERVER_H_
#define ELITENET_SERVE_SERVER_H_

#include <cstdint>
#include <cstdio>

#include "serve/engine.h"

namespace elitenet {
namespace serve {

struct ServeStats {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t degraded = 0;
  uint64_t admin = 0;  ///< '#'-prefixed admin commands answered.
};

/// Reads requests from `in` until EOF or a "quit" line, answering each on
/// `out` (flushed per line so interactive pipes see responses
/// immediately). Blank lines are skipped. '#' lines are admin commands
/// when the verb is recognized (#stats, #healthz, #recent [n], #slow [n],
/// #trace <id> — each answered with one JSON line off the query fast
/// path) and comments otherwise, preserving the old comment syntax.
/// Malformed requests and bad admin arguments produce
/// {"type":"error",...} lines, never a crash or a silent drop. Returns
/// tallies for the session.
ServeStats ServeLines(QueryEngine* engine, std::FILE* in, std::FILE* out);

/// Parses one telemetry-related command-line flag shared by
/// `elitenet_serve` and `elitenet_cli serve` into `options`:
///   --metrics=<path> --metrics-interval=<ms> --flight-recorder=<K>
///   --slow-ms=<t> --sample=<N> --no-telemetry
/// Returns false (options untouched) when `arg` is not one of these.
bool ParseServeFlag(std::string_view arg, EngineOptions* options);

/// Applies the telemetry environment fallbacks (ELITENET_METRICS,
/// ELITENET_METRICS_INTERVAL_MS, ELITENET_FLIGHT_RECORDER,
/// ELITENET_SLOW_MS) — StudyConfig parity for the serving front-ends.
/// Call before flag parsing so explicit flags win.
void ApplyServeEnv(EngineOptions* options);

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_SERVER_H_

// Line-protocol front-end: newline-delimited requests in, one JSON object
// per line out. This is the transport the `elitenet_serve` example and the
// `elitenet_cli serve` subcommand share — they differ only in how the
// graph is loaded and which FILE*s are wired up (stdin/stdout for both
// today; a socket accept loop can hand its FILE*s straight in).

#ifndef ELITENET_SERVE_SERVER_H_
#define ELITENET_SERVE_SERVER_H_

#include <cstdint>
#include <cstdio>

#include "serve/engine.h"

namespace elitenet {
namespace serve {

struct ServeStats {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t degraded = 0;
};

/// Reads requests from `in` until EOF or a "quit" line, answering each on
/// `out` (flushed per line so interactive pipes see responses
/// immediately). Blank lines and '#' comments are skipped; malformed
/// requests produce {"type":"error",...} lines, never a crash or a silent
/// drop. Returns tallies for the session.
ServeStats ServeLines(QueryEngine* engine, std::FILE* in, std::FILE* out);

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_SERVER_H_

// Typed requests for the query engine and their wire forms.
//
// The serving layer speaks a newline-delimited line protocol (one request
// per line in, one JSON object per line out). A request has three textual
// forms, all produced/consumed here:
//
//   * wire form     — what clients type: "ego 5", "topk 20",
//                     "dist 3 9 [deadline_us]", "neighbors 4 out 16",
//                     "fingerprint". Forgiving about whitespace. Any verb
//                     may carry a trailing "@<version>" token to pin the
//                     answer to one MVCC graph version on a live engine.
//   * canonical form — the normalized wire form. Parse(Canonical(r)) == r
//                     for every valid request (round-trip tested).
//   * cache key     — canonical form minus the deadline, because the
//                     deadline changes *whether* a result is computed in
//                     time, never what the result is; responses cached
//                     under the key are deadline-independent bytes.
//
// Responses are rendered elsewhere (engine.cc); this header only carries
// the small JSON string helpers both sides share.

#ifndef ELITENET_SERVE_REQUEST_H_
#define ELITENET_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace serve {

enum class RequestType : uint8_t {
  kEgoSummary = 0,   ///< "ego <node>" — degrees, components, rank, reach
  kTopKRank = 1,     ///< "topk <k>" — top-k users by PageRank
  kDistance = 2,     ///< "dist <src> <dst> [deadline_us]"
  kNeighbors = 3,    ///< "neighbors <node> <out|in> [limit]"
  kFingerprint = 4,  ///< "fingerprint" — signature + paper similarity
};

/// Stable protocol verb for a request type ("ego", "topk", ...).
const char* RequestTypeName(RequestType type);

enum class NeighborDirection : uint8_t { kOut = 0, kIn = 1 };

struct Request {
  RequestType type = RequestType::kEgoSummary;
  /// Subject node (ego, neighbors) or source (distance).
  graph::NodeId node = 0;
  /// Distance target.
  graph::NodeId target = 0;
  /// Top-k size.
  uint32_t k = 10;
  /// Neighbor page size.
  uint32_t limit = 32;
  NeighborDirection direction = NeighborDirection::kOut;
  /// Execution budget in microseconds; 0 = no deadline.
  uint64_t deadline_us = 0;
  /// Graph-version pin for live engines: a trailing "@<v>" token on any
  /// verb answers against the MVCC snapshot at version v. 0 = unpinned
  /// (the engine captures the current version at admission). Static
  /// engines reject pinned requests with FailedPrecondition.
  uint64_t version = 0;

  bool operator==(const Request&) const = default;
};

/// Parses one protocol line. Leading/trailing whitespace is ignored.
/// Returns InvalidArgument for unknown verbs, wrong arity, non-numeric or
/// out-of-range arguments, and zero k/limit.
Result<Request> ParseRequest(std::string_view line);

/// Normalized wire form; ParseRequest(CanonicalEncoding(r)) == r.
std::string CanonicalEncoding(const Request& r);

/// Canonical form without the deadline or version pin — the result-cache
/// key. The deadline never changes result bytes; the version does, but a
/// live engine keys its cache under an "e<epoch>@<resolved version>"
/// prefix it derives at admission (engine.cc), which also covers unpinned
/// requests.
std::string CacheKey(const Request& r);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Shortest round-trippable decimal for a double ("%.17g", with
/// nan/inf mapped to null) — deterministic across runs and platforms
/// using IEEE doubles.
std::string JsonDouble(double v);

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_REQUEST_H_
